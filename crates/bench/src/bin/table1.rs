//! Regenerates the paper's Table 1: IEEE 754-2008 binary format
//! parameters, straight from the softfloat substrate.

use numfuzz_softfloat::Format;

fn main() {
    println!("Table 1: Parameters for floating-point number sets in IEEE 754-2008");
    println!("(emin = 1 - emax for each format)\n");
    println!("{:<12} {:>10} {:>10} {:>10}", "Parameter", "binary32", "binary64", "binary128");
    let formats = [Format::BINARY32, Format::BINARY64, Format::BINARY128];
    print!("{:<12}", "p");
    for f in &formats {
        print!(" {:>10}", f.precision());
    }
    println!();
    print!("{:<12}", "emax");
    for f in &formats {
        print!(" {:>10}", format!("+{}", f.emax()));
    }
    println!();
    print!("{:<12}", "emin");
    for f in &formats {
        print!(" {:>10}", f.emin());
    }
    println!();
    println!("\nDerived extremes (exact, from the simulator):");
    for f in &formats {
        println!(
            "  {}: max finite = {}, min normal = 2^{}, min subnormal = 2^{}",
            f,
            f.max_finite_value().to_sci_string(5),
            f.emin(),
            f.emin() - f.precision() as i64 + 1,
        );
    }
}
