/root/repo/target/debug/deps/props-8d4f70e3b4d5803a.d: crates/exact/tests/props.rs

/root/repo/target/debug/deps/props-8d4f70e3b4d5803a: crates/exact/tests/props.rs

crates/exact/tests/props.rs:
