//! `numfuzz optimize` — sound rewrite + precision search using the
//! analyzer as a fitness function.
//!
//! The optimizer treats the typed judgment as an oracle, the direction
//! PAPERS.md's *Towards a Compiler for Reals* (Darulova & Kuncak) points
//! at: search over algebraic rewrites of the surface program that
//! preserve the *ideal* (real-valued) semantics, re-derive rounding
//! placement when emitting each candidate back to surface syntax (one
//! `rnd` per operation), and let the eq. (8) bound of the re-checked
//! candidate decide fitness, subject to an operation-count cost model.
//!
//! The pipeline per candidate is the full facade, so no unsound rewrite
//! can win:
//!
//! 1. **Probe**: the candidate is emitted as a *closed* let-chain with
//!    the committed argument values inlined, then parsed, type-checked
//!    and bounded — the inferred root grade is the candidate's exact
//!    monadic error grade (leaves contribute no accumulated error, so
//!    the grade is structural).
//! 2. **Function form**: the candidate is re-emitted as the original
//!    `function` declaration (same name, same parameter types, declared
//!    return grade = the probe grade) plus the original trailing
//!    application, and must re-check. A candidate that uses a parameter
//!    above its declared sensitivity is rejected here.
//! 3. **Interval cross-check**: the PR 8 interval engine must produce a
//!    bound for the rewritten function over the standard `[0.1, 1000]`
//!    box (the same box `numfuzz table1` uses).
//! 4. **Exact-oracle spot validation**: the candidate's ideal value is
//!    compared against the *original* program's ideal value at several
//!    sample points (the committed arguments and scaled variants); the
//!    exact-rational enclosures must overlap. The emitted function form
//!    is additionally validated end-to-end at the committed point
//!    (Corollary 4.20).
//!
//! Search is a deterministic, seeded beam search over the
//! [`numfuzz_core::rewrite`] rules; candidate evaluation shards onto the
//! PR 3 pool with byte-identical results at every `--jobs` value
//! (candidate order is fixed before dispatch, results are collected in
//! input order, and selection is lexicographic).

use crate::analyzer::{Analyzer, Inputs, Typed};
use crate::diag::{Diagnostic, ErrorCode};
use crate::program::Program;
use numfuzz_core::rewrite::{self, decimal_literal, ENode, ExprArena, ExprId};
use numfuzz_core::{Grade, Instantiation, Node, TermId, TermStore, Ty, VarId};
use numfuzz_exact::{RatInterval, Rational};
use numfuzz_fuzz::rp_format_palette;
use numfuzz_interp::Value;
use std::collections::HashSet;
use std::rc::Rc;

/// Beam width of the search frontier.
const BEAM: usize = 6;

/// Sample-point scale factors for the exact-oracle leg: the committed
/// arguments, and two scaled variants that stay strictly positive and
/// decimal-printable.
const SAMPLE_SCALES: [(i64, i64); 3] = [(1, 1), (3, 2), (5, 8)];

/// Configuration for [`optimize`].
#[derive(Clone, Debug)]
pub struct OptimizeConfig {
    /// Maximum number of rewrite candidates to evaluate.
    pub budget: usize,
    /// Seed for the (deterministic) candidate shuffle before budget
    /// truncation.
    pub seed: u64,
    /// Worker threads for candidate evaluation (`0` = auto). The result
    /// is byte-identical at every value.
    pub jobs: usize,
    /// Also search per-program precision assignments over the fuzzer's
    /// format palette.
    pub precision_search: bool,
    /// Relative-error target for the precision search; defaults to the
    /// original program's bound at the session format.
    pub target_rel: Option<Rational>,
    /// Test-only: include the deliberately unsound `swap_div` rule so
    /// tests can prove the oracle leg rejects semantically wrong
    /// candidates.
    pub unsound_rule_for_tests: bool,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            budget: 192,
            seed: 42,
            jobs: 1,
            precision_search: false,
            target_rel: None,
            unsound_rule_for_tests: false,
        }
    }
}

/// Bound + cost summary of one program form.
#[derive(Clone, Debug)]
pub struct CandidateReport {
    /// The typed monadic grade (e.g. `3*eps`).
    pub grade: String,
    /// The grade evaluated at the session's unit roundoff.
    pub alpha: Rational,
    /// The eq. (8) relative-error bound, when finite.
    pub relative: Option<Rational>,
    /// Cost-model total over the emitted DAG.
    pub cost: u64,
    /// Operation count over the emitted DAG.
    pub ops: u64,
}

/// Per-rule candidate accounting.
#[derive(Clone, Debug)]
pub struct RuleCount {
    /// Rule name.
    pub rule: &'static str,
    /// Candidates the rule generated (post-dedup).
    pub generated: usize,
    /// Of those, candidates that passed full certification.
    pub certified: usize,
}

/// One row of the `--precision-search` table.
#[derive(Clone, Debug)]
pub struct PrecisionRow {
    /// Format name from the fuzzer's palette.
    pub format: &'static str,
    /// Unit roundoff at the session rounding mode.
    pub unit_roundoff: Rational,
    /// The winner's relative bound re-certified under this format.
    pub relative: Option<Rational>,
    /// Format-scaled cost.
    pub cost: u64,
    /// Whether the re-certified bound meets the target.
    pub meets_target: bool,
}

/// The result of [`optimize`].
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// Principal function name.
    pub name: String,
    /// Bound + cost of the original program.
    pub original: CandidateReport,
    /// Bound + cost of the winner (equals `original` when unchanged).
    pub best: CandidateReport,
    /// Whether the winner strictly improves (bound, then cost).
    pub improved: bool,
    /// Rewrite candidates evaluated (excluding the original).
    pub evaluated: usize,
    /// Candidates that passed full certification.
    pub certified: usize,
    /// Rejections at the type-check/bound stage.
    pub rejected_check: usize,
    /// Rejections at the interval cross-check stage.
    pub rejected_interval: usize,
    /// Rejections at the exact-oracle stage.
    pub rejected_oracle: usize,
    /// Per-rule accounting, in rule order.
    pub rule_counts: Vec<RuleCount>,
    /// Precision table (only with `precision_search`).
    pub precision: Vec<PrecisionRow>,
    /// Chosen format name (only with `precision_search`).
    pub chosen_format: Option<&'static str>,
    /// Deterministic human-readable report (no timing).
    pub report: String,
    /// The emitted `.nf` source: the rewritten program, or the original
    /// source when unchanged.
    pub rewritten: String,
}

fn unsupported(msg: impl Into<String>) -> Diagnostic {
    Diagnostic::new(ErrorCode::EvalFailed, msg.into())
        .with_note("numfuzz optimize handles first-order programs over add/mul/div/sqrt with constant trailing-application arguments")
}

// ---------------------------------------------------------------------------
// Extraction: core IR → rewrite fragment
// ---------------------------------------------------------------------------

/// A parameter of the principal function.
#[derive(Clone, Debug)]
struct Param {
    name: String,
    /// `Some(grade)` for `![g]num` parameters, `None` for plain `num`.
    bang: Option<Grade>,
    /// Committed trailing-application argument value.
    value: Rational,
}

struct Principal {
    name: String,
    params: Vec<Param>,
    root: ExprId,
}

#[derive(Clone)]
enum SVal {
    E(ExprId),
    PairT(Rc<SVal>, Rc<SVal>),
    PairW(Rc<SVal>, Rc<SVal>),
    Boxed(Rc<SVal>),
    Fun(Rc<SFun>),
    Unit,
}

struct SFun {
    param: VarId,
    ty: numfuzz_core::TyId,
    body: TermId,
    env: Env,
}

type Env = Vec<(VarId, SVal)>;

fn lookup(env: &Env, v: VarId) -> Result<SVal, String> {
    env.iter()
        .rev()
        .find(|(x, _)| *x == v)
        .map(|(_, s)| s.clone())
        .ok_or_else(|| "unbound variable in extraction".to_string())
}

/// Symbolically evaluates the *ideal* semantics of a term into the
/// rewrite fragment (`rnd` is the identity; helper functions are
/// inlined).
fn sym_eval(
    store: &TermStore,
    arena: &mut ExprArena,
    env: &Env,
    id: TermId,
) -> Result<SVal, String> {
    match *store.node(id) {
        Node::Var(v) => lookup(env, v),
        Node::UnitVal => Ok(SVal::Unit),
        Node::Const(ci) => {
            let q = store.constant(ci).clone();
            if !q.is_positive() {
                return Err("non-positive constant outside the RP carrier".into());
            }
            Ok(SVal::E(arena.constant(q)))
        }
        Node::PairW(a, b) => {
            let a = sym_eval(store, arena, env, a)?;
            let b = sym_eval(store, arena, env, b)?;
            Ok(SVal::PairW(Rc::new(a), Rc::new(b)))
        }
        Node::PairT(a, b) => {
            let a = sym_eval(store, arena, env, a)?;
            let b = sym_eval(store, arena, env, b)?;
            Ok(SVal::PairT(Rc::new(a), Rc::new(b)))
        }
        Node::Lam(x, ty, body) => {
            Ok(SVal::Fun(Rc::new(SFun { param: x, ty, body, env: env.clone() })))
        }
        Node::BoxIntro(_, v) => Ok(SVal::Boxed(Rc::new(sym_eval(store, arena, env, v)?))),
        Node::Rnd(v) | Node::Ret(v) => sym_eval(store, arena, env, v),
        Node::App(f, a) => {
            let fun = match sym_eval(store, arena, env, f)? {
                SVal::Fun(fun) => fun,
                _ => return Err("application of a non-function".into()),
            };
            let arg = sym_eval(store, arena, env, a)?;
            let mut inner = fun.env.clone();
            inner.push((fun.param, arg));
            sym_eval(store, arena, &inner, fun.body)
        }
        Node::Proj(first, v) => match sym_eval(store, arena, env, v)? {
            SVal::PairW(a, b) | SVal::PairT(a, b) => {
                Ok(if first { (*a).clone() } else { (*b).clone() })
            }
            _ => Err("projection from a non-pair".into()),
        },
        Node::LetTensor(x, y, v, e) => match sym_eval(store, arena, env, v)? {
            SVal::PairT(a, b) | SVal::PairW(a, b) => {
                let mut env2 = env.clone();
                env2.push((x, (*a).clone()));
                env2.push((y, (*b).clone()));
                sym_eval(store, arena, &env2, e)
            }
            _ => Err("let-tensor of a non-pair".into()),
        },
        Node::LetBox(x, v, e) => {
            let inner = match sym_eval(store, arena, env, v)? {
                SVal::Boxed(inner) => (*inner).clone(),
                other => other,
            };
            let mut env2 = env.clone();
            env2.push((x, inner));
            sym_eval(store, arena, &env2, e)
        }
        Node::LetBind(x, v, e) | Node::Let(x, v, e) => {
            let bound = sym_eval(store, arena, env, v)?;
            let mut env2 = env.clone();
            env2.push((x, bound));
            sym_eval(store, arena, &env2, e)
        }
        Node::LetFun(x, _, body, rest) => {
            let bound = sym_eval(store, arena, env, body)?;
            let mut env2 = env.clone();
            env2.push((x, bound));
            sym_eval(store, arena, &env2, rest)
        }
        Node::Op(op, v) => {
            let name = store.op_name(op).to_string();
            let arg = sym_eval(store, arena, env, v)?;
            let expr_of = |s: &SVal| -> Result<ExprId, String> {
                match s {
                    SVal::E(e) => Ok(*e),
                    SVal::Boxed(inner) => match inner.as_ref() {
                        SVal::E(e) => Ok(*e),
                        _ => Err("non-numeric operand".into()),
                    },
                    _ => Err("non-numeric operand".into()),
                }
            };
            match name.as_str() {
                "add" | "mul" | "div" => {
                    let (a, b) = match &arg {
                        SVal::PairW(a, b) | SVal::PairT(a, b) => {
                            (expr_of(a.as_ref())?, expr_of(b.as_ref())?)
                        }
                        _ => return Err(format!("{name} of a non-pair")),
                    };
                    Ok(SVal::E(match name.as_str() {
                        "add" => arena.add(a, b),
                        "mul" => arena.mul(a, b),
                        _ => arena.div(a, b),
                    }))
                }
                "sqrt" => {
                    let a = expr_of(&arg)?;
                    Ok(SVal::E(arena.sqrt(a)))
                }
                other => Err(format!("operation `{other}` outside the optimizable fragment")),
            }
        }
        Node::Inl(..) | Node::Inr(..) | Node::Case(..) | Node::Err(..) => {
            Err("sums/case/err outside the optimizable fragment".into())
        }
    }
}

/// Resolves the trailing term of a program to `(function var, argument
/// terms)`. The lowering ANF-chains curried applications (`f a b`
/// becomes `let t = f a; t b`), so partial applications bound by `let`
/// are followed through.
fn trailing_application(store: &TermStore, cur: TermId) -> Result<(VarId, Vec<TermId>), String> {
    // Lowered VarIds are unique, so the environment never needs popping.
    fn spine_of(
        store: &TermStore,
        env: &mut Vec<(VarId, (VarId, Vec<TermId>))>,
        id: TermId,
    ) -> Result<(VarId, Vec<TermId>), String> {
        match *store.node(id) {
            Node::Let(x, v, body) | Node::LetBind(x, v, body) => {
                let spine = spine_of(store, env, v)?;
                env.push((x, spine));
                spine_of(store, env, body)
            }
            Node::App(f, a) => {
                let (fv, mut args) = spine_of(store, env, f)?;
                args.push(a);
                Ok((fv, args))
            }
            Node::Var(v) => Ok(env
                .iter()
                .rev()
                .find(|(x, _)| *x == v)
                .map(|(_, s)| s.clone())
                .unwrap_or((v, Vec::new()))),
            _ => Err("trailing term is not an application of a named function".into()),
        }
    }
    spine_of(store, &mut Vec::new(), cur)
}

/// Extracts the principal function (the one the trailing application
/// calls) of a program into the rewrite fragment, with helper functions
/// inlined.
fn extract(program: &Program, arena: &mut ExprArena) -> Result<Principal, Diagnostic> {
    let store = program.store();
    let mut env: Env = Vec::new();
    let mut cur = program.root();
    while let Node::LetFun(x, _, body, rest) = *store.node(cur) {
        let bound = sym_eval(store, arena, &env, body).map_err(unsupported)?;
        env.push((x, bound));
        cur = rest;
    }
    let (fvar, args) = trailing_application(store, cur).map_err(unsupported)?;
    let name = store.var_name(fvar).to_string();
    if args.is_empty() {
        return Err(unsupported("trailing application has no arguments"));
    }
    let mut fun = match lookup(&env, fvar).map_err(unsupported)? {
        SVal::Fun(f) => f,
        _ => return Err(unsupported("trailing application head is not a function")),
    };
    let mut params = Vec::new();
    let mut fenv = fun.env.clone();
    let mut body = fun.body;
    for (i, &arg_term) in args.iter().enumerate() {
        if i > 0 {
            // Walk into the next Lam of the curried chain.
            let Node::Lam(..) = *store.node(body) else {
                return Err(unsupported("more arguments than parameters"));
            };
            let SVal::Fun(next) = sym_eval(store, arena, &fenv, body).map_err(unsupported)? else {
                unreachable!("Lam evaluates to Fun");
            };
            fun = next;
            fenv = fun.env.clone();
            body = fun.body;
        }
        let pname = store.var_name(fun.param).to_string();
        let bang = match store.ty(fun.ty) {
            Ty::Num => None,
            Ty::Bang(g, inner) if *inner == Ty::Num => Some(g),
            other => {
                return Err(unsupported(format!(
                    "parameter `{pname}` has type `{other}`; only num and ![g]num are searchable"
                )))
            }
        };
        let value = match *store.node(arg_term) {
            Node::Const(ci) => store.constant(ci).clone(),
            Node::BoxIntro(_, inner) => match *store.node(inner) {
                Node::Const(ci) => store.constant(ci).clone(),
                _ => return Err(unsupported("non-constant boxed argument")),
            },
            _ => return Err(unsupported("non-constant trailing-application argument")),
        };
        if decimal_literal(&value).is_none() {
            return Err(unsupported("argument is not a positive decimal literal"));
        }
        let leaf = arena.var(i);
        let sval = if bang.is_some() { SVal::Boxed(Rc::new(SVal::E(leaf))) } else { SVal::E(leaf) };
        fenv.push((fun.param, sval));
        params.push(Param { name: pname, bang, value });
    }
    if let Node::Lam(..) = *store.node(body) {
        return Err(unsupported("trailing application is partial"));
    }
    let root = match sym_eval(store, arena, &fenv, body).map_err(unsupported)? {
        SVal::E(e) => e,
        _ => return Err(unsupported("principal function body is not numeric")),
    };
    Ok(Principal { name, params, root })
}

// ---------------------------------------------------------------------------
// Codegen: rewrite fragment → surface syntax
// ---------------------------------------------------------------------------

/// Deterministic post-order list of the operation nodes below (and
/// including) `root`, shared nodes once.
fn topo_ops(arena: &ExprArena, root: ExprId) -> Vec<ExprId> {
    fn walk(arena: &ExprArena, id: ExprId, seen: &mut HashSet<ExprId>, out: &mut Vec<ExprId>) {
        if !seen.insert(id) {
            return;
        }
        match *arena.node(id) {
            ENode::Var(_) | ENode::Const(_) => {}
            ENode::Sqrt(a) => {
                walk(arena, a, seen, out);
                out.push(id);
            }
            ENode::Add(a, b) | ENode::Mul(a, b) | ENode::Div(a, b) => {
                walk(arena, a, seen, out);
                walk(arena, b, seen, out);
                out.push(id);
            }
        }
    }
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    walk(arena, root, &mut seen, &mut out);
    out
}

/// Emits the statement chain for a candidate: one `let t = rnd (op …);`
/// per interior operation, the root operation as the `rnd (…)` tail.
/// `leaf` renders parameter references. Returns `None` when a constant
/// is not decimal-printable or the root is not an operation.
fn emit_body(
    arena: &ExprArena,
    root: ExprId,
    used_names: &[String],
    leaf: &dyn Fn(usize) -> String,
) -> Option<Vec<String>> {
    let ops = topo_ops(arena, root);
    if ops.last() != Some(&root) {
        return None; // root is a leaf: nothing to round, nothing to optimize
    }
    let mut temp_names: Vec<(ExprId, String)> = Vec::new();
    let mut next = 0usize;
    for &id in ops.iter().filter(|&&id| id != root) {
        let name = loop {
            let cand = format!("t{next}");
            next += 1;
            if !used_names.contains(&cand) {
                break cand;
            }
        };
        temp_names.push((id, name));
    }
    let rend = |id: ExprId| -> Option<String> {
        match arena.node(id) {
            ENode::Var(i) => Some(leaf(*i)),
            ENode::Const(q) => decimal_literal(q),
            _ => temp_names.iter().find(|(n, _)| *n == id).map(|(_, s)| s.clone()),
        }
    };
    let op_text = |id: ExprId| -> Option<String> {
        Some(match *arena.node(id) {
            ENode::Add(a, b) => format!("add (| {}, {} |)", rend(a)?, rend(b)?),
            ENode::Mul(a, b) => format!("mul ({}, {})", rend(a)?, rend(b)?),
            ENode::Div(a, b) => format!("div ({}, {})", rend(a)?, rend(b)?),
            ENode::Sqrt(a) => format!("sqrt [{}]{{1/2}}", rend(a)?),
            ENode::Var(_) | ENode::Const(_) => return None,
        })
    };
    let mut lines = Vec::new();
    for (id, name) in &temp_names {
        lines.push(format!("    let {name} = rnd ({});", op_text(*id)?));
    }
    lines.push(format!("    rnd ({})", op_text(root)?));
    Some(lines)
}

/// Placeholder the worker substitutes with the probe-inferred grade.
const GRADE_HOLE: &str = "@@GRADE@@";

/// A fully rendered candidate, ready for (parallel) certification.
struct Job {
    expr: ExprId,
    rule_idx: usize,
    cost: u64,
    ops: u64,
    /// Closed probe sources, one per sample point (first = committed).
    probes: Vec<String>,
    /// Function + trailing application with [`GRADE_HOLE`] for the
    /// declared return grade.
    template: String,
}

fn param_ty_text(p: &Param) -> String {
    match &p.bang {
        None => "num".to_string(),
        Some(g) => format!("![{g}]num"),
    }
}

fn arg_text(p: &Param) -> Option<String> {
    let lit = decimal_literal(&p.value)?;
    Some(match &p.bang {
        None => lit,
        Some(g) => format!("[{lit}]{{{g}}}"),
    })
}

/// Renders a candidate into its probe sources and function template.
fn make_job(
    arena: &ExprArena,
    principal: &Principal,
    expr: ExprId,
    rule_idx: usize,
) -> Option<Job> {
    // Inner names: `x` parameters of `![g]num` type are unboxed to a
    // fresh name in a preamble, mirroring the benchmark style.
    let mut used: Vec<String> = principal.params.iter().map(|p| p.name.clone()).collect();
    let mut inner = Vec::new();
    for p in &principal.params {
        if p.bang.is_some() {
            let mut cand = format!("{}1", p.name);
            while used.contains(&cand) {
                cand.push('_');
            }
            used.push(cand.clone());
            inner.push(cand);
        } else {
            inner.push(p.name.clone());
        }
    }
    let fn_leaf = |i: usize| inner[i].clone();
    let body = emit_body(arena, expr, &used, &fn_leaf)?;

    let mut probes = Vec::new();
    for (sn, sd) in SAMPLE_SCALES {
        let scale = Rational::ratio(sn, sd);
        let values: Vec<String> = principal
            .params
            .iter()
            .map(|p| decimal_literal(&p.value.mul(&scale)))
            .collect::<Option<Vec<_>>>()?;
        let probe_leaf = |i: usize| values[i].clone();
        let lines = emit_body(arena, expr, &[], &probe_leaf)?;
        let mut src = String::new();
        for line in &lines {
            src.push_str(line.trim_start());
            src.push('\n');
        }
        probes.push(src);
    }

    let mut t = String::new();
    t.push_str(&format!("function {}", principal.name));
    for p in &principal.params {
        t.push_str(&format!(" ({}: {})", p.name, param_ty_text(p)));
    }
    t.push_str(&format!(" : M[{GRADE_HOLE}]num {{\n"));
    for (p, inner_name) in principal.params.iter().zip(&inner) {
        if p.bang.is_some() {
            t.push_str(&format!("    let [{inner_name}] = {};\n", p.name));
        }
    }
    for line in &body {
        t.push_str(line);
        t.push('\n');
    }
    t.push_str("}\n");
    t.push_str(&principal.name.to_string());
    for p in &principal.params {
        t.push_str(&format!(" {}", arg_text(p)?));
    }
    t.push('\n');

    Some(Job {
        expr,
        rule_idx,
        cost: arena.op_cost(expr),
        ops: arena.op_count(expr),
        probes,
        template: t,
    })
}

// ---------------------------------------------------------------------------
// Certification
// ---------------------------------------------------------------------------

/// Shared, `Sync` context for worker-side certification.
struct Ctx {
    fname: String,
    ranges: Vec<RatInterval>,
    /// Original-program ideal enclosures at each sample point.
    sample_ideals: Vec<RatInterval>,
}

enum Verdict {
    Certified(Box<Certificate>),
    RejectedCheck,
    RejectedInterval,
    RejectedOracle,
}

/// Payload of a [`Verdict::Certified`] (boxed: the rejection variants
/// are unit-like, and most candidates are rejections).
struct Certificate {
    grade: Grade,
    alpha: Rational,
    relative: Option<Rational>,
    src: String,
}

fn ideal_interval(v: &Value) -> Option<RatInterval> {
    let v = v.as_ret().unwrap_or(v);
    v.as_num().cloned()
}

fn overlap(a: &RatInterval, b: &RatInterval) -> bool {
    a.lo() <= b.hi() && b.lo() <= a.hi()
}

fn check_and_bound(
    session: &Analyzer,
    name: &str,
    src: &str,
) -> Option<(Program, Typed, Grade, Rational, Option<Rational>)> {
    let program = session.parse_named(name, src).ok()?;
    let typed = session.check(&program).ok()?;
    let bound = session.bound(&typed).ok()?;
    Some((program, typed, bound.grade, bound.alpha, bound.relative))
}

/// Runs the full facade over one candidate. Pure in (session, ctx, job):
/// safe to shard.
fn certify(session: &Analyzer, ctx: &Ctx, job: &Job) -> Verdict {
    // 1. Probe: inferred grade from the closed committed-point form.
    let Some((_, _, grade, alpha, _)) = check_and_bound(session, "probe", &job.probes[0]) else {
        return Verdict::RejectedCheck;
    };
    // 2. Function form with the probe grade declared.
    let src = job.template.replace(GRADE_HOLE, &grade.to_string());
    let Some((program, _, fgrade, falpha, relative)) = check_and_bound(session, &ctx.fname, &src)
    else {
        return Verdict::RejectedCheck;
    };
    if fgrade != grade || falpha != alpha {
        return Verdict::RejectedCheck;
    }
    // 3. Interval cross-check over the standard box.
    if session.bound_interval_fn(&program, &ctx.fname, &ctx.ranges).is_err() {
        return Verdict::RejectedInterval;
    }
    // 4a. End-to-end Corollary 4.20 validation at the committed point.
    match session.validate(&program, &Inputs::none()) {
        Ok(report) if report.holds() => {}
        _ => return Verdict::RejectedOracle,
    }
    // 4b. Exact-oracle ideal equivalence at every sample point.
    for (probe, want) in job.probes.iter().zip(&ctx.sample_ideals) {
        let Ok(pp) = session.parse_named("probe", probe) else {
            return Verdict::RejectedCheck;
        };
        let Ok(exec) = session.run(&pp, &Inputs::none()) else {
            return Verdict::RejectedOracle;
        };
        let Some(got) = ideal_interval(&exec.ideal) else {
            return Verdict::RejectedOracle;
        };
        if !overlap(&got, want) {
            return Verdict::RejectedOracle;
        }
    }
    Verdict::Certified(Box::new(Certificate { grade, alpha, relative, src }))
}

/// Ideal enclosure of the *original* program with its trailing-application
/// arguments scaled by `scale` (rebuilt on a cloned store).
fn original_ideal_at(
    analyzer: &Analyzer,
    program: &Program,
    scale: &Rational,
) -> Result<RatInterval, Diagnostic> {
    let mut store = program.store().clone();
    let mut chain = Vec::new();
    let mut cur = program.root();
    while let Node::LetFun(v, decl, body, rest) = *store.node(cur) {
        chain.push((v, decl, body));
        cur = rest;
    }
    let (fvar, args) = trailing_application(&store, cur).map_err(unsupported)?;
    let mut spine = store.var(fvar);
    for &a in &args {
        let scaled = match *store.node(a) {
            Node::Const(ci) => {
                let q = store.constant(ci).clone().mul(scale);
                store.num(q)
            }
            Node::BoxIntro(g, inner) => match *store.node(inner) {
                Node::Const(ci) => {
                    let q = store.constant(ci).clone().mul(scale);
                    let n = store.num(q);
                    store.box_intro_at(g, n)
                }
                _ => return Err(unsupported("non-constant boxed argument")),
            },
            _ => return Err(unsupported("non-constant trailing-application argument")),
        };
        spine = store.app(spine, scaled);
    }
    let mut root = spine;
    for &(v, decl, body) in chain.iter().rev() {
        root = store.let_fun_at(v, decl, body, root);
    }
    let rebuilt = Program::from_parts(store, root, Vec::new());
    let exec = analyzer.run(&rebuilt, &Inputs::none())?;
    ideal_interval(&exec.ideal)
        .ok_or_else(|| unsupported("original program does not return a number"))
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

/// xorshift64* — deterministic shuffle source.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = (self.next() % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }
}

fn sci(r: &Option<Rational>) -> String {
    match r {
        Some(q) => q.to_sci_string(3),
        None => "inf".to_string(),
    }
}

/// Runs the optimizer over a parsed program. See the module docs for the
/// search space and certification pipeline.
pub fn optimize(
    analyzer: &Analyzer,
    program: &Program,
    cfg: &OptimizeConfig,
) -> Result<OptimizeOutcome, Diagnostic> {
    if analyzer.signature().instantiation() != Instantiation::RelativePrecision {
        return Err(Diagnostic::new(
            ErrorCode::EvalFailed,
            "numfuzz optimize requires the relative-precision instantiation",
        ));
    }
    let mut arena = ExprArena::new();
    let principal = extract(program, &mut arena)?;
    let orig_expr = arena.simplify(principal.root);

    // Oracle reference: the original program's ideal value at each sample
    // point, computed on the original store (independent of extraction —
    // the extracted original is certified against these below, which
    // cross-checks the extraction itself).
    let mut sample_ideals = Vec::new();
    for (sn, sd) in SAMPLE_SCALES {
        sample_ideals.push(original_ideal_at(analyzer, program, &Rational::ratio(sn, sd))?);
    }
    let ctx = Ctx {
        fname: principal.name.clone(),
        ranges: vec![
            RatInterval::new(Rational::ratio(1, 10), Rational::from_int(1000));
            principal.params.len()
        ],
        sample_ideals,
    };

    // The original row is the *file's* typed bound and the cost of its
    // extracted operation DAG, before canonicalization — so a win from
    // canonicalization alone (folded constants, merged shared subterms)
    // is reported as the improvement it is.
    let file_typed = analyzer.check(program)?;
    let file_bound = analyzer.bound(&file_typed)?;
    let original = CandidateReport {
        grade: file_bound.grade.to_string(),
        alpha: file_bound.alpha,
        relative: file_bound.relative,
        cost: arena.op_cost(principal.root),
        ops: arena.op_count(principal.root),
    };

    let orig_job = make_job(&arena, &principal, orig_expr, usize::MAX)
        .ok_or_else(|| unsupported("program cannot be re-emitted (root is a bare leaf?)"))?;
    let Verdict::Certified(cert) = certify(analyzer, &ctx, &orig_job) else {
        return Err(unsupported("re-emitted original failed certification"));
    };
    let Certificate { grade, alpha, relative, src } = *cert;
    // Winner state: (alpha, cost, src) — lexicographic, fully ordered.
    // Seeded with the certified re-emission of the original.
    let mut best = CandidateReport {
        grade: grade.to_string(),
        alpha: alpha.clone(),
        relative,
        cost: orig_job.cost,
        ops: orig_job.ops,
    };
    let mut best_key = (alpha, orig_job.cost, src);
    let mut best_expr = orig_expr;

    let mut rules = rewrite::sound_rules();
    if cfg.unsound_rule_for_tests {
        rules.push(rewrite::unsound_swap_div_rule());
    }
    let mut rule_counts: Vec<RuleCount> = rules
        .iter()
        .map(|(name, _)| RuleCount { rule: name, generated: 0, certified: 0 })
        .collect();

    let mut seen: HashSet<ExprId> = HashSet::from([orig_expr]);
    let mut frontier = vec![orig_expr];
    let mut rng = Rng::new(cfg.seed);
    let (mut evaluated, mut certified) = (0usize, 0usize);
    let (mut rej_check, mut rej_interval, mut rej_oracle) = (0usize, 0usize, 0usize);

    while evaluated < cfg.budget && !frontier.is_empty() {
        // Generate this wave: every rule at every position of every
        // frontier expression, deduplicated against everything seen.
        let mut wave: Vec<(usize, ExprId)> = Vec::new();
        for &e in &frontier {
            for (ri, &(_, rule)) in rules.iter().enumerate() {
                for v in rewrite::apply_everywhere(&mut arena, e, rule) {
                    if seen.insert(v) {
                        wave.push((ri, v));
                    }
                }
            }
        }
        if wave.is_empty() {
            break;
        }
        rng.shuffle(&mut wave);
        wave.truncate(cfg.budget - evaluated);
        let jobs: Vec<Job> = wave
            .iter()
            .filter_map(|&(ri, v)| {
                let job = make_job(&arena, &principal, v, ri);
                if job.is_none() {
                    // Not emittable (e.g. a constant fell outside the
                    // decimal-printable literals): skip silently; it was
                    // never a viable candidate.
                }
                job
            })
            .collect();
        evaluated += jobs.len();
        let (verdicts, _) = numfuzz_core::pool::ordered_map_with(
            cfg.jobs,
            &jobs,
            |_| analyzer.fork_session(),
            |session, _, job| certify(session, &ctx, job),
        );
        let mut wave_certified: Vec<(Rational, u64, usize, ExprId)> = Vec::new();
        for (job, verdict) in jobs.iter().zip(verdicts) {
            rule_counts[job.rule_idx].generated += 1;
            match verdict {
                Verdict::Certified(cert) => {
                    let Certificate { grade, alpha, relative, src } = *cert;
                    certified += 1;
                    rule_counts[job.rule_idx].certified += 1;
                    wave_certified.push((alpha.clone(), job.cost, wave_certified.len(), job.expr));
                    let key = (alpha.clone(), job.cost, src);
                    if key < best_key {
                        best = CandidateReport {
                            grade: grade.to_string(),
                            alpha,
                            relative,
                            cost: job.cost,
                            ops: job.ops,
                        };
                        best_key = key;
                        best_expr = job.expr;
                    }
                }
                Verdict::RejectedCheck => rej_check += 1,
                Verdict::RejectedInterval => rej_interval += 1,
                Verdict::RejectedOracle => rej_oracle += 1,
            }
        }
        // Next frontier: the best few certified candidates of this wave.
        wave_certified.sort();
        frontier = wave_certified.into_iter().take(BEAM).map(|(_, _, _, e)| e).collect();
    }
    let _ = best_expr;

    let improved =
        best.alpha < original.alpha || (best.alpha == original.alpha && best.cost < original.cost);
    let rewritten = if improved {
        best_key.2.clone()
    } else {
        program.source().map(str::to_string).unwrap_or_else(|| best_key.2.clone())
    };

    // Precision search: re-certify the winner under each palette format.
    let mut precision = Vec::new();
    let mut chosen_format = None;
    if cfg.precision_search {
        let target = cfg
            .target_rel
            .clone()
            .or_else(|| original.relative.clone())
            .unwrap_or_else(Rational::one);
        let palette = rp_format_palette();
        for &(fname, format) in &palette {
            let session = Analyzer::builder().format(format).mode(analyzer.mode()).build();
            let row_src = &best_key.2;
            let rel = session
                .parse_named(&principal.name, row_src)
                .ok()
                .and_then(|p| session.check(&p).ok().map(|t| (p, t)))
                .and_then(|(_, t)| session.bound(&t).ok())
                .and_then(|b| b.relative);
            let weight = u64::from(format.precision().div_ceil(16));
            precision.push(PrecisionRow {
                format: fname,
                unit_roundoff: format.unit_roundoff(analyzer.mode()),
                relative: rel.clone(),
                cost: best.cost * weight,
                meets_target: rel.map(|r| r <= target).unwrap_or(false),
            });
        }
        // Cheapest certified format meeting the target (palette is
        // ordered most- to least-precise, so scan from the back).
        chosen_format = precision.iter().rev().find(|row| row.meets_target).map(|row| row.format);
    }

    let mut report = String::new();
    report.push_str(&format!("numfuzz optimize — {}\n", principal.name));
    report.push_str(&format!(
        "  search     : budget {}, seed {}, beam {BEAM}, rules {}\n",
        cfg.budget,
        cfg.seed,
        rules.len()
    ));
    report.push_str(&format!(
        "  candidates : evaluated {evaluated}, certified {certified}, rejected {rej_check} check / {rej_interval} interval / {rej_oracle} oracle\n",
    ));
    let rc: Vec<String> = rule_counts
        .iter()
        .filter(|r| r.generated > 0)
        .map(|r| format!("{} {}/{}", r.rule, r.certified, r.generated))
        .collect();
    report.push_str(&format!(
        "  rules      : {}\n",
        if rc.is_empty() { "none applied".to_string() } else { rc.join(", ") }
    ));
    report.push_str(&format!(
        "  original   : {}  (rel <= {})  cost {}  ops {}\n",
        original.grade,
        sci(&original.relative),
        original.cost,
        original.ops
    ));
    report.push_str(&format!(
        "  optimized  : {}  (rel <= {})  cost {}  ops {}\n",
        best.grade,
        sci(&best.relative),
        best.cost,
        best.ops
    ));
    report.push_str(&if improved {
        format!(
            "  verdict    : improved — bound {} -> {}, cost {} -> {}\n",
            original.grade, best.grade, original.cost, best.cost
        )
    } else {
        "  verdict    : unchanged — no certified candidate beats the original\n".to_string()
    });
    if cfg.precision_search {
        report.push_str("  precision  : format    unit-roundoff  rel-bound  cost\n");
        for row in &precision {
            report.push_str(&format!(
                "               {:<9} {:<14} {:<10} {}{}\n",
                row.format,
                row.unit_roundoff.to_sci_string(3),
                sci(&row.relative),
                row.cost,
                if row.meets_target { "  (meets target)" } else { "" }
            ));
        }
        report.push_str(&match chosen_format {
            Some(f) => format!("  format     : {f} (cheapest meeting rel <= {})\n", {
                let target = cfg
                    .target_rel
                    .clone()
                    .or_else(|| original.relative.clone())
                    .unwrap_or_else(Rational::one);
                target.to_sci_string(3)
            }),
            None => "  format     : none meets the target\n".to_string(),
        });
    }
    report.push_str("--- program ---\n");
    report.push_str(&rewritten);

    Ok(OptimizeOutcome {
        name: principal.name,
        original,
        best,
        improved,
        evaluated,
        certified,
        rejected_check: rej_check,
        rejected_interval: rej_interval,
        rejected_oracle: rej_oracle,
        rule_counts,
        precision,
        chosen_format,
        report,
        rewritten,
    })
}
