/root/repo/target/debug/deps/table2-06697593cb73bc55.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-06697593cb73bc55: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
