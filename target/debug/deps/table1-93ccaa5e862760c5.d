/root/repo/target/debug/deps/table1-93ccaa5e862760c5.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-93ccaa5e862760c5: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
