//! Regenerates the paper's Table 2: the four rounding modes, their
//! behaviour (demonstrated on an unrepresentable value), and their unit
//! roundoffs.

use numfuzz_exact::Rational;
use numfuzz_softfloat::{Format, Fp, RoundingMode};

fn main() {
    println!("Table 2: Common rounding functions (modes)\n");
    let f = Format::BINARY64;
    let sample = Rational::from_decimal_str("0.1").expect("valid");
    println!("Demonstration on x = 0.1 (not representable in binary64):\n");
    println!(
        "{:<28} {:>8} {:>14} {:>24}",
        "Rounding mode", "notation", "unit roundoff", "round(0.1) - 0.1"
    );
    for mode in RoundingMode::ALL {
        let rounded = Fp::round(&sample, f, mode).to_rational().expect("finite");
        let delta = rounded.sub(&sample);
        println!(
            "{:<28} {:>8} {:>14} {:>24}",
            mode.name(),
            mode.notation(),
            f.unit_roundoff(mode).to_sci_string(3),
            delta.to_sci_string(3),
        );
    }
    println!("\nDefining properties (verified exhaustively in the test suite):");
    println!("  RU(x) = min {{ y in F | y >= x }}     RD(x) = max {{ y in F | y <= x }}");
    println!("  RZ(x) = RU(x) if x < 0 else RD(x)   RN(x) = nearest, ties to even");
}
