//! Translation from the straight-line IR into Λnum terms.
//!
//! This is the paper's "we translate a variety of floating-point
//! benchmarks into Λnum" (Section 6): every IR operation becomes the
//! corresponding primitive application followed by `rnd`, sequenced with
//! monadic binds — i.e. the `mulfp`/`addfp`/`sqrtfp` style of Fig. 7,
//! inlined. Constants stay exact real constants (`num` is the real
//! numbers; see DESIGN.md for the comparison conventions).
//!
//! Kernels with `Sub` cannot be translated: the RP instantiation has no
//! subtraction (Section 6.1 limitations).

use crate::ir::{Expr, Kernel};
use numfuzz_core::{CoreArena, Grade, TermId, TermStore, Ty, VarId};
use numfuzz_exact::Rational;

/// A kernel translated to an (open) Λnum term of type `M[...]num`.
#[derive(Debug)]
pub struct CoreKernel {
    /// The arena.
    pub store: TermStore,
    /// The root term.
    pub root: TermId,
    /// Free variables (kernel inputs, in order) with their types.
    pub free: Vec<(VarId, Ty)>,
}

/// Translation failure (subtraction, or an input index out of range).
#[derive(Clone, Debug, PartialEq)]
pub struct TranslateError(pub String);

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot translate to Λnum: {}", self.0)
    }
}

impl std::error::Error for TranslateError {}

/// Translates a kernel into an open Λnum term.
///
/// # Errors
///
/// [`TranslateError`] for `Sub` nodes (no RP subtraction) or bad input
/// indices.
pub fn kernel_to_core(kernel: &Kernel) -> Result<CoreKernel, TranslateError> {
    kernel_to_core_in(CoreArena::new(), kernel)
}

/// [`kernel_to_core`], emitting into a store that shares `tys` (one
/// analysis session's arena), so annotation ids and memoized lattice
/// queries are reused across a batch of kernels.
///
/// # Errors
///
/// See [`kernel_to_core`].
pub fn kernel_to_core_in(tys: CoreArena, kernel: &Kernel) -> Result<CoreKernel, TranslateError> {
    let mut store = TermStore::with_arena(tys);
    let free: Vec<(VarId, Ty)> =
        kernel.inputs.iter().map(|(name, _)| (store.fresh_var(name), Ty::Num)).collect();
    let mut tx = Translator { store, vars: free.iter().map(|(v, _)| *v).collect() };
    let root = tx.monadic(&kernel.expr)?;
    Ok(CoreKernel { store: tx.store, root, free })
}

struct Translator {
    store: TermStore,
    vars: Vec<VarId>,
}

impl Translator {
    /// Translates an expression to a monadic term (`M[...]num`): every IR
    /// operation is computed with the exact primitive and then rounded.
    fn monadic(&mut self, e: &Expr) -> Result<TermId, TranslateError> {
        match e {
            // Leaves incur no rounding: ret.
            Expr::Const(c) => {
                let k = self.store.num(c.clone());
                Ok(self.store.ret(k))
            }
            Expr::Var(i) => {
                let v = self.value_leaf(e)?;
                let _ = i;
                Ok(self.store.ret(v))
            }
            _ => self.bind_compound(e),
        }
    }

    fn value_leaf(&mut self, e: &Expr) -> Result<TermId, TranslateError> {
        match e {
            Expr::Const(c) => Ok(self.store.num(c.clone())),
            Expr::Var(i) => {
                let v = *self
                    .vars
                    .get(*i)
                    .ok_or_else(|| TranslateError(format!("input index {i} out of range")))?;
                Ok(self.store.var(v))
            }
            _ => unreachable!("only called on leaves"),
        }
    }

    /// Translates `op(a, b)` as
    /// `let x = ⟦a⟧; let y = ⟦b⟧; s = op (x,y); rnd s`
    /// (leaf operands are used in place without a bind).
    fn bind_compound(&mut self, e: &Expr) -> Result<TermId, TranslateError> {
        match e {
            Expr::Sub(..) => Err(TranslateError(
                "subtraction is not typable in the RP instantiation".to_string(),
            )),
            Expr::Add(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                let (op_name, with_pair) = match e {
                    Expr::Add(..) => ("add", true),
                    Expr::Mul(..) => ("mul", false),
                    _ => ("div", false),
                };
                // Innermost-first: operand computations happen before the
                // operation; binds nest outward.
                self.with_operand(a, |tx, va| {
                    tx.with_operand(b, |tx, vb| {
                        let pair = if with_pair {
                            tx.store.pair_with(va, vb)
                        } else {
                            tx.store.pair_tensor(va, vb)
                        };
                        let s = tx.store.fresh_var("s");
                        let op = tx.store.op(op_name, pair);
                        let sv = tx.store.var(s);
                        let rnd = tx.store.rnd(sv);
                        Ok(tx.store.let_in(s, op, rnd))
                    })
                })
            }
            Expr::Fma(a, b, c) => {
                // FMA: exact mul, exact add, one rounding (paper Fig. 8).
                self.with_operand(a, |tx, va| {
                    tx.with_operand(b, |tx, vb| {
                        tx.with_operand(c, |tx, vc| {
                            let m = tx.store.fresh_var("m");
                            let prod = tx.store.pair_tensor(va, vb);
                            let mul = tx.store.op("mul", prod);
                            let s = tx.store.fresh_var("s");
                            let mv = tx.store.var(m);
                            let sum_pair = tx.store.pair_with(mv, vc);
                            let add = tx.store.op("add", sum_pair);
                            let sv = tx.store.var(s);
                            let rnd = tx.store.rnd(sv);
                            let inner = tx.store.let_in(s, add, rnd);
                            Ok(tx.store.let_in(m, mul, inner))
                        })
                    })
                })
            }
            Expr::Sqrt(a) => self.with_operand(a, |tx, va| {
                let boxed = tx.store.box_intro(Grade::constant(Rational::ratio(1, 2)), va);
                let s = tx.store.fresh_var("s");
                let op = tx.store.op("sqrt", boxed);
                let sv = tx.store.var(s);
                let rnd = tx.store.rnd(sv);
                Ok(tx.store.let_in(s, op, rnd))
            }),
            Expr::Const(_) | Expr::Var(_) => self.monadic(e),
        }
    }

    /// Provides an operand as a *value* term: leaves directly, compound
    /// operands in the paper's explicit style
    /// `c = ⟦operand⟧; let x = c; …` — the plain `let` names the monadic
    /// computation so that `let-bind`'s scrutinee is a value, exactly as
    /// Fig. 1's grammar requires (and as Fig. 8's `MA` is written).
    fn with_operand(
        &mut self,
        e: &Expr,
        k: impl FnOnce(&mut Self, TermId) -> Result<TermId, TranslateError>,
    ) -> Result<TermId, TranslateError> {
        match e {
            Expr::Const(_) | Expr::Var(_) => {
                let v = self.value_leaf(e)?;
                k(self, v)
            }
            _ => {
                let computed = self.bind_compound(e)?;
                let c = self.store.fresh_var("c");
                let x = self.store.fresh_var("t");
                let xv = self.store.var(x);
                let body = k(self, xv)?;
                let cv = self.store.var(c);
                let bind = self.store.let_bind(x, cv, body);
                Ok(self.store.let_in(c, computed, bind))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfuzz_core::{infer, Signature};
    use numfuzz_exact::RatInterval;

    fn iv(lo: i64, hi: i64) -> RatInterval {
        RatInterval::new(Rational::from_int(lo), Rational::from_int(hi))
    }

    #[test]
    fn hypot_translates_to_2_5_eps() {
        let e = Expr::sqrt(Expr::add(
            Expr::mul(Expr::Var(0), Expr::Var(0)),
            Expr::mul(Expr::Var(1), Expr::Var(1)),
        ));
        let k = Kernel::new("hypot", vec![("x", iv(1, 1000)), ("y", iv(1, 1000))], e);
        let ck = kernel_to_core(&k).unwrap();
        assert!(ck.store.conforms_to_value_restriction(ck.root), "Fig. 1 syntax");
        let sig = Signature::relative_precision();
        let res = infer(&ck.store, &sig, ck.root, &ck.free).unwrap();
        assert_eq!(res.root.ty.to_string(), "M[5/2*eps]num");
        // The kernel is 1-sensitive in each input (x² halved by sqrt).
        for (v, _) in &ck.free {
            assert_eq!(res.root.env.get(*v).to_string(), "1");
        }
    }

    #[test]
    fn serial_sum_translates_linearly() {
        // ((x0+x1)+x2)+x3: 3 roundings, all at sensitivity 1 -> 3 eps.
        let e =
            Expr::add(Expr::add(Expr::add(Expr::Var(0), Expr::Var(1)), Expr::Var(2)), Expr::Var(3));
        let k = Kernel::new(
            "sum4",
            vec![("a", iv(1, 2)), ("b", iv(1, 2)), ("c", iv(1, 2)), ("d", iv(1, 2))],
            e,
        );
        let ck = kernel_to_core(&k).unwrap();
        let sig = Signature::relative_precision();
        let res = infer(&ck.store, &sig, ck.root, &ck.free).unwrap();
        assert_eq!(res.root.ty.to_string(), "M[3*eps]num");
    }

    #[test]
    fn fma_horner_rounds_once_per_step() {
        // Horner of degree 3 with FMAs: fma(fma(fma(a3,x,a2),x,a1),x,a0)
        // = 3 roundings -> 3*eps, even though op_count reports 6.
        let x = || Expr::Var(0);
        let mut acc = Expr::num("4");
        for c in ["3", "2", "1"] {
            acc = Expr::fma(acc, x(), Expr::num(c));
        }
        let k = Kernel::new("horner3", vec![("x", iv(1, 1000))], acc);
        assert_eq!(k.op_count(), 6);
        let ck = kernel_to_core(&k).unwrap();
        let sig = Signature::relative_precision();
        let res = infer(&ck.store, &sig, ck.root, &ck.free).unwrap();
        assert_eq!(res.root.ty.to_string(), "M[3*eps]num");
        // x appears once per FMA: 3-sensitive.
        assert_eq!(res.root.env.get(ck.free[0].0).to_string(), "3");
    }

    #[test]
    fn subtraction_is_rejected() {
        let e = Expr::sub(Expr::Var(0), Expr::Var(1));
        let k = Kernel::new("bad", vec![("a", iv(1, 2)), ("b", iv(1, 2))], e);
        assert!(kernel_to_core(&k).is_err());
    }

    #[test]
    fn translated_term_is_well_shaped() {
        // div(x, add(x, y)) — the x_by_xy kernel: 2 eps.
        let e = Expr::div(Expr::Var(0), Expr::add(Expr::Var(0), Expr::Var(1)));
        let k = Kernel::new("x_by_xy", vec![("x", iv(1, 1000)), ("y", iv(1, 1000))], e);
        let ck = kernel_to_core(&k).unwrap();
        let sig = Signature::relative_precision();
        let res = infer(&ck.store, &sig, ck.root, &ck.free).unwrap();
        assert_eq!(res.root.ty.to_string(), "M[2*eps]num");
        // x is used twice: once exactly, once through the rounded sum.
        let x = ck.free[0].0;
        assert_eq!(res.root.env.get(x).to_string(), "2");
    }
}
