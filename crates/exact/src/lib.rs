//! # numfuzz-exact
//!
//! Exact arithmetic substrate for the `numfuzz` workspace (a reproduction of
//! *Numerical Fuzz: A Type System for Rounding Error Analysis*, PLDI 2024):
//!
//! * [`BigUint`] / [`BigInt`] — arbitrary-precision integers built from
//!   scratch on `u32` limbs (schoolbook multiplication, Knuth division,
//!   binary GCD, integer square root);
//! * [`Rational`] — normalized exact rationals, the number type used for
//!   grades, floating-point values and interval endpoints everywhere else;
//! * [`RatInterval`] — closed rational intervals (exact for `+ - ×`,
//!   outward-rounded only for `sqrt`);
//! * [`funcs`] — rigorous enclosures of `sqrt`, `exp` and `ln`, used to
//!   decide relative-precision (RP) comparisons soundly.
//!
//! ```
//! use numfuzz_exact::{Rational, funcs::exp_enclosure};
//!
//! // Is RP distance |ln(x/y)| <= 2^-52?  Decide it exactly:
//! let ratio = Rational::ratio(4503599627370497, 4503599627370496); // x/y
//! let bound = exp_enclosure(&Rational::pow2(-52), 80);
//! assert!(ratio <= *bound.lo()); // definitely within the bound
//! ```

#![forbid(unsafe_code)]
// Inherent `add`/`sub`/`mul`/`div` take references (no clones in hot paths); the std operator traits are also provided and forward to them.
#![allow(clippy::should_implement_trait)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
pub mod funcs;
mod interval;
mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::{BigUint, ParseBigUintError};
pub use interval::RatInterval;
pub use rational::{ParseRationalError, Rational};
