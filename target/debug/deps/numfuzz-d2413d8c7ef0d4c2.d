/root/repo/target/debug/deps/numfuzz-d2413d8c7ef0d4c2.d: src/lib.rs src/analyzer.rs src/compat.rs src/diag.rs src/program.rs Cargo.toml

/root/repo/target/debug/deps/libnumfuzz-d2413d8c7ef0d4c2.rmeta: src/lib.rs src/analyzer.rs src/compat.rs src/diag.rs src/program.rs Cargo.toml

src/lib.rs:
src/analyzer.rs:
src/compat.rs:
src/diag.rs:
src/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
