/root/repo/target/debug/deps/numfuzz_core-5911b6475cd62777.d: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/env.rs crates/core/src/grade.rs crates/core/src/lexer.rs crates/core/src/lower.rs crates/core/src/parser.rs crates/core/src/pretty.rs crates/core/src/sig.rs crates/core/src/term.rs crates/core/src/ty.rs crates/core/src/validate.rs

/root/repo/target/debug/deps/numfuzz_core-5911b6475cd62777: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/env.rs crates/core/src/grade.rs crates/core/src/lexer.rs crates/core/src/lower.rs crates/core/src/parser.rs crates/core/src/pretty.rs crates/core/src/sig.rs crates/core/src/term.rs crates/core/src/ty.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/check.rs:
crates/core/src/env.rs:
crates/core/src/grade.rs:
crates/core/src/lexer.rs:
crates/core/src/lower.rs:
crates/core/src/parser.rs:
crates/core/src/pretty.rs:
crates/core/src/sig.rs:
crates/core/src/term.rs:
crates/core/src/ty.rs:
crates/core/src/validate.rs:
