//! # numfuzz
//!
//! A Rust reproduction of **Numerical Fuzz: A Type System for Rounding
//! Error Analysis** (Kellison & Hsu, PLDI 2024): the Λnum language — a
//! linear λ-calculus whose type system combines a Fuzz-style sensitivity
//! analysis with a graded monad `M[u]τ` tracking worst-case rounding
//! error — together with every substrate its evaluation depends on.
//!
//! This crate is the facade: the [`Program`]/[`Analyzer`] session API,
//! the content-addressed [`AnalysisCache`], the resident analysis
//! service ([`serve`], surfaced as `numfuzz serve`), the `numfuzz` CLI,
//! the runnable examples, and the repo-level integration tests. The
//! workspace crates remain available under their module names:
//!
//! | module | contents |
//! |---|---|
//! | [`exact`] | arbitrary-precision integers/rationals, intervals, enclosures |
//! | [`softfloat`] | parameterized IEEE 754 binary formats and rounding (Tables 1–2) |
//! | [`metrics`] | relative precision (Olver), relative/absolute/ULP error |
//! | [`core`] | Λnum: grades, types, terms, inference (Figs. 1–2, 10–12), surface syntax (Figs. 7–9) |
//! | [`interp`] | ideal/FP semantics, §7 rounding extensions, error-soundness validation |
//! | [`analyzers`] | interval & Taylor-form baselines, textbook bounds, IR→Λnum translation |
//! | [`benchsuite`] | the Table 3/4/5 workloads |
//! | [`fuzz`] | the soundness fuzzer: typed program generator, shrinker, campaign driver (oracle: [`fuzzing`]) |
//!
//! ## Quickstart
//!
//! A [`Program`] is parsed once; an [`Analyzer`] is a configured session
//! (signature, format, rounding mode) reused across programs:
//!
//! ```
//! use numfuzz::prelude::*;
//!
//! // 1. Parse a Λnum program (the paper's Fig. 7/8 style).
//! let program = Program::parse(r#"
//!     function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
//!     function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
//!     function MA (x: num) (y: num) (z: num) : M[2*eps]num {
//!         s = mulfp (x,y);
//!         let a = s;
//!         addfp (|a,z|)
//!     }
//!     MA 0.1 0.3 7
//! "#)?;
//!
//! // 2. One type-checking pass: the grade on the monad is a sound
//! //    roundoff bound, and eq. (8) turns it into a relative error.
//! let analyzer = Analyzer::builder()
//!     .signature(Instantiation::RelativePrecision)
//!     .format(Format::BINARY64)
//!     .mode(RoundingMode::TowardPositive)
//!     .build();
//! let typed = analyzer.check(&program)?;
//! assert_eq!(typed.ty().to_string(), "M[2*eps]num");
//! let bound = analyzer.bound(&typed)?;
//! assert_eq!(bound.relative.unwrap().to_sci_string(3), "4.44e-16"); // the paper's Table 3 value
//!
//! // 3. Run both semantics and verify the bound rigorously (Cor. 4.20).
//! let report = analyzer.validate(&program, &Inputs::none())?;
//! assert!(report.holds());
//! # Ok::<(), numfuzz::Diagnostic>(())
//! ```
//!
//! Every failure mode — parse error, scope error, grade mismatch, bad
//! input, evaluation fault — is a structured [`Diagnostic`] with a stable
//! [`ErrorCode`] and, for programs parsed from text, a `file:line:col`
//! span.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod diag;
pub mod fuzzing;
pub mod loadgen;
pub mod optimize;
mod program;
pub mod serve;

pub use analyzer::{
    AnalysisCache, Analyzer, AnalyzerBuilder, BackwardBound, BackwardTyped, ErrorBound, Execution,
    FnBackwardBound, InputBackwardBound, Inputs, JudgmentMemo, ShardReport, Typed,
};
pub use diag::{Diagnostic, ErrorCode, Span};
pub use numfuzz_core::cache::CacheStats;
pub use numfuzz_core::JudgmentCounts;
pub use program::Program;

pub use numfuzz_analyzers as analyzers;
pub use numfuzz_benchsuite as benchsuite;
pub use numfuzz_bounds as bounds;
pub use numfuzz_core as core;
pub use numfuzz_exact as exact;
pub use numfuzz_fuzz as fuzz;
pub use numfuzz_interp as interp;
pub use numfuzz_metrics as metrics;
pub use numfuzz_softfloat as softfloat;

/// The names most programs need, in one import.
pub mod prelude {
    pub use crate::analyzer::{
        AnalysisCache, Analyzer, AnalyzerBuilder, BackwardBound, BackwardTyped, ErrorBound,
        Execution, FnBackwardBound, InputBackwardBound, Inputs, JudgmentMemo, ShardReport, Typed,
    };
    pub use crate::diag::{Diagnostic, ErrorCode, Span};
    pub use crate::program::Program;
    pub use numfuzz_bounds::{BoundError, IntervalBound};
    pub use numfuzz_core::cache::CacheStats;
    pub use numfuzz_core::{Grade, Instantiation, JudgmentCounts, Signature, Ty};
    pub use numfuzz_exact::{RatInterval, Rational};
    pub use numfuzz_interp::{SoundnessReport, Value};
    pub use numfuzz_metrics::{NumMetric, Within};
    pub use numfuzz_softfloat::{Format, Fp, RoundingMode};
}
