/root/repo/target/release/deps/numfuzz_softfloat-8d769f3c6ac1e313.d: crates/softfloat/src/lib.rs crates/softfloat/src/arith.rs crates/softfloat/src/format.rs crates/softfloat/src/round.rs crates/softfloat/src/value.rs

/root/repo/target/release/deps/libnumfuzz_softfloat-8d769f3c6ac1e313.rlib: crates/softfloat/src/lib.rs crates/softfloat/src/arith.rs crates/softfloat/src/format.rs crates/softfloat/src/round.rs crates/softfloat/src/value.rs

/root/repo/target/release/deps/libnumfuzz_softfloat-8d769f3c6ac1e313.rmeta: crates/softfloat/src/lib.rs crates/softfloat/src/arith.rs crates/softfloat/src/format.rs crates/softfloat/src/round.rs crates/softfloat/src/value.rs

crates/softfloat/src/lib.rs:
crates/softfloat/src/arith.rs:
crates/softfloat/src/format.rs:
crates/softfloat/src/round.rs:
crates/softfloat/src/value.rs:
