/root/repo/target/release/deps/numfuzz_exact-e639b35ffa764986.d: crates/exact/src/lib.rs crates/exact/src/bigint.rs crates/exact/src/biguint.rs crates/exact/src/funcs.rs crates/exact/src/interval.rs crates/exact/src/rational.rs

/root/repo/target/release/deps/libnumfuzz_exact-e639b35ffa764986.rlib: crates/exact/src/lib.rs crates/exact/src/bigint.rs crates/exact/src/biguint.rs crates/exact/src/funcs.rs crates/exact/src/interval.rs crates/exact/src/rational.rs

/root/repo/target/release/deps/libnumfuzz_exact-e639b35ffa764986.rmeta: crates/exact/src/lib.rs crates/exact/src/bigint.rs crates/exact/src/biguint.rs crates/exact/src/funcs.rs crates/exact/src/interval.rs crates/exact/src/rational.rs

crates/exact/src/lib.rs:
crates/exact/src/bigint.rs:
crates/exact/src/biguint.rs:
crates/exact/src/funcs.rs:
crates/exact/src/interval.rs:
crates/exact/src/rational.rs:
