/root/repo/target/release/deps/numfuzz_bench-9c9fa986e6eb4d1f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnumfuzz_bench-9c9fa986e6eb4d1f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnumfuzz_bench-9c9fa986e6eb4d1f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
