//! Contract tests for the `numfuzz fuzz` subsystem: per-seed
//! determinism across job counts, genuine feature coverage, a clean run
//! on the CI seed, and — via deliberately broken oracles — proof that
//! the counterexample/shrinking machinery actually catches failures
//! (mutation smoke).

use numfuzz::fuzz::{
    generate_case, run, CaseFailure, CasePass, CasePlan, FailureKind, FuzzConfig, Oracle,
};
use numfuzz::fuzzing::AnalyzerOracle;
use numfuzz::prelude::*;
use std::process::Command;

fn cfg(cases: usize, seed: u64, jobs: usize) -> FuzzConfig {
    FuzzConfig { cases, seed, jobs, shrink_budget: 300, backward: false, incremental: false }
}

fn counter(report: &str, key: &str) -> usize {
    report
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("report lacks `{key}=`:\n{report}"))
        .parse()
        .expect("numeric counter")
}

#[test]
fn fixed_seed_run_is_clean_and_covers_the_surface() {
    let outcome = run(&cfg(200, 42, 2), &AnalyzerOracle);
    assert!(outcome.ok(), "counterexamples on the CI seed:\n{}", outcome.report);
    let report = &outcome.report;

    // Both instantiations, both real formats, and at least two modes
    // must be exercised (acceptance criteria of the fuzzer).
    let count = |key: &str| -> usize {
        report
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("report lacks `{key}=`:\n{report}"))
            .parse()
            .expect("numeric counter")
    };
    assert!(count("rp") > 0 && count("abs") > 0, "{report}");
    assert!(count("binary64") > 0 && count("binary32") > 0, "{report}");
    let modes_hit = ["ru", "rd", "rz", "rn"].iter().filter(|m| count(m) > 0).count();
    assert!(modes_hit >= 2, "{report}");

    // The full surface: conditionals, both pair metrics, sums, case,
    // let-functions, boxes, monadic nesting, signed/zero constants.
    for feature in [
        "functions",
        "conditionals",
        "case-sum",
        "tensor-pairs",
        "cartesian-pairs",
        "sums",
        "boxes",
        "sqrt",
        "div",
        "sub-or-neg",
        "negative-consts",
        "zero-consts",
        "rnd",
        "ret",
        "bind",
        "stored-monad",
        "calls",
        "comparisons",
    ] {
        assert!(count(feature) > 0, "feature `{feature}` never generated:\n{report}");
    }
}

#[test]
fn backward_campaign_is_clean_and_actually_exercises_the_lens() {
    let outcome = run(&FuzzConfig { backward: true, ..cfg(200, 42, 2) }, &AnalyzerOracle);
    assert!(outcome.ok(), "backward counterexamples on the CI seed:\n{}", outcome.report);
    let report = &outcome.report;
    assert!(report.contains("backward: "), "{report}");

    // The campaign must not be vacuous: some whole programs accepted,
    // plenty rejected by strict linearity, and — the differential teeth —
    // functions certified by the backward-stability lens on real grid
    // points.
    assert!(counter(report, "accepted") >= 1, "{report}");
    assert!(counter(report, "rejected") >= 100, "{report}");
    assert!(counter(report, "validated-fns") >= 1, "{report}");
    assert!(counter(report, "skipped-fns") >= 1, "{report}");
    assert!(counter(report, "grid-points") >= 4, "{report}");

    // Forward campaigns are byte-for-byte unaffected by the new mode:
    // no backward line, and the forward report on the same seed is
    // reproduced verbatim inside the backward one minus that line.
    let forward = run(&cfg(200, 42, 2), &AnalyzerOracle);
    assert!(!forward.report.contains("backward: "), "{}", forward.report);
    let stripped: String =
        report.lines().filter(|l| !l.starts_with("backward: ")).map(|l| format!("{l}\n")).collect();
    assert_eq!(stripped, forward.report, "backward mode perturbed the forward facts");
}

#[test]
fn backward_report_is_byte_identical_across_jobs() {
    let base = run(&FuzzConfig { backward: true, ..cfg(80, 7, 1) }, &AnalyzerOracle);
    for jobs in [2, 4] {
        let other = run(&FuzzConfig { backward: true, ..cfg(80, 7, jobs) }, &AnalyzerOracle);
        assert_eq!(base.report, other.report, "jobs={jobs}");
    }
}

#[test]
fn report_is_byte_identical_across_jobs_and_runs() {
    let base = run(&cfg(120, 9001, 1), &AnalyzerOracle);
    for jobs in [2, 4] {
        let other = run(&cfg(120, 9001, jobs), &AnalyzerOracle);
        assert_eq!(base.report, other.report, "jobs={jobs}");
    }
    let again = run(&cfg(120, 9001, 1), &AnalyzerOracle);
    assert_eq!(base.report, again.report, "repeated run drifted");
}

#[test]
fn different_seeds_generate_different_corpora() {
    let a = generate_case(1, 0).program.render();
    let b = generate_case(2, 0).program.render();
    assert_ne!(a, b, "seed does not influence generation");
    // And the same seed reproduces byte-identical programs.
    assert_eq!(a, generate_case(1, 0).program.render());
}

/// An oracle broken on purpose: every program that mentions `sqrt` is
/// reported as a bound violation. The driver must (a) surface the
/// counterexample, (b) shrink it while keeping the defining feature,
/// and (c) emit a reproducer that still parses and checks.
struct SqrtHater;

impl Oracle for SqrtHater {
    fn run_case(
        &self,
        plan: &CasePlan,
        src: &str,
        expected: Option<&Rational>,
    ) -> Result<CasePass, CaseFailure> {
        // Run the real oracle first, then lie about sqrt-bearing
        // programs — modelling a genuine validator bug on well-typed
        // programs (so shrinking, which preserves the failure kind,
        // also preserves well-typedness).
        let pass = AnalyzerOracle.run_case(plan, src, expected)?;
        if src.contains("sqrt") {
            return Err(CaseFailure {
                kind: FailureKind::BoundViolation,
                detail: "injected failure: program uses sqrt".into(),
            });
        }
        Ok(pass)
    }
}

#[test]
fn broken_oracle_is_caught_and_counterexamples_shrink() {
    let outcome = run(&cfg(60, 42, 2), &SqrtHater);
    assert!(
        !outcome.ok(),
        "a broken oracle produced a clean run — the fuzzer cannot catch anything:\n{}",
        outcome.report
    );
    for cx in &outcome.counterexamples {
        assert_eq!(cx.failure.kind, FailureKind::BoundViolation);
        assert!(cx.shrunk.contains("sqrt"), "shrinking lost the failure trigger:\n{}", cx.shrunk);
        assert!(
            cx.shrunk.len() <= cx.original.len(),
            "shrinking grew the program:\n{}\nvs\n{}",
            cx.shrunk,
            cx.original
        );
        // The reproducer is a self-contained, well-typed .nf program
        // (sqrt only exists in the RP signature, so the default session
        // applies).
        let program = Program::parse(&cx.shrunk)
            .unwrap_or_else(|d| panic!("reproducer does not parse: {}\n{}", d.render(), cx.shrunk));
        Analyzer::new()
            .check(&program)
            .unwrap_or_else(|d| panic!("reproducer does not check: {}\n{}", d.render(), cx.shrunk));
    }
    // Shrinking should reach a genuinely small witness: the minimal
    // sqrt-bearing program is a handful of lines.
    let smallest = outcome
        .counterexamples
        .iter()
        .map(|cx| cx.shrunk.lines().count())
        .min()
        .expect("at least one counterexample");
    assert!(smallest <= 4, "greedy shrinking stalled (smallest witness: {smallest} lines)");
}

/// A second mutation: an oracle that never fails must yield a clean run
/// with zero counterexamples — and one that always fails must flag every
/// case (the driver neither invents nor swallows failures).
struct AlwaysFail;

impl Oracle for AlwaysFail {
    fn run_case(
        &self,
        _plan: &CasePlan,
        _src: &str,
        _expected: Option<&Rational>,
    ) -> Result<CasePass, CaseFailure> {
        Err(CaseFailure { kind: FailureKind::Check, detail: "injected".into() })
    }
}

#[test]
fn driver_neither_invents_nor_swallows_failures() {
    let bad = run(&cfg(10, 5, 1), &AlwaysFail);
    assert_eq!(bad.counterexamples.len(), 10);
    assert!(bad.report.contains("failed=10"), "{}", bad.report);
}

fn numfuzz_bin(args: &[&str], dir: &std::path::Path) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_numfuzz"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("numfuzz binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn cli_fuzz_is_deterministic_and_exits_zero() {
    let dir = std::env::temp_dir().join(format!("numfuzz-fuzz-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let (first, stderr, code) = numfuzz_bin(&["fuzz", "--cases", "40", "--seed", "1"], &dir);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(first.starts_with("numfuzz fuzz: cases=40 seed=1"), "{first}");
    assert!(first.contains("counterexamples: 0"), "{first}");
    for jobs in ["2", "3"] {
        let (out, _, code) =
            numfuzz_bin(&["fuzz", "--cases", "40", "--seed", "1", "--jobs", jobs], &dir);
        assert_eq!(code, Some(0));
        assert_eq!(out, first, "jobs={jobs} changed the report");
    }
    std::fs::remove_dir_all(&dir).ok();
}
