//! Lowering from the surface syntax to arena terms.
//!
//! Two things happen here:
//!
//! 1. **ANF-ization.** Fig. 1 restricts constructors and eliminators to
//!    *value* operands; the surface syntax is free-form, so non-value
//!    operands are let-bound (`addfp (mul (x,y), z)` becomes
//!    `let t = mul (x,y) in addfp (t, z)` — exactly the explicit
//!    sequencing style of the paper's examples).
//! 2. **Scope resolution.** Names are resolved to fresh [`VarId`]s
//!    (alpha-renaming); unbound names that match signature operations
//!    become [`Node::Op`](crate::Node::Op) applications, with automatic boxing of the
//!    argument when the operation's domain is a `!`-type (so `sqrt x`
//!    elaborates to `sqrt ([x]{1/2})`).

use crate::grade::Grade;
use crate::lexer::SyntaxError;
use crate::parser::{SExpr, SProgram};
use crate::sig::Signature;
use crate::term::{TermId, TermStore, VarId};
use crate::ty::Ty;
use std::collections::HashMap;
use std::collections::HashSet;

/// A lowered program: the arena plus the root term.
#[derive(Clone, Debug)]
pub struct Lowered {
    /// The term arena.
    pub store: TermStore,
    /// The root term (function definitions nested as `LetFun`s; the final
    /// body is the main expression, or the last function's variable).
    pub root: TermId,
}

/// Lowers a parsed program against a signature.
///
/// # Errors
///
/// [`SyntaxError`] (without position) for unbound names or misused
/// operations.
pub fn lower_program(prog: &SProgram, sig: &Signature) -> Result<Lowered, SyntaxError> {
    lower_program_in(crate::arena::CoreArena::new(), prog, sig)
}

/// [`lower_program`] into a store sharing an existing type/grade arena,
/// so a session's programs interchange annotation ids and reuse the
/// memoized lattice caches.
///
/// # Errors
///
/// See [`lower_program`].
pub fn lower_program_in(
    arena: crate::arena::CoreArena,
    prog: &SProgram,
    sig: &Signature,
) -> Result<Lowered, SyntaxError> {
    let mut taken_temps = HashSet::new();
    for def in &prog.defs {
        note_templike(&def.name, &mut taken_temps);
        for (p, _) in &def.params {
            note_templike(p, &mut taken_temps);
        }
        collect_templike_binders(&def.body, &mut taken_temps);
    }
    if let Some(main) = &prog.main {
        collect_templike_binders(main, &mut taken_temps);
    }
    let mut cx = Lowerer {
        store: TermStore::with_arena(arena),
        sig,
        scope: HashMap::new(),
        taken_temps,
        next_temp: 0,
    };
    let root = cx.program(prog)?;
    Ok(Lowered { store: cx.store, root })
}

/// Lowers a single expression with the given free variables in scope.
///
/// # Errors
///
/// [`SyntaxError`] for unbound names or misused operations.
pub fn lower_expr_with(
    expr: &SExpr,
    sig: &Signature,
    free: &[(String, Ty)],
) -> Result<(Lowered, Vec<(VarId, Ty)>), SyntaxError> {
    let mut taken_temps = HashSet::new();
    collect_templike_binders(expr, &mut taken_temps);
    for (name, _) in free {
        note_templike(name, &mut taken_temps);
    }
    let mut cx =
        Lowerer { store: TermStore::new(), sig, scope: HashMap::new(), taken_temps, next_temp: 0 };
    let mut frees = Vec::new();
    for (name, ty) in free {
        let v = cx.store.fresh_var(name);
        cx.scope.insert(name.clone(), vec![v]);
        frees.push((v, ty.clone()));
    }
    let root = cx.expr(expr)?;
    Ok((Lowered { store: cx.store, root }, frees))
}

struct Lowerer<'a> {
    store: TermStore,
    sig: &'a Signature,
    /// Name -> stack of bindings (innermost last), for shadowing.
    scope: HashMap<String, Vec<VarId>>,
    /// Source binder names shaped like generated temps (`_t<digits>`),
    /// which [`Lowerer::fresh_temp`] must avoid so pretty-printed
    /// programs re-parse without accidental capture.
    taken_temps: HashSet<String>,
    /// Next candidate index for a generated temp name.
    next_temp: usize,
}

/// Whether a source identifier is shaped like a generated temp name.
fn is_templike(name: &str) -> bool {
    name.strip_prefix("_t")
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

fn note_templike(name: &str, out: &mut HashSet<String>) {
    if is_templike(name) {
        out.insert(name.to_string());
    }
}

/// Collects every binder name shaped like a generated temp, iteratively
/// (statement chains are tens of thousands of nodes deep).
fn collect_templike_binders(root: &SExpr, out: &mut HashSet<String>) {
    let mut stack = vec![root];
    while let Some(e) = stack.pop() {
        match e {
            SExpr::Num(_) | SExpr::Var(_) | SExpr::True | SExpr::False | SExpr::Unit => {}
            SExpr::PairT(a, b) | SExpr::PairW(a, b) | SExpr::App(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            SExpr::Inl(_, v)
            | SExpr::Inr(_, v)
            | SExpr::Rnd(v)
            | SExpr::Ret(v)
            | SExpr::BoxI(_, v)
            | SExpr::Fst(v)
            | SExpr::Snd(v) => stack.push(v),
            SExpr::If(c, a, b) => {
                stack.push(c);
                stack.push(a);
                stack.push(b);
            }
            SExpr::Case(v, x, e1, y, e2) => {
                note_templike(x, out);
                note_templike(y, out);
                stack.push(v);
                stack.push(e1);
                stack.push(e2);
            }
            SExpr::Let(x, a, b) | SExpr::LetBind(x, a, b) | SExpr::LetBox(x, a, b) => {
                note_templike(x, out);
                stack.push(a);
                stack.push(b);
            }
        }
    }
}

impl<'a> Lowerer<'a> {
    fn err<T>(msg: impl Into<String>) -> Result<T, SyntaxError> {
        Err(SyntaxError::new(msg, 0, 0))
    }

    fn bind(&mut self, name: &str) -> VarId {
        let v = self.store.fresh_var(name);
        self.scope.entry(name.to_string()).or_default().push(v);
        v
    }

    fn unbind(&mut self, name: &str) {
        if let Some(stack) = self.scope.get_mut(name) {
            stack.pop();
        }
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        self.scope.get(name).and_then(|s| s.last().copied())
    }

    fn program(&mut self, prog: &SProgram) -> Result<TermId, SyntaxError> {
        self.defs_then(&prog.defs, prog.main.as_ref())
    }

    fn defs_then(
        &mut self,
        defs: &[crate::parser::SFnDef],
        main: Option<&SExpr>,
    ) -> Result<TermId, SyntaxError> {
        match defs.split_first() {
            None => match main {
                Some(e) => self.expr(e),
                None => Self::err("program has no definitions or main expression"),
            },
            Some((def, rest)) => {
                // Body: curried lambdas over the params.
                let mut param_vars = Vec::new();
                for (p, t) in &def.params {
                    param_vars.push((self.bind(p), t.clone()));
                }
                let mut body = self.expr(&def.body)?;
                for (v, t) in param_vars.iter().rev() {
                    body = self.store.lam(*v, t.clone(), body);
                }
                for (p, _) in &def.params {
                    self.unbind(p);
                }
                // Declared type: params chained onto the result type.
                let mut declared = def.ret.clone();
                for (_, t) in def.params.iter().rev() {
                    declared = Ty::lolli(t.clone(), declared);
                }
                let fvar = self.bind(&def.name);
                let rest_term = if rest.is_empty() && main.is_none() {
                    // No main: the program's value is the last function.
                    self.store.var(fvar)
                } else {
                    self.defs_then(rest, main)?
                };
                self.unbind(&def.name);
                Ok(self.store.let_fun(fvar, Some(declared), body, rest_term))
            }
        }
    }

    /// Lowers to a term (any shape). Statement chains are handled in a
    /// loop (not recursion): Table 4-scale blocks have hundreds of
    /// thousands of sequential statements.
    fn expr(&mut self, e: &SExpr) -> Result<TermId, SyntaxError> {
        match e {
            SExpr::Let(..) | SExpr::LetBind(..) | SExpr::LetBox(..) => {
                enum Kind {
                    Let,
                    Bind,
                    Boxed,
                }
                type Frame = (Kind, String, VarId, TermId, Vec<(VarId, TermId)>);
                let mut frames: Vec<Frame> = Vec::new();
                let mut cur = e;
                loop {
                    match cur {
                        SExpr::Let(x, v, rest) => {
                            let tv = self.expr(v)?;
                            let xv = self.bind(x);
                            frames.push((Kind::Let, x.clone(), xv, tv, Vec::new()));
                            cur = rest;
                        }
                        SExpr::LetBind(x, v, rest) => {
                            let mut binds = Vec::new();
                            let tv = self.value(v, &mut binds)?;
                            let xv = self.bind(x);
                            frames.push((Kind::Bind, x.clone(), xv, tv, binds));
                            cur = rest;
                        }
                        SExpr::LetBox(x, v, rest) => {
                            let mut binds = Vec::new();
                            let tv = self.value(v, &mut binds)?;
                            let xv = self.bind(x);
                            frames.push((Kind::Boxed, x.clone(), xv, tv, binds));
                            cur = rest;
                        }
                        _ => break,
                    }
                }
                let mut acc = self.expr(cur)?;
                for (kind, name, xv, tv, binds) in frames.into_iter().rev() {
                    self.unbind(&name);
                    acc = match kind {
                        Kind::Let => self.store.let_in(xv, tv, acc),
                        Kind::Bind => self.store.let_bind(xv, tv, acc),
                        Kind::Boxed => self.store.let_box(xv, tv, acc),
                    };
                    acc = self.wrap(binds, acc);
                }
                Ok(acc)
            }
            SExpr::If(c, e1, e2) => {
                let mut binds = Vec::new();
                let tc = self.value(c, &mut binds)?;
                let x = self.store.fresh_var("_tt");
                let y = self.store.fresh_var("_ff");
                let t1 = self.expr(e1)?;
                let t2 = self.expr(e2)?;
                let node = self.store.case(tc, x, t1, y, t2);
                Ok(self.wrap(binds, node))
            }
            SExpr::Case(v, x, e1, y, e2) => {
                let mut binds = Vec::new();
                let tv = self.value(v, &mut binds)?;
                let xv = self.bind(x);
                let t1 = self.expr(e1)?;
                self.unbind(x);
                let yv = self.bind(y);
                let t2 = self.expr(e2)?;
                self.unbind(y);
                let node = self.store.case(tv, xv, t1, yv, t2);
                Ok(self.wrap(binds, node))
            }
            SExpr::App(f, a) => {
                // Operation application: unbound head that names an op.
                // (Implicit boxing of `!`-typed operation domains happens in
                // the checker, which knows the argument's type.)
                if let SExpr::Var(name) = &**f {
                    if self.lookup(name).is_none() {
                        if let Some(op) = self.sig.op(name) {
                            let op_name = op.name.clone();
                            let mut binds = Vec::new();
                            let ta = self.value(a, &mut binds)?;
                            let node = self.store.op(&op_name, ta);
                            return Ok(self.wrap(binds, node));
                        }
                    }
                }
                let mut binds = Vec::new();
                let tf = self.value(f, &mut binds)?;
                let ta = self.value(a, &mut binds)?;
                let node = self.store.app(tf, ta);
                Ok(self.wrap(binds, node))
            }
            SExpr::Fst(v) | SExpr::Snd(v) => {
                let mut binds = Vec::new();
                let tv = self.value(v, &mut binds)?;
                let node = self.store.proj(matches!(e, SExpr::Fst(_)), tv);
                Ok(self.wrap(binds, node))
            }
            // Value shapes: lower through `value` (which may emit lets).
            _ => {
                let mut binds = Vec::new();
                let v = self.value(e, &mut binds)?;
                Ok(self.wrap(binds, v))
            }
        }
    }

    /// Lowers to a *value* term, pushing any needed let-bindings.
    fn value(
        &mut self,
        e: &SExpr,
        binds: &mut Vec<(VarId, TermId)>,
    ) -> Result<TermId, SyntaxError> {
        let t = match e {
            SExpr::Num(q) => self.store.num(q.clone()),
            SExpr::Var(name) => match self.lookup(name) {
                Some(v) => self.store.var(v),
                None => {
                    if self.sig.op(name).is_some() {
                        return Self::err(format!(
                            "operation `{name}` must be applied to an argument"
                        ));
                    }
                    return Self::err(format!("unbound name `{name}`"));
                }
            },
            SExpr::True => self.store.bool_true(),
            SExpr::False => self.store.bool_false(),
            SExpr::Unit => self.store.unit(),
            SExpr::PairT(a, b) => {
                let ta = self.value(a, binds)?;
                let tb = self.value(b, binds)?;
                self.store.pair_tensor(ta, tb)
            }
            SExpr::PairW(a, b) => {
                let ta = self.value(a, binds)?;
                let tb = self.value(b, binds)?;
                self.store.pair_with(ta, tb)
            }
            SExpr::Inl(ann, v) => {
                let tv = self.value(v, binds)?;
                let other = ann.clone().ok_or_else(|| {
                    SyntaxError::new("`inl` needs a type annotation: inl {T} v", 0, 0)
                })?;
                self.store.inl(tv, other)
            }
            SExpr::Inr(ann, v) => {
                let tv = self.value(v, binds)?;
                let other = ann.clone().ok_or_else(|| {
                    SyntaxError::new("`inr` needs a type annotation: inr {T} v", 0, 0)
                })?;
                self.store.inr(tv, other)
            }
            SExpr::Rnd(v) => {
                let tv = self.value(v, binds)?;
                self.store.rnd(tv)
            }
            SExpr::Ret(v) => {
                let tv = self.value(v, binds)?;
                self.store.ret(tv)
            }
            SExpr::BoxI(g, v) => {
                let tv = self.value(v, binds)?;
                self.store.box_intro(g.clone(), tv)
            }
            // Not value-shaped: lower as a term and let-bind it. Temps
            // get unique *names* (not just unique ids), distinct from
            // every source binder shaped like `_t<digits>`, so
            // pretty-printed programs re-parse without accidental
            // shadowing.
            _ => {
                let t = self.expr(e)?;
                let v = self.fresh_temp();
                binds.push((v, t));
                return Ok(self.store.var(v));
            }
        };
        Ok(t)
    }

    /// A fresh ANF temporary whose display name collides with neither
    /// earlier temps nor any `_t<digits>`-shaped source binder.
    fn fresh_temp(&mut self) -> VarId {
        loop {
            let name = format!("_t{}", self.next_temp);
            self.next_temp += 1;
            if !self.taken_temps.contains(&name) {
                return self.store.fresh_var(&name);
            }
        }
    }

    /// Wraps pending bindings (innermost last) around a node.
    fn wrap(&mut self, binds: Vec<(VarId, TermId)>, node: TermId) -> TermId {
        let mut acc = node;
        for (v, t) in binds.into_iter().rev() {
            acc = self.store.let_in(v, t, acc);
        }
        acc
    }
}

/// Convenience: parse and lower a program in one call.
///
/// # Errors
///
/// [`SyntaxError`] from parsing or lowering.
pub fn compile(src: &str, sig: &Signature) -> Result<Lowered, SyntaxError> {
    let prog = crate::parser::parse_program(src)?;
    lower_program(&prog, sig)
}

/// [`compile`] into a shared arena (see [`lower_program_in`]).
///
/// # Errors
///
/// [`SyntaxError`] from parsing or lowering.
pub fn compile_in(
    arena: crate::arena::CoreArena,
    src: &str,
    sig: &Signature,
) -> Result<Lowered, SyntaxError> {
    let prog = crate::parser::parse_program(src)?;
    lower_program_in(arena, &prog, sig)
}

/// The `eps` grade helper used throughout examples.
pub fn eps() -> Grade {
    Grade::symbol("eps")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Node;

    fn rp() -> Signature {
        Signature::relative_precision()
    }

    #[test]
    fn lowers_mulfp_like_fig7() {
        // function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
        let src = r#"
            function mulfp (xy: (num, num)) : M[eps]num {
                s = mul xy;
                rnd s
            }
        "#;
        let lowered = compile(src, &rp()).unwrap();
        assert!(lowered.store.conforms_to_value_restriction(lowered.root));
        // Root is LetFun(mulfp, lam, var mulfp).
        match lowered.store.node(lowered.root) {
            Node::LetFun(_, _, body, rest) => {
                assert!(matches!(lowered.store.node(*body), Node::Lam(..)));
                assert!(matches!(lowered.store.node(*rest), Node::Var(_)));
            }
            other => panic!("expected LetFun, got {other:?}"),
        }
    }

    #[test]
    fn anf_inserts_lets() {
        // rnd (mul (x, x)) is not value-applied: a let must appear.
        let src = r#"
            function pow2' (x: ![2.0]num) : M[eps]num {
                let [x1] = x;
                rnd (mul (x1, x1))
            }
        "#;
        let lowered = compile(src, &rp()).unwrap();
        // Walk: LetFun -> Lam -> LetBox -> Let(_t = mul(..)) -> Rnd(var).
        let mut id = lowered.root;
        let store = &lowered.store;
        let body = match store.node(id) {
            Node::LetFun(_, _, b, _) => *b,
            other => panic!("{other:?}"),
        };
        id = match store.node(body) {
            Node::Lam(_, _, b) => *b,
            other => panic!("{other:?}"),
        };
        id = match store.node(id) {
            Node::LetBox(_, _, e) => *e,
            other => panic!("{other:?}"),
        };
        let (bound, rest) = match store.node(id) {
            Node::Let(_, e, f) => (*e, *f),
            other => panic!("expected ANF let, got {other:?}"),
        };
        assert!(matches!(store.node(bound), Node::Op(..)));
        match store.node(rest) {
            Node::Rnd(v) => assert!(matches!(store.node(*v), Node::Var(_))),
            other => panic!("expected rnd of var, got {other:?}"),
        }
    }

    #[test]
    fn sqrt_lowers_to_op_on_bare_var() {
        // Implicit boxing of the `![1/2]` domain happens in the checker,
        // not here: the lowered term applies the op to the raw variable.
        let src = r#"
            function f (x: num) : num {
                sqrt x
            }
        "#;
        let lowered = compile(src, &rp()).unwrap();
        let store = &lowered.store;
        let body = match store.node(lowered.root) {
            Node::LetFun(_, _, b, _) => *b,
            other => panic!("{other:?}"),
        };
        let inner = match store.node(body) {
            Node::Lam(_, _, b) => *b,
            other => panic!("{other:?}"),
        };
        match store.node(inner) {
            Node::Op(op, arg) => {
                assert_eq!(store.op_name(*op), "sqrt");
                assert!(matches!(store.node(*arg), Node::Var(_)));
            }
            other => panic!("expected sqrt op, got {other:?}"),
        }
    }

    #[test]
    fn unbound_names_error() {
        assert!(compile("function f (x: num) : num { y }", &rp()).is_err());
        // `mul` alone (unapplied) is an error.
        assert!(compile("function f (x: num) : num { mul }", &rp()).is_err());
    }

    #[test]
    fn shadowing_resolves_innermost() {
        let src = r#"
            function f (x: num) : num {
                x = mul (x, x);
                x
            }
        "#;
        let lowered = compile(src, &rp()).unwrap();
        let store = &lowered.store;
        let body = match store.node(lowered.root) {
            Node::LetFun(_, _, b, _) => *b,
            other => panic!("{other:?}"),
        };
        let inner = match store.node(body) {
            Node::Lam(param, _, b) => (*param, *b),
            other => panic!("{other:?}"),
        };
        match store.node(inner.1) {
            Node::Let(bound_var, _, rest) => match store.node(*rest) {
                Node::Var(v) => {
                    assert_eq!(v, bound_var, "inner x refers to the let-bound x");
                    assert_ne!(*v, inner.0, "not the parameter");
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn booleans_lower_to_injections() {
        let (lowered, _) =
            lower_expr_with(&crate::parser::parse_expr("true").unwrap(), &rp(), &[]).unwrap();
        assert!(matches!(lowered.store.node(lowered.root), Node::Inl(..)));
    }
}
