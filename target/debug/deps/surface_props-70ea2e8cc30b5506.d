/root/repo/target/debug/deps/surface_props-70ea2e8cc30b5506.d: crates/core/tests/surface_props.rs Cargo.toml

/root/repo/target/debug/deps/libsurface_props-70ea2e8cc30b5506.rmeta: crates/core/tests/surface_props.rs Cargo.toml

crates/core/tests/surface_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
