function f (xy: (num, num)) : M[0]num { s = mul xy; rnd s }
f (1, 2)
