/root/repo/target/release/deps/table3-7a5d63138f496e3b.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-7a5d63138f496e3b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
