//! The one structured error type of the facade API.
//!
//! Every failure mode of the pipeline — lexing, parsing, lowering, type
//! checking, input binding, evaluation, soundness validation, kernel
//! translation — surfaces as a [`Diagnostic`]: an error code from a
//! stable catalogue, a human message, and (when the program came from
//! source text) a `file:line:col` span with the offending line. This
//! replaces the `SyntaxError` / `CheckError` / `Box<dyn Error>` soup the
//! pre-0.2 free functions exposed.

use numfuzz_core::{BackwardError, CheckError, SyntaxError};
use numfuzz_interp::{EvalError, SoundnessError};
use std::fmt;

/// A 1-based source position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Stable error codes, grouped by pipeline stage:
/// `E00xx` syntax/lowering, `E01xx` type checking, `E02xx`
/// evaluation/validation, `E03xx` API usage (inputs, translation),
/// `E05xx` backward-mode analysis (Bean's linearity discipline).
///
/// # Catalog
///
/// | code | variant | stage |
/// |---|---|---|
/// | `E0001` | [`ErrorCode::Syntax`] | parse |
/// | `E0002` | [`ErrorCode::UnboundName`] | lower |
/// | `E0003` | [`ErrorCode::MisusedOp`] | lower |
/// | `E0101` | [`ErrorCode::UnknownOp`] | check |
/// | `E0102` | [`ErrorCode::Shape`] | check |
/// | `E0103` | [`ErrorCode::ArgMismatch`] | check |
/// | `E0104` | [`ErrorCode::OpArgMismatch`] | check |
/// | `E0105` | [`ErrorCode::LambdaSensitivity`] | check |
/// | `E0106` | [`ErrorCode::NonlinearGrade`] | check |
/// | `E0107` | [`ErrorCode::BoxZeroGrade`] | check |
/// | `E0108` | [`ErrorCode::BranchMismatch`] | check |
/// | `E0109` | [`ErrorCode::GradeMismatch`] | check |
/// | `E0201` | [`ErrorCode::NotMonadicNum`] | bound/validate |
/// | `E0202` | [`ErrorCode::UnresolvedGrade`] | bound/validate |
/// | `E0203` | [`ErrorCode::EvalFailed`] | run |
/// | `E0204` | [`ErrorCode::BoundViolated`] | run/validate |
/// | `E0301` | [`ErrorCode::BadInput`] | inputs |
/// | `E0302` | [`ErrorCode::Untranslatable`] | kernel import |
/// | `E0303` | [`ErrorCode::SignatureMismatch`] | session misuse |
/// | `E0501` | [`ErrorCode::UnusedLinear`] | backward check |
/// | `E0502` | [`ErrorCode::DuplicatedUse`] | backward check |
/// | `E0503` | [`ErrorCode::BackwardIncompatible`] | backward check |
/// | `E0504` | [`ErrorCode::NoCarrier`] | backward check |
/// | `E0505` | [`ErrorCode::BranchSupport`] | backward check |
///
/// Every variant's documentation below carries a compiled example that
/// actually triggers it (except `E0204`, which by the soundness theorem
/// has no triggering program).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// `E0001` — lexical or grammatical error in the surface syntax.
    ///
    /// ```
    /// use numfuzz::{ErrorCode, Program};
    /// let err = Program::parse("function (").unwrap_err();
    /// assert_eq!(err.code, ErrorCode::Syntax);
    /// ```
    Syntax,
    /// `E0002` — a name is not in scope.
    ///
    /// ```
    /// use numfuzz::{ErrorCode, Program};
    /// let err = Program::parse("x").unwrap_err();
    /// assert_eq!(err.code, ErrorCode::UnboundName);
    /// ```
    UnboundName,
    /// `E0003` — a primitive operation used in a non-applied position
    /// (operations are not first-class; wrap them in a `function`).
    ///
    /// ```
    /// use numfuzz::{ErrorCode, Program};
    /// let err = Program::parse("add").unwrap_err();
    /// assert_eq!(err.code, ErrorCode::MisusedOp);
    /// ```
    MisusedOp,
    /// `E0101` — an operation name is not in the signature. Parsed
    /// programs can only hit this when checked against a *different*
    /// signature of the same instantiation (unknown names fail at
    /// lowering otherwise):
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// use numfuzz::core::Signature;
    ///
    /// let extended = Signature::relative_precision().with_op("cube", Ty::Num, Ty::Num);
    /// let rich = Analyzer::builder().custom_signature(extended).build();
    /// let program = rich.parse("s = cube 2; rnd s")?;
    /// // A plain session has no `cube`:
    /// let err = Analyzer::new().check(&program).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::UnknownOp);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    UnknownOp,
    /// `E0102` — a term's type has the wrong shape for its context
    /// (applying a non-function, projecting a non-pair, ...).
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let err = analyzer.check(&analyzer.parse("2 3")?).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::Shape);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    Shape,
    /// `E0103` — a function argument is not a subtype of the domain.
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let program = analyzer.parse("function f (x: num) : num { x }\nf ()")?;
    /// let err = analyzer.check(&program).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::ArgMismatch);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    ArgMismatch,
    /// `E0104` — an operation argument does not match the signature.
    /// The classic trip-up: RP `add` takes the *Cartesian* pair
    /// `<num, num>` (max metric), not the tensor `(num, num)`.
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let err = analyzer.check(&analyzer.parse("s = add (1, 2); rnd s")?).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::OpArgMismatch);
    /// // `add (|1, 2|)` — a Cartesian pair — would check.
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    OpArgMismatch,
    /// `E0105` — a λ-bound variable is used at sensitivity above 1;
    /// Λnum is linear, so the parameter must be boxed (`![s]`) to that
    /// sensitivity.
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let src = "function f (x: num) : M[eps]num { s = mul (x, x); rnd s }\nf 2";
    /// let err = analyzer.check(&analyzer.parse(src)?).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::LambdaSensitivity);
    /// // Declaring `x: ![2]num` and unboxing (`let [x1] = x;`) fixes it.
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    LambdaSensitivity,
    /// `E0106` — a product of two symbolic grades arose (grades are
    /// linear expressions; `eps * eps` has no representation).
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let src = "function f (x: num) : num { x }\n[[f]{eps}]{eps}";
    /// let err = analyzer.check(&analyzer.parse(src)?).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::NonlinearGrade);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    NonlinearGrade,
    /// `E0107` — a variable boxed at grade 0 is used (grade 0 promises
    /// the value influences nothing, so using it is contradictory).
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let src = "function f (x: ![0]num) : num { let [x1] = x; x1 }\nf [1]{0}";
    /// let err = analyzer.check(&analyzer.parse(src)?).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::BoxZeroGrade);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    BoxZeroGrade,
    /// `E0108` — `case` (or `if`) branches have incompatible types.
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let src = "function f (c: bool) : num { if c then 1 else () }\nf true";
    /// let err = analyzer.check(&analyzer.parse(src)?).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::BranchMismatch);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    BranchMismatch,
    /// `E0109` — the inferred type is not a subtype of the declaration
    /// (most often: the declared monadic grade is smaller than the
    /// rounding error the body actually accumulates).
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let src = "function f (xy: (num, num)) : M[0]num { s = mul xy; rnd s }\nf (1, 2)";
    /// let err = analyzer.check(&analyzer.parse(src)?).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::GradeMismatch);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    GradeMismatch,
    /// `E0201` — the program's type is not `M[r]num`, so no rounding
    /// error bound applies.
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let typed = analyzer.check(&analyzer.parse("42")?)?;
    /// let err = analyzer.bound(&typed).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::NotMonadicNum);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    NotMonadicNum,
    /// `E0202` — the grade mentions symbols with no assigned value;
    /// assign them via [`crate::Analyzer::bound_with`] /
    /// [`crate::Analyzer::validate_with_symbols`]. Surface programs only
    /// carry the signature's rounding symbol (auto-assigned), but
    /// programmatic terms can mention others:
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// use numfuzz::core::TermStore;
    ///
    /// let mut store = TermStore::new();
    /// let root = store.err(Grade::symbol("k"), Ty::Num); // err : M[k]num
    /// let program = Program::from_parts(store, root, Vec::new());
    /// let analyzer = Analyzer::new();
    /// let typed = analyzer.check(&program)?;
    /// let err = analyzer.bound(&typed).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::UnresolvedGrade);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    UnresolvedGrade,
    /// `E0203` — evaluation failed on a numeric side condition.
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let program = analyzer.parse("s = div (1, 0); rnd s")?;
    /// let err = analyzer.run(&program, &Inputs::none()).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::EvalFailed);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    EvalFailed,
    /// `E0204` — the error-soundness bound was violated. Corollary 4.20
    /// proves this cannot happen, so there is no triggering example: the
    /// CLI's `numfuzz run` maps a failing [`SoundnessReport`] here, and
    /// seeing it would mean an implementation bug (the `validate` sweep
    /// binary exists to witness that none does).
    ///
    /// [`SoundnessReport`]: numfuzz_interp::SoundnessReport
    BoundViolated,
    /// `E0301` — a program input is missing or names no free variable.
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let program = analyzer.parse("rnd 1")?; // closed: no free variables
    /// let inputs = Inputs::none().with_num("z", Rational::from_int(1));
    /// let err = analyzer.run(&program, &inputs).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::BadInput);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    BadInput,
    /// `E0302` — an IR kernel has no Λnum translation (the RP fragment
    /// has no subtraction: relative error is unbounded near cancellation).
    ///
    /// ```
    /// use numfuzz::analyzers::{Expr, Kernel};
    /// use numfuzz::prelude::*;
    ///
    /// let one = RatInterval::point(Rational::from_int(1));
    /// let kernel = Kernel::new("diff", vec![("x", one)], Expr::sub(Expr::num("1"), Expr::num("2")));
    /// let err = Program::from_kernel(&kernel).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::Untranslatable);
    /// ```
    Untranslatable,
    /// `E0303` — a program lowered against one instantiation's signature
    /// was handed to an analyzer configured for another (operation names
    /// differ between instantiations, so cross-checking would only
    /// produce misleading unknown-operation errors).
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let program = Program::parse("rnd 1")?; // relative-precision signature
    /// let abs = Analyzer::builder().signature(Instantiation::AbsoluteError).build();
    /// let err = abs.check(&program).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::SignatureMismatch);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    SignatureMismatch,
    /// `E0501` — backward mode: a linear binder is never consumed. Bean
    /// rejects weakening on data — an unconsumed input would have no
    /// backward error bound, breaking the per-input guarantee.
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let err = analyzer.check_backward(&analyzer.parse("function f (x: num) : num { 2 }")?).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::UnusedLinear);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    UnusedLinear,
    /// `E0502` — backward mode: a linear variable is consumed more than
    /// once. General contraction is exactly what backward error cannot
    /// cross: two uses would each demand their own perturbation of the
    /// same input.
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let src = "function f (x: num) : M[eps]num { rnd (mul (x, x)) }";
    /// let err = analyzer.check_backward(&analyzer.parse(src)?).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::DuplicatedUse);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    DuplicatedUse,
    /// `E0503` — backward mode: a construct with no backward-error
    /// interpretation (`!`-introduction/elimination, Cartesian
    /// projections, first-class function application, `err`).
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let err = analyzer.check_backward(&analyzer.parse("fst (|1, 2|)")?).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::BackwardIncompatible);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    BackwardIncompatible,
    /// `E0504` — backward mode: rounding error arises over a context with
    /// no linear variable to carry it (e.g. `rnd` over constants) — the
    /// committed error cannot be attributed to any input.
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let err = analyzer.check_backward(&analyzer.parse("rnd 1.5")?).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::NoCarrier);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    NoCarrier,
    /// `E0505` — backward mode: `case` (or `if`) branches consume
    /// different linear variables; either branch may run, so both must
    /// consume the same context.
    ///
    /// ```
    /// use numfuzz::prelude::*;
    /// let analyzer = Analyzer::new();
    /// let src = "function h (x: num) (y: num) : num { c = is_pos x; if c then y else 0 }";
    /// let err = analyzer.check_backward(&analyzer.parse(src)?).unwrap_err();
    /// assert_eq!(err.code, ErrorCode::BranchSupport);
    /// # Ok::<(), numfuzz::Diagnostic>(())
    /// ```
    BranchSupport,
}

impl ErrorCode {
    /// The stable code string (`E0102` style).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Syntax => "E0001",
            ErrorCode::UnboundName => "E0002",
            ErrorCode::MisusedOp => "E0003",
            ErrorCode::UnknownOp => "E0101",
            ErrorCode::Shape => "E0102",
            ErrorCode::ArgMismatch => "E0103",
            ErrorCode::OpArgMismatch => "E0104",
            ErrorCode::LambdaSensitivity => "E0105",
            ErrorCode::NonlinearGrade => "E0106",
            ErrorCode::BoxZeroGrade => "E0107",
            ErrorCode::BranchMismatch => "E0108",
            ErrorCode::GradeMismatch => "E0109",
            ErrorCode::NotMonadicNum => "E0201",
            ErrorCode::UnresolvedGrade => "E0202",
            ErrorCode::EvalFailed => "E0203",
            ErrorCode::BoundViolated => "E0204",
            ErrorCode::BadInput => "E0301",
            ErrorCode::Untranslatable => "E0302",
            ErrorCode::SignatureMismatch => "E0303",
            ErrorCode::UnusedLinear => "E0501",
            ErrorCode::DuplicatedUse => "E0502",
            ErrorCode::BackwardIncompatible => "E0503",
            ErrorCode::NoCarrier => "E0504",
            ErrorCode::BranchSupport => "E0505",
        }
    }

    /// Whether the code describes a defect in the *program being
    /// analyzed* (as opposed to harness misuse: bad inputs, mismatched
    /// sessions). The CLI maps program errors to its "ill-typed program"
    /// exit code and harness misuse to its usage exit code.
    pub fn is_program_error(self) -> bool {
        !matches!(self, ErrorCode::BadInput | ErrorCode::SignatureMismatch)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured, optionally spanned error.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which failure this is.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
    /// The file (or synthetic name) the program came from, when known.
    pub file: Option<String>,
    /// Position in the source, when known.
    pub span: Option<Span>,
    /// The source line at `span`, for rendering.
    pub snippet: Option<String>,
    /// Extra context lines (hints, the paper rule involved, ...).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A bare diagnostic with no location.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            message: message.into(),
            file: None,
            span: None,
            snippet: None,
            notes: Vec::new(),
        }
    }

    /// Attaches a file (or synthetic program) name.
    pub fn with_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }

    /// Attaches a hint line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Attaches a position, capturing the snippet line from `src`.
    pub fn with_span_in(mut self, span: Span, src: Option<&str>) -> Self {
        self.snippet =
            src.and_then(|s| s.lines().nth(span.line.saturating_sub(1) as usize)).map(String::from);
        self.span = Some(span);
        self
    }

    /// Locates the first whole-word occurrence of `needle` in `src` and
    /// attaches it as the span. No-op when the needle does not occur.
    pub fn locate(self, src: Option<&str>, needle: &str) -> Self {
        let Some(src) = src else { return self };
        match find_word(src, needle) {
            Some(span) => self.with_span_in(span, Some(src)),
            None => self,
        }
    }

    /// Renders the diagnostic in full (multi-line, rustc style).
    ///
    /// ```
    /// use numfuzz::Program;
    ///
    /// let err = Program::parse_named("demo.nf", "rnd y").unwrap_err();
    /// let rendered = err.render();
    /// assert!(rendered.starts_with("error[E0002]"), "{rendered}");
    /// assert!(rendered.contains("demo.nf:1:5"), "{rendered}");
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("error[{}]: {}", self.code, self.message);
        if let Some(span) = self.span {
            let file = self.file.as_deref().unwrap_or("<source>");
            out.push_str(&format!("\n  --> {}:{}:{}", file, span.line, span.col));
            if let Some(snippet) = &self.snippet {
                out.push_str(&format!("\n   |\n   | {snippet}\n   | "));
                for _ in 1..span.col {
                    out.push(' ');
                }
                out.push('^');
            }
        } else if let Some(file) = &self.file {
            out.push_str(&format!("\n  --> {file}"));
        }
        for note in &self.notes {
            out.push_str(&format!("\n  note: {note}"));
        }
        out
    }

    // ---- constructors from the engine error types ----

    pub(crate) fn from_syntax(err: &SyntaxError, src: Option<&str>, file: Option<&str>) -> Self {
        let code = if err.msg.contains("unbound name") {
            ErrorCode::UnboundName
        } else if err.msg.contains("must be applied") {
            ErrorCode::MisusedOp
        } else {
            ErrorCode::Syntax
        };
        let mut d = Diagnostic::new(code, err.msg.clone());
        if let Some(f) = file {
            d = d.with_file(f);
        }
        if err.line > 0 {
            d.with_span_in(Span { line: err.line, col: err.col }, src)
        } else if let Some(name) = backticked(&err.msg) {
            // Lowering reports names without positions; recover the span
            // from the interned source.
            d.locate(src, &name)
        } else {
            d
        }
    }

    pub(crate) fn from_check(err: &CheckError, src: Option<&str>, file: Option<&str>) -> Self {
        let (code, needle): (ErrorCode, Option<String>) = match err {
            CheckError::UnboundVar(x) => (ErrorCode::UnboundName, Some(x.clone())),
            CheckError::UnknownOp(op) => (ErrorCode::UnknownOp, Some(op.clone())),
            CheckError::Expected { .. } => (ErrorCode::Shape, None),
            CheckError::ArgMismatch { .. } => (ErrorCode::ArgMismatch, None),
            CheckError::OpArgMismatch { op, .. } => (ErrorCode::OpArgMismatch, Some(op.clone())),
            CheckError::LambdaSensitivity { var, .. } => {
                (ErrorCode::LambdaSensitivity, Some(var.clone()))
            }
            CheckError::NonlinearGrade => (ErrorCode::NonlinearGrade, None),
            CheckError::BoxZeroGrade { var } => (ErrorCode::BoxZeroGrade, Some(var.clone())),
            CheckError::BranchTypeMismatch { .. } => (ErrorCode::BranchMismatch, None),
            CheckError::DeclaredMismatch { name, .. } => {
                (ErrorCode::GradeMismatch, Some(name.clone()))
            }
        };
        let mut d = Diagnostic::new(code, err.to_string());
        if let Some(f) = file {
            d = d.with_file(f);
        }
        match needle {
            Some(n) => d.locate(src, &n),
            None => d,
        }
    }

    pub(crate) fn from_backward(
        err: &BackwardError,
        src: Option<&str>,
        file: Option<&str>,
    ) -> Self {
        let (code, needle): (ErrorCode, Option<String>) = match err {
            BackwardError::UnboundVar(x) => (ErrorCode::UnboundName, Some(x.clone())),
            BackwardError::UnknownOp(op) => (ErrorCode::UnknownOp, Some(op.clone())),
            BackwardError::Expected { .. } => (ErrorCode::Shape, None),
            BackwardError::ArgMismatch { .. } => (ErrorCode::ArgMismatch, None),
            BackwardError::OpArgMismatch { op, .. } => (ErrorCode::OpArgMismatch, Some(op.clone())),
            BackwardError::NonlinearGrade => (ErrorCode::NonlinearGrade, None),
            BackwardError::BranchTypeMismatch { .. } => (ErrorCode::BranchMismatch, None),
            BackwardError::DeclaredMismatch { name, .. } => {
                (ErrorCode::GradeMismatch, Some(name.clone()))
            }
            BackwardError::UnusedLinear { var } => (ErrorCode::UnusedLinear, Some(var.clone())),
            BackwardError::DuplicatedUse { var } => (ErrorCode::DuplicatedUse, Some(var.clone())),
            BackwardError::Incompatible { .. } => (ErrorCode::BackwardIncompatible, None),
            BackwardError::NoCarrier { site } => (ErrorCode::NoCarrier, Some((*site).to_string())),
            BackwardError::BranchSupport { var } => (ErrorCode::BranchSupport, Some(var.clone())),
        };
        let mut d = Diagnostic::new(code, err.to_string());
        if let Some(f) = file {
            d = d.with_file(f);
        }
        match needle {
            Some(n) => d.locate(src, &n),
            None => d,
        }
    }

    pub(crate) fn from_eval(err: &EvalError) -> Self {
        Diagnostic::new(ErrorCode::EvalFailed, err.to_string())
    }

    pub(crate) fn from_soundness(
        err: &SoundnessError,
        src: Option<&str>,
        file: Option<&str>,
    ) -> Self {
        match err {
            SoundnessError::Check(e) => Diagnostic::from_check(e, src, file),
            SoundnessError::NotMonadicNum(t) => Diagnostic::new(
                ErrorCode::NotMonadicNum,
                format!("error soundness applies to `M[r]num` programs, this one is `{t}`"),
            )
            .with_note("only monadic numeric programs carry a rounding-error bound (Cor. 4.20)"),
            SoundnessError::UnresolvedGrade(g) => Diagnostic::new(
                ErrorCode::UnresolvedGrade,
                format!("grade `{g}` has symbols without assigned values"),
            )
            .with_note("assign them via `Analyzer::bound_with` / `validate_with_symbols`"),
            SoundnessError::Eval(e) => Diagnostic::from_eval(e),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(span) = self.span {
            write!(
                f,
                "{}:{}:{}: error[{}]: {}",
                self.file.as_deref().unwrap_or("<source>"),
                span.line,
                span.col,
                self.code,
                self.message
            )
        } else {
            write!(f, "error[{}]: {}", self.code, self.message)
        }
    }
}

impl std::error::Error for Diagnostic {}

/// First `` `name` `` payload of a message, if any.
fn backticked(msg: &str) -> Option<String> {
    let start = msg.find('`')? + 1;
    let len = msg[start..].find('`')?;
    (len > 0).then(|| msg[start..start + len].to_string())
}

/// Finds `needle` in `src` as a whole word (identifier-boundary on both
/// sides), returning its 1-based position.
fn find_word(src: &str, needle: &str) -> Option<Span> {
    if needle.is_empty() {
        return None;
    }
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_' || c == '\'';
    let bytes = src.as_bytes();
    let mut from = 0;
    while let Some(pos) = src[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1] as char);
        let end = at + needle.len();
        let after_ok = end >= src.len() || !is_ident(bytes[end] as char);
        if before_ok && after_ok {
            let upto = &src[..at];
            let line = upto.matches('\n').count() as u32 + 1;
            let col = upto.rsplit('\n').next().map_or(0, str::len) as u32 + 1;
            return Some(Span { line, col });
        }
        from = at + needle.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_word_respects_boundaries() {
        let src = "function xyz (xy: num) : num { xy }";
        let span = find_word(src, "xy").unwrap();
        assert_eq!((span.line, span.col), (1, 15), "matches `xy`, not the prefix of `xyz`");
        assert!(find_word(src, "zzz").is_none());
    }

    #[test]
    fn render_includes_caret() {
        let src = "line one\nlet y = x;";
        let d = Diagnostic::new(ErrorCode::UnboundName, "unbound name `x`")
            .with_file("demo.nf")
            .locate(Some(src), "x");
        let r = d.render();
        assert!(r.contains("demo.nf:2:9"), "{r}");
        assert!(r.contains("let y = x;"), "{r}");
        assert!(r.ends_with("        ^"), "{r}");
    }

    #[test]
    fn display_is_single_line() {
        let d = Diagnostic::new(ErrorCode::Syntax, "oops")
            .with_span_in(Span { line: 3, col: 7 }, None)
            .with_file("f.nf");
        assert_eq!(d.to_string(), "f.nf:3:7: error[E0001]: oops");
    }
}
