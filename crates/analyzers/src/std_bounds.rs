//! Textbook worst-case relative error bounds ("Std." column of the
//! paper's Table 4), after Higham, *Accuracy and Stability of Numerical
//! Algorithms*, and Boldo et al.
//!
//! All bounds are stated through the classic constant
//! `γ_n = n·u / (1 − n·u)`, valid for `n·u < 1`.

use numfuzz_exact::Rational;

/// `γ_n = n·u / (1 − n·u)`; `None` when `n·u >= 1`.
pub fn gamma(n: u64, u: &Rational) -> Option<Rational> {
    let nu = Rational::from_int(n as i64).mul(u);
    if nu >= Rational::one() {
        return None;
    }
    Some(nu.div(&Rational::one().sub(&nu)))
}

/// Horner evaluation of a degree-`n` polynomial with fused multiply-adds:
/// one rounding per step gives `γ_n` (for positive coefficients and
/// arguments the condition number is 1). [Higham, §5.1 / paper p. 95]
pub fn horner_fma(degree: u64, u: &Rational) -> Option<Rational> {
    gamma(degree, u)
}

/// Recursive (serial) summation of `n` positive terms: `γ_{n-1}`.
/// [Boldo et al. 2023, p. 260]
pub fn serial_sum(terms: u64, u: &Rational) -> Option<Rational> {
    gamma(terms.saturating_sub(1), u)
}

/// Element-wise bound for an `n`-long inner product (and hence for each
/// entry of an `n×n` matrix multiply) with positive entries: `γ_n`.
/// [Higham, §3.5 / paper p. 63]
pub fn inner_product(n: u64, u: &Rational) -> Option<Rational> {
    gamma(n, u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u64_roundoff() -> Rational {
        Rational::pow2(-52)
    }

    #[test]
    fn gamma_matches_table4_std_column() {
        let u = u64_roundoff();
        // Horner50: 1.11e-14; Horner75: 1.66e-14; Horner100: 2.22e-14.
        assert_eq!(horner_fma(50, &u).unwrap().to_sci_string(3), "1.11e-14");
        // γ_75 = 1.6653e-14: the paper displays 1.66e-14 (truncating); our
        // round-to-nearest rendering gives 1.67e-14. Same quantity.
        assert_eq!(horner_fma(75, &u).unwrap().to_sci_string(3), "1.67e-14");
        assert_eq!(horner_fma(100, &u).unwrap().to_sci_string(3), "2.22e-14");
        // SerialSum (1024 terms): 2.27e-13.
        assert_eq!(serial_sum(1024, &u).unwrap().to_sci_string(3), "2.27e-13");
        // MatrixMultiply 4/16/64/128: 8.88e-16 / 3.55e-15 / 1.42e-14 / 2.84e-14.
        assert_eq!(inner_product(4, &u).unwrap().to_sci_string(3), "8.88e-16");
        assert_eq!(inner_product(16, &u).unwrap().to_sci_string(3), "3.55e-15");
        assert_eq!(inner_product(64, &u).unwrap().to_sci_string(3), "1.42e-14");
        assert_eq!(inner_product(128, &u).unwrap().to_sci_string(3), "2.84e-14");
    }

    #[test]
    fn gamma_domain() {
        let u = Rational::ratio(1, 4);
        assert!(gamma(4, &u).is_none());
        assert!(gamma(5, &u).is_none());
        assert_eq!(gamma(2, &u).unwrap(), Rational::one());
        assert_eq!(gamma(3, &u).unwrap(), Rational::from_int(3));
        assert_eq!(gamma(0, &u).unwrap(), Rational::zero());
    }
}
