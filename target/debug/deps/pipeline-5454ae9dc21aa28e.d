/root/repo/target/debug/deps/pipeline-5454ae9dc21aa28e.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-5454ae9dc21aa28e: tests/pipeline.rs

tests/pipeline.rs:
