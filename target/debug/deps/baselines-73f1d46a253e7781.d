/root/repo/target/debug/deps/baselines-73f1d46a253e7781.d: crates/bench/benches/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-73f1d46a253e7781.rmeta: crates/bench/benches/baselines.rs Cargo.toml

crates/bench/benches/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
