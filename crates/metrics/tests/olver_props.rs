//! Property tests for the RP metric facts that justify the paper's Fig. 5
//! operation typings (Olver [46], Corollary 1 & Property V):
//!
//! * `add : (num × num) ⊸ num` — addition of positives is non-expansive in
//!   the **max** metric;
//! * `mul, div : (num ⊗ num) ⊸ num` — non-expansive in the **sum** metric;
//! * `sqrt : ![0.5]num ⊸ num` — square root halves RP distances;
//! * RP is a metric: symmetry and the triangle inequality.
//!
//! Perturbations are expressed multiplicatively (`x̃ = x·t`), which keeps
//! most checks exact rational comparisons; where `ln` enclosures are needed
//! we allow a `2^-40` slack far below the `2^-60` enclosure width.

use numfuzz_exact::{funcs::sqrt_enclosure, Rational};
use numfuzz_metrics::rp::rp_distance_enclosure;
use proptest::prelude::*;

/// Strictly positive rationals of moderate size.
fn pos_rational() -> impl Strategy<Value = Rational> {
    (1i64..1_000_000, 1i64..1_000_000).prop_map(|(n, d)| Rational::ratio(n, d))
}

/// Multiplicative perturbation factors around 1 (within a factor of 2).
fn factor() -> impl Strategy<Value = Rational> {
    (1_000_000i64..2_000_000, 1_000_000i64..2_000_000).prop_map(|(n, d)| Rational::ratio(n, d))
}

fn rp(x: &Rational, y: &Rational) -> (Rational, Rational) {
    let e = rp_distance_enclosure(x, y, 60);
    (e.lo().clone(), e.hi().clone())
}

fn slack() -> Rational {
    Rational::pow2(-40)
}

proptest! {
    // Enclosure-based checks are exact but not cheap; 32 cases per
    // property keeps the suite under a few seconds.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Addition of positives is non-expansive for the max (×) metric:
    /// (x·t1 + y·t2) / (x + y) lies between min(t1,t2) and max(t1,t2),
    /// hence RP(x̃+ỹ, x+y) <= max(RP(x̃,x), RP(ỹ,y)). Exact check.
    #[test]
    fn add_nonexpansive_max_metric(x in pos_rational(), y in pos_rational(), t1 in factor(), t2 in factor()) {
        let perturbed = x.mul(&t1).add(&y.mul(&t2));
        let ratio = perturbed.div(&x.add(&y));
        let lo = t1.clone().min(t2.clone());
        let hi = t1.max(t2);
        prop_assert!(lo <= ratio && ratio <= hi);
    }

    /// Multiplication accumulates RP additively (⊗ metric):
    /// RP(x̃ỹ, xy) = |ln(t1·t2)| <= |ln t1| + |ln t2|.
    #[test]
    fn mul_nonexpansive_sum_metric(t1 in factor(), t2 in factor()) {
        let one = Rational::one();
        let (_, d1_hi) = rp(&t1, &one);
        let (_, d2_hi) = rp(&t2, &one);
        let (d12_lo, _) = rp(&t1.mul(&t2), &one);
        prop_assert!(d12_lo <= d1_hi.add(&d2_hi).add(&slack()));
    }

    /// Division likewise: RP(x̃/ỹ, x/y) = |ln(t1/t2)| <= |ln t1| + |ln t2|.
    #[test]
    fn div_nonexpansive_sum_metric(t1 in factor(), t2 in factor()) {
        let one = Rational::one();
        let (_, d1_hi) = rp(&t1, &one);
        let (_, d2_hi) = rp(&t2, &one);
        let (dq_lo, _) = rp(&t1.div(&t2), &one);
        prop_assert!(dq_lo <= d1_hi.add(&d2_hi).add(&slack()));
    }

    /// Square root halves RP distances: RP(√x̃, √x) = ½·RP(x̃, x), which is
    /// why `sqrt : ![0.5]num ⊸ num` in Fig. 5.
    #[test]
    fn sqrt_halves_rp(x in pos_rational(), t in factor()) {
        let xt = x.mul(&t);
        let sx = sqrt_enclosure(&x, 80);
        let st = sqrt_enclosure(&xt, 80);
        // Worst/best case RP between the enclosures.
        let (d_lo, _) = rp(st.lo(), sx.hi());
        let (_, d_hi) = rp(st.hi(), sx.lo());
        let (full_lo, full_hi) = rp(&xt, &x);
        let half_lo = full_lo.div(&Rational::from_int(2));
        let half_hi = full_hi.div(&Rational::from_int(2));
        prop_assert!(d_lo <= half_hi.add(&slack()));
        prop_assert!(d_hi.add(&slack()) >= half_lo);
    }

    /// Metric axiom: symmetry (via enclosure overlap).
    #[test]
    fn rp_symmetric(x in pos_rational(), y in pos_rational()) {
        let (a_lo, a_hi) = rp(&x, &y);
        let (b_lo, b_hi) = rp(&y, &x);
        prop_assert!(a_lo <= b_hi && b_lo <= a_hi);
    }

    /// Metric axiom: triangle inequality RP(x,z) <= RP(x,y) + RP(y,z).
    #[test]
    fn rp_triangle(x in pos_rational(), y in pos_rational(), z in pos_rational()) {
        let (xz_lo, _) = rp(&x, &z);
        let (_, xy_hi) = rp(&x, &y);
        let (_, yz_hi) = rp(&y, &z);
        prop_assert!(xz_lo <= xy_hi.add(&yz_hi).add(&slack()));
    }

    /// Relation to relative error (paper eqs. 6–8): if RP(x, x̃) <= α < 1
    /// then relerr(x, x̃) <= α/(1−α).
    #[test]
    fn rp_bounds_relative_error(x in pos_rational(), t in factor()) {
        let xt = x.mul(&t);
        let (_, alpha_hi) = rp(&xt, &x);
        prop_assume!(alpha_hi < Rational::one());
        let rel = xt.sub(&x).div(&x).abs();
        let bound = numfuzz_metrics::rp::rp_to_rel_bound(&alpha_hi).unwrap();
        prop_assert!(rel <= bound.add(&slack()));
    }
}
