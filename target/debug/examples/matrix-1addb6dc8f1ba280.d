/root/repo/target/debug/examples/matrix-1addb6dc8f1ba280.d: examples/matrix.rs Cargo.toml

/root/repo/target/debug/examples/libmatrix-1addb6dc8f1ba280.rmeta: examples/matrix.rs Cargo.toml

examples/matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
