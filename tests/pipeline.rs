//! End-to-end integration: every Table 3 / Table 5 benchmark goes through
//! parse/translate → infer → ideal+fp evaluation → rigorous bound check
//! (Corollary 4.20), across formats and modes.

use numfuzz::analyzers::kernel_to_core;
use numfuzz::benchsuite::{table3, table5};
use numfuzz::prelude::*;

#[test]
fn table3_kernels_check_and_validate() {
    let sig = Signature::relative_precision();
    let formats = [Format::BINARY64, Format::new(10, 50)];
    for b in table3() {
        let ck = kernel_to_core(&b.kernel).expect("translatable");
        // Grade equals the recorded paper coefficient.
        let res = infer(&ck.store, &sig, ck.root, &ck.free).expect("checks");
        let expected = Ty::monad(Grade::symbol("eps").scale(&b.expected_eps_coeff), Ty::Num);
        assert_eq!(res.root.ty, expected, "{}", b.kernel.name);

        for sample in &b.samples {
            let inputs: Vec<_> = ck
                .free
                .iter()
                .zip(sample)
                .map(|((v, _), q)| (*v, Value::num(q.clone())))
                .collect();
            for format in formats {
                for mode in [RoundingMode::TowardPositive, RoundingMode::NearestEven] {
                    let mut fp = CheckedRounding { format, mode };
                    let rep = validate(&ck.store, &sig, ck.root, &inputs, &mut fp, &format.unit_roundoff(mode))
                        .unwrap_or_else(|e| panic!("{}: {e}", b.kernel.name));
                    assert!(
                        rep.holds(),
                        "{} violated at {sample:?} {format} {mode}: {rep:?}",
                        b.kernel.name
                    );
                }
            }
        }
    }
}

#[test]
fn table5_conditionals_check_and_validate() {
    let sig = Signature::relative_precision();
    for b in table5() {
        let src = format!("{}\n{}", b.source, b.sample);
        let lowered = compile(&src, &sig).expect("compiles");
        for mode in RoundingMode::ALL {
            let format = Format::BINARY64;
            let mut fp = CheckedRounding { format, mode };
            let rep = validate(&lowered.store, &sig, lowered.root, &[], &mut fp, &format.unit_roundoff(mode))
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(rep.holds(), "{} violated under {mode}", b.name);
        }
    }
}

#[test]
fn generated_table4_programs_validate() {
    use numfuzz::benchsuite::{horner, matrix_multiply, poly_naive, serial_sum};
    let sig = Signature::relative_precision();
    let format = Format::new(16, 80);
    let mode = RoundingMode::TowardPositive;
    for g in [horner(25), serial_sum(64), matrix_multiply(3), poly_naive(8)] {
        let inputs: Vec<_> = g
            .free
            .iter()
            .map(|(v, _)| (*v, Value::num(Rational::ratio(5, 4))))
            .collect();
        let mut fp = CheckedRounding { format, mode };
        let rep = validate(&g.store, &sig, g.root, &inputs, &mut fp, &format.unit_roundoff(mode))
            .unwrap_or_else(|e| panic!("{}: {e}", g.name));
        assert!(rep.holds(), "{} violated: {rep:?}", g.name);
        // Error really accumulates in a 16-bit format: measured > 0.
        assert!(rep.measured.unwrap_or(0.0) > 0.0, "{}", g.name);
    }
}

#[test]
fn cross_semantics_agreement_smallstep_vs_machine() {
    // The substitution-based reference semantics and the abstract machine
    // agree on the Table 5 squareRoot3 program (taking the non-sqrt
    // branch so the reference stays rational).
    use numfuzz::core::Node;
    use numfuzz::interp::smallstep::{normalize, StepSemantics};
    let sig = Signature::relative_precision();
    let b = table5().into_iter().find(|b| b.name == "squareRoot3").expect("present");
    let src = format!("{}\nsquareRoot3 [0.000001]{{inf}}", b.source);
    let mut lowered = compile(&src, &sig).expect("compiles");

    let machine = eval(
        &lowered.store,
        lowered.root,
        &mut ModeRounding { format: Format::BINARY64, mode: RoundingMode::TowardPositive },
        EvalConfig::default(),
        &[],
    )
    .expect("evaluates");
    let machine_val = machine.as_ret().and_then(Value::as_num).expect("ret num").clone();

    let sem = StepSemantics::Fp(Format::BINARY64, RoundingMode::TowardPositive);
    let nf = normalize(&mut lowered.store, lowered.root, sem, 10_000_000);
    let ss_val = match lowered.store.node(nf) {
        Node::Ret(v) => match lowered.store.node(*v) {
            Node::Const(k) => lowered.store.constant(*k).clone(),
            other => panic!("unexpected payload {other:?}"),
        },
        other => panic!("unexpected normal form {other:?}"),
    };
    assert_eq!(machine_val.as_point().expect("point"), &ss_val);
}
