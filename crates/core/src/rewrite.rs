//! Sound algebraic rewriting over the real-valued operation fragment.
//!
//! This module is the expression-level half of `numfuzz optimize`: a tiny
//! hash-consed arena for real expressions built from `add`, `mul`, `div`
//! and `sqrt` over variables and positive rational constants, a
//! canonicalizing simplifier, and a set of rewrite rules that preserve the
//! *ideal* (real-valued) semantics on the strictly positive carrier of the
//! relative-precision instantiation (Section 5 of the paper). Rounding is
//! not represented here at all: the optimizer re-derives rounding
//! placement when it emits a candidate back to surface syntax (one `rnd`
//! per operation), and every candidate is then re-certified through the
//! full analyzer facade — so the rules only need to be exact over ℝ>0.
//!
//! Soundness notes, per rule:
//!
//! * `commute`, `distribute`, `factor`: ring identities, exact over ℝ.
//! * `rationalize`, `div_through`: rewrite into / out of a single-quotient
//!   normal form. Every denominator in the fragment is a product/sum of
//!   strictly positive values, so no division by zero can be introduced.
//! * `sqrt_square`: `sqrt(e·e) → e` is exact because the carrier is
//!   strictly positive (no `|e|` is needed).
//!
//! Associativity is not a searchable rule: the simplifier canonicalizes
//! `add`/`mul` chains (flattened, constants folded into a single leading
//! coefficient, left-associated rebuild), which quotients the search space
//! by reassociation. Reassociation is bound-neutral in the graded monad —
//! the monadic grade sums one `eps` per operation regardless of tree
//! shape — so nothing is lost.

use numfuzz_exact::Rational;
use std::collections::{HashMap, HashSet};

/// Index of an expression node in an [`ExprArena`].
pub type ExprId = usize;

/// One node of the rewrite fragment.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ENode {
    /// Parameter reference, by position in the principal function.
    Var(usize),
    /// A positive rational constant.
    Const(Rational),
    /// `a + b` (typed over the Cartesian product).
    Add(ExprId, ExprId),
    /// `a · b` (typed over the tensor product).
    Mul(ExprId, ExprId),
    /// `a / b`.
    Div(ExprId, ExprId),
    /// `√a`.
    Sqrt(ExprId),
}

/// Hash-consed arena: structurally equal expressions share one id, so
/// candidate deduplication and common-subexpression detection are id
/// comparisons.
#[derive(Default, Debug)]
pub struct ExprArena {
    nodes: Vec<ENode>,
    dedup: HashMap<ENode, ExprId>,
}

/// A local rewrite rule: applied at a single node, returns the rewritten
/// alternatives of that node (not yet simplified).
pub type RuleFn = fn(&mut ExprArena, ExprId) -> Vec<ExprId>;

/// Cost-model weights per operation (a crude latency model: division and
/// square root are an order of magnitude slower than addition).
pub const COST_ADD: u64 = 1;
/// See [`COST_ADD`].
pub const COST_MUL: u64 = 2;
/// See [`COST_ADD`].
pub const COST_DIV: u64 = 8;
/// See [`COST_ADD`].
pub const COST_SQRT: u64 = 8;

impl ExprArena {
    /// An empty arena.
    pub fn new() -> Self {
        ExprArena::default()
    }

    /// Interns a node, returning the id of the shared instance.
    pub fn intern(&mut self, n: ENode) -> ExprId {
        if let Some(&id) = self.dedup.get(&n) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(n.clone());
        self.dedup.insert(n, id);
        id
    }

    /// The node stored at `id`.
    pub fn node(&self, id: ExprId) -> &ENode {
        &self.nodes[id]
    }

    /// Parameter leaf.
    pub fn var(&mut self, i: usize) -> ExprId {
        self.intern(ENode::Var(i))
    }

    /// Constant leaf.
    pub fn constant(&mut self, q: Rational) -> ExprId {
        self.intern(ENode::Const(q))
    }

    /// `a + b`.
    pub fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.intern(ENode::Add(a, b))
    }

    /// `a · b`.
    pub fn mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.intern(ENode::Mul(a, b))
    }

    /// `a / b`.
    pub fn div(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.intern(ENode::Div(a, b))
    }

    /// `√a`.
    pub fn sqrt(&mut self, a: ExprId) -> ExprId {
        self.intern(ENode::Sqrt(a))
    }

    fn const_value(&self, id: ExprId) -> Option<&Rational> {
        match self.node(id) {
            ENode::Const(q) => Some(q),
            _ => None,
        }
    }

    /// Flattens an `add` chain into its (unsimplified) term list, left to
    /// right.
    pub fn terms_of(&self, id: ExprId) -> Vec<ExprId> {
        let mut out = Vec::new();
        self.flatten(id, true, &mut out);
        out
    }

    /// Flattens a `mul` chain into its (unsimplified) factor list, left
    /// to right.
    pub fn factors_of(&self, id: ExprId) -> Vec<ExprId> {
        let mut out = Vec::new();
        self.flatten(id, false, &mut out);
        out
    }

    fn flatten(&self, id: ExprId, add: bool, out: &mut Vec<ExprId>) {
        match (self.node(id), add) {
            (&ENode::Add(a, b), true) | (&ENode::Mul(a, b), false) => {
                self.flatten(a, add, out);
                self.flatten(b, add, out);
            }
            _ => out.push(id),
        }
    }

    fn rebuild(&mut self, chain: &[ExprId], add: bool) -> ExprId {
        debug_assert!(!chain.is_empty());
        let mut acc = chain[0];
        for &next in &chain[1..] {
            acc = if add { self.add(acc, next) } else { self.mul(acc, next) };
        }
        acc
    }

    /// Canonicalizes: flattens `add`/`mul` chains, folds constants into a
    /// single leading coefficient, drops unit coefficients, normalizes
    /// nested quotients (`(a/b)/c → a/(b·c)`, `a/(b/c) → (a·c)/b`), and
    /// folds constant quotients when the result stays decimal-printable.
    pub fn simplify(&mut self, id: ExprId) -> ExprId {
        match self.node(id).clone() {
            ENode::Var(_) | ENode::Const(_) => id,
            ENode::Sqrt(a) => {
                let a = self.simplify(a);
                self.sqrt(a)
            }
            ENode::Add(..) => self.simplify_chain(id, true),
            ENode::Mul(..) => self.simplify_chain(id, false),
            ENode::Div(a, b) => {
                let mut num = self.simplify(a);
                let mut den = self.simplify(b);
                loop {
                    if let &ENode::Div(x, y) = self.node(num) {
                        let d = self.mul(y, den);
                        den = self.simplify_chain(d, false);
                        num = x;
                        continue;
                    }
                    if let &ENode::Div(x, y) = self.node(den) {
                        let n = self.mul(num, y);
                        num = self.simplify_chain(n, false);
                        den = x;
                        continue;
                    }
                    break;
                }
                if self.const_value(den) == Some(&Rational::one()) {
                    return num;
                }
                if let (Some(n), Some(d)) = (self.const_value(num), self.const_value(den)) {
                    let q = n.div(d);
                    if decimal_friendly(&q) {
                        return self.constant(q);
                    }
                }
                self.div(num, den)
            }
        }
    }

    fn simplify_chain(&mut self, id: ExprId, add: bool) -> ExprId {
        let mut konst = if add { Rational::zero() } else { Rational::one() };
        let mut rest = Vec::new();
        self.gather(id, add, &mut konst, &mut rest);
        let neutral = if add { konst.is_zero() } else { konst == Rational::one() };
        let mut chain = Vec::new();
        if !neutral || rest.is_empty() {
            let c = self.constant(konst);
            chain.push(c);
        }
        chain.extend(rest);
        self.rebuild(&chain, add)
    }

    fn gather(&mut self, id: ExprId, add: bool, konst: &mut Rational, rest: &mut Vec<ExprId>) {
        match (self.node(id).clone(), add) {
            (ENode::Add(a, b), true) | (ENode::Mul(a, b), false) => {
                self.gather(a, add, konst, rest);
                self.gather(b, add, konst, rest);
            }
            (node, _) => {
                let s = match node {
                    ENode::Var(_) | ENode::Const(_) => id,
                    _ => self.simplify(id),
                };
                match (self.node(s).clone(), add) {
                    (ENode::Add(..), true) | (ENode::Mul(..), false) => {
                        self.gather(s, add, konst, rest)
                    }
                    (ENode::Const(c), true) => *konst = konst.add(&c),
                    (ENode::Const(c), false) => *konst = konst.mul(&c),
                    _ => rest.push(s),
                }
            }
        }
    }

    /// Single-quotient normal form: returns `(num, den)` with
    /// `id = num/den` exactly, `den` free of `div` nodes at the top level.
    /// `sqrt` is opaque (its argument is normalized independently).
    fn ratio(&mut self, id: ExprId) -> (ExprId, ExprId) {
        let one = self.constant(Rational::one());
        match self.node(id).clone() {
            ENode::Var(_) | ENode::Const(_) => (id, one),
            ENode::Sqrt(a) => {
                let (n, d) = self.ratio(a);
                let inner = if d == one { n } else { self.div(n, d) };
                let inner = self.simplify(inner);
                (self.sqrt(inner), one)
            }
            ENode::Add(a, b) => {
                let (na, da) = self.ratio(a);
                let (nb, db) = self.ratio(b);
                if da == db {
                    (self.add(na, nb), da)
                } else {
                    let l = self.mul(na, db);
                    let r = self.mul(nb, da);
                    (self.add(l, r), self.mul(da, db))
                }
            }
            ENode::Mul(a, b) => {
                let (na, da) = self.ratio(a);
                let (nb, db) = self.ratio(b);
                (self.mul(na, nb), self.mul(da, db))
            }
            ENode::Div(a, b) => {
                let (na, da) = self.ratio(a);
                let (nb, db) = self.ratio(b);
                (self.mul(na, db), self.mul(da, nb))
            }
        }
    }

    /// Operation-count cost of the expression DAG (shared nodes counted
    /// once, mirroring the let-bound code the optimizer emits).
    pub fn op_cost(&self, id: ExprId) -> u64 {
        let mut seen = HashSet::new();
        self.cost_walk(id, &mut seen)
    }

    fn cost_walk(&self, id: ExprId, seen: &mut HashSet<ExprId>) -> u64 {
        if !seen.insert(id) {
            return 0;
        }
        match *self.node(id) {
            ENode::Var(_) | ENode::Const(_) => 0,
            ENode::Add(a, b) => COST_ADD + self.cost_walk(a, seen) + self.cost_walk(b, seen),
            ENode::Mul(a, b) => COST_MUL + self.cost_walk(a, seen) + self.cost_walk(b, seen),
            ENode::Div(a, b) => COST_DIV + self.cost_walk(a, seen) + self.cost_walk(b, seen),
            ENode::Sqrt(a) => COST_SQRT + self.cost_walk(a, seen),
        }
    }

    /// Number of operation nodes in the DAG (shared nodes counted once).
    pub fn op_count(&self, id: ExprId) -> u64 {
        let mut seen = HashSet::new();
        self.count_walk(id, &mut seen)
    }

    fn count_walk(&self, id: ExprId, seen: &mut HashSet<ExprId>) -> u64 {
        if !seen.insert(id) {
            return 0;
        }
        match *self.node(id) {
            ENode::Var(_) | ENode::Const(_) => 0,
            ENode::Add(a, b) | ENode::Mul(a, b) | ENode::Div(a, b) => {
                1 + self.count_walk(a, seen) + self.count_walk(b, seen)
            }
            ENode::Sqrt(a) => 1 + self.count_walk(a, seen),
        }
    }

    /// Debug rendering (not surface syntax).
    pub fn to_text(&self, id: ExprId) -> String {
        match self.node(id) {
            ENode::Var(i) => format!("v{i}"),
            ENode::Const(q) => format!("{q}"),
            ENode::Add(a, b) => format!("({} + {})", self.to_text(*a), self.to_text(*b)),
            ENode::Mul(a, b) => format!("({} * {})", self.to_text(*a), self.to_text(*b)),
            ENode::Div(a, b) => format!("({} / {})", self.to_text(*a), self.to_text(*b)),
            ENode::Sqrt(a) => format!("sqrt({})", self.to_text(*a)),
        }
    }
}

/// True if `q` can be written as a finite decimal literal (denominator of
/// the form `2^a·5^b`), i.e. re-parsed exactly by the surface grammar.
pub fn decimal_friendly(q: &Rational) -> bool {
    if q.is_integer() {
        return true;
    }
    let scale = Rational::from_int(10).pow(40);
    q.mul(&scale).is_integer()
}

/// Renders a positive rational as a surface decimal literal, or `None` if
/// it is not [`decimal_friendly`] (or not positive).
pub fn decimal_literal(q: &Rational) -> Option<String> {
    if !q.is_positive() {
        return None;
    }
    if q.is_integer() {
        return Some(q.numer().to_string());
    }
    let ten = Rational::from_int(10);
    let mut scaled = q.clone();
    for k in 1..=40u32 {
        scaled = scaled.mul(&ten);
        if scaled.is_integer() {
            let digits = scaled.numer().to_string();
            let k = k as usize;
            return Some(if digits.len() > k {
                format!("{}.{}", &digits[..digits.len() - k], &digits[digits.len() - k..])
            } else {
                format!("0.{}{}", "0".repeat(k - digits.len()), digits)
            });
        }
    }
    None
}

/// The sound rule set, in the (fixed, deterministic) order the search
/// applies them.
pub fn sound_rules() -> Vec<(&'static str, RuleFn)> {
    vec![
        ("rationalize", rule_rationalize),
        ("div_through", rule_div_through),
        ("sqrt_square", rule_sqrt_square),
        ("factor", rule_factor),
        ("distribute", rule_distribute),
        ("commute", rule_commute),
    ]
}

/// A deliberately *unsound* rule (`a/b → b/a`), exposed only so tests can
/// prove the optimizer's exact-oracle leg rejects semantically wrong
/// candidates. Never part of [`sound_rules`].
pub fn unsound_swap_div_rule() -> (&'static str, RuleFn) {
    ("swap_div_unsound", rule_swap_div_unsound)
}

/// Applies a local rule at every position of `root`, returning the
/// simplified, deduplicated whole-expression variants (excluding `root`
/// itself).
pub fn apply_everywhere(arena: &mut ExprArena, root: ExprId, rule: RuleFn) -> Vec<ExprId> {
    let raw = everywhere(arena, root, rule);
    let base = arena.simplify(root);
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for v in raw {
        let s = arena.simplify(v);
        if s != base && seen.insert(s) {
            out.push(s);
        }
    }
    out
}

fn everywhere(arena: &mut ExprArena, id: ExprId, rule: RuleFn) -> Vec<ExprId> {
    let mut out = rule(arena, id);
    match arena.node(id).clone() {
        ENode::Var(_) | ENode::Const(_) => {}
        ENode::Sqrt(a) => {
            for a2 in everywhere(arena, a, rule) {
                out.push(arena.sqrt(a2));
            }
        }
        ENode::Add(a, b) => {
            for a2 in everywhere(arena, a, rule) {
                out.push(arena.add(a2, b));
            }
            for b2 in everywhere(arena, b, rule) {
                out.push(arena.add(a, b2));
            }
        }
        ENode::Mul(a, b) => {
            for a2 in everywhere(arena, a, rule) {
                out.push(arena.mul(a2, b));
            }
            for b2 in everywhere(arena, b, rule) {
                out.push(arena.mul(a, b2));
            }
        }
        ENode::Div(a, b) => {
            for a2 in everywhere(arena, a, rule) {
                out.push(arena.div(a2, b));
            }
            for b2 in everywhere(arena, b, rule) {
                out.push(arena.div(a, b2));
            }
        }
    }
    out
}

fn rule_commute(arena: &mut ExprArena, id: ExprId) -> Vec<ExprId> {
    match arena.node(id).clone() {
        ENode::Add(a, b) if a != b => vec![arena.add(b, a)],
        ENode::Mul(a, b) if a != b => vec![arena.mul(b, a)],
        _ => Vec::new(),
    }
}

fn rule_distribute(arena: &mut ExprArena, id: ExprId) -> Vec<ExprId> {
    let mut out = Vec::new();
    if let ENode::Mul(a, b) = arena.node(id).clone() {
        if let ENode::Add(u, v) = arena.node(b).clone() {
            let l = arena.mul(a, u);
            let r = arena.mul(a, v);
            out.push(arena.add(l, r));
        }
        if let ENode::Add(u, v) = arena.node(a).clone() {
            let l = arena.mul(u, b);
            let r = arena.mul(v, b);
            out.push(arena.add(l, r));
        }
    }
    out
}

/// Factors a common (non-constant) factor out of the subset of an `add`
/// chain's terms that contain it: `f·a + f·b + c → f·(a + b) + c`.
/// Repeated application yields Horner-style restructurings.
fn rule_factor(arena: &mut ExprArena, id: ExprId) -> Vec<ExprId> {
    if !matches!(arena.node(id), ENode::Add(..)) {
        return Vec::new();
    }
    let terms = arena.terms_of(id);
    if terms.len() < 2 {
        return Vec::new();
    }
    let factor_lists: Vec<Vec<ExprId>> = terms.iter().map(|&t| arena.factors_of(t)).collect();
    // Candidate factors in first-occurrence order, skipping constants.
    let mut cands = Vec::new();
    let mut seen = HashSet::new();
    for fl in &factor_lists {
        for &f in fl {
            if !matches!(arena.node(f), ENode::Const(_)) && seen.insert(f) {
                cands.push(f);
            }
        }
    }
    let mut out = Vec::new();
    for f in cands {
        let mut inside = Vec::new();
        let mut outside = Vec::new();
        for (i, fl) in factor_lists.iter().enumerate() {
            if fl.contains(&f) {
                let mut rest: Vec<ExprId> = Vec::new();
                let mut dropped = false;
                for &g in fl {
                    if !dropped && g == f {
                        dropped = true;
                    } else {
                        rest.push(g);
                    }
                }
                if rest.is_empty() {
                    rest.push(arena.constant(Rational::one()));
                }
                inside.push(arena.rebuild(&rest, false));
            } else {
                outside.push(terms[i]);
            }
        }
        if inside.len() < 2 {
            continue;
        }
        let sum = arena.rebuild(&inside, true);
        let factored = arena.mul(f, sum);
        let mut chain = vec![factored];
        chain.extend(outside);
        out.push(arena.rebuild(&chain, true));
    }
    out
}

/// Rewrites the subtree into single-quotient form `num/den`, cancelling
/// common non-constant factors exactly and normalizing the constant
/// coefficients when the quotient stays decimal-printable.
fn rule_rationalize(arena: &mut ExprArena, id: ExprId) -> Vec<ExprId> {
    if matches!(arena.node(id), ENode::Var(_) | ENode::Const(_)) {
        return Vec::new();
    }
    let (n, d) = arena.ratio(id);
    let n = arena.simplify(n);
    let d = arena.simplify(d);
    // Cancel common non-constant factors (multiset intersection).
    let mut nf = arena.factors_of(n);
    let mut df = arena.factors_of(d);
    let mut cancelled = false;
    let mut i = 0;
    while i < nf.len() {
        let f = nf[i];
        if !matches!(arena.node(f), ENode::Const(_)) {
            if let Some(j) = df.iter().position(|&g| g == f) {
                nf.remove(i);
                df.remove(j);
                cancelled = true;
                continue;
            }
        }
        i += 1;
    }
    let (mut n, mut d) = (n, d);
    if cancelled {
        let one = arena.constant(Rational::one());
        if nf.is_empty() {
            nf.push(one);
        }
        if df.is_empty() {
            df.push(one);
        }
        n = arena.rebuild(&nf, false);
        d = arena.rebuild(&df, false);
    }
    // Normalize the constant coefficient of the denominator into the
    // numerator when that stays exactly decimal-printable.
    let dfacs = arena.factors_of(d);
    if let Some(ENode::Const(dc)) = dfacs.first().map(|&f| arena.node(f).clone()) {
        if dc != Rational::one() && dfacs.len() > 1 {
            let nfacs = arena.factors_of(n);
            let (nc, nrest) = match nfacs.first().map(|&f| arena.node(f).clone()) {
                Some(ENode::Const(c)) => (c, nfacs[1..].to_vec()),
                _ => (Rational::one(), nfacs.clone()),
            };
            let scaled = nc.div(&dc);
            if decimal_friendly(&scaled) {
                let mut chain = vec![arena.constant(scaled)];
                chain.extend(nrest);
                n = arena.rebuild(&chain, false);
                d = arena.rebuild(&dfacs[1..], false);
            }
        }
    }
    vec![arena.div(n, d)]
}

/// At `num/den`, divides both sides by a shared or one-sided non-constant
/// factor, turning e.g. `c·x² / (k + x²)` into `c / (k/x² + 1)` over two
/// applications — trading multiplications for divisions and, crucially,
/// shortening the rounded dependency chain.
fn rule_div_through(arena: &mut ExprArena, id: ExprId) -> Vec<ExprId> {
    let ENode::Div(n, d) = arena.node(id).clone() else {
        return Vec::new();
    };
    let mut cands = Vec::new();
    let mut seen = HashSet::new();
    for side in [n, d] {
        for f in arena.factors_of(side) {
            if !matches!(arena.node(f), ENode::Const(_)) && seen.insert(f) {
                cands.push(f);
            }
        }
    }
    let mut out = Vec::new();
    for f in cands {
        let n2 = divide_out(arena, n, f);
        let d2 = divide_out(arena, d, f);
        out.push(arena.div(n2, d2));
    }
    out
}

/// `x / f`, preferring exact factor removal, distributing over `add`
/// chains, and falling back to an explicit quotient.
fn divide_out(arena: &mut ExprArena, x: ExprId, f: ExprId) -> ExprId {
    let facs = arena.factors_of(x);
    if let Some(i) = facs.iter().position(|&g| g == f) {
        let mut rest = facs;
        rest.remove(i);
        if rest.is_empty() {
            return arena.constant(Rational::one());
        }
        return arena.rebuild(&rest, false);
    }
    if matches!(arena.node(x), ENode::Add(..)) {
        let terms = arena.terms_of(x);
        let divided: Vec<ExprId> = terms.iter().map(|&t| divide_out(arena, t, f)).collect();
        return arena.rebuild(&divided, true);
    }
    arena.div(x, f)
}

fn rule_sqrt_square(arena: &mut ExprArena, id: ExprId) -> Vec<ExprId> {
    if let ENode::Sqrt(a) = arena.node(id).clone() {
        if let ENode::Mul(x, y) = arena.node(a).clone() {
            if x == y {
                return vec![x];
            }
        }
    }
    Vec::new()
}

fn rule_swap_div_unsound(arena: &mut ExprArena, id: ExprId) -> Vec<ExprId> {
    match arena.node(id).clone() {
        ENode::Div(a, b) if a != b => vec![arena.div(b, a)],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64, d: i64) -> Rational {
        Rational::ratio(n, d)
    }

    #[test]
    fn simplify_folds_constants_and_flattens() {
        let mut a = ExprArena::new();
        let x = a.var(0);
        let c4 = a.constant(q(4, 1));
        let c111 = a.constant(q(111, 100));
        let m1 = a.mul(c4, x);
        let m2 = a.mul(m1, c111);
        let s = a.simplify(m2);
        // 4 * x * 1.11 → 4.44 * x with the constant leading.
        let facs = a.factors_of(s);
        assert_eq!(facs.len(), 2);
        assert_eq!(a.node(facs[0]), &ENode::Const(q(111, 25)));
        assert_eq!(facs[1], x);
    }

    #[test]
    fn simplify_normalizes_nested_quotients() {
        let mut a = ExprArena::new();
        let x = a.var(0);
        let y = a.var(1);
        let z = a.var(2);
        let inner = a.div(x, y);
        let outer = a.div(inner, z);
        let s = a.simplify(outer);
        let ENode::Div(n, d) = *a.node(s) else { panic!("expected quotient") };
        assert_eq!(n, x);
        assert_eq!(a.factors_of(d), vec![y, z]);
    }

    #[test]
    fn rationalize_cancels_common_factors() {
        // x / (x · y)  →  1 / y
        let mut a = ExprArena::new();
        let x = a.var(0);
        let y = a.var(1);
        let den = a.mul(x, y);
        let e = a.div(x, den);
        let outs = apply_everywhere(&mut a, e, rule_rationalize);
        let one = a.constant(Rational::one());
        let want = a.div(one, y);
        let want = a.simplify(want);
        assert!(
            outs.contains(&want),
            "{:?}",
            outs.iter().map(|&o| a.to_text(o)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rationalize_clears_embedded_quotient() {
        // (4·x) / (1 + x/1.11)  →  4.44·x / (1.11 + x)
        let mut a = ExprArena::new();
        let x = a.var(0);
        let c4 = a.constant(q(4, 1));
        let c1 = a.constant(q(1, 1));
        let c111 = a.constant(q(111, 100));
        let n = a.mul(c4, x);
        let inner = a.div(x, c111);
        let d = a.add(c1, inner);
        let e = a.div(n, d);
        let outs = apply_everywhere(&mut a, e, rule_rationalize);
        let c444 = a.constant(q(111, 25));
        let wn = a.mul(c444, x);
        let wd = a.add(c111, x);
        let want = a.div(wn, wd);
        let want = a.simplify(want);
        assert!(
            outs.contains(&want),
            "{:?}",
            outs.iter().map(|&o| a.to_text(o)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sqrt_square_uses_positive_carrier() {
        let mut a = ExprArena::new();
        let x = a.var(0);
        let sq = a.mul(x, x);
        let r = a.sqrt(sq);
        let c1 = a.constant(q(1, 1));
        let e = a.div(c1, r);
        let outs = apply_everywhere(&mut a, e, rule_sqrt_square);
        let want = a.div(c1, x);
        let want = a.simplify(want);
        assert!(outs.contains(&want));
    }

    #[test]
    fn factor_groups_subsets_for_horner() {
        // x·x·a + x·b + c → x·(x·a + b) + c
        let mut a = ExprArena::new();
        let x = a.var(0);
        let va = a.var(1);
        let vb = a.var(2);
        let vc = a.var(3);
        let xx = a.mul(x, x);
        let t1 = a.mul(xx, va);
        let t2 = a.mul(x, vb);
        let s1 = a.add(t1, t2);
        let e = a.add(s1, vc);
        let outs = apply_everywhere(&mut a, e, rule_factor);
        let ia = a.mul(x, va);
        let inner = a.add(ia, vb);
        let fac = a.mul(x, inner);
        let want = a.add(fac, vc);
        let want = a.simplify(want);
        assert!(
            outs.contains(&want),
            "{:?}",
            outs.iter().map(|&o| a.to_text(o)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cost_counts_shared_nodes_once() {
        let mut a = ExprArena::new();
        let x = a.var(0);
        let sq = a.mul(x, x);
        let e = a.add(sq, sq); // hash-consed: same node twice
        assert_eq!(a.op_cost(e), COST_MUL + COST_ADD);
        assert_eq!(a.op_count(e), 2);
    }

    #[test]
    fn decimal_literals_round_trip() {
        assert_eq!(decimal_literal(&q(1, 4)).as_deref(), Some("0.25"));
        assert_eq!(decimal_literal(&q(111, 25)).as_deref(), Some("4.44"));
        assert_eq!(decimal_literal(&q(12321, 2500)).as_deref(), Some("4.9284"));
        assert_eq!(decimal_literal(&q(1000, 1)).as_deref(), Some("1000"));
        assert_eq!(decimal_literal(&q(1, 3)), None);
        assert_eq!(decimal_literal(&q(-1, 2)), None);
    }
}
