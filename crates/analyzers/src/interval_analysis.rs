//! The interval-arithmetic baseline (Gappa stand-in).
//!
//! Classic forward abstract interpretation. Each node carries its ideal
//! range `I`, a worst-case **absolute** error `E`, and — on strictly
//! positive ranges — a worst-case **relative** error `R` between the
//! floating-point and ideal values. Each rounded operation applies the
//! standard model (paper eq. 2): `E += u·sup|Ĩ|` and `R += u·(1+R)`.
//! Propagating the relative form directly is what lets interval tools
//! report usable relative bounds over wide ranges like `[0.1, 1000]`
//! (dividing a global absolute bound by the smallest result magnitude
//! would be off by orders of magnitude); it is also why the technique is
//! compositional but conservative under error-amplifying composition, the
//! behaviour the paper's Table 3 exercises.

use crate::ir::{Expr, Kernel};
use numfuzz_exact::{funcs::sqrt_enclosure, RatInterval, Rational};
use numfuzz_softfloat::{Format, RoundingMode};

/// The result of a baseline analysis.
#[derive(Clone, Debug)]
pub struct ErrorBound {
    /// Ideal range of the result.
    pub range: RatInterval,
    /// Worst-case absolute error (`None` when a side condition — e.g. a
    /// sqrt radicand smaller than its own accumulated error bound — makes
    /// the absolute form uninformative).
    pub abs: Option<Rational>,
    /// Worst-case relative error (`None` when it cannot be established,
    /// e.g. ranges admitting zero or subtraction cancellation).
    pub rel: Option<Rational>,
}

/// Analyzer failure: empty/invalid ranges for the kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisError(pub String);

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "analysis failed: {}", self.0)
    }
}

impl std::error::Error for AnalysisError {}

#[derive(Clone)]
pub(crate) struct State {
    pub(crate) range: RatInterval,
    /// Absolute error; `None` once a side condition failed.
    pub(crate) abs: Option<Rational>,
    /// Relative error; `None` once positivity is lost.
    pub(crate) rel: Option<Rational>,
}

impl State {
    pub(crate) fn finish(self) -> ErrorBound {
        // The relative bound can also be recovered from the absolute one
        // when the range stays away from zero; report the tighter. The
        // absolute bound can likewise be recovered from the relative one.
        let rel_from_abs = match (&self.abs, self.range.contains_zero()) {
            (Some(a), false) => Some(a.div(&self.range.abs_inf())),
            _ => None,
        };
        let abs_from_rel = self.rel.as_ref().map(|r| r.mul(&self.range.abs_sup()));
        let rel = match (self.rel.clone(), rel_from_abs) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let abs = match (self.abs, abs_from_rel) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        ErrorBound { range: self.range, abs, rel }
    }
}

pub(crate) const SQRT_BITS: u32 = 96;

/// Runs the interval analysis on a kernel for a given format and mode.
///
/// # Errors
///
/// [`AnalysisError`] when a division/sqrt domain side condition cannot be
/// established from the ranges.
pub fn analyze_interval(
    kernel: &Kernel,
    format: Format,
    mode: RoundingMode,
) -> Result<ErrorBound, AnalysisError> {
    let u = format.unit_roundoff(mode);
    let ranges = kernel.ranges();
    let cx = Ctx { input_rel: Rational::from_int(kernel.input_rel_ulps as i64).mul(&u) };
    Ok(go(&kernel.expr, &ranges, &u, &cx)?.finish())
}

struct Ctx {
    input_rel: Rational,
}

fn pos(r: &RatInterval) -> bool {
    r.is_strictly_positive()
}

/// Fresh rounding: `E += u·(sup|I| + E)`, `R += u·(1 + R)`.
fn rounded(
    range: RatInterval,
    abs: Option<Rational>,
    rel: Option<Rational>,
    u: &Rational,
) -> State {
    let abs = abs.map(|a| {
        let fresh = u.mul(&range.abs_sup().add(&a));
        a.add(&fresh)
    });
    let rel = rel.map(|r| r.add(&u.mul(&Rational::one().add(&r))));
    State { range, abs, rel }
}

/// Combines two optional errors with a binary bound.
fn zip(
    a: &Option<Rational>,
    b: &Option<Rational>,
    f: impl FnOnce(&Rational, &Rational) -> Rational,
) -> Option<Rational> {
    match (a, b) {
        (Some(x), Some(y)) => Some(f(x, y)),
        _ => None,
    }
}

fn go(e: &Expr, inputs: &[RatInterval], u: &Rational, cx: &Ctx) -> Result<State, AnalysisError> {
    match e {
        Expr::Const(c) => Ok(State {
            range: RatInterval::point(c.clone()),
            abs: Some(Rational::zero()),
            rel: Some(Rational::zero()),
        }),
        Expr::Var(i) => {
            let range = inputs
                .get(*i)
                .cloned()
                .ok_or_else(|| AnalysisError("missing input range".into()))?;
            // Inputs may carry relative error (the *_with_error rows).
            let rel = cx.input_rel.clone();
            let abs = range.abs_sup().mul(&rel);
            Ok(State { range, abs: Some(abs), rel: Some(rel) })
        }
        Expr::Add(a, b) => {
            let (sa, sb) = (go(a, inputs, u, cx)?, go(b, inputs, u, cx)?);
            let range = sa.range.add(&sb.range);
            // Positive operands: the relative error of a sum is a convex
            // combination, bounded by the max.
            let rel = match (&sa.rel, &sb.rel) {
                (Some(ra), Some(rb)) if pos(&sa.range) && pos(&sb.range) => {
                    Some(ra.clone().max(rb.clone()))
                }
                _ => None,
            };
            let abs = zip(&sa.abs, &sb.abs, |x, y| x.add(y));
            Ok(rounded(range, abs, rel, u))
        }
        Expr::Sub(a, b) => {
            let (sa, sb) = (go(a, inputs, u, cx)?, go(b, inputs, u, cx)?);
            let range = sa.range.sub(&sb.range);
            // Cancellation: no useful relative form.
            let abs = zip(&sa.abs, &sb.abs, |x, y| x.add(y));
            Ok(rounded(range, abs, None, u))
        }
        Expr::Mul(a, b) => {
            let (sa, sb) = (go(a, inputs, u, cx)?, go(b, inputs, u, cx)?);
            let range = sa.range.mul(&sb.range);
            let abs = zip(&sa.abs, &sb.abs, |ea, eb| {
                sa.range.abs_sup().mul(eb).add(&sb.range.abs_sup().mul(ea)).add(&ea.mul(eb))
            });
            // (1+ra)(1+rb) - 1 = ra + rb + ra·rb.
            let rel = match (&sa.rel, &sb.rel) {
                (Some(ra), Some(rb)) => Some(ra.add(rb).add(&ra.mul(rb))),
                _ => None,
            };
            Ok(rounded(range, abs, rel, u))
        }
        Expr::Div(a, b) => {
            let (sa, sb) = (go(a, inputs, u, cx)?, go(b, inputs, u, cx)?);
            if sb.range.contains_zero() {
                return Err(AnalysisError("division by a range containing zero".into()));
            }
            let b_inf = sb.range.abs_inf();
            let range = sa
                .range
                .div(&sb.range)
                .ok_or_else(|| AnalysisError("division by a range containing zero".into()))?;
            let abs = match zip(&sa.abs, &sb.abs, |_, eb| b_inf.sub(eb)) {
                Some(b_fp_inf) if b_fp_inf.is_positive() => {
                    let (ea, eb) =
                        (sa.abs.as_ref().expect("zipped"), sb.abs.as_ref().expect("zipped"));
                    let num = ea.mul(&sb.range.abs_sup()).add(&eb.mul(&sa.range.abs_sup()));
                    Some(num.div(&b_inf.mul(&b_fp_inf)))
                }
                _ => None,
            };
            // (1+ra)/(1-rb) - 1 <= (ra + rb)/(1 - rb), for rb < 1.
            let rel = match (&sa.rel, &sb.rel) {
                (Some(ra), Some(rb)) if rb < &Rational::one() => {
                    Some(ra.add(rb).div(&Rational::one().sub(rb)))
                }
                _ => None,
            };
            Ok(rounded(range, abs, rel, u))
        }
        Expr::Fma(a, b, c) => {
            let (sa, sb) = (go(a, inputs, u, cx)?, go(b, inputs, u, cx)?);
            let sc = go(c, inputs, u, cx)?;
            let prod = sa.range.mul(&sb.range);
            let range = prod.add(&sc.range);
            let abs_prod = zip(&sa.abs, &sb.abs, |ea, eb| {
                sa.range.abs_sup().mul(eb).add(&sb.range.abs_sup().mul(ea)).add(&ea.mul(eb))
            });
            let abs = zip(&abs_prod, &sc.abs, |x, y| x.add(y));
            let rel_prod = match (&sa.rel, &sb.rel) {
                (Some(ra), Some(rb)) => Some(ra.add(rb).add(&ra.mul(rb))),
                _ => None,
            };
            let rel = match (&rel_prod, &sc.rel) {
                (Some(rp), Some(rc)) if pos(&prod) && pos(&sc.range) => {
                    Some(rp.clone().max(rc.clone()))
                }
                _ => None,
            };
            // Single rounding for the whole fused operation.
            Ok(rounded(range, abs, rel, u))
        }
        Expr::Sqrt(a) => {
            let sa = go(a, inputs, u, cx)?;
            if sa.range.lo().is_negative() {
                return Err(AnalysisError("sqrt of a possibly-negative range".into()));
            }
            let range = sa.range.sqrt(SQRT_BITS);
            // |√ã - √a| = |ã - a| / (√ã + √a) <= Ea / √(inf a - Ea),
            // available only while the radicand clears its error bound.
            let abs = sa.abs.as_ref().and_then(|ea| {
                if ea.is_zero() {
                    return Some(Rational::zero());
                }
                let base = sa.range.lo().sub(ea);
                if base.is_positive() {
                    Some(ea.div(sqrt_enclosure(&base, SQRT_BITS).lo()))
                } else {
                    None
                }
            });
            // |√(1±r) - 1| <= 1 - √(1-r), for r < 1.
            let rel = match &sa.rel {
                Some(r) if r < &Rational::one() => {
                    let s = sqrt_enclosure(&Rational::one().sub(r), SQRT_BITS);
                    Some(Rational::one().sub(s.lo()))
                }
                _ => None,
            };
            Ok(rounded(range, abs, rel, u))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr;

    fn rat(s: &str) -> Rational {
        Rational::from_decimal_str(s).expect("valid test literal")
    }

    fn iv(lo: &str, hi: &str) -> RatInterval {
        RatInterval::new(rat(lo), rat(hi))
    }

    fn b64() -> (Format, RoundingMode) {
        (Format::BINARY64, RoundingMode::TowardPositive)
    }

    #[test]
    fn single_multiplication_is_one_ulp() {
        let k = Kernel::new(
            "square",
            vec![("x", iv("0.1", "1000"))],
            Expr::mul(Expr::Var(0), Expr::Var(0)),
        );
        let (f, m) = b64();
        let r = analyze_interval(&k, f, m).unwrap();
        // One rounding: relative error exactly u.
        assert_eq!(r.rel.unwrap(), f.unit_roundoff(m));
    }

    #[test]
    fn sum_accumulates_linearly() {
        // ((x+x)+x)+x: 3 roundings; relative error 3u + O(u²).
        let x = || Expr::Var(0);
        let e = Expr::add(Expr::add(Expr::add(x(), x()), x()), x());
        let k = Kernel::new("sum4", vec![("x", iv("0.1", "1000"))], e);
        let (f, m) = b64();
        let r = analyze_interval(&k, f, m).unwrap();
        let rel = r.rel.unwrap();
        let u = f.unit_roundoff(m);
        assert!(rel >= u.mul(&rat("3")));
        assert!(rel <= u.mul(&rat("3.001")));
    }

    #[test]
    fn balanced_sum_is_tighter_than_serial() {
        // Gappa's 2u for (x0+x1)+(x2+x3) vs Λnum's 3u (Table 3,
        // test06_sums4_sum2): the max-rule sees the balance.
        let x = |i| Expr::Var(i);
        let balanced = Expr::add(Expr::add(x(0), x(1)), Expr::add(x(2), x(3)));
        let inputs = vec![
            ("a", iv("0.1", "1000")),
            ("b", iv("0.1", "1000")),
            ("c", iv("0.1", "1000")),
            ("d", iv("0.1", "1000")),
        ];
        let k = Kernel::new("sum2", inputs, balanced);
        let (f, m) = b64();
        let rel = analyze_interval(&k, f, m).unwrap().rel.unwrap();
        let u = f.unit_roundoff(m);
        assert!(rel >= u.mul(&rat("2")));
        assert!(rel <= u.mul(&rat("2.001")));
    }

    #[test]
    fn subtraction_loses_relative_form() {
        let e = Expr::sub(Expr::Var(0), Expr::Var(1));
        let k = Kernel::new("sub", vec![("x", iv("1", "2")), ("y", iv("1", "2"))], e);
        let (f, m) = b64();
        let r = analyze_interval(&k, f, m).unwrap();
        // Range contains zero: no relative bound at all, abs still fine.
        assert!(r.rel.is_none());
        assert!(r.abs.unwrap().is_positive());
    }

    #[test]
    fn soundness_against_actual_evaluation() {
        // Evaluate hypot at concrete points in the softfloat simulator and
        // check the analyzer's relative bound dominates the true error.
        use numfuzz_softfloat::Fp;
        let e = Expr::sqrt(Expr::add(
            Expr::mul(Expr::Var(0), Expr::Var(0)),
            Expr::mul(Expr::Var(1), Expr::Var(1)),
        ));
        let k = Kernel::new("hypot", vec![("x", iv("0.1", "1000")), ("y", iv("0.1", "1000"))], e);
        let format = Format::new(12, 80); // small format -> visible error
        let mode = RoundingMode::TowardPositive;
        let r = analyze_interval(&k, format, mode).unwrap();
        let rel_bound = r.rel.unwrap();
        for (xs, ys) in [("0.1", "0.1"), ("3.5", "997"), ("500", "500"), ("1000", "1000")] {
            // Inputs assumed representable: round them first (as the
            // analyzers do).
            let x = Fp::round(&rat(xs), format, mode).to_rational().unwrap();
            let y = Fp::round(&rat(ys), format, mode).to_rational().unwrap();
            let m1 = Fp::round(&x.mul(&x), format, mode).to_rational().unwrap();
            let m2 = Fp::round(&y.mul(&y), format, mode).to_rational().unwrap();
            let s = Fp::round(&m1.add(&m2), format, mode).to_rational().unwrap();
            let sq = sqrt_enclosure(&s, 160);
            let fp_val = Fp::round(sq.hi(), format, mode).to_rational().unwrap();
            let ideal = sqrt_enclosure(&x.mul(&x).add(&y.mul(&y)), 160);
            let true_rel =
                fp_val.sub(ideal.lo()).abs().max(fp_val.sub(ideal.hi()).abs()).div(ideal.lo());
            assert!(
                true_rel <= rel_bound,
                "true rel error {} exceeds bound {} at ({xs},{ys})",
                true_rel.to_sci_string(3),
                rel_bound.to_sci_string(3)
            );
        }
    }

    #[test]
    fn division_near_zero_rejected() {
        let e = Expr::div(Expr::Const(rat("1")), Expr::sub(Expr::Var(0), Expr::Var(1)));
        let k = Kernel::new("bad", vec![("x", iv("0.1", "1")), ("y", iv("0.1", "1"))], e);
        let (f, m) = b64();
        assert!(analyze_interval(&k, f, m).is_err());
    }
}
