function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
function divfp (xy: (num, num)) : M[eps]num { s = div xy; rnd s }
function sqrtfp (x: ![1/2]num) : M[eps]num { s = sqrt x; rnd s }
function one_by_sqrtxx (x: num) : M[5/2*eps]num {
    let a = mulfp (x, x);
    let s = sqrtfp [a]{1/2};
    divfp (1, s)
}
one_by_sqrtxx 33.3
