/root/repo/target/release/deps/numfuzz_metrics-915eb67ce3fb77c7.d: crates/metrics/src/lib.rs crates/metrics/src/pointwise.rs crates/metrics/src/rp.rs

/root/repo/target/release/deps/libnumfuzz_metrics-915eb67ce3fb77c7.rlib: crates/metrics/src/lib.rs crates/metrics/src/pointwise.rs crates/metrics/src/rp.rs

/root/repo/target/release/deps/libnumfuzz_metrics-915eb67ce3fb77c7.rmeta: crates/metrics/src/lib.rs crates/metrics/src/pointwise.rs crates/metrics/src/rp.rs

crates/metrics/src/lib.rs:
crates/metrics/src/pointwise.rs:
crates/metrics/src/rp.rs:
