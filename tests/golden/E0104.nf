s = add (1, 2);
rnd s
