/root/repo/target/debug/deps/numfuzz_benchsuite-cf95fdbb545c443f.d: crates/benchsuite/src/lib.rs crates/benchsuite/src/conditionals.rs crates/benchsuite/src/generators.rs crates/benchsuite/src/small.rs Cargo.toml

/root/repo/target/debug/deps/libnumfuzz_benchsuite-cf95fdbb545c443f.rmeta: crates/benchsuite/src/lib.rs crates/benchsuite/src/conditionals.rs crates/benchsuite/src/generators.rs crates/benchsuite/src/small.rs Cargo.toml

crates/benchsuite/src/lib.rs:
crates/benchsuite/src/conditionals.rs:
crates/benchsuite/src/generators.rs:
crates/benchsuite/src/small.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
