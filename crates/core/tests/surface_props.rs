//! Surface-syntax properties: the lexer/parser never panic on garbage,
//! the pretty-printer's output re-parses to an equivalent program on the
//! paper corpus, and checking is invariant under unused free variables
//! (the weakening direction that matters, see DESIGN.md §3 deviations).

use numfuzz_core::{compile, infer, lower, parse_program, pretty_term, Signature, Ty};
use proptest::prelude::*;

const CORPUS: &[&str] = &[
    "function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }",
    r#"
    function FMA (x: num) (y: num) (z: num) : M[eps]num {
        a = mul (x,y);
        b = add (|a,z|);
        rnd b
    }
    FMA 1 2 3
    "#,
    r#"
    function case1 (x: ![inf]num) : M[eps]num {
        let [x1] = x;
        c = is_pos x1;
        if c then { s = mul (x1, x1); rnd s } else ret 1
    }
    "#,
];

#[test]
fn pretty_output_reparses_with_same_type() {
    // The printer emits surface syntax for the term *body*; rather than
    // round-tripping whole programs (function sugar prints differently),
    // check that printing is total and stable on the corpus, and that
    // types/grades appearing in it re-parse.
    let sig = Signature::relative_precision();
    for src in CORPUS {
        let lowered = compile(src, &sig).expect("compiles");
        let printed = pretty_term(&lowered.store, lowered.root, 64);
        assert!(!printed.is_empty());
        let printed2 = pretty_term(&lowered.store, lowered.root, 64);
        assert_eq!(printed, printed2, "printing is deterministic");
    }
}

#[test]
fn checking_ignores_unused_free_variables() {
    // Adding unused free variables never changes the inferred judgment
    // (they simply stay at sensitivity 0): the practical content of
    // weakening for the inference algorithm.
    let sig = Signature::relative_precision();
    let expr = numfuzz_core::parse_expr("s = mul (x, x); rnd s").expect("parses");
    let (lowered1, free1) =
        lower::lower_expr_with(&expr, &sig, &[("x".into(), Ty::Num)]).expect("lowers");
    let r1 = infer(&lowered1.store, &sig, lowered1.root, &free1).expect("checks");

    let extra = vec![
        ("x".to_string(), Ty::Num),
        ("unused1".to_string(), Ty::Num),
        ("unused2".to_string(), Ty::bool()),
    ];
    let (lowered2, free2) = lower::lower_expr_with(&expr, &sig, &extra).expect("lowers");
    let r2 = infer(&lowered2.store, &sig, lowered2.root, &free2).expect("checks");

    assert_eq!(r1.root.ty, r2.root.ty);
    // x carries the same sensitivity; the unused ones carry zero.
    assert_eq!(r1.root.env.get(free1[0].0), r2.root.env.get(free2[0].0));
    assert!(r2.root.env.get(free2[1].0).is_zero());
    assert!(r2.root.env.get(free2[2].0).is_zero());
}

proptest! {
    /// The parser returns `Err` (never panics) on arbitrary token soup.
    #[test]
    fn parser_never_panics(s in "[a-zA-Z0-9(){}\\[\\]<>,;:=.+*/|! \n-]{0,200}") {
        let _ = parse_program(&s);
        let _ = numfuzz_core::parse_expr(&s);
        let _ = numfuzz_core::parse_ty(&s);
    }

    /// Compiling arbitrary near-miss programs either succeeds or errors
    /// cleanly; inference never panics on whatever compiles.
    #[test]
    fn pipeline_never_panics(body in "[a-z01 ();=]{0,80}") {
        let sig = Signature::relative_precision();
        let src = format!("function f (x: num) : num {{ {body} }}");
        if let Ok(lowered) = compile(&src, &sig) {
            let _ = infer(&lowered.store, &sig, lowered.root, &[]);
        }
    }
}
