/root/repo/target/debug/deps/props-9d707e4c409d9722.d: crates/exact/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-9d707e4c409d9722.rmeta: crates/exact/tests/props.rs Cargo.toml

crates/exact/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
