//! Regenerates the paper's Table 5: conditional benchmarks. Each surface
//! program is parsed, lowered and type-checked (timed); the reported
//! bound comes from the function's monadic grade via eq. (8).

use numfuzz_bench::{fmt_time, rp_bound_string, PAPER_TABLE5};
use numfuzz_benchsuite::table5;
use numfuzz_core::{compile, infer, Signature, Ty};
use numfuzz_exact::Rational;
use std::time::Instant;

fn main() {
    let sig = Signature::relative_precision();
    let u = Rational::pow2(-52);

    println!("Table 5: conditional benchmarks (binary64, round toward +inf)\n");
    println!(
        "{:<22} | {:>9} {:>10} | {:>9} {:>9}",
        "Benchmark", "Lnum", "t(check)", "paperLnum", "paper(ms)"
    );

    for b in table5() {
        let t0 = Instant::now();
        let lowered = compile(b.source, &sig).expect("compiles");
        let res = infer(&lowered.store, &sig, lowered.root, &[]).expect("checks");
        let elapsed = t0.elapsed();
        let rep = res.fn_report(b.function).expect("function present");
        // Walk the curried type to its monadic codomain.
        let mut t = &rep.inferred;
        let alpha = loop {
            match t {
                Ty::Lolli(_, cod) => t = cod,
                Ty::Monad(g, _) => break g.eval_eps(&u).expect("numeric"),
                other => panic!("unexpected type {other}"),
            }
        };
        let paper = PAPER_TABLE5
            .iter()
            .find(|(n, ..)| *n == b.name)
            .copied()
            .unwrap_or((b.name, "-", "-"));
        println!(
            "{:<22} | {:>9} {:>10} | {:>9} {:>9}",
            b.name,
            rp_bound_string(&alpha),
            fmt_time(elapsed),
            paper.1,
            paper.2,
        );
    }
    println!("\nNote: bounds assume both executions take the same branch (Section 5.1);");
    println!("guards are infinitely sensitive (is_pos / is_gt at ![inf]).");
}
