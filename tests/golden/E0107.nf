function f (x: ![0]num) : num { let [x1] = x; x1 }
f [1]{0}
