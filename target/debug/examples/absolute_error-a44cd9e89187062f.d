/root/repo/target/debug/examples/absolute_error-a44cd9e89187062f.d: examples/absolute_error.rs

/root/repo/target/debug/examples/absolute_error-a44cd9e89187062f: examples/absolute_error.rs

examples/absolute_error.rs:
