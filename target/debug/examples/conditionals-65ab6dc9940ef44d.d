/root/repo/target/debug/examples/conditionals-65ab6dc9940ef44d.d: examples/conditionals.rs Cargo.toml

/root/repo/target/debug/examples/libconditionals-65ab6dc9940ef44d.rmeta: examples/conditionals.rs Cargo.toml

examples/conditionals.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
