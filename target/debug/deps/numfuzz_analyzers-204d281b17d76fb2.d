/root/repo/target/debug/deps/numfuzz_analyzers-204d281b17d76fb2.d: crates/analyzers/src/lib.rs crates/analyzers/src/interval_analysis.rs crates/analyzers/src/ir.rs crates/analyzers/src/std_bounds.rs crates/analyzers/src/taylor.rs crates/analyzers/src/to_core.rs

/root/repo/target/debug/deps/libnumfuzz_analyzers-204d281b17d76fb2.rlib: crates/analyzers/src/lib.rs crates/analyzers/src/interval_analysis.rs crates/analyzers/src/ir.rs crates/analyzers/src/std_bounds.rs crates/analyzers/src/taylor.rs crates/analyzers/src/to_core.rs

/root/repo/target/debug/deps/libnumfuzz_analyzers-204d281b17d76fb2.rmeta: crates/analyzers/src/lib.rs crates/analyzers/src/interval_analysis.rs crates/analyzers/src/ir.rs crates/analyzers/src/std_bounds.rs crates/analyzers/src/taylor.rs crates/analyzers/src/to_core.rs

crates/analyzers/src/lib.rs:
crates/analyzers/src/interval_analysis.rs:
crates/analyzers/src/ir.rs:
crates/analyzers/src/std_bounds.rs:
crates/analyzers/src/taylor.rs:
crates/analyzers/src/to_core.rs:
