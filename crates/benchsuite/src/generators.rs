//! Generators for the large benchmarks of the paper's Table 4.
//!
//! These build arena terms directly (no parsing): `MatrixMultiply128` is
//! 4.2 million floating-point operations and tens of millions of AST
//! nodes, which is exactly what the arena + iterative checker are for.
//! Every generator returns the term, its operation count, and the exact
//! grade coefficient the paper's Λnum column reports.

use numfuzz_core::{CoreArena, TermId, TermStore, Ty, VarId};
use numfuzz_exact::Rational;

/// A generated large benchmark.
#[derive(Debug)]
pub struct Generated {
    /// Benchmark name (Table 4 row).
    pub name: String,
    /// The arena.
    pub store: TermStore,
    /// Root term (type `M[...]num`).
    pub root: TermId,
    /// Free variables with types (empty for constant-input benchmarks).
    pub free: Vec<(VarId, Ty)>,
    /// Number of floating-point operations (Table 4 Ops column).
    pub ops: usize,
    /// Expected grade coefficient (×`eps`).
    pub expected_eps_coeff: Rational,
}

/// `c = term; let x = c; body` — monadic sequencing with the Fig. 1 value
/// restriction respected (the plain `let` names the computation).
fn bind_named(store: &mut TermStore, x: VarId, term: TermId, body: TermId) -> TermId {
    if store.is_value(term) {
        return store.let_bind(x, term, body);
    }
    let c = store.fresh_var("c");
    let cv = store.var(c);
    let bind = store.let_bind(x, cv, body);
    store.let_in(c, term, bind)
}

/// Deterministic positive pseudo-random rationals (LCG), so generated
/// benchmarks are reproducible without RNG dependencies in this crate.
struct Lcg(u64);

impl Lcg {
    fn next_rat(&mut self) -> Rational {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // In (0, 16): positive, away from zero.
        let num = 1 + (self.0 >> 33) % 65_536;
        Rational::ratio(num as i64, 4096)
    }
}

/// `rnd`-per-step FMA Horner evaluation of degree `n` at a free `x`
/// (paper Table 4 rows Horner50/75/100; also the Table 3 Horner family).
///
/// Grade: `n·eps`; ops: `2n`.
pub fn horner(n: usize) -> Generated {
    horner_in(CoreArena::new(), n)
}

/// [`horner`] built into a store sharing `tys` (one session's arena).
pub fn horner_in(tys: CoreArena, n: usize) -> Generated {
    let mut store = TermStore::with_arena(tys);
    let x = store.fresh_var("x");
    let mut rng = Lcg(0x5eed + n as u64);
    // acc := a_n; acc := rnd(acc*x + a_i) for i = n-1 .. 0.
    let first = store.num(rng.next_rat());
    let acc0 = store.fresh_var("acc0");
    let mut acc = acc0;
    // Bind chain built innermost-last: collect steps then fold.
    let mut steps: Vec<(VarId, TermId)> = vec![(acc0, { store.ret(first) })];
    for i in 0..n {
        let next = store.fresh_var(&format!("acc{}", i + 1));
        let xv = store.var(x);
        let av = store.var(acc);
        let prod_var = store.fresh_var("m");
        let pair = store.pair_tensor(av, xv);
        let mul = store.op("mul", pair);
        let coeffv = store.num(rng.next_rat());
        let mv = store.var(prod_var);
        let sum_pair = store.pair_with(mv, coeffv);
        let add = store.op("add", sum_pair);
        let s = store.fresh_var("s");
        let sv = store.var(s);
        let rnd = store.rnd(sv);
        let fma_body = {
            let inner = store.let_in(s, add, rnd);
            store.let_in(prod_var, mul, inner)
        };
        steps.push((next, fma_body));
        acc = next;
    }
    // Fold: let-bind each step (naming the computation first, so the
    // let-bind scrutinee is a value per Fig. 1), final body returns the
    // accumulator; each acc_i is used once at sensitivity 1.
    let last = steps.last().expect("nonempty").0;
    let lv = store.var(last);
    let mut body = store.ret(lv);
    for (var, term) in steps.into_iter().rev() {
        body = bind_named(&mut store, var, term, body);
    }
    Generated {
        name: format!("Horner{n}"),
        store,
        root: body,
        free: vec![(x, Ty::Num)],
        ops: 2 * n,
        expected_eps_coeff: Rational::from_int(n as i64),
    }
}

/// Serial summation of `terms` pseudo-random positive constants with a
/// rounding after every addition (Table 4 SerialSum: 1024 terms, 1023
/// ops, grade `(terms-1)·eps`).
pub fn serial_sum(terms: usize) -> Generated {
    serial_sum_in(CoreArena::new(), terms)
}

/// [`serial_sum`] built into a store sharing `tys`.
pub fn serial_sum_in(tys: CoreArena, terms: usize) -> Generated {
    assert!(terms >= 2);
    let mut store = TermStore::with_arena(tys);
    let mut rng = Lcg(0xacc);
    let mut acc_var = store.fresh_var("s1");
    let first = store.num(rng.next_rat());
    let mut steps: Vec<(VarId, TermId)> = vec![(acc_var, store.ret(first))];
    for i in 1..terms {
        let next = store.fresh_var(&format!("s{}", i + 1));
        let av = store.var(acc_var);
        let kv = store.num(rng.next_rat());
        let pair = store.pair_with(av, kv);
        let add = store.op("add", pair);
        let s = store.fresh_var("t");
        let sv = store.var(s);
        let rnd = store.rnd(sv);
        let step = store.let_in(s, add, rnd);
        steps.push((next, step));
        acc_var = next;
    }
    let lv = store.var(acc_var);
    let mut body = store.ret(lv);
    for (var, term) in steps.into_iter().rev() {
        body = bind_named(&mut store, var, term, body);
    }
    Generated {
        name: format!("SerialSum({terms})"),
        store,
        root: body,
        free: Vec::new(),
        ops: terms - 1,
        expected_eps_coeff: Rational::from_int(terms as i64 - 1),
    }
}

/// `n×n` matrix multiplication over pseudo-random positive constants,
/// every multiply and add rounded (Table 4 MatrixMultiply rows).
///
/// All `n²` dot products are computed; the program returns the last
/// element, whose grade `(2n-1)·eps` is the element-wise bound the paper
/// reports. Ops: `n²·(2n-1)`.
pub fn matrix_multiply(n: usize) -> Generated {
    matrix_multiply_in(CoreArena::new(), n)
}

/// [`matrix_multiply`] built into a store sharing `tys`.
pub fn matrix_multiply_in(tys: CoreArena, n: usize) -> Generated {
    assert!(n >= 1);
    let mut store = TermStore::with_arena(tys);
    let mut rng = Lcg(0x3a7 + n as u64);
    let a: Vec<Vec<Rational>> = (0..n).map(|_| (0..n).map(|_| rng.next_rat()).collect()).collect();
    let b: Vec<Vec<Rational>> = (0..n).map(|_| (0..n).map(|_| rng.next_rat()).collect()).collect();

    // One dot product: binds of rounded mul / rounded add steps, value is
    // the final accumulator (a monadic computation of grade (2n-1)eps).
    let dot = |store: &mut TermStore, i: usize, j: usize| -> TermId {
        let mut steps: Vec<(VarId, TermId)> = Vec::with_capacity(2 * n);
        let mut acc: Option<VarId> = None;
        for k in 0..n {
            // m_k = rnd(a[i][k] * b[k][j])
            let m = store.fresh_var("m");
            let av = store.num(a[i][k].clone());
            let bv = store.num(b[k][j].clone());
            let pair = store.pair_tensor(av, bv);
            let mul = store.op("mul", pair);
            let t = store.fresh_var("t");
            let tv = store.var(t);
            let rnd = store.rnd(tv);
            let mul_step = store.let_in(t, mul, rnd);
            steps.push((m, mul_step));
            acc = Some(match acc {
                None => m,
                Some(prev) => {
                    // acc' = rnd(acc + m_k)
                    let s = store.fresh_var("acc");
                    let pv = store.var(prev);
                    let mv = store.var(m);
                    let pair = store.pair_with(pv, mv);
                    let add = store.op("add", pair);
                    let t = store.fresh_var("t");
                    let tv = store.var(t);
                    let rnd = store.rnd(tv);
                    let add_step = store.let_in(t, add, rnd);
                    steps.push((s, add_step));
                    s
                }
            });
        }
        let last = acc.expect("n >= 1");
        let lv = store.var(last);
        let mut body = store.ret(lv);
        for (var, term) in steps.into_iter().rev() {
            body = bind_named(store, var, term, body);
        }
        body
    };

    // Compute every element; earlier elements are let-bound (and unused),
    // the last one is the program's result, carrying the element-wise
    // grade.
    let mut elements: Vec<(VarId, TermId)> = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            if i == n - 1 && j == n - 1 {
                break;
            }
            let e = dot(&mut store, i, j);
            let v = store.fresh_var(&format!("c{i}_{j}"));
            elements.push((v, e));
        }
    }
    let mut body = dot(&mut store, n - 1, n - 1);
    for (var, term) in elements.into_iter().rev() {
        body = store.let_in(var, term, body);
    }
    Generated {
        name: format!("MatrixMultiply{n}"),
        store,
        root: body,
        free: Vec::new(),
        ops: n * n * (2 * n - 1),
        expected_eps_coeff: Rational::from_int(2 * n as i64 - 1),
    }
}

/// Degree-`n` polynomial evaluated the naive way (fresh power chains per
/// monomial), every operation rounded — the Table 4 `Poly50` row.
///
/// Term `i >= 2` costs `i` roundings (`i-1` for the power chain, one for
/// the coefficient), term 1 costs one, and each of the `n` additions one:
/// ops = grade coefficient = `Σ_{i=2..n} i + 1 + n`.
pub fn poly_naive(n: usize) -> Generated {
    poly_naive_in(CoreArena::new(), n)
}

/// [`poly_naive`] built into a store sharing `tys`.
pub fn poly_naive_in(tys: CoreArena, n: usize) -> Generated {
    assert!(n >= 2);
    let mut store = TermStore::with_arena(tys);
    let x = store.fresh_var("x");
    let mut rng = Lcg(0x90137 + n as u64);
    let mut steps: Vec<(VarId, TermId)> = Vec::new();

    // Rounded multiply of two value terms.
    let rmul = |store: &mut TermStore, lhs: TermId, rhs: TermId| -> TermId {
        let pair = store.pair_tensor(lhs, rhs);
        let mul = store.op("mul", pair);
        let t = store.fresh_var("t");
        let tv = store.var(t);
        let rnd = store.rnd(tv);
        store.let_in(t, mul, rnd)
    };

    // term_i variables, i = 1..n (term 0 is an exact constant).
    let mut terms: Vec<VarId> = Vec::new();
    for i in 1..=n {
        // p_1 = x; p_k = rnd(p_{k-1} * x) for k = 2..i; t_i = rnd(a_i * p_i).
        let mut power: Option<VarId> = None;
        for _ in 2..=i {
            let prev: TermId = match power {
                None => store.var(x),
                Some(pv) => store.var(pv),
            };
            let xv = store.var(x);
            let m = rmul(&mut store, prev, xv);
            let pvar = store.fresh_var("p");
            steps.push((pvar, m));
            power = Some(pvar);
        }
        let coeff = store.num(rng.next_rat());
        let base = match power {
            None => store.var(x), // i == 1
            Some(pv) => store.var(pv),
        };
        let t = rmul(&mut store, coeff, base);
        let tvar = store.fresh_var(&format!("term{i}"));
        steps.push((tvar, t));
        terms.push(tvar);
    }
    // Accumulate: acc_0 = a_0 (exact); acc_i = rnd(acc + term_i).
    let a0 = store.num(rng.next_rat());
    let acc0 = store.fresh_var("acc");
    steps.push((acc0, store.ret(a0)));
    let mut acc = acc0;
    for t in terms {
        let av = store.var(acc);
        let tv = store.var(t);
        let pair = store.pair_with(av, tv);
        let add = store.op("add", pair);
        let s = store.fresh_var("t");
        let sv = store.var(s);
        let rnd = store.rnd(sv);
        let step = store.let_in(s, add, rnd);
        let next = store.fresh_var("acc");
        steps.push((next, step));
        acc = next;
    }
    let lv = store.var(acc);
    let mut body = store.ret(lv);
    for (var, term) in steps.into_iter().rev() {
        body = bind_named(&mut store, var, term, body);
    }
    let coeff_total: i64 = (2..=n as i64).sum::<i64>() + 1 + n as i64;
    Generated {
        name: format!("Poly{n}"),
        store,
        root: body,
        free: vec![(x, Ty::Num)],
        ops: coeff_total as usize,
        expected_eps_coeff: Rational::from_int(coeff_total),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfuzz_core::{infer, Grade, Signature};

    fn grade_of(g: &Generated) -> (String, String) {
        assert!(g.store.conforms_to_value_restriction(g.root), "{}: Fig. 1 syntax", g.name);
        let sig = Signature::relative_precision();
        let res =
            infer(&g.store, &sig, g.root, &g.free).unwrap_or_else(|e| panic!("{}: {e}", g.name));
        let expected = Ty::monad(Grade::symbol("eps").scale(&g.expected_eps_coeff), Ty::Num);
        (res.root.ty.to_string(), expected.to_string())
    }

    #[test]
    fn horner_grades() {
        for n in [2, 5, 50] {
            let g = horner(n);
            let (got, want) = grade_of(&g);
            assert_eq!(got, want, "Horner{n}");
            assert_eq!(g.ops, 2 * n);
        }
    }

    #[test]
    fn serial_sum_grade() {
        let g = serial_sum(64);
        let (got, want) = grade_of(&g);
        assert_eq!(got, want);
        assert_eq!(g.ops, 63);
    }

    #[test]
    fn matrix_multiply_grade() {
        let g = matrix_multiply(4);
        let (got, want) = grade_of(&g);
        // (2·4-1) = 7 eps: the paper's 1.55e-15 for MatrixMultiply4.
        assert_eq!(got, want);
        assert_eq!(got, "M[7*eps]num");
        assert_eq!(g.ops, 112);
    }

    #[test]
    fn poly_grade_matches_table4() {
        // Poly50: 1325 ops and 1325·eps = 2.94e-13 (Table 4).
        let g = poly_naive(50);
        assert_eq!(g.ops, 1325);
        let (got, want) = grade_of(&g);
        assert_eq!(got, want);
        let bound = g.expected_eps_coeff.mul(&Rational::pow2(-52));
        assert_eq!(bound.to_sci_string(3), "2.94e-13");
    }

    #[test]
    fn table4_bounds_render_like_the_paper() {
        let u = Rational::pow2(-52);
        let rows: &[(usize, &str)] = &[(50, "1.11e-14"), (100, "2.22e-14")];
        for (n, s) in rows {
            let g = horner(*n);
            assert_eq!(g.expected_eps_coeff.mul(&u).to_sci_string(3), *s, "Horner{n}");
        }
        let ss = serial_sum(1024);
        assert_eq!(ss.expected_eps_coeff.mul(&u).to_sci_string(3), "2.27e-13");
        for (n, s) in [(4usize, "1.55e-15"), (16, "6.88e-15"), (64, "2.82e-14")] {
            let g = matrix_multiply(n.min(4)); // grade formula only
            let _ = g;
            let coeff = Rational::from_int(2 * n as i64 - 1);
            assert_eq!(coeff.mul(&u).to_sci_string(3), s, "MatrixMultiply{n}");
        }
    }
}
