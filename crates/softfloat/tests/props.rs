//! Property tests for the softfloat substrate.
//!
//! The strongest oracle available is the host's IEEE 754 binary64 unit in
//! round-to-nearest mode: our exact-rational implementation must agree bit
//! for bit on every operation. Directed modes are checked against the
//! standard model and bracketing properties, and tiny formats are checked
//! exhaustively elsewhere (see `round.rs` unit tests).

use numfuzz_exact::{BigInt, Rational};
use numfuzz_softfloat::{Format, Fp, RoundingMode};
use proptest::prelude::*;

/// Finite, non-pathological f64s (no NaN/inf; magnitudes that cannot
/// overflow when combined).
fn finite_f64() -> impl Strategy<Value = f64> {
    any::<f64>().prop_filter("finite, moderate", |v| {
        v.is_finite() && v.abs() < 1e150 && (*v == 0.0 || v.abs() > 1e-150)
    })
}

fn bits_eq(a: f64, b: f64) -> bool {
    // NaNs compare equal as a class; zeros must match in sign.
    (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits()
}

proptest! {
    #[test]
    fn add_matches_host(a in finite_f64(), b in finite_f64()) {
        let ours = Fp::from_f64(a).add_fp(&Fp::from_f64(b), RoundingMode::NearestEven);
        prop_assert!(bits_eq(ours.to_f64(), a + b), "{a} + {b}: ours {} host {}", ours.to_f64(), a + b);
    }

    #[test]
    fn sub_matches_host(a in finite_f64(), b in finite_f64()) {
        let ours = Fp::from_f64(a).sub_fp(&Fp::from_f64(b), RoundingMode::NearestEven);
        prop_assert!(bits_eq(ours.to_f64(), a - b));
    }

    #[test]
    fn mul_matches_host(a in finite_f64(), b in finite_f64()) {
        let ours = Fp::from_f64(a).mul_fp(&Fp::from_f64(b), RoundingMode::NearestEven);
        prop_assert!(bits_eq(ours.to_f64(), a * b));
    }

    #[test]
    fn div_matches_host(a in finite_f64(), b in finite_f64()) {
        let ours = Fp::from_f64(a).div_fp(&Fp::from_f64(b), RoundingMode::NearestEven);
        prop_assert!(bits_eq(ours.to_f64(), a / b));
    }

    #[test]
    fn sqrt_matches_host(a in finite_f64()) {
        let ours = Fp::from_f64(a).sqrt_fp(RoundingMode::NearestEven);
        prop_assert!(bits_eq(ours.to_f64(), a.sqrt()));
    }

    #[test]
    fn fma_matches_host(a in finite_f64(), b in finite_f64(), c in finite_f64()) {
        let ours = Fp::from_f64(a).fma_fp(&Fp::from_f64(b), &Fp::from_f64(c), RoundingMode::NearestEven);
        prop_assert!(bits_eq(ours.to_f64(), a.mul_add(b, c)));
    }

    #[test]
    fn f64_roundtrip(a in any::<f64>()) {
        let fp = Fp::from_f64(a);
        let back = fp.to_f64();
        prop_assert!(bits_eq(a, back));
    }

    /// Directed rounding brackets the exact value and RN picks one of the
    /// two directed results (Table 2 semantics).
    #[test]
    fn directed_bracket(n in 1i64..1_000_000_000, d in 1i64..1_000_000_000, neg in any::<bool>()) {
        let q = {
            let q = Rational::ratio(n, d);
            if neg { q.neg() } else { q }
        };
        let f = Format::BINARY64;
        let up = Fp::round(&q, f, RoundingMode::TowardPositive);
        let dn = Fp::round(&q, f, RoundingMode::TowardNegative);
        let rn = Fp::round(&q, f, RoundingMode::NearestEven);
        let rz = Fp::round(&q, f, RoundingMode::TowardZero);
        prop_assert!(dn.to_rational().unwrap() <= q);
        prop_assert!(up.to_rational().unwrap() >= q);
        prop_assert!(rn == up || rn == dn || (rn.is_zero() && (up.is_zero() || dn.is_zero())));
        // RZ equals the directed mode pointing at zero.
        if q.is_negative() {
            prop_assert!(rz.to_rational().unwrap() == up.to_rational().unwrap());
        } else {
            prop_assert!(rz.to_rational().unwrap() == dn.to_rational().unwrap());
        }
        // Exactly representable iff up == dn.
        if up == dn {
            prop_assert_eq!(up.to_rational().unwrap(), q);
        } else {
            // One ulp apart.
            prop_assert_eq!(up.to_rational().unwrap().sub(&dn.to_rational().unwrap()), dn.ulp().clone().max(up.ulp()));
        }
    }

    /// Standard model (paper eq. 2) on random rationals, all modes, several
    /// formats: |round(x) - x| <= u |x| away from under/overflow.
    #[test]
    fn standard_model_all_modes(n in 1i64..10_000_000, d in 1i64..10_000_000, p in 3u32..30) {
        let q = Rational::ratio(n, d);
        let f = Format::new(p, 100);
        for mode in RoundingMode::ALL {
            let r = Fp::round(&q, f, mode).to_rational().unwrap();
            let err = r.sub(&q).abs();
            prop_assert!(err <= f.unit_roundoff(mode).mul(&q), "p={p} mode={mode} q={q}");
        }
    }

    /// Rounding is monotone: x <= y implies round(x) <= round(y).
    #[test]
    fn rounding_monotone(a in -10_000_000i64..10_000_000, b in -10_000_000i64..10_000_000, d in 1i64..1000) {
        let (x, y) = (Rational::ratio(a.min(b), d), Rational::ratio(a.max(b), d));
        let f = Format::new(5, 8);
        for mode in RoundingMode::ALL {
            let rx = Fp::round(&x, f, mode);
            let ry = Fp::round(&y, f, mode);
            prop_assert!(rx.num_cmp(&ry) != Some(std::cmp::Ordering::Greater), "mode {mode}");
        }
    }

    /// Ordinals index the float line: from_ordinal inverts ordinal and
    /// ordering of ordinals matches numeric ordering.
    #[test]
    fn ordinal_bijection(k in -200i64..200) {
        let f = Format::new(4, 4);
        let ord = BigInt::from(k);
        let max_ord = Fp::max_finite(f, false).ordinal();
        prop_assume!(ord.abs() <= max_ord);
        let fp = Fp::from_ordinal(f, &ord);
        prop_assert_eq!(fp.ordinal(), ord);
        let next = fp.next_up();
        if !next.is_infinite() {
            prop_assert!(next.to_rational().unwrap() > fp.to_rational().unwrap());
        }
    }
}
