//! # numfuzz-benchsuite
//!
//! The benchmark workloads of the paper's evaluation (Section 6):
//!
//! * [`small`] — the seventeen Table 3 kernels (FPBench subset + Horner
//!   family), each with its IR form, sample inputs, and the exact Λnum
//!   grade the paper reports;
//! * [`generators`] — the Table 4 programs (Horner50/75/100,
//!   MatrixMultiply4–128, SerialSum, Poly50), built directly into the
//!   term arena at full scale;
//! * [`conditionals`] — the four Table 5 conditional kernels as surface
//!   programs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conditionals;
pub mod generators;
pub mod small;

pub use conditionals::{table5, CondBench};
pub use generators::{
    horner, horner_in, matrix_multiply, matrix_multiply_in, poly_naive, poly_naive_in, serial_sum,
    serial_sum_in, Generated,
};
pub use small::{horner2_with_error_kernel, horner2_with_error_source, table3, SmallBench};
