/root/repo/target/debug/deps/numfuzz-b4137a6fd37705e7.d: src/lib.rs src/analyzer.rs src/compat.rs src/diag.rs src/program.rs Cargo.toml

/root/repo/target/debug/deps/libnumfuzz-b4137a6fd37705e7.rmeta: src/lib.rs src/analyzer.rs src/compat.rs src/diag.rs src/program.rs Cargo.toml

src/lib.rs:
src/analyzer.rs:
src/compat.rs:
src/diag.rs:
src/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
