//! Arbitrary-precision signed integers built on [`BigUint`].

use crate::biguint::{BigUint, ParseBigUintError};
use std::cmp::Ordering;
use std::fmt;

/// Sign of a [`BigInt`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Zero.
    Zero,
    /// Strictly positive.
    Plus,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        }
    }

    fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// # Examples
///
/// ```
/// use numfuzz_exact::BigInt;
///
/// let a: BigInt = "-123456789123456789".parse()?;
/// assert_eq!((&a * &a).to_string(), "15241578780673678515622620750190521");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The canonical zero.
    pub fn zero() -> Self {
        BigInt { sign: Sign::Zero, mag: BigUint::zero() }
    }

    /// The canonical one.
    pub fn one() -> Self {
        BigInt { sign: Sign::Plus, mag: BigUint::one() }
    }

    /// Builds from a sign and magnitude, normalizing zero.
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with zero sign");
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Consumes `self` and returns the magnitude.
    pub fn into_magnitude(self) -> BigUint {
        self.mag
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        match self.sign {
            Sign::Minus => BigInt { sign: Sign::Plus, mag: self.mag.clone() },
            _ => self.clone(),
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        BigInt { sign: self.sign.flip(), mag: self.mag.clone() }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt { sign: a, mag: self.mag.add(&other.mag) },
            _ => match self.mag.cmp(&other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt { sign: self.sign, mag: self.mag.sub(&other.mag) },
                Ordering::Less => BigInt { sign: other.sign, mag: other.mag.sub(&self.mag) },
            },
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// `self * other`.
    pub fn mul(&self, other: &Self) -> Self {
        let sign = self.sign.mul(other.sign);
        if sign == Sign::Zero {
            return BigInt::zero();
        }
        BigInt { sign, mag: self.mag.mul(&other.mag) }
    }

    /// Truncated division with remainder: `self = q*d + r`, `|r| < |d|`,
    /// and `r` has the sign of `self` (C-style truncation).
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn div_rem(&self, d: &Self) -> (Self, Self) {
        assert!(!d.is_zero(), "division by zero");
        let (q, r) = self.mag.div_rem(&d.mag);
        let q_sign = self.sign.mul(d.sign);
        let q = if q.is_zero() { BigInt::zero() } else { BigInt { sign: q_sign, mag: q } };
        let r = if r.is_zero() { BigInt::zero() } else { BigInt { sign: self.sign, mag: r } };
        (q, r)
    }

    /// `self^exp`.
    pub fn pow(&self, exp: u64) -> Self {
        let mag = self.mag.pow(exp);
        let sign = if self.sign == Sign::Minus && exp % 2 == 1 {
            Sign::Minus
        } else if mag.is_zero() {
            Sign::Zero
        } else if self.sign == Sign::Zero {
            if exp == 0 {
                Sign::Plus
            } else {
                Sign::Zero
            }
        } else {
            Sign::Plus
        };
        BigInt::from_sign_mag(if mag.is_zero() { Sign::Zero } else { sign }, mag)
    }

    /// `self << bits`.
    pub fn shl_bits(&self, bits: u64) -> Self {
        BigInt { sign: self.sign, mag: self.mag.shl_bits(bits) }
    }

    /// Converts to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        let mag = self.mag.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Plus => i64::try_from(mag).ok(),
            Sign::Minus => {
                if mag <= i64::MAX as u64 + 1 {
                    Some((mag as i64).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        match self.sign {
            Sign::Minus => -m,
            _ => m,
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt { sign: Sign::Plus, mag: BigUint::from(v as u64) },
            Ordering::Less => BigInt { sign: Sign::Minus, mag: BigUint::from(v.unsigned_abs()) },
        }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt { sign: Sign::Plus, mag: BigUint::from(v) }
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt { sign: Sign::Plus, mag }
        }
    }
}

impl std::str::FromStr for BigInt {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Minus, rest),
            None => (Sign::Plus, s.strip_prefix('+').unwrap_or(s)),
        };
        let mag = BigUint::from_decimal_str(digits)?;
        Ok(if mag.is_zero() { BigInt::zero() } else { BigInt { sign, mag } })
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => match self.sign {
                Sign::Minus => other.mag.cmp(&self.mag),
                Sign::Zero => Ordering::Equal,
                Sign::Plus => self.mag.cmp(&other.mag),
            },
            ord => ord,
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(self.sign != Sign::Minus, "", &self.mag.to_decimal_string())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

macro_rules! forward_binop_int {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl std::ops::$trait<&BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                BigInt::$inner(self, rhs)
            }
        }
        impl std::ops::$trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                BigInt::$inner(&self, &rhs)
            }
        }
        impl std::ops::$trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                BigInt::$inner(&self, rhs)
            }
        }
    };
}

forward_binop_int!(Add, add, add);
forward_binop_int!(Sub, sub, sub);
forward_binop_int!(Mul, mul, mul);

impl std::ops::Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt::neg(self)
    }
}

impl std::ops::Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt::neg(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(s: &str) -> BigInt {
        s.parse().expect("valid test literal")
    }

    #[test]
    fn signs_normalize() {
        assert_eq!(int("0"), BigInt::zero());
        assert_eq!(int("-0"), BigInt::zero());
        assert!(int("-5").is_negative());
        assert!(int("5").is_positive());
    }

    #[test]
    fn add_mixed_signs() {
        assert_eq!(int("5").add(&int("-3")), int("2"));
        assert_eq!(int("3").add(&int("-5")), int("-2"));
        assert_eq!(int("-3").add(&int("-5")), int("-8"));
        assert_eq!(int("5").add(&int("-5")), BigInt::zero());
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(int("5").sub(&int("7")), int("-2"));
        assert_eq!(int("-5").neg(), int("5"));
        assert_eq!((-int("5")).to_string(), "-5");
    }

    #[test]
    fn mul_signs() {
        assert_eq!(int("-4").mul(&int("6")), int("-24"));
        assert_eq!(int("-4").mul(&int("-6")), int("24"));
        assert_eq!(int("-4").mul(&BigInt::zero()), BigInt::zero());
    }

    #[test]
    fn div_rem_truncates_toward_zero() {
        let (q, r) = int("7").div_rem(&int("2"));
        assert_eq!((q, r), (int("3"), int("1")));
        let (q, r) = int("-7").div_rem(&int("2"));
        assert_eq!((q, r), (int("-3"), int("-1")));
        let (q, r) = int("7").div_rem(&int("-2"));
        assert_eq!((q, r), (int("-3"), int("1")));
        let (q, r) = int("-7").div_rem(&int("-2"));
        assert_eq!((q, r), (int("3"), int("-1")));
    }

    #[test]
    fn ordering_mixed() {
        assert!(int("-10") < int("-2"));
        assert!(int("-2") < int("0"));
        assert!(int("0") < int("3"));
        assert!(int("3") < int("10"));
    }

    #[test]
    fn pow_signs() {
        assert_eq!(int("-2").pow(3), int("-8"));
        assert_eq!(int("-2").pow(4), int("16"));
        assert_eq!(int("0").pow(0), int("1"));
        assert_eq!(int("0").pow(5), BigInt::zero());
    }

    #[test]
    fn i64_roundtrip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(BigInt::from(v).to_i64(), Some(v));
        }
        assert_eq!(int("9223372036854775808").to_i64(), None);
        assert_eq!(int("-9223372036854775808").to_i64(), Some(i64::MIN));
    }

    #[test]
    fn display_negative() {
        assert_eq!(int("-123").to_string(), "-123");
        assert_eq!(BigInt::zero().to_string(), "0");
    }
}
