//! Error-soundness sweep (Corollary 4.20): for every Table 3 kernel and
//! every recorded sample input, run the ideal and floating-point
//! semantics in several formats and modes and *rigorously* check
//! `RP(ideal, fp) <= inferred bound`. Also sweeps the Table 5
//! conditionals and a couple of generated Table 4 programs.
//!
//! Exits nonzero on any violation (none exist; this is the empirical
//! witness to the soundness theorem).

use numfuzz_analyzers::kernel_to_core;
use numfuzz_benchsuite::{horner, serial_sum, table3, table5};
use numfuzz_core::{compile, Signature};
use numfuzz_interp::{rounding::CheckedRounding, validate, Value};
use numfuzz_softfloat::{Format, RoundingMode};

fn main() {
    let sig = Signature::relative_precision();
    let formats = [Format::BINARY64, Format::new(12, 60), Format::new(6, 40)];
    let mut runs = 0usize;
    let mut violations = 0usize;
    let mut faults = 0usize;
    let mut worst_slack = f64::INFINITY;

    println!("Error-soundness validation (Cor. 4.20): RP(ideal, fp) <= grade bound\n");

    for b in table3() {
        let ck = kernel_to_core(&b.kernel).expect("translatable");
        for sample in &b.samples {
            let inputs: Vec<_> = ck
                .free
                .iter()
                .zip(sample)
                .map(|((v, _), q)| (*v, Value::num(q.clone())))
                .collect();
            for format in formats {
                for mode in RoundingMode::ALL {
                    let mut fp = CheckedRounding { format, mode };
                    let rep = validate(
                        &ck.store,
                        &sig,
                        ck.root,
                        &inputs,
                        &mut fp,
                        &format.unit_roundoff(mode),
                    )
                    .unwrap_or_else(|e| panic!("{} {format} {mode}: {e}", b.kernel.name));
                    runs += 1;
                    if rep.fp.is_none() {
                        faults += 1; // over/underflow: Cor. 7.5 is vacuous
                    }
                    if !rep.holds() {
                        violations += 1;
                        println!("VIOLATION: {} sample {sample:?} {format} {mode}", b.kernel.name);
                    }
                    if let Some(m) = rep.measured {
                        let bound = rep.bound.to_f64();
                        if bound > 0.0 && m > 0.0 {
                            worst_slack = worst_slack.min(bound / m);
                        }
                    }
                }
            }
        }
        println!("  {:<20} ok ({} samples x {} format/mode combos)", b.kernel.name, b.samples.len(), formats.len() * 4);
    }

    for b in table5() {
        let src = format!("{}\n{}", b.source, b.sample);
        let lowered = compile(&src, &sig).expect("compiles");
        for format in formats {
            for mode in RoundingMode::ALL {
                let mut fp = CheckedRounding { format, mode };
                let rep = validate(&lowered.store, &sig, lowered.root, &[], &mut fp, &format.unit_roundoff(mode))
                    .expect("validation harness");
                runs += 1;
                if !rep.holds() {
                    violations += 1;
                    println!("VIOLATION: {} {format} {mode}", b.name);
                }
            }
        }
        println!("  {:<20} ok", b.name);
    }

    // Generated programs: Horner50 at a sample point, SerialSum(64).
    for g in [horner(50), serial_sum(64)] {
        let inputs: Vec<_> = g
            .free
            .iter()
            .map(|(v, _)| (*v, Value::num(numfuzz_exact::Rational::ratio(7, 2))))
            .collect();
        for format in formats {
            let mode = RoundingMode::TowardPositive;
            let mut fp = CheckedRounding { format, mode };
            let rep = validate(&g.store, &sig, g.root, &inputs, &mut fp, &format.unit_roundoff(mode))
                .expect("validation harness");
            runs += 1;
            if !rep.holds() {
                violations += 1;
                println!("VIOLATION: {} {format}", g.name);
            }
        }
        println!("  {:<20} ok", g.name);
    }

    println!("\n{runs} validations, {violations} violations, {faults} vacuous (over/underflow -> err).");
    if worst_slack.is_finite() {
        println!("tightest observed bound/measured ratio: {worst_slack:.2}x");
    }
    if violations > 0 {
        std::process::exit(1);
    }
}
