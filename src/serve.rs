//! The resident analysis service behind `numfuzz serve` — and the small
//! newline-delimited JSON (NDJSON) toolkit it is built on.
//!
//! A [`Service`] wraps a configured [`Analyzer`] whose
//! [`AnalysisCache`](crate::AnalysisCache) is shared by every session the
//! service forks: one session per connection (so concurrent parsing never
//! contends on an arena lock) and one per batch worker (dispatched onto
//! the scoped worker pool), all answering from one content-addressed
//! result table. Requests and responses are single JSON objects, one per
//! line; the wire grammar is documented in `docs/serve.md` and every
//! example there is replayed against a live server by `tests/serve.rs`.
//!
//! The build environment has no crates.io access, so the JSON layer
//! ([`Json`]) is hand-rolled: a strict recursive-descent parser and a
//! compact writer with deterministic key order (insertion order — the
//! server always emits the same bytes for the same request).
//!
//! Response payloads embed the *exact* stdout of the one-shot CLI: a
//! `check` response's `output` field is byte-identical to what
//! `numfuzz check FILE` prints, because both go through the same
//! [`check_report`]/[`bound_report`]/[`batch_entry`] renderers. The
//! `check`/`bound`/`batch` ops accept an optional `mode` field
//! (`"forward"`, the default, or `"backward"`) selecting the analysis;
//! backward requests go through
//! [`backward_check_report`]/[`backward_bound_report`]/
//! [`backward_batch_entry`] and are cached under a disjoint key space
//! (see [`AnalysisMode`]).
//!
//! The `edit` op is the incremental variant of `check`: it rechecks
//! through the analyzer's judgment-level memo table
//! ([`crate::JudgmentMemo`]) and reports `reused`/`recomputed`/`total`
//! judgment counts alongside the usual `output` — which stays
//! byte-identical to a `check` of the same source. `numfuzz watch` is
//! built on the same entry points.
//!
//! The TCP transport is a nonblocking event loop ([`serve_listener`]):
//! one thread owns every socket, requests pipeline per connection
//! (responses always in request order), analysis runs on a resident
//! [`pool::TaskPool`] of forked sessions, and each request's `tenant`
//! is held to a bounded admission budget — over-budget requests get an
//! immediate `EBUSY` backpressure reply instead of queueing without
//! bound. Every transport routes requests through a panic firewall
//! ([`Service::handle_guarded`]): a panicking handler is logged,
//! answered with a well-formed `EPANIC` reply, and the server keeps
//! serving. A [`ServeConfig::cache_file`] adds a disk-persisted reply
//! cache (content-addressed by the structural program fingerprint;
//! snapshot written on shutdown, restored — corruption-tolerantly — on
//! the next start). The `metrics` op reports per-op counters, queue
//! depth, admission rejections, and cache hit rates.

use crate::analyzer::{Analyzer, BackwardBound, BackwardTyped, InputBackwardBound, Typed};
use crate::diag::Diagnostic;
use crate::program::Program;
use numfuzz_core::cache::{
    persist_atomically, AnalysisMode, CacheKey, ConfigFingerprint, ResultCache,
};
use numfuzz_core::{pool, Grade, Instantiation};
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

/// A JSON value. Objects preserve insertion order (the writer emits keys
/// in that order, so server responses are deterministic byte streams).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are emitted without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, anything
    /// else after the document is an error).
    ///
    /// ```
    /// use numfuzz::serve::Json;
    ///
    /// let v = Json::parse(r#"{"op":"check","n":2,"tags":["a","b"]}"#).unwrap();
    /// assert_eq!(v.get("op").and_then(Json::as_str), Some("check"));
    /// assert_eq!(v.get("n").and_then(Json::as_f64), Some(2.0));
    /// assert!(Json::parse("{\"unterminated\":").is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Writes the compact form (no whitespace) into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Convenience: an object from ordered pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an integer value.
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Integers inside the interoperable 53-bit range print without a
/// decimal point; other finite values print as Rust's shortest-roundtrip
/// float. JSON has no representation for non-finite numbers (which can
/// enter via an overflowing literal like `1e999` in a request `id`), so
/// those emit `null` rather than invalid output.
fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth limit: protocol messages are shallow, and a hostile
/// `[[[[...` must not overflow the parser's stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected `{}` at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            // Surrogate pairs encode astral-plane chars.
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                if !(self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u'))
                                {
                                    return Err("unpaired surrogate".to_string());
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("unescaped control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits (after `\u`), leaving `pos` past
    /// them.
    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(digits)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

// ---------------------------------------------------------------------
// Shared renderers (one-shot CLI and service emit identical bytes)
// ---------------------------------------------------------------------

/// The stdout of `numfuzz check FILE` for a checked program: one line per
/// `function`, then the program's type. Trailing newline included.
pub fn check_report(typed: &Typed) -> String {
    let mut out = String::new();
    for f in typed.functions() {
        out.push_str(&format!("{} : {}\n", f.name, f.inferred));
    }
    out.push_str(&format!("program : {}\n", typed.ty()));
    out
}

/// The stdout of `numfuzz bound FILE` for a checked program: the eq. (8)
/// bound of every function and of the program, plus the session's
/// format/mode setting line. Trailing newline included.
pub fn bound_report(analyzer: &Analyzer, typed: &Typed) -> String {
    let mut out = String::new();
    let setting = format!("{} {}", analyzer.format(), analyzer.mode());
    for f in typed.functions() {
        match analyzer.bound_of_ty(&f.inferred) {
            Some(b) => out.push_str(&format!("{:<24} {}\n", f.name, b)),
            None => {
                out.push_str(&format!("{:<24} {} (no rounding-error bound)\n", f.name, f.inferred))
            }
        }
    }
    match analyzer.bound_of_ty(typed.ty()) {
        Some(b) => out.push_str(&format!("{:<24} {}\n", "program", b)),
        None => {
            out.push_str(&format!("{:<24} {} (no rounding-error bound)\n", "program", typed.ty()))
        }
    }
    out.push_str(&format!(
        "({setting}, unit roundoff {})\n",
        analyzer.rounding_unit().to_sci_string(3)
    ));
    out
}

/// One entry of a batch — shared by `numfuzz batch` (per file) and the
/// service's `batch` op (per request item): parse, check (through the
/// session's cache when configured), and bound. Returns the output line
/// (a `name: type — bound` summary, or the fully rendered diagnostic)
/// and whether the program passed.
pub fn batch_entry(analyzer: &Analyzer, name: &str, src: &str) -> (String, bool) {
    match analyzer.parse_named(name, src).and_then(|program| analyzer.check_cached(&program)) {
        Ok(typed) => match analyzer.bound_of_ty(typed.ty()) {
            Some(bound) => (format!("{name}: {} — {bound}", typed.ty()), true),
            None => (format!("{name}: {}", typed.ty()), true),
        },
        Err(d) => (d.render(), false),
    }
}

/// The bracketed per-input grade list appended to backward report lines:
/// `" [x <= eps, y <= 2*eps]"`, or the empty string when there are no
/// linear inputs.
fn backward_grades_suffix(inputs: &[(String, Grade)]) -> String {
    if inputs.is_empty() {
        return String::new();
    }
    let list: Vec<String> = inputs.iter().map(|(n, g)| format!("{n} <= {g}")).collect();
    format!(" [{}]", list.join(", "))
}

/// The stdout of `numfuzz check --backward FILE` for a backward-checked
/// program: one line per `function` (its assigned type plus the
/// per-parameter backward-error grades), then the program's type and the
/// root's per-input grades. Trailing newline included.
pub fn backward_check_report(typed: &BackwardTyped) -> String {
    let mut out = String::new();
    for f in typed.functions() {
        out.push_str(&format!(
            "{} : {}{}\n",
            f.name,
            f.assigned,
            backward_grades_suffix(&f.inputs)
        ));
    }
    out.push_str(&format!("program : {}{}\n", typed.ty(), backward_grades_suffix(typed.inputs())));
    out
}

/// One input's numeric backward bound, e.g.
/// `x <= 2*eps (relative error <= 4.44e-16)`; infinite grades render as a
/// bare `x <= inf` (no finite backward bound exists for that input).
fn backward_input_line(b: &InputBackwardBound, instantiation: Instantiation) -> String {
    let kind = match instantiation {
        Instantiation::RelativePrecision => "relative error",
        Instantiation::AbsoluteError => "absolute error",
    };
    match (&b.alpha, &b.relative) {
        (None, _) => format!("{} <= {}", b.name, b.grade),
        (Some(_), Some(r)) => {
            format!("{} <= {} ({kind} <= {})", b.name, b.grade, r.to_sci_string(3))
        }
        (Some(_), None) => format!("{} <= {} (no finite {kind} bound)", b.name, b.grade),
    }
}

/// The stdout of `numfuzz bound --backward FILE`: the numeric per-input
/// backward bound of every function and of the program, plus the
/// session's format/mode setting line. Trailing newline included.
pub fn backward_bound_report(analyzer: &Analyzer, bound: &BackwardBound) -> String {
    let mut out = String::new();
    let render = |inputs: &[InputBackwardBound]| -> String {
        if inputs.is_empty() {
            "(no linear inputs)".to_string()
        } else {
            inputs
                .iter()
                .map(|b| backward_input_line(b, bound.instantiation))
                .collect::<Vec<_>>()
                .join(", ")
        }
    };
    for f in &bound.fns {
        out.push_str(&format!("{:<24} {}\n", f.name, render(&f.inputs)));
    }
    out.push_str(&format!("{:<24} {}\n", "program", render(&bound.root)));
    out.push_str(&format!(
        "({} {}, unit roundoff {})\n",
        analyzer.format(),
        analyzer.mode(),
        analyzer.rounding_unit().to_sci_string(3)
    ));
    out
}

/// The backward analogue of [`batch_entry`]: parse, backward-check
/// (through the session's cache when configured), and summarize as
/// `name: type [per-input grades]` — or the rendered diagnostic.
pub fn backward_batch_entry(analyzer: &Analyzer, name: &str, src: &str) -> (String, bool) {
    match analyzer
        .parse_named(name, src)
        .and_then(|program| analyzer.check_backward_cached(&program))
    {
        Ok(typed) => {
            (format!("{name}: {}{}", typed.ty(), backward_grades_suffix(typed.inputs())), true)
        }
        Err(d) => (d.render(), false),
    }
}

// ---------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------

/// Exit-code conventions mirrored into error payloads: `1` means the
/// *analyzed program* is at fault, `2` means the request is (same split
/// as the CLI's exit codes).
const EXIT_PROGRAM: u8 = 1;
const EXIT_USAGE: u8 = 2;

/// One response: the JSON line to send back, and whether the server
/// should shut down after sending it.
#[derive(Clone, Debug)]
pub struct Reply {
    /// The serialized response object (no trailing newline).
    pub json: String,
    /// `true` after a `shutdown` request.
    pub shutdown: bool,
}

/// Tunables for the resident transports. `Default` matches the
/// historical service behavior closely enough that the pinned wire
/// transcripts keep passing: no persistence, no debug ops, a generous
/// admission budget, a five-minute idle deadline.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Close a TCP connection after this long with no traffic and
    /// nothing in flight (the event-loop replacement for per-socket
    /// read/write timeouts — the loop never blocks on one socket, so a
    /// stalled client can only hold its own connection, and only until
    /// this deadline).
    pub idle_timeout: Duration,
    /// Per-tenant admission budget: how many of a tenant's requests may
    /// be in flight at once. One more is refused with an `EBUSY` reply
    /// until a slot drains.
    pub max_pending: usize,
    /// Snapshot file for the persistent reply cache. `None` disables
    /// persistence entirely: no disk I/O, and no extra `stats` section.
    pub cache_file: Option<PathBuf>,
    /// Byte budget of the persistent reply cache.
    pub persist_budget: usize,
    /// Size cap for the on-disk snapshot itself. The in-memory reply
    /// cache may carry `persist_budget` bytes, but the file written at
    /// shutdown is compacted to at most this many bytes by dropping
    /// LRU entries at snapshot-write time, so a long-lived server's
    /// snapshot cannot grow without bound.
    pub cache_file_cap: usize,
    /// Enable the test-only `debug-panic` / `debug-sleep` ops
    /// (`NUMFUZZ_SERVE_DEBUG_OPS=1` in the CLI).
    pub debug_ops: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            idle_timeout: Duration::from_secs(300),
            max_pending: 64,
            cache_file: None,
            persist_budget: 64 << 20,
            cache_file_cap: 8 << 20,
            debug_ops: false,
        }
    }
}

/// Service counters behind the `metrics` op. All relaxed atomics: these
/// are operational telemetry, not synchronization.
#[derive(Default)]
struct Metrics {
    op_check: AtomicU64,
    op_bound: AtomicU64,
    op_optimize: AtomicU64,
    op_batch: AtomicU64,
    op_edit: AtomicU64,
    op_stats: AtomicU64,
    op_metrics: AtomicU64,
    op_shutdown: AtomicU64,
    proto_errors: AtomicU64,
    panics: AtomicU64,
    admission_rejected: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
    accepted: AtomicU64,
    closed: AtomicU64,
    idle_closed: AtomicU64,
    persist_hits: AtomicU64,
    persist_misses: AtomicU64,
    persist_restored: AtomicU64,
}

impl Metrics {
    fn enqueue(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    fn dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The disk-persisted reply cache: rendered response *tails* (the bytes
/// after the leading `"id"` field, which is the only request-specific
/// part of a `check`/`bound` response) keyed by content — see
/// [`Service::persist_key`] for the derivation and `docs/serve.md` for
/// the on-disk snapshot format.
struct ReplyCache {
    entries: Mutex<ResultCache<String>>,
    path: PathBuf,
}

impl ReplyCache {
    fn lock(&self) -> std::sync::MutexGuard<'_, ResultCache<String>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Serve-side logging that cannot take the server down: `eprintln!`
/// panics when stderr is closed (a supervisor that stopped reading the
/// pipe, a detached terminal), and a panic inside the panic *handler*
/// would lose the reply it was about to send. Log lines are best-effort
/// by design.
fn log_line(args: std::fmt::Arguments<'_>) {
    let _ = std::io::stderr().lock().write_fmt(format_args!("{args}\n"));
}

macro_rules! serve_log {
    ($($arg:tt)*) => { log_line(format_args!($($arg)*)) };
}

/// A resident analysis service: a base [`Analyzer`] (whose cache, if
/// configured, is shared by everything the service does), a worker count
/// for `batch` requests, service tunables ([`ServeConfig`]), telemetry,
/// and — when configured — the persistent reply cache. See the
/// [module docs](self) for the wire protocol.
pub struct Service {
    base: Analyzer,
    jobs: usize,
    requests: AtomicU64,
    config: ServeConfig,
    metrics: Metrics,
    persist: Option<ReplyCache>,
}

impl Service {
    /// Wraps an analyzer with default tunables. `jobs` is the worker
    /// count for `batch` requests and the TCP worker pool (0 = one per
    /// core).
    pub fn new(analyzer: Analyzer, jobs: usize) -> Self {
        Service::with_config(analyzer, jobs, ServeConfig::default())
    }

    /// Wraps an analyzer with explicit tunables. When
    /// `config.cache_file` is set, a previous snapshot at that path is
    /// restored immediately; a corrupt or truncated snapshot degrades to
    /// whatever intact prefix it still has (one stderr note, never a
    /// refusal to start).
    pub fn with_config(analyzer: Analyzer, jobs: usize, config: ServeConfig) -> Self {
        let metrics = Metrics::default();
        let persist = config.cache_file.as_ref().map(|path| {
            let mut entries = ResultCache::new(config.persist_budget);
            if let Ok(bytes) = std::fs::read(path) {
                let load = entries.restore(&bytes);
                metrics.persist_restored.store(load.restored as u64, Ordering::Relaxed);
                if load.truncated {
                    serve_log!(
                        "numfuzz serve: cache snapshot {} is damaged; restored {} intact entries and moving on",
                        path.display(),
                        load.restored
                    );
                }
            }
            ReplyCache { entries: Mutex::new(entries), path: path.clone() }
        });
        Service { base: analyzer, jobs, requests: AtomicU64::new(0), config, metrics, persist }
    }

    /// The base analyzer (e.g. to read cache statistics).
    pub fn analyzer(&self) -> &Analyzer {
        &self.base
    }

    /// The service tunables this instance runs with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Writes the persistent reply cache back to its snapshot file, via
    /// a temp file and an atomic rename. A no-op without a cache file.
    /// Errors are reported on stderr and swallowed: failing to persist
    /// must not turn a clean shutdown into a failure.
    pub fn persist_now(&self) {
        let Some(pc) = &self.persist else { return };
        let bytes = pc.lock().snapshot_within(self.config.cache_file_cap);
        if let Err(e) = persist_atomically(&pc.path, &bytes) {
            serve_log!("numfuzz serve: could not persist cache to {}: {e}", pc.path.display());
        }
    }

    /// The content address of one `check`/`bound` reply in the
    /// persistent cache. The `program` half is the structural (alpha-
    /// invariant) fingerprint; the `config` half folds the analysis
    /// mode's session configuration, the op, the display fingerprint
    /// (rendered types and diagnostics quote concrete source names), and
    /// the request's `name` (diagnostics embed it as the file).
    fn persist_key(
        &self,
        session: &Analyzer,
        program: &Program,
        op: &str,
        mode: AnalysisMode,
        name: Option<&str>,
    ) -> CacheKey {
        let mut config = ConfigFingerprint::new(mode);
        config.write_u64(session.config_fingerprint(mode));
        config.write_u8(if op == "check" { 1 } else { 2 });
        config.write_u128(program.display_fingerprint());
        config.write_str(name.unwrap_or(""));
        CacheKey { program: program.fingerprint(), config: config.finish() }
    }

    /// Handles one request line within `session` (a
    /// [`Analyzer::fork_session`] of the base, so concurrent connections
    /// never share an arena) and produces the response line.
    pub fn handle_line(&self, session: &Analyzer, line: &str) -> Reply {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let request = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.metrics.proto_errors.fetch_add(1, Ordering::Relaxed);
                return proto_error(Json::Null, &format!("invalid JSON: {e}"));
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let Some(op) = request.get("op").and_then(Json::as_str) else {
            self.metrics.proto_errors.fetch_add(1, Ordering::Relaxed);
            return proto_error(id, "missing string field `op`");
        };
        match op {
            "check" | "bound" => {
                let counter =
                    if op == "check" { &self.metrics.op_check } else { &self.metrics.op_bound };
                counter.fetch_add(1, Ordering::Relaxed);
                self.check_or_bound(session, id, op, &request)
            }
            "edit" => {
                self.metrics.op_edit.fetch_add(1, Ordering::Relaxed);
                self.edit(session, id, &request)
            }
            "optimize" => {
                self.metrics.op_optimize.fetch_add(1, Ordering::Relaxed);
                self.optimize_op(session, id, &request)
            }
            "batch" => {
                self.metrics.op_batch.fetch_add(1, Ordering::Relaxed);
                self.batch(id, &request)
            }
            "stats" => {
                self.metrics.op_stats.fetch_add(1, Ordering::Relaxed);
                Reply { json: self.stats(id), shutdown: false }
            }
            "metrics" => {
                self.metrics.op_metrics.fetch_add(1, Ordering::Relaxed);
                Reply { json: self.metrics_report(id), shutdown: false }
            }
            "shutdown" => {
                self.metrics.op_shutdown.fetch_add(1, Ordering::Relaxed);
                let response = Json::obj(vec![
                    ("id", id),
                    ("op", Json::str("shutdown")),
                    ("ok", Json::Bool(true)),
                ]);
                Reply { json: response.to_string(), shutdown: true }
            }
            // Test-only fault injection, off unless explicitly enabled:
            // `debug-panic` exercises the panic firewall, `debug-sleep`
            // occupies a worker so admission control can be observed.
            "debug-panic" if self.config.debug_ops => {
                panic!("debug-panic op requested")
            }
            "debug-sleep" if self.config.debug_ops => {
                let ms =
                    request.get("ms").and_then(Json::as_f64).unwrap_or(0.0).clamp(0.0, 60_000.0);
                std::thread::sleep(Duration::from_millis(ms as u64));
                let response = Json::obj(vec![
                    ("id", id),
                    ("op", Json::str("debug-sleep")),
                    ("ok", Json::Bool(true)),
                ]);
                Reply { json: response.to_string(), shutdown: false }
            }
            other => {
                self.metrics.proto_errors.fetch_add(1, Ordering::Relaxed);
                proto_error(id, &format!("unknown op `{other}`"))
            }
        }
    }

    /// [`handle_line`](Self::handle_line) behind the panic firewall
    /// every transport uses: a panicking handler is caught, logged as
    /// one stderr line, counted, and answered with a well-formed
    /// `EPANIC` reply — the server keeps serving. The session is rebuilt
    /// afterwards (its arena may have been mid-mutation when the panic
    /// unwound through it).
    pub fn handle_guarded(&self, session: &mut Analyzer, line: &str) -> Reply {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| self.handle_line(session, line)));
        match result {
            Ok(reply) => reply,
            Err(payload) => {
                self.metrics.panics.fetch_add(1, Ordering::Relaxed);
                serve_log!(
                    "numfuzz serve: request handler panicked: {}",
                    panic_message(payload.as_ref())
                );
                *session = self.base.fork_session();
                let id = Json::parse(line)
                    .ok()
                    .and_then(|request| request.get("id").cloned())
                    .unwrap_or(Json::Null);
                let response = Json::obj(vec![
                    ("id", id),
                    ("ok", Json::Bool(false)),
                    (
                        "error",
                        Json::obj(vec![
                            ("code", Json::str("EPANIC")),
                            (
                                "message",
                                Json::str(
                                    "internal error: the request handler panicked; \
                                     the server is still serving",
                                ),
                            ),
                        ]),
                    ),
                    ("exit", Json::int(EXIT_USAGE as u64)),
                ]);
                Reply { json: response.to_string(), shutdown: false }
            }
        }
    }

    /// The `optimize` op: the `numfuzz optimize` pipeline over `src`,
    /// answering with the deterministic report (and the rewritten
    /// program in its own field). Optional fields: `name`, `budget`,
    /// `seed`, `precision` (bool).
    fn optimize_op(&self, session: &Analyzer, id: Json, request: &Json) -> Reply {
        let Some(src) = request.get("src").and_then(Json::as_str) else {
            return proto_error(id, "op `optimize` needs a string field `src`");
        };
        let mut cfg = crate::optimize::OptimizeConfig::default();
        if let Some(b) = request.get("budget").and_then(Json::as_f64) {
            cfg.budget = b.max(0.0) as usize;
        }
        if let Some(s) = request.get("seed").and_then(Json::as_f64) {
            cfg.seed = s.max(0.0) as u64;
        }
        if let Some(Json::Bool(p)) = request.get("precision") {
            cfg.precision_search = *p;
        }
        let name = request.get("name").and_then(Json::as_str);
        let parsed = match name {
            Some(n) => session.parse_named(n, src),
            None => session.parse(src),
        };
        let outcome = parsed.and_then(|program| session.optimize(&program, &cfg));
        let response = match outcome {
            Ok(o) => Json::obj(vec![
                ("id", id),
                ("op", Json::str("optimize")),
                ("ok", Json::Bool(true)),
                ("improved", Json::Bool(o.improved)),
                ("output", Json::str(o.report)),
                ("rewritten", Json::str(o.rewritten)),
            ]),
            Err(d) => Json::obj(vec![
                ("id", id),
                ("op", Json::str("optimize")),
                ("ok", Json::Bool(false)),
                ("error", diagnostic_json(&d)),
                ("exit", Json::int(diagnostic_exit(&d) as u64)),
            ]),
        };
        Reply { json: response.to_string(), shutdown: false }
    }

    fn check_or_bound(&self, session: &Analyzer, id: Json, op: &str, request: &Json) -> Reply {
        let Some(src) = request.get("src").and_then(Json::as_str) else {
            return proto_error(id, &format!("op `{op}` needs a string field `src`"));
        };
        let mode = match request_mode(request) {
            Ok(mode) => mode,
            Err(message) => return proto_error(id, &message),
        };
        let name = request.get("name").and_then(Json::as_str);
        let parsed = match name {
            Some(n) => session.parse_named(n, src),
            None => session.parse(src),
        };
        // Persistent reply cache: any parseable program addresses a
        // rendered reply tail; a hit replays the stored bytes under the
        // request's own `id` without touching the analyzer at all.
        let key = match (&self.persist, &parsed) {
            (Some(_), Ok(program)) => Some(self.persist_key(session, program, op, mode, name)),
            _ => None,
        };
        if let (Some(pc), Some(key)) = (&self.persist, key) {
            if let Some(tail) = pc.lock().get(&key) {
                self.metrics.persist_hits.fetch_add(1, Ordering::Relaxed);
                return Reply { json: splice_id(&id, &tail), shutdown: false };
            }
            self.metrics.persist_misses.fetch_add(1, Ordering::Relaxed);
        }
        let outcome = parsed.and_then(|program| match mode {
            AnalysisMode::Forward => {
                let typed = session.check_cached(&program)?;
                Ok(match op {
                    "check" => check_report(&typed),
                    _ => bound_report(session, &typed),
                })
            }
            AnalysisMode::Backward => Ok(match op {
                "check" => backward_check_report(&session.check_backward_cached(&program)?),
                _ => backward_bound_report(session, &session.bound_backward_cached(&program)?),
            }),
        });
        let response = match outcome {
            Ok(output) => Json::obj(vec![
                ("id", id),
                ("op", Json::str(op)),
                ("ok", Json::Bool(true)),
                ("output", Json::str(output)),
            ]),
            Err(d) => Json::obj(vec![
                ("id", id),
                ("op", Json::str(op)),
                ("ok", Json::Bool(false)),
                ("error", diagnostic_json(&d)),
                ("exit", Json::int(diagnostic_exit(&d) as u64)),
            ]),
        };
        if let (Some(pc), Some(key)) = (&self.persist, key) {
            pc.lock().insert(key, response_tail(&response));
        }
        Reply { json: response.to_string(), shutdown: false }
    }

    /// The `edit` op: recheck a (typically just-edited) program through
    /// the session's judgment-level memo table and report how much of the
    /// previous check replayed. The `output` field is byte-identical to a
    /// `check` response for the same source — incrementality changes
    /// counts, never results. Requires the service's analyzer to carry a
    /// [`crate::JudgmentMemo`] for judgments to actually replay; without
    /// one the op still answers, with everything recomputed.
    fn edit(&self, session: &Analyzer, id: Json, request: &Json) -> Reply {
        let Some(src) = request.get("src").and_then(Json::as_str) else {
            return proto_error(id, "op `edit` needs a string field `src`");
        };
        let mode = match request_mode(request) {
            Ok(mode) => mode,
            Err(message) => return proto_error(id, &message),
        };
        let name = request.get("name").and_then(Json::as_str);
        let parsed = match name {
            Some(n) => session.parse_named(n, src),
            None => session.parse(src),
        };
        let outcome = parsed.and_then(|program| match mode {
            AnalysisMode::Forward => {
                let (typed, counts) = session.check_incremental(&program)?;
                Ok((check_report(&typed), counts))
            }
            AnalysisMode::Backward => {
                let (typed, counts) = session.check_backward_incremental(&program)?;
                Ok((backward_check_report(&typed), counts))
            }
        });
        let response = match outcome {
            Ok((output, counts)) => Json::obj(vec![
                ("id", id),
                ("op", Json::str("edit")),
                ("ok", Json::Bool(true)),
                ("output", Json::str(output)),
                ("reused", Json::int(counts.reused)),
                ("recomputed", Json::int(counts.recomputed)),
                ("total", Json::int(counts.total)),
            ]),
            Err(d) => Json::obj(vec![
                ("id", id),
                ("op", Json::str("edit")),
                ("ok", Json::Bool(false)),
                ("error", diagnostic_json(&d)),
                ("exit", Json::int(diagnostic_exit(&d) as u64)),
            ]),
        };
        Reply { json: response.to_string(), shutdown: false }
    }

    fn batch(&self, id: Json, request: &Json) -> Reply {
        let Some(items) = request.get("programs").and_then(Json::as_array) else {
            return proto_error(id, "op `batch` needs an array field `programs`");
        };
        let mode = match request_mode(request) {
            Ok(mode) => mode,
            Err(message) => return proto_error(id, &message),
        };
        let mut jobs_items: Vec<(String, String)> = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let Some(src) = item.get("src").and_then(Json::as_str) else {
                return proto_error(id, &format!("batch item {i} needs a string field `src`"));
            };
            let name = item
                .get("name")
                .and_then(Json::as_str)
                .map(String::from)
                .unwrap_or_else(|| format!("<batch-{i}>"));
            jobs_items.push((name, src.to_string()));
        }
        // Dispatch onto the scoped worker pool: every worker is a forked
        // session (own arena, shared content cache), exactly like
        // `numfuzz batch` over a directory.
        let (entries, _) = pool::ordered_map_with(
            self.jobs,
            &jobs_items,
            |_worker| self.base.fork_session(),
            |worker, _i, (name, src)| match mode {
                AnalysisMode::Forward => batch_entry(worker, name, src),
                AnalysisMode::Backward => backward_batch_entry(worker, name, src),
            },
        );
        let ok_count = entries.iter().filter(|(_, ok)| *ok).count();
        let failed = entries.len() - ok_count;
        let results: Vec<Json> = jobs_items
            .iter()
            .zip(&entries)
            .map(|((name, _), (line, ok))| {
                Json::obj(vec![
                    ("name", Json::str(name.clone())),
                    ("ok", Json::Bool(*ok)),
                    ("line", Json::str(line.clone())),
                ])
            })
            .collect();
        let response = Json::obj(vec![
            ("id", id),
            ("op", Json::str("batch")),
            ("ok", Json::Bool(failed == 0)),
            ("results", Json::Arr(results)),
            (
                "summary",
                Json::str(format!("{} programs: {ok_count} ok, {failed} failed", entries.len())),
            ),
        ]);
        Reply { json: response.to_string(), shutdown: false }
    }

    fn stats(&self, id: Json) -> String {
        let mut fields = vec![
            ("id", id),
            ("op", Json::str("stats")),
            ("ok", Json::Bool(true)),
            ("requests", Json::int(self.requests.load(Ordering::Relaxed))),
            ("jobs", Json::int(pool::effective_jobs(self.jobs, usize::MAX) as u64)),
        ];
        if let Some(stats) = self.base.cache_stats() {
            fields.push((
                "cache",
                Json::obj(vec![
                    ("hits", Json::int(stats.hits)),
                    ("misses", Json::int(stats.misses)),
                    ("insertions", Json::int(stats.insertions)),
                    ("evictions", Json::int(stats.evictions)),
                    ("entries", Json::int(stats.entries as u64)),
                    ("bytes", Json::int(stats.bytes as u64)),
                    ("budget", Json::int(stats.budget as u64)),
                ]),
            ));
        }
        if let Some(stats) = self.base.judgment_cache_stats() {
            fields.push((
                "judgments",
                Json::obj(vec![
                    ("hits", Json::int(stats.hits)),
                    ("misses", Json::int(stats.misses)),
                    ("insertions", Json::int(stats.insertions)),
                    ("evictions", Json::int(stats.evictions)),
                    ("entries", Json::int(stats.entries as u64)),
                    ("bytes", Json::int(stats.bytes as u64)),
                    ("budget", Json::int(stats.budget as u64)),
                ]),
            ));
        }
        if let Some(pc) = &self.persist {
            let s = pc.lock().stats();
            fields.push((
                "persistent",
                Json::obj(vec![
                    ("restored", Json::int(self.metrics.persist_restored.load(Ordering::Relaxed))),
                    ("hits", Json::int(self.metrics.persist_hits.load(Ordering::Relaxed))),
                    ("misses", Json::int(self.metrics.persist_misses.load(Ordering::Relaxed))),
                    ("entries", Json::int(s.entries as u64)),
                    ("bytes", Json::int(s.bytes as u64)),
                ]),
            ));
        }
        Json::obj(fields).to_string()
    }

    /// The `metrics` op: per-op counters, queue depth/peak, admission
    /// budget and rejections, connection lifecycle counts, and cache hit
    /// rates. The `persistent` section appears only when a cache file is
    /// configured (so the pinned transcripts, which run without one,
    /// stay stable).
    fn metrics_report(&self, id: Json) -> String {
        let m = &self.metrics;
        let get = |c: &AtomicU64| Json::int(c.load(Ordering::Relaxed));
        let mut fields = vec![
            ("id", id),
            ("op", Json::str("metrics")),
            ("ok", Json::Bool(true)),
            ("requests", Json::int(self.requests.load(Ordering::Relaxed))),
            (
                "ops",
                Json::obj(vec![
                    ("check", get(&m.op_check)),
                    ("bound", get(&m.op_bound)),
                    ("optimize", get(&m.op_optimize)),
                    ("batch", get(&m.op_batch)),
                    ("edit", get(&m.op_edit)),
                    ("stats", get(&m.op_stats)),
                    ("metrics", get(&m.op_metrics)),
                    ("shutdown", get(&m.op_shutdown)),
                    ("proto_errors", get(&m.proto_errors)),
                ]),
            ),
            (
                "queue",
                Json::obj(vec![("depth", get(&m.queue_depth)), ("peak", get(&m.queue_peak))]),
            ),
            (
                "admission",
                Json::obj(vec![
                    ("max_pending", Json::int(self.config.max_pending as u64)),
                    ("rejected", get(&m.admission_rejected)),
                ]),
            ),
            (
                "connections",
                Json::obj(vec![
                    ("accepted", get(&m.accepted)),
                    ("closed", get(&m.closed)),
                    ("idle_closed", get(&m.idle_closed)),
                    ("panics_caught", get(&m.panics)),
                ]),
            ),
        ];
        if let Some(stats) = self.base.cache_stats() {
            fields.push(("cache", hit_rate_json(stats.hits, stats.misses)));
        }
        if let Some(stats) = self.base.judgment_cache_stats() {
            fields.push(("judgments", hit_rate_json(stats.hits, stats.misses)));
        }
        if let Some(pc) = &self.persist {
            let entries = pc.lock().stats().entries;
            fields.push((
                "persistent",
                Json::obj(vec![
                    ("restored", get(&m.persist_restored)),
                    ("hits", get(&m.persist_hits)),
                    ("misses", get(&m.persist_misses)),
                    ("entries", Json::int(entries as u64)),
                ]),
            ));
        }
        Json::obj(fields).to_string()
    }
}

/// `{"hits":H,"misses":M,"hit_rate":R}` with the rate rounded to four
/// decimals (deterministic bytes; `0` for an untouched cache).
fn hit_rate_json(hits: u64, misses: u64) -> Json {
    let total = hits + misses;
    let rate = if total == 0 { 0.0 } else { (hits as f64 / total as f64 * 1e4).round() / 1e4 };
    Json::obj(vec![
        ("hits", Json::int(hits)),
        ("misses", Json::int(misses)),
        ("hit_rate", Json::Num(rate)),
    ])
}

/// The reply bytes after the leading `"id"` field — everything about a
/// response except its one request-specific part. The renderers always
/// emit `id` first, so `{"id":` + id + tail reassembles the exact line.
fn response_tail(response: &Json) -> String {
    let Json::Obj(fields) = response else { unreachable!("responses are objects") };
    let mut out = String::new();
    for (k, v) in &fields[1..] {
        out.push(',');
        write_escaped(k, &mut out);
        out.push(':');
        v.write(&mut out);
    }
    out.push('}');
    out
}

/// Reassembles a full response line from a request `id` and a cached
/// tail (see [`response_tail`]).
fn splice_id(id: &Json, tail: &str) -> String {
    let mut out = String::with_capacity(8 + tail.len());
    out.push_str("{\"id\":");
    id.write(&mut out);
    out.push_str(tail);
    out
}

/// The panic payload as text (covers the two payload types `panic!`
/// produces).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn diagnostic_json(d: &Diagnostic) -> Json {
    let mut fields = vec![
        ("code", Json::str(d.code.as_str())),
        ("message", Json::str(d.message.clone())),
        ("rendered", Json::str(d.render())),
    ];
    if let Some(file) = &d.file {
        fields.push(("file", Json::str(file.clone())));
    }
    if let Some(span) = d.span {
        fields.push(("line", Json::int(span.line as u64)));
        fields.push(("col", Json::int(span.col as u64)));
    }
    Json::obj(fields)
}

fn diagnostic_exit(d: &Diagnostic) -> u8 {
    if d.code.is_program_error() {
        EXIT_PROGRAM
    } else {
        EXIT_USAGE
    }
}

/// Reads the optional `mode` field of a `check`/`bound`/`batch` request:
/// absent means forward; anything but `"forward"`/`"backward"` is a
/// protocol error.
fn request_mode(request: &Json) -> Result<AnalysisMode, String> {
    match request.get("mode") {
        None => Ok(AnalysisMode::Forward),
        Some(m) => match m.as_str() {
            Some("forward") => Ok(AnalysisMode::Forward),
            Some("backward") => Ok(AnalysisMode::Backward),
            _ => Err("field `mode` must be \"forward\" or \"backward\"".to_string()),
        },
    }
}

fn proto_error(id: Json, message: &str) -> Reply {
    let response = Json::obj(vec![
        ("id", id),
        ("ok", Json::Bool(false)),
        ("error", Json::obj(vec![("code", Json::str("EPROTO")), ("message", Json::str(message))])),
        ("exit", Json::int(EXIT_USAGE as u64)),
    ]);
    Reply { json: response.to_string(), shutdown: false }
}

// ---------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------

/// Serves NDJSON over stdin/stdout: one response line per request line,
/// flushed immediately; returns after `shutdown` or end of input. The
/// persistent reply cache (if configured) is snapshotted on the way out.
///
/// # Errors
///
/// Only I/O errors on the standard streams.
pub fn serve_stdio(service: &Service) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    let mut session = service.analyzer().fork_session();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = service.handle_guarded(&mut session, &line);
        stdout.write_all(reply.json.as_bytes())?;
        stdout.write_all(b"\n")?;
        stdout.flush()?;
        if reply.shutdown {
            break;
        }
    }
    service.persist_now();
    Ok(())
}

/// Cap on one buffered request line (and thus on the inbox of a client
/// that never sends a newline): past this the connection is dropped
/// rather than buffered without bound.
const MAX_REQUEST_BYTES: usize = 64 << 20;

/// How long a shutdown drain may take before the loop exits with
/// responses still unflushed (a client that stopped reading must not be
/// able to keep the server alive).
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(5);

/// One pipelined TCP connection in the event loop.
struct Conn {
    stream: TcpStream,
    /// Unparsed bytes read so far (at most one partial line after each
    /// tick).
    inbox: Vec<u8>,
    /// Response bytes accepted for writing but not yet taken by the
    /// socket.
    outbox: Vec<u8>,
    /// Sequence number the next request line will get.
    next_seq: u64,
    /// Sequence number whose reply must be written next — responses go
    /// out strictly in request order, so pipelining never reorders.
    next_write: u64,
    /// Completed replies waiting for their turn in the write order.
    ready: BTreeMap<u64, Reply>,
    /// This connection's requests currently dispatched to the pool.
    in_flight: usize,
    last_activity: Instant,
    /// Peer half-closed its write side — serve what's pending, then
    /// close.
    eof: bool,
    /// Unrecoverable socket error — drop as soon as noticed.
    dead: bool,
}

/// One finished request coming back from the worker pool.
struct Completion {
    conn: u64,
    seq: u64,
    tenant: String,
    reply: Reply,
}

/// Serves NDJSON over TCP: binds `addr` (port 0 picks a free port),
/// prints `listening on HOST:PORT` to stderr, and runs the event loop —
/// see [`serve_listener`].
///
/// # Errors
///
/// Binding or socket-configuration I/O errors.
pub fn serve_tcp(service: &Arc<Service>, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    serve_log!("numfuzz serve: listening on {}", listener.local_addr()?);
    serve_listener(service, listener)
}

/// The nonblocking event loop behind `numfuzz serve --listen`, exposed
/// separately so `numfuzz loadgen` can drive an in-process server on an
/// ephemeral port. One thread owns every socket; analysis runs on a
/// resident [`pool::TaskPool`] of forked sessions (one per worker,
/// sharing the content-addressed caches).
///
/// Each tick the loop: accepts whatever connections are waiting; drains
/// worker completions into per-connection reorder buffers; reads
/// available bytes, splitting complete lines and either dispatching
/// them to the pool or — when the line's `tenant` (default `"default"`)
/// already has [`ServeConfig::max_pending`] requests outstanding —
/// answering immediately with an `EBUSY` backpressure reply; promotes
/// completed replies to the write queue strictly in request order;
/// flushes what the sockets will take; and closes connections that
/// errored, half-closed and drained, or sat idle past
/// [`ServeConfig::idle_timeout`]. When a tick makes no progress at all,
/// the loop parks on the completion channel for a millisecond instead
/// of spinning.
///
/// A `shutdown` reply (from any connection) stops accepting and
/// reading; in-flight work drains, buffered responses flush (bounded by
/// a drain deadline so a non-reading client cannot pin the process),
/// the persistent cache is snapshotted, and the loop returns. No
/// self-connection wake-up is needed — the loop never blocks in
/// `accept`.
///
/// # Errors
///
/// Only listener configuration failures; per-connection I/O errors
/// close that connection and are not fatal to the loop.
pub fn serve_listener(service: &Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let (tx, rx) = mpsc::channel::<Completion>();
    let pool = {
        let base = Arc::clone(service);
        pool::TaskPool::new(service.jobs, move |_worker| base.analyzer().fork_session())
    };
    let metrics = &service.metrics;
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut tenants: HashMap<String, usize> = HashMap::new();
    let mut next_conn_id: u64 = 0;
    let mut in_flight_total: usize = 0;
    let mut shutting_down = false;
    let mut drain_deadline: Option<Instant> = None;
    let mut stashed: Option<Completion> = None;

    loop {
        let mut progress = false;

        // New connections (none once a shutdown is draining).
        if !shutting_down {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        metrics.accepted.fetch_add(1, Ordering::Relaxed);
                        conns.insert(
                            next_conn_id,
                            Conn {
                                stream,
                                inbox: Vec::new(),
                                outbox: Vec::new(),
                                next_seq: 0,
                                next_write: 0,
                                ready: BTreeMap::new(),
                                in_flight: 0,
                                last_activity: Instant::now(),
                                eof: false,
                                dead: false,
                            },
                        );
                        next_conn_id += 1;
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    // Transient accept failures (peer reset before
                    // accept, fd pressure): try again next tick.
                    Err(_) => break,
                }
            }
        }

        // Worker completions → per-connection reorder buffers.
        while let Some(done) = stashed.take().or_else(|| rx.try_recv().ok()) {
            progress = true;
            in_flight_total -= 1;
            metrics.dequeue();
            if let Some(count) = tenants.get_mut(&done.tenant) {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    tenants.remove(&done.tenant);
                }
            }
            if done.reply.shutdown {
                shutting_down = true;
            }
            if let Some(conn) = conns.get_mut(&done.conn) {
                conn.in_flight -= 1;
                conn.ready.insert(done.seq, done.reply);
                conn.last_activity = Instant::now();
            }
        }

        // Read, split complete lines, admit or dispatch.
        if !shutting_down {
            for (&conn_id, conn) in conns.iter_mut() {
                if conn.eof || conn.dead {
                    continue;
                }
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            conn.eof = true;
                            break;
                        }
                        Ok(n) => {
                            conn.inbox.extend_from_slice(&chunk[..n]);
                            conn.last_activity = Instant::now();
                            progress = true;
                            if conn.inbox.len() > MAX_REQUEST_BYTES {
                                conn.dead = true;
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
                while let Some(nl) = conn.inbox.iter().position(|&b| b == b'\n') {
                    let line_bytes: Vec<u8> = conn.inbox.drain(..=nl).collect();
                    let text = String::from_utf8_lossy(&line_bytes[..nl]);
                    let line = text.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    let request = Json::parse(line).ok();
                    let tenant = request
                        .as_ref()
                        .and_then(|r| r.get("tenant").and_then(Json::as_str))
                        .unwrap_or("default")
                        .to_string();
                    let pending = tenants.get(&tenant).copied().unwrap_or(0);
                    if pending >= service.config.max_pending {
                        metrics.admission_rejected.fetch_add(1, Ordering::Relaxed);
                        let id = request
                            .as_ref()
                            .and_then(|r| r.get("id").cloned())
                            .unwrap_or(Json::Null);
                        let reply = admission_reject(id, &tenant, service.config.max_pending);
                        conn.ready.insert(seq, reply);
                        continue;
                    }
                    *tenants.entry(tenant.clone()).or_insert(0) += 1;
                    conn.in_flight += 1;
                    in_flight_total += 1;
                    metrics.enqueue();
                    let job_service = Arc::clone(service);
                    let job_tx = tx.clone();
                    let line = line.to_string();
                    pool.submit(move |session| {
                        let reply = job_service.handle_guarded(session, &line);
                        let _ = job_tx.send(Completion { conn: conn_id, seq, tenant, reply });
                    });
                }
            }
        }

        // Promote in-order replies, then write what the sockets accept.
        for conn in conns.values_mut() {
            while let Some(reply) = conn.ready.remove(&conn.next_write) {
                conn.next_write += 1;
                conn.outbox.extend_from_slice(reply.json.as_bytes());
                conn.outbox.push(b'\n');
                progress = true;
            }
            while !conn.outbox.is_empty() && !conn.dead {
                match conn.stream.write(&conn.outbox) {
                    Ok(0) => conn.dead = true,
                    Ok(n) => {
                        conn.outbox.drain(..n);
                        conn.last_activity = Instant::now();
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => conn.dead = true,
                }
            }
        }

        // Reap dead, drained-after-EOF, and idle connections.
        let idle_timeout = service.config.idle_timeout;
        conns.retain(|_, conn| {
            let drained = conn.in_flight == 0 && conn.ready.is_empty() && conn.outbox.is_empty();
            if conn.dead || (conn.eof && drained) {
                metrics.closed.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            if drained && conn.last_activity.elapsed() >= idle_timeout {
                metrics.idle_closed.fetch_add(1, Ordering::Relaxed);
                metrics.closed.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            true
        });

        if shutting_down {
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + SHUTDOWN_DRAIN);
            let flushed = in_flight_total == 0
                && conns.values().all(|c| c.ready.is_empty() && c.outbox.is_empty());
            if flushed || Instant::now() >= deadline {
                break;
            }
        }

        if !progress {
            // Nothing happened: park on the completion channel rather
            // than spinning. Completions wake the loop instantly; new
            // socket bytes wait at most one park interval.
            let park = if conns.is_empty() && !shutting_down {
                Duration::from_millis(10)
            } else {
                Duration::from_millis(1)
            };
            if let Ok(done) = rx.recv_timeout(park) {
                stashed = Some(done);
            }
        }
    }

    drop(pool);
    service.persist_now();
    Ok(())
}

/// The backpressure reply for a request refused at admission: its
/// tenant already has the configured maximum number of requests in
/// flight. `EBUSY`, exit 2 — the program was never looked at.
fn admission_reject(id: Json, tenant: &str, max_pending: usize) -> Reply {
    let response = Json::obj(vec![
        ("id", id),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj(vec![
                ("code", Json::str("EBUSY")),
                (
                    "message",
                    Json::str(format!(
                        "tenant `{tenant}` already has {max_pending} requests pending; \
                         try again when responses drain"
                    )),
                ),
            ]),
        ),
        ("exit", Json::int(EXIT_USAGE as u64)),
    ]);
    Reply { json: response.to_string(), shutdown: false }
}

/// The client mode behind `numfuzz client`: connects to a serving
/// `numfuzz serve --listen` (retrying for up to `retry` while the server
/// starts), pipes request lines from `input` to the socket, and writes
/// each response line to `output`.
///
/// Returns the worst `exit` value seen in a response (`0` when every
/// response had `"ok":true`), so scripts can gate on analysis outcomes.
///
/// # Errors
///
/// Connection failure after retries, or I/O errors on either side.
pub fn client(
    addr: &str,
    retry: Duration,
    input: &mut dyn BufRead,
    output: &mut dyn Write,
) -> std::io::Result<u8> {
    let deadline = Instant::now() + retry;
    let stream = 'connect: loop {
        // Try every resolved address each round: a hostname may resolve
        // IPv6-first while the server is bound to the IPv4 address.
        let resolved: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("cannot resolve `{addr}`: {e}"),
                )
            })?
            .collect();
        if resolved.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("`{addr}` resolves to no addresses"),
            ));
        }
        let mut last_err = None;
        for a in &resolved {
            match TcpStream::connect(a) {
                Ok(stream) => break 'connect stream,
                Err(e) => last_err = Some(e),
            }
        }
        if Instant::now() >= deadline {
            return Err(last_err.expect("at least one address was tried"));
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut worst = 0u8;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        output.write_all(response.as_bytes())?;
        output.flush()?;
        if let Ok(parsed) = Json::parse(response.trim_end()) {
            if parsed.get("ok").and_then(Json::as_bool) == Some(false) {
                let exit = parsed.get("exit").and_then(Json::as_f64).map(|e| e as u8).unwrap_or(1);
                worst = worst.max(exit);
            }
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalysisCache;

    #[test]
    fn json_roundtrip_and_escapes() {
        let cases = [
            r#"{"a":1,"b":[true,false,null],"c":"x\ny\"z\\"}"#,
            r#"[1.5,-2,0.25,1e3]"#,
            r#""Aé😀""#,
            "[]",
            "{}",
        ];
        for case in cases {
            let v = Json::parse(case).unwrap_or_else(|e| panic!("{case}: {e}"));
            let emitted = v.to_string();
            let v2 = Json::parse(&emitted).unwrap_or_else(|e| panic!("{emitted}: {e}"));
            assert_eq!(v, v2, "reparse of {emitted}");
        }
        assert_eq!(Json::parse("[1e3]").unwrap().to_string(), "[1000]");
        assert_eq!(Json::Str("tab\there".into()).to_string(), "\"tab\\there\"");
    }

    #[test]
    fn non_finite_numbers_never_reach_the_wire() {
        // An overflowing literal like 1e999 parses to infinity; echoing
        // it back must still produce valid JSON.
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        let service = Service::new(Analyzer::new(), 1);
        let session = service.analyzer().fork_session();
        let r = service.handle_line(&session, r#"{"id":1e999,"op":"stats"}"#);
        Json::parse(&r.json).expect("response with overflowed id is still valid JSON");
        assert!(r.json.starts_with(r#"{"id":null"#), "{}", r.json);
    }

    #[test]
    fn json_rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\"}", "nul", "1 2", "{\"a\":01x}", "[\u{1}]"] {
            assert!(Json::parse(bad).is_err(), "accepted malformed `{bad}`");
        }
        // Deep nesting is rejected, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn service_answers_check_and_counts_hits() {
        let analyzer = Analyzer::builder().cache(AnalysisCache::with_budget(1 << 20)).build();
        let service = Service::new(analyzer, 1);
        let session = service.analyzer().fork_session();
        let r1 = service.handle_line(&session, r#"{"id":1,"op":"check","src":"rnd 1.5"}"#);
        let r2 = service.handle_line(&session, r#"{"id":2,"op":"check","src":"rnd 1.5"}"#);
        assert!(!r1.shutdown);
        let v1 = Json::parse(&r1.json).unwrap();
        assert_eq!(v1.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v1.get("output").and_then(Json::as_str), Some("program : M[eps]num\n"));
        assert_eq!(r1.json, r2.json.replace("\"id\":2", "\"id\":1"), "replayed result identical");
        let stats = service.analyzer().cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn service_reports_errors_with_exit_codes() {
        let service = Service::new(Analyzer::new(), 1);
        let session = service.analyzer().fork_session();
        // Ill-typed program: exit 1, E0102.
        let r = service.handle_line(&session, r#"{"id":7,"op":"check","src":"2 3"}"#);
        let v = Json::parse(&r.json).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("exit").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("error").unwrap().get("code").and_then(Json::as_str), Some("E0102"));
        // Protocol misuse: exit 2, EPROTO.
        for bad in ["not json", r#"{"op":"nope"}"#, r#"{"op":"check"}"#, r#"{"id":1}"#] {
            let r = service.handle_line(&session, bad);
            let v = Json::parse(&r.json).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
            assert_eq!(v.get("exit").and_then(Json::as_f64), Some(2.0), "{bad}");
            assert_eq!(
                v.get("error").unwrap().get("code").and_then(Json::as_str),
                Some("EPROTO"),
                "{bad}"
            );
        }
    }

    #[test]
    fn service_edit_reports_reuse_counts() {
        let analyzer = Analyzer::builder().judgment_cache_bytes(1 << 20).build();
        let service = Service::new(analyzer, 1);
        let session = service.analyzer().fork_session();
        let r1 =
            service.handle_line(&session, r#"{"id":1,"op":"edit","src":"s = mul (2, 3); rnd s"}"#);
        let v1 = Json::parse(&r1.json).unwrap();
        assert_eq!(v1.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v1.get("reused").and_then(Json::as_f64), Some(0.0), "{}", r1.json);
        // One leaf edited: the helper subterms replay, and the output is
        // what a plain `check` of the edited source prints.
        let r2 =
            service.handle_line(&session, r#"{"id":2,"op":"edit","src":"s = mul (2, 4); rnd s"}"#);
        let v2 = Json::parse(&r2.json).unwrap();
        assert_eq!(v2.get("ok").and_then(Json::as_bool), Some(true));
        assert!(v2.get("reused").and_then(Json::as_f64).unwrap() > 0.0, "{}", r2.json);
        assert_eq!(v2.get("output").and_then(Json::as_str), Some("program : M[eps]num\n"));
        let c =
            service.handle_line(&session, r#"{"id":3,"op":"check","src":"s = mul (2, 4); rnd s"}"#);
        let vc = Json::parse(&c.json).unwrap();
        assert_eq!(
            v2.get("output").and_then(Json::as_str),
            vc.get("output").and_then(Json::as_str),
            "edit output diverged from check"
        );
        // Backward mode answers through the same table without aliasing.
        let rb = service.handle_line(
            &session,
            r#"{"id":4,"op":"edit","mode":"backward","src":"function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }"}"#,
        );
        let vb = Json::parse(&rb.json).unwrap();
        assert_eq!(vb.get("ok").and_then(Json::as_bool), Some(true), "{}", rb.json);
        assert_eq!(vb.get("reused").and_then(Json::as_f64), Some(0.0), "{}", rb.json);
    }

    #[test]
    fn response_tail_splices_back_byte_identically() {
        let service = Service::new(Analyzer::new(), 1);
        let session = service.analyzer().fork_session();
        for req in [
            r#"{"id":9,"op":"check","src":"rnd 1.5"}"#,
            r#"{"id":"x","op":"bound","src":"rnd 1.5","name":"a.nf"}"#,
            r#"{"id":null,"op":"check","src":"2 3"}"#,
        ] {
            let reply = service.handle_line(&session, req);
            let response = Json::parse(&reply.json).unwrap();
            let id = response.get("id").cloned().unwrap_or(Json::Null);
            assert_eq!(splice_id(&id, &response_tail(&response)), reply.json, "{req}");
        }
    }

    #[test]
    fn handle_guarded_catches_panics_and_keeps_serving() {
        let config = ServeConfig { debug_ops: true, ..ServeConfig::default() };
        let service = Service::with_config(Analyzer::new(), 1, config);
        let mut session = service.analyzer().fork_session();
        let r = service.handle_guarded(&mut session, r#"{"id":5,"op":"debug-panic"}"#);
        let v = Json::parse(&r.json).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_f64), Some(5.0));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("error").unwrap().get("code").and_then(Json::as_str), Some("EPANIC"));
        assert_eq!(v.get("exit").and_then(Json::as_f64), Some(2.0));
        assert!(!r.shutdown);
        // The rebuilt session still answers.
        let ok = service.handle_guarded(&mut session, r#"{"id":6,"op":"check","src":"rnd 1.5"}"#);
        let v = Json::parse(&ok.json).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        // And the metrics op saw the panic.
        let m = service.handle_guarded(&mut session, r#"{"id":7,"op":"metrics"}"#);
        let v = Json::parse(&m.json).unwrap();
        let conns = v.get("connections").unwrap();
        assert_eq!(conns.get("panics_caught").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn debug_ops_stay_off_by_default() {
        let service = Service::new(Analyzer::new(), 1);
        let mut session = service.analyzer().fork_session();
        for op in ["debug-panic", "debug-sleep"] {
            let line = format!(r#"{{"id":1,"op":"{op}"}}"#);
            let r = service.handle_guarded(&mut session, &line);
            let v = Json::parse(&r.json).unwrap();
            assert_eq!(
                v.get("error").unwrap().get("code").and_then(Json::as_str),
                Some("EPROTO"),
                "{op} must be an unknown op unless explicitly enabled"
            );
        }
    }

    #[test]
    fn persistent_reply_cache_round_trips_across_service_instances() {
        let dir = std::env::temp_dir().join(format!("numfuzz-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit-replies.bin");
        let _ = std::fs::remove_file(&path);
        let config = ServeConfig { cache_file: Some(path.clone()), ..ServeConfig::default() };
        let req = r#"{"id":1,"op":"check","src":"s = mul (2, 3); rnd s","name":"p.nf"}"#;

        let first = {
            let service = Service::with_config(Analyzer::new(), 1, config.clone());
            let session = service.analyzer().fork_session();
            let r1 = service.handle_line(&session, req);
            // Same session, second ask: answered from the reply cache.
            let r2 = service.handle_line(&session, req);
            assert_eq!(r1.json, r2.json);
            assert_eq!(service.metrics.persist_hits.load(Ordering::Relaxed), 1);
            service.persist_now();
            r1.json
        };

        // A fresh service over a fresh analyzer: the snapshot answers
        // without any analysis (the analysis cache is never consulted).
        let analyzer = Analyzer::builder().cache(AnalysisCache::with_budget(1 << 20)).build();
        let service = Service::with_config(analyzer, 1, config.clone());
        assert_eq!(service.metrics.persist_restored.load(Ordering::Relaxed), 1);
        let session = service.analyzer().fork_session();
        let r = service.handle_line(&session, req);
        assert_eq!(r.json, first, "restored reply is byte-identical");
        assert_eq!(service.metrics.persist_hits.load(Ordering::Relaxed), 1);
        let stats = service.analyzer().cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (0, 0), "no re-analysis on a warm hit");

        // A different id replays the same tail under the new id.
        let r9 = service.handle_line(&session, &req.replace(r#""id":1"#, r#""id":9"#));
        assert_eq!(r9.json, first.replace(r#""id":1"#, r#""id":9"#));

        // Corruption tolerance: garbage snapshot, service still starts.
        std::fs::write(&path, b"not a snapshot").unwrap();
        let service = Service::with_config(Analyzer::new(), 1, config);
        assert_eq!(service.metrics.persist_restored.load(Ordering::Relaxed), 0);
        let r = service.handle_line(&service.analyzer().fork_session(), req);
        assert_eq!(r.json, first, "recomputed reply matches the original bytes");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persistent_cache_snapshot_respects_size_cap() {
        let dir = std::env::temp_dir().join(format!("numfuzz-persist-cap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("capped-replies.bin");
        let _ = std::fs::remove_file(&path);
        // A cap far below what three replies need: the snapshot must
        // compact down to whatever newest suffix fits.
        let cap = 220usize;
        let config = ServeConfig {
            cache_file: Some(path.clone()),
            cache_file_cap: cap,
            ..ServeConfig::default()
        };
        let req = |i: u64| {
            format!(
                r#"{{"id":{i},"op":"bound","src":"s = mul ({i}.5, 3); rnd s","name":"p{i}.nf"}}"#
            )
        };

        let newest = {
            let service = Service::with_config(Analyzer::new(), 1, config.clone());
            let session = service.analyzer().fork_session();
            for i in 1..=3 {
                let _ = service.handle_line(&session, &req(i));
            }
            service.persist_now();
            service.handle_line(&session, &req(3)).json
        };
        let written = std::fs::metadata(&path).unwrap().len() as usize;
        assert!(written <= cap, "snapshot is {written} bytes, cap is {cap}");
        assert!(written > 8, "something beyond the magic survived the cap");

        // The restored service still answers the newest program from the
        // snapshot (LRU entries were the ones compacted away).
        let service = Service::with_config(Analyzer::new(), 1, config);
        let restored = service.metrics.persist_restored.load(Ordering::Relaxed);
        assert!(
            (1..3).contains(&restored),
            "a capped snapshot keeps a strict, non-empty suffix (got {restored})"
        );
        let session = service.analyzer().fork_session();
        assert_eq!(service.handle_line(&session, &req(3)).json, newest);
        assert_eq!(service.metrics.persist_hits.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn service_batch_matches_cli_lines() {
        let service = Service::new(Analyzer::new(), 2);
        let session = service.analyzer().fork_session();
        let req = r#"{"id":3,"op":"batch","programs":[{"src":"rnd 1.5","name":"a.nf"},{"src":"2 3","name":"b.nf"},{"src":"rnd 1.5","name":"c.nf"}]}"#;
        let r = service.handle_line(&session, req);
        let v = Json::parse(&r.json).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "one program fails");
        let results = v.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 3);
        let (a, b) = (&results[0], &results[1]);
        assert_eq!(a.get("ok").and_then(Json::as_bool), Some(true));
        assert!(a.get("line").and_then(Json::as_str).unwrap().starts_with("a.nf: M[eps]num"));
        assert_eq!(b.get("ok").and_then(Json::as_bool), Some(false));
        assert!(b.get("line").and_then(Json::as_str).unwrap().starts_with("error[E0102]"));
        assert_eq!(v.get("summary").and_then(Json::as_str), Some("3 programs: 2 ok, 1 failed"));
    }
}
