/root/repo/target/debug/deps/table1-879f991959f4661e.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-879f991959f4661e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
