/root/repo/target/debug/deps/extensions-fc9038b28af9c36a.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-fc9038b28af9c36a.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
