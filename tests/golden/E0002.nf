rnd y
