//! # numfuzz
//!
//! A Rust reproduction of **Numerical Fuzz: A Type System for Rounding
//! Error Analysis** (Kellison & Hsu, PLDI 2024): the Λnum language — a
//! linear λ-calculus whose type system combines a Fuzz-style sensitivity
//! analysis with a graded monad `M[u]τ` tracking worst-case rounding
//! error — together with every substrate its evaluation depends on.
//!
//! This crate is the facade: it re-exports the workspace crates and hosts
//! the `numfuzz` CLI, the runnable examples, and the repo-level
//! integration tests.
//!
//! | module | contents |
//! |---|---|
//! | [`exact`] | arbitrary-precision integers/rationals, intervals, enclosures |
//! | [`softfloat`] | parameterized IEEE 754 binary formats and rounding (Tables 1–2) |
//! | [`metrics`] | relative precision (Olver), relative/absolute/ULP error |
//! | [`core`] | Λnum: grades, types, terms, inference (Figs. 1–2, 10–12), surface syntax (Figs. 7–9) |
//! | [`interp`] | ideal/FP semantics, §7 rounding extensions, error-soundness validation |
//! | [`analyzers`] | interval & Taylor-form baselines, textbook bounds, IR→Λnum translation |
//! | [`benchsuite`] | the Table 3/4/5 workloads |
//!
//! ## Quickstart
//!
//! ```
//! use numfuzz::prelude::*;
//!
//! // 1. Write a Λnum program (the paper's Fig. 7/8 style).
//! let src = r#"
//!     function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
//!     function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
//!     function MA (x: num) (y: num) (z: num) : M[2*eps]num {
//!         s = mulfp (x,y);
//!         let a = s;
//!         addfp (|a,z|)
//!     }
//!     MA 0.1 0.3 7
//! "#;
//!
//! // 2. Type-check: the grade on the monad is a sound roundoff bound.
//! let sig = Signature::relative_precision();
//! let lowered = compile(src, &sig)?;
//! let checked = infer(&lowered.store, &sig, lowered.root, &[])?;
//! assert_eq!(checked.root.ty.to_string(), "M[2*eps]num");
//!
//! // 3. Run both semantics and verify the bound rigorously (Cor. 4.20).
//! let format = Format::BINARY64;
//! let mode = RoundingMode::TowardPositive;
//! let mut fp = ModeRounding { format, mode };
//! let report = validate(&lowered.store, &sig, lowered.root, &[], &mut fp,
//!                       &format.unit_roundoff(mode))?;
//! assert!(report.holds());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use numfuzz_analyzers as analyzers;
pub use numfuzz_benchsuite as benchsuite;
pub use numfuzz_core as core;
pub use numfuzz_exact as exact;
pub use numfuzz_interp as interp;
pub use numfuzz_metrics as metrics;
pub use numfuzz_softfloat as softfloat;

/// The names most programs need, in one import.
pub mod prelude {
    pub use numfuzz_core::{compile, infer, parse_program, Grade, Signature, Ty};
    pub use numfuzz_exact::{RatInterval, Rational};
    pub use numfuzz_interp::{
        eval, rounding::CheckedRounding, rounding::IdentityRounding, rounding::ModeRounding,
        validate, EvalConfig, Value,
    };
    pub use numfuzz_metrics::{NumMetric, Within};
    pub use numfuzz_softfloat::{Format, Fp, RoundingMode};
}
