/root/repo/target/debug/deps/numfuzz_core-fa2ebbe820c3c63f.d: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/env.rs crates/core/src/grade.rs crates/core/src/lexer.rs crates/core/src/lower.rs crates/core/src/parser.rs crates/core/src/pretty.rs crates/core/src/sig.rs crates/core/src/term.rs crates/core/src/ty.rs crates/core/src/validate.rs

/root/repo/target/debug/deps/libnumfuzz_core-fa2ebbe820c3c63f.rlib: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/env.rs crates/core/src/grade.rs crates/core/src/lexer.rs crates/core/src/lower.rs crates/core/src/parser.rs crates/core/src/pretty.rs crates/core/src/sig.rs crates/core/src/term.rs crates/core/src/ty.rs crates/core/src/validate.rs

/root/repo/target/debug/deps/libnumfuzz_core-fa2ebbe820c3c63f.rmeta: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/env.rs crates/core/src/grade.rs crates/core/src/lexer.rs crates/core/src/lower.rs crates/core/src/parser.rs crates/core/src/pretty.rs crates/core/src/sig.rs crates/core/src/term.rs crates/core/src/ty.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/check.rs:
crates/core/src/env.rs:
crates/core/src/grade.rs:
crates/core/src/lexer.rs:
crates/core/src/lower.rs:
crates/core/src/parser.rs:
crates/core/src/pretty.rs:
crates/core/src/sig.rs:
crates/core/src/term.rs:
crates/core/src/ty.rs:
crates/core/src/validate.rs:
