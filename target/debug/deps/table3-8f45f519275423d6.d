/root/repo/target/debug/deps/table3-8f45f519275423d6.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-8f45f519275423d6: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
