//! Property-based tests for the exact-arithmetic substrate.

use numfuzz_exact::{BigInt, BigUint, Rational};
use proptest::prelude::*;

fn big_from_limbs() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u32>(), 0..8).prop_map(BigUint::from_limbs)
}

fn rational() -> impl Strategy<Value = Rational> {
    (any::<i64>(), 1..=u32::MAX)
        .prop_map(|(n, d)| Rational::new(BigInt::from(n), BigInt::from(d as i64)))
}

proptest! {
    #[test]
    fn biguint_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (ba, bb) = (BigUint::from(a), BigUint::from(b));
        prop_assert_eq!(ba.add(&bb), BigUint::from(a as u128 + b as u128));
        prop_assert_eq!(ba.mul(&bb), BigUint::from(a as u128 * b as u128));
        if a >= b {
            prop_assert_eq!(ba.sub(&bb), BigUint::from(a - b));
        }
        if let (Some(qq), Some(rr)) = (a.checked_div(b), a.checked_rem(b)) {
            let (q, r) = ba.div_rem(&bb);
            prop_assert_eq!(q, BigUint::from(qq));
            prop_assert_eq!(r, BigUint::from(rr));
        }
    }

    #[test]
    fn biguint_div_rem_invariant(a in big_from_limbs(), b in big_from_limbs()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn biguint_mul_distributes(a in big_from_limbs(), b in big_from_limbs(), c in big_from_limbs()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn biguint_gcd_divides(a in big_from_limbs(), b in big_from_limbs()) {
        prop_assume!(!a.is_zero() || !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        if !a.is_zero() {
            prop_assert!(a.div_rem(&g).1.is_zero());
        }
        if !b.is_zero() {
            prop_assert!(b.div_rem(&g).1.is_zero());
        }
        // Cofactors are coprime.
        if !a.is_zero() && !b.is_zero() {
            let (ca, _) = a.div_rem(&g);
            let (cb, _) = b.div_rem(&g);
            prop_assert!(ca.gcd(&cb).is_one());
        }
    }

    #[test]
    fn biguint_shift_roundtrip(a in big_from_limbs(), bits in 0u64..200) {
        prop_assert_eq!(a.shl_bits(bits).shr_bits(bits), a.clone());
        // shr then shl only loses low bits.
        prop_assert!(a.shr_bits(bits).shl_bits(bits) <= a);
    }

    #[test]
    fn biguint_decimal_roundtrip(a in big_from_limbs()) {
        let s = a.to_decimal_string();
        prop_assert_eq!(BigUint::from_decimal_str(&s).unwrap(), a);
    }

    #[test]
    fn biguint_isqrt_bracket(a in big_from_limbs()) {
        let (s, r) = a.isqrt_rem();
        prop_assert_eq!(s.mul(&s).add(&r), a.clone());
        let s1 = s.add(&BigUint::one());
        prop_assert!(s1.mul(&s1) > a);
    }

    #[test]
    fn bigint_ring_laws(a in any::<i64>(), b in any::<i64>(), c in any::<i32>()) {
        let (ba, bb, bc) = (BigInt::from(a), BigInt::from(b), BigInt::from(c));
        prop_assert_eq!(ba.add(&bb), bb.add(&ba));
        prop_assert_eq!(ba.mul(&bb), bb.mul(&ba));
        prop_assert_eq!(ba.mul(&bb.add(&bc)), ba.mul(&bb).add(&ba.mul(&bc)));
        prop_assert_eq!(ba.sub(&ba), BigInt::zero());
        prop_assert_eq!(ba.add(&ba.neg()), BigInt::zero());
    }

    #[test]
    fn bigint_div_rem_truncation(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (q, r) = BigInt::from(a).div_rem(&BigInt::from(b));
        prop_assert_eq!(q, BigInt::from(a.wrapping_div(b)));
        prop_assert_eq!(r, BigInt::from(a.wrapping_rem(b)));
    }

    #[test]
    fn rational_field_laws(a in rational(), b in rational(), c in rational()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert_eq!(a.sub(&a), Rational::zero());
        if !a.is_zero() {
            prop_assert_eq!(a.mul(&a.recip()), Rational::one());
            prop_assert_eq!(a.div(&a), Rational::one());
        }
    }

    #[test]
    fn rational_normalized(a in rational()) {
        // gcd(|num|, den) == 1 after every constructor.
        if !a.is_zero() {
            prop_assert!(a.numer().magnitude().gcd(&a.denom()).is_one());
        } else {
            prop_assert!(a.denom().is_one());
        }
    }

    #[test]
    fn rational_order_total(a in rational(), b in rational()) {
        // Exactly one of <, ==, > holds, and it matches subtraction sign.
        let d = a.sub(&b);
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(d.is_negative()),
            std::cmp::Ordering::Equal => prop_assert!(d.is_zero()),
            std::cmp::Ordering::Greater => prop_assert!(d.is_positive()),
        }
    }

    #[test]
    fn rational_display_roundtrip(a in rational()) {
        let s = a.to_string();
        prop_assert_eq!(Rational::from_decimal_str(&s).unwrap(), a);
    }

    #[test]
    fn rational_floor_mul_pow2_definition(a in rational(), k in -80i64..80) {
        let f = a.floor_mul_pow2(k);
        let fr = Rational::from(f.clone());
        let scaled = a.mul(&Rational::pow2(k));
        prop_assert!(fr <= scaled);
        prop_assert!(scaled < fr.add(&Rational::one()));
    }

    /// The inline small-value fast paths agree with arithmetic routed
    /// through the big-integer constructors: `(a/b) op (c/d)` computed by
    /// `Rational` equals the textbook big-integer formula.
    #[test]
    fn small_fast_paths_match_bignum_route(
        an in any::<i64>(), ad in 1i64..=i64::MAX,
        bn in any::<i64>(), bd in 1i64..=i64::MAX,
    ) {
        let a = Rational::ratio(an, ad);
        let b = Rational::ratio(bn, bd);
        let big = |n: i64| BigInt::from(n);
        // a + b = (an*bd + bn*ad) / (ad*bd), built via BigInt only.
        let sum = Rational::new(
            big(an).mul(&big(bd)).add(&big(bn).mul(&big(ad))),
            big(ad).mul(&big(bd)),
        );
        prop_assert_eq!(a.add(&b), sum);
        // a * b = (an*bn) / (ad*bd).
        let prod = Rational::new(big(an).mul(&big(bn)), big(ad).mul(&big(bd)));
        prop_assert_eq!(a.mul(&b), prod);
        // a - b and, when defined, a / b.
        let diff = Rational::new(
            big(an).mul(&big(bd)).sub(&big(bn).mul(&big(ad))),
            big(ad).mul(&big(bd)),
        );
        prop_assert_eq!(a.sub(&b), diff);
        if !b.is_zero() {
            let quot = Rational::new(big(an).mul(&big(bd)), big(ad).mul(&big(bn)));
            prop_assert_eq!(a.div(&b), quot);
        }
        // Ordering agrees with the big-integer cross-multiplication.
        prop_assert_eq!(
            a.cmp(&b),
            big(an).mul(&big(bd)).cmp(&big(bn).mul(&big(ad)))
        );
    }

    /// The representation is canonical: any value whose reduced parts fit
    /// machine words is stored inline, no matter how it was built, so
    /// equal values hash equally across construction routes.
    #[test]
    fn small_representation_is_canonical(n in any::<i32>(), d in 1i32..=i32::MAX, k in 1i64..1000) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let small = Rational::ratio(n as i64, d as i64);
        // Build the same value through an unreduced big-integer route.
        let viabig = Rational::new(
            BigInt::from(n as i64).mul(&BigInt::from(k)),
            BigInt::from(d as i64).mul(&BigInt::from(k)),
        );
        prop_assert!(small.is_small());
        prop_assert!(viabig.is_small());
        prop_assert_eq!(&small, &viabig);
        let h = |r: &Rational| {
            let mut s = DefaultHasher::new();
            r.hash(&mut s);
            s.finish()
        };
        prop_assert_eq!(h(&small), h(&viabig));
        // Promotion round-trip: blow the value out of word range and come
        // back; equality and canonicality survive.
        let huge = Rational::from_int(i64::MAX).add(&Rational::one());
        let promoted = small.add(&huge);
        let back = promoted.sub(&huge);
        prop_assert_eq!(&back, &small);
        prop_assert!(back.is_small());
    }

    #[test]
    fn rational_to_f64_close(a in rational()) {
        let f = a.to_f64();
        if f.is_finite() && f != 0.0 {
            // Relative error below 1e-15 (display-quality).
            let back = Rational::from_decimal_str(&format!("{f:e}")).unwrap();
            let err = a.sub(&back).abs();
            let tol = a.abs().mul(&Rational::from_decimal_str("1e-14").unwrap());
            prop_assert!(err <= tol, "a={a} f={f}");
        }
    }
}
