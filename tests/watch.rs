//! End-to-end test of the `numfuzz watch` change detector: a rewrite
//! that preserves both the file's mtime and its length (an atomic
//! rename-over with a restored timestamp — what editors and build tools
//! do) must still trigger a recheck, because the change key hashes the
//! content rather than trusting stat output.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_numfuzz");

#[test]
fn watch_rechecks_a_rewrite_that_preserves_mtime_and_length() {
    let dir = std::env::temp_dir().join(format!("numfuzz-watch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("w.nf");
    // Same byte length as the replacement below, so (mtime, length)
    // cannot distinguish them.
    std::fs::write(&file, "rnd 1.5").unwrap();
    let original_mtime = std::fs::metadata(&file).unwrap().modified().unwrap();

    let mut child = Command::new(BIN)
        .args(["watch", file.to_str().unwrap(), "--poll-ms", "30", "--iterations", "2"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn numfuzz watch");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());

    // Wait for the initial recheck banner, then drain its report lines
    // until the reuse summary (the last line of a recheck block).
    let read_block = |stdout: &mut BufReader<std::process::ChildStdout>, n: u32| {
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("read banner");
        assert!(
            banner.contains(&format!("(recheck {n})")),
            "expected recheck {n} banner, got {banner:?}"
        );
        let mut block = String::new();
        loop {
            let mut line = String::new();
            assert_ne!(stdout.read_line(&mut line).expect("read report"), 0, "watch exited early");
            block.push_str(&line);
            if line.starts_with("judgments:") {
                return block;
            }
        }
    };
    let first = read_block(&mut stdout, 1);
    assert!(first.contains("program : M[eps]num"), "{first}");

    // The adversarial rewrite: stage the new content in a sibling file,
    // pin its mtime to the watched file's, and rename it over. The
    // watched path now has different bytes behind an identical
    // (mtime, length) stat signature.
    let staged = dir.join("w.nf.tmp");
    std::fs::write(&staged, "rnd 2.5").unwrap();
    let handle = std::fs::OpenOptions::new().append(true).open(&staged).unwrap();
    handle.set_modified(original_mtime).unwrap();
    drop(handle);
    std::fs::rename(&staged, &file).unwrap();
    let after = std::fs::metadata(&file).unwrap();
    assert_eq!(after.modified().unwrap(), original_mtime, "the rewrite must not move mtime");
    assert_eq!(after.len(), 7, "the rewrite must not change the length");

    let second = read_block(&mut stdout, 2);
    assert!(second.contains("program : M[eps]num"), "{second}");

    // --iterations 2 ends the watch after that recheck.
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        if Instant::now() > deadline {
            child.kill().ok();
            panic!("watch did not exit after --iterations 2");
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "clean exit: {status:?}");
    std::fs::remove_dir_all(&dir).ok();
}
