/root/repo/target/debug/deps/diagnostics-14bca63f131de121.d: tests/diagnostics.rs Cargo.toml

/root/repo/target/debug/deps/libdiagnostics-14bca63f131de121.rmeta: tests/diagnostics.rs Cargo.toml

tests/diagnostics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
