/root/repo/target/debug/deps/props-56f7d6f06e7b5997.d: crates/softfloat/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-56f7d6f06e7b5997.rmeta: crates/softfloat/tests/props.rs Cargo.toml

crates/softfloat/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
