//! Deprecated pre-0.2 free functions, kept as thin shims so existing
//! callers keep compiling. New code goes through [`crate::Program`] and
//! [`crate::Analyzer`].

// The shims return the engine's own error types verbatim; their size is
// the engine's concern (checking is not a hot error path).
#![allow(clippy::result_large_err)]

use numfuzz_core::{
    CheckError, CheckResult, Lowered, Signature, SyntaxError, TermId, TermStore, Ty, VarId,
};
use numfuzz_exact::Rational;
use numfuzz_interp::{Rounding, SoundnessError, SoundnessReport, Value};

/// Parse + lower a program in one call.
#[deprecated(
    since = "0.2.0",
    note = "use `Program::parse` (or `Analyzer::parse` for non-default signatures)"
)]
pub fn compile(src: &str, sig: &Signature) -> Result<Lowered, SyntaxError> {
    numfuzz_core::compile(src, sig)
}

/// Algorithmic sensitivity inference over raw arena parts.
#[deprecated(since = "0.2.0", note = "use `Analyzer::check` on a `Program`")]
pub fn infer(
    store: &TermStore,
    sig: &Signature,
    root: TermId,
    free: &[(VarId, Ty)],
) -> Result<CheckResult, CheckError> {
    numfuzz_core::infer(store, sig, root, free)
}

/// Error-soundness validation over raw arena parts.
#[deprecated(since = "0.2.0", note = "use `Analyzer::validate` on a `Program`")]
pub fn validate(
    store: &TermStore,
    sig: &Signature,
    root: TermId,
    inputs: &[(VarId, Value)],
    fp_rounding: &mut dyn Rounding,
    rnd_unit: &Rational,
) -> Result<SoundnessReport, SoundnessError> {
    numfuzz_interp::validate(store, sig, root, inputs, fp_rounding, rnd_unit)
}

/// Error-soundness validation with an arbitrary symbol assignment.
#[deprecated(since = "0.2.0", note = "use `Analyzer::validate_with_symbols` on a `Program`")]
pub fn validate_with(
    store: &TermStore,
    sig: &Signature,
    root: TermId,
    inputs: &[(VarId, Value)],
    fp_rounding: &mut dyn Rounding,
    symbols: &dyn Fn(&str) -> Option<Rational>,
) -> Result<SoundnessReport, SoundnessError> {
    numfuzz_interp::validate_with(store, sig, root, inputs, fp_rounding, symbols)
}
