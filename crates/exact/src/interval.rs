//! Closed intervals with exact rational endpoints.
//!
//! Because the endpoints are exact, the interval operations for `+ - ×`
//! introduce **no** outward rounding at all; only inherently irrational
//! operations ([`RatInterval::sqrt`]) widen intervals, by an amount
//! controlled by a precision parameter.

use crate::funcs::sqrt_enclosure;
use crate::rational::Rational;
use std::fmt;

/// A closed interval `[lo, hi]` of rationals with `lo <= hi`.
///
/// # Examples
///
/// ```
/// use numfuzz_exact::{RatInterval, Rational};
///
/// let x = RatInterval::point(Rational::from_int(2));
/// let s = x.sqrt(100);
/// // The enclosure brackets sqrt(2): lo^2 <= 2 <= hi^2, and it is tight.
/// assert!(s.lo().mul(s.lo()) <= Rational::from_int(2));
/// assert!(s.hi().mul(s.hi()) >= Rational::from_int(2));
/// assert!(s.width() < Rational::pow2(-90));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RatInterval {
    lo: Rational,
    hi: Rational,
}

impl RatInterval {
    /// Builds `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: Rational, hi: Rational) -> Self {
        assert!(lo <= hi, "interval endpoints out of order");
        RatInterval { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: Rational) -> Self {
        RatInterval { lo: v.clone(), hi: v }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> &Rational {
        &self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> &Rational {
        &self.hi
    }

    /// `hi - lo`.
    pub fn width(&self) -> Rational {
        self.hi.sub(&self.lo)
    }

    /// Whether the interval is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// For point intervals, the single value.
    pub fn as_point(&self) -> Option<&Rational> {
        if self.is_point() {
            Some(&self.lo)
        } else {
            None
        }
    }

    /// Whether `v` lies in the interval.
    pub fn contains(&self, v: &Rational) -> bool {
        &self.lo <= v && v <= &self.hi
    }

    /// Whether `other` is entirely inside `self`.
    pub fn contains_interval(&self, other: &Self) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether every point is strictly positive.
    pub fn is_strictly_positive(&self) -> bool {
        self.lo.is_positive()
    }

    /// Whether the interval contains zero.
    pub fn contains_zero(&self) -> bool {
        !self.lo.is_positive() && !self.hi.is_negative()
    }

    /// Pointwise negation.
    pub fn neg(&self) -> Self {
        RatInterval { lo: self.hi.neg(), hi: self.lo.neg() }
    }

    /// Interval sum.
    pub fn add(&self, other: &Self) -> Self {
        RatInterval { lo: self.lo.add(&other.lo), hi: self.hi.add(&other.hi) }
    }

    /// Interval difference.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// Interval product (min/max of the four endpoint products).
    pub fn mul(&self, other: &Self) -> Self {
        let products = [
            self.lo.mul(&other.lo),
            self.lo.mul(&other.hi),
            self.hi.mul(&other.lo),
            self.hi.mul(&other.hi),
        ];
        let mut lo = products[0].clone();
        let mut hi = products[0].clone();
        for p in &products[1..] {
            if p < &lo {
                lo = p.clone();
            }
            if p > &hi {
                hi = p.clone();
            }
        }
        RatInterval { lo, hi }
    }

    /// Interval quotient; `None` when the divisor contains zero.
    pub fn div(&self, other: &Self) -> Option<Self> {
        if other.contains_zero() {
            return None;
        }
        let recip = RatInterval { lo: other.hi.recip(), hi: other.lo.recip() };
        Some(self.mul(&recip))
    }

    /// Enclosure of the pointwise square root, accurate to `2^-bits` at the
    /// endpoints.
    ///
    /// # Panics
    ///
    /// Panics if the interval contains negative values.
    pub fn sqrt(&self, bits: u32) -> Self {
        assert!(!self.lo.is_negative(), "sqrt of a negative interval");
        let lo = sqrt_enclosure(&self.lo, bits);
        let hi = sqrt_enclosure(&self.hi, bits);
        RatInterval { lo: lo.lo, hi: hi.hi }
    }

    /// Smallest interval containing both.
    pub fn hull(&self, other: &Self) -> Self {
        RatInterval {
            lo: self.lo.clone().min(other.lo.clone()),
            hi: self.hi.clone().max(other.hi.clone()),
        }
    }

    /// Intersection, or `None` if disjoint.
    pub fn intersect(&self, other: &Self) -> Option<Self> {
        let lo = self.lo.clone().max(other.lo.clone());
        let hi = self.hi.clone().min(other.hi.clone());
        if lo <= hi {
            Some(RatInterval { lo, hi })
        } else {
            None
        }
    }

    /// The maximum of `|lo|` and `|hi|`.
    pub fn abs_sup(&self) -> Rational {
        self.lo.abs().max(self.hi.abs())
    }

    /// The minimum of `|x|` over the interval (zero if it contains zero).
    pub fn abs_inf(&self) -> Rational {
        if self.contains_zero() {
            Rational::zero()
        } else {
            self.lo.abs().min(self.hi.abs())
        }
    }
}

impl fmt::Display for RatInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_point() {
            write!(f, "[{}]", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

impl fmt::Debug for RatInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RatInterval{self}")
    }
}

impl From<Rational> for RatInterval {
    fn from(v: Rational) -> Self {
        RatInterval::point(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(s: &str) -> Rational {
        Rational::from_decimal_str(s).expect("valid test literal")
    }

    fn iv(lo: &str, hi: &str) -> RatInterval {
        RatInterval::new(rat(lo), rat(hi))
    }

    #[test]
    fn arithmetic_endpoints() {
        let a = iv("1", "2");
        let b = iv("-1", "3");
        assert_eq!(a.add(&b), iv("0", "5"));
        assert_eq!(a.sub(&b), iv("-2", "3"));
        assert_eq!(a.mul(&b), iv("-2", "6"));
        assert_eq!(a.neg(), iv("-2", "-1"));
    }

    #[test]
    fn mul_sign_cases() {
        assert_eq!(iv("-2", "-1").mul(&iv("-3", "-1")), iv("1", "6"));
        assert_eq!(iv("-2", "3").mul(&iv("-1", "4")), iv("-8", "12"));
        assert_eq!(iv("0", "0").mul(&iv("-5", "5")), iv("0", "0"));
    }

    #[test]
    fn div_avoids_zero() {
        assert_eq!(iv("1", "2").div(&iv("2", "4")), Some(iv("0.25", "1")));
        assert_eq!(iv("1", "2").div(&iv("-1", "1")), None);
        assert_eq!(iv("-4", "4").div(&iv("-2", "-1")), Some(iv("-4", "4")));
    }

    #[test]
    fn sqrt_enclosure_tightness() {
        let two = RatInterval::point(rat("2"));
        let s = s_width_check(&two, 80);
        assert!(s.lo().mul(s.lo()) <= rat("2"));
        assert!(s.hi().mul(s.hi()) >= rat("2"));
    }

    fn s_width_check(x: &RatInterval, bits: u32) -> RatInterval {
        let s = x.sqrt(bits);
        assert!(s.width() <= Rational::pow2(-(bits as i64 - 2)));
        s
    }

    #[test]
    fn sqrt_of_exact_square_is_tight() {
        let four = RatInterval::point(rat("4"));
        let s = four.sqrt(20);
        assert!(s.contains(&rat("2")));
        assert!(s.width() <= Rational::pow2(-18));
    }

    #[test]
    fn hull_intersect_contains() {
        let a = iv("0", "2");
        let b = iv("1", "3");
        assert_eq!(a.hull(&b), iv("0", "3"));
        assert_eq!(a.intersect(&b), Some(iv("1", "2")));
        assert_eq!(iv("0", "1").intersect(&iv("2", "3")), None);
        assert!(a.contains(&rat("1.5")));
        assert!(!a.contains(&rat("2.5")));
        assert!(a.contains_interval(&iv("0.5", "1.5")));
    }

    #[test]
    fn abs_bounds() {
        assert_eq!(iv("-3", "2").abs_sup(), rat("3"));
        assert_eq!(iv("-3", "2").abs_inf(), Rational::zero());
        assert_eq!(iv("1", "2").abs_inf(), rat("1"));
        assert_eq!(iv("-4", "-2").abs_inf(), rat("2"));
    }

    #[test]
    #[should_panic(expected = "interval endpoints out of order")]
    fn rejects_inverted_endpoints() {
        let _ = RatInterval::new(rat("2"), rat("1"));
    }
}
