//! Criterion benches behind the paper's timing columns: Λnum type
//! inference across program scales (Tables 3 and 4).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use numfuzz_analyzers::kernel_to_core;
use numfuzz_benchsuite::{horner, matrix_multiply, serial_sum, table3};
use numfuzz_core::{infer, Signature};

fn bench_small(c: &mut Criterion) {
    let sig = Signature::relative_precision();
    let mut group = c.benchmark_group("check/table3");
    for b in table3() {
        if !matches!(b.kernel.name.as_str(), "hypot" | "test02_sum8" | "Horner20") {
            continue;
        }
        let ck = kernel_to_core(&b.kernel).expect("translatable");
        group.bench_function(&b.kernel.name, |bench| {
            bench.iter(|| infer(&ck.store, &sig, ck.root, &ck.free).expect("checks"))
        });
    }
    group.finish();
}

fn bench_large(c: &mut Criterion) {
    let sig = Signature::relative_precision();
    let mut group = c.benchmark_group("check/table4");
    group.sample_size(10);
    for g in [horner(100), serial_sum(1024), matrix_multiply(4), matrix_multiply(16)] {
        group.bench_function(&g.name, |bench| {
            bench.iter_batched(
                || (),
                |_| infer(&g.store, &sig, g.root, &g.free).expect("checks"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_small, bench_large);
criterion_main!(benches);
