/root/repo/target/debug/deps/ablation-17c8e98a7e083de7.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-17c8e98a7e083de7.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
