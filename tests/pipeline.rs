//! End-to-end integration through the facade: every Table 3 / Table 5
//! benchmark goes through `Program` construction → `Analyzer::check` (in
//! batch) → ideal+fp evaluation → rigorous bound check (Corollary 4.20),
//! across formats and modes.

use numfuzz::benchsuite::{table3, table5};
use numfuzz::prelude::*;

#[test]
fn table3_kernels_check_and_validate() {
    let benches = table3();
    let programs: Vec<Program> =
        benches.iter().map(|b| Program::from_kernel(&b.kernel).expect("translatable")).collect();

    // One batch check amortizes the session; grades equal the recorded
    // paper coefficients.
    let analyzer = Analyzer::new();
    let typed: Vec<Typed> =
        analyzer.check_all(&programs).into_iter().map(|r| r.expect("checks")).collect();
    for (b, t) in benches.iter().zip(&typed) {
        let expected = Ty::monad(Grade::symbol("eps").scale(&b.expected_eps_coeff), Ty::Num);
        assert_eq!(t.ty(), &expected, "{}", b.kernel.name);
    }

    let formats = [Format::BINARY64, Format::new(10, 50)];
    for (b, program) in benches.iter().zip(&programs) {
        for sample in &b.samples {
            let inputs = Inputs::positional(sample.iter().map(|q| Value::num(q.clone())));
            for format in formats {
                for mode in [RoundingMode::TowardPositive, RoundingMode::NearestEven] {
                    let session = Analyzer::builder().format(format).mode(mode).build();
                    let rep = session
                        .validate(program, &inputs)
                        .unwrap_or_else(|e| panic!("{}: {e}", b.kernel.name));
                    assert!(
                        rep.holds(),
                        "{} violated at {sample:?} {format} {mode}: {rep:?}",
                        b.kernel.name
                    );
                }
            }
        }
    }
}

#[test]
fn table5_conditionals_check_and_validate() {
    for b in table5() {
        let program =
            Program::parse_named(b.name, &format!("{}\n{}", b.source, b.sample)).expect("parses");
        for mode in RoundingMode::ALL {
            let session = Analyzer::builder().format(Format::BINARY64).mode(mode).build();
            let rep = session
                .validate(&program, &Inputs::none())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(rep.holds(), "{} violated under {mode}", b.name);
        }
    }
}

#[test]
fn generated_table4_programs_validate() {
    use numfuzz::benchsuite::{horner, matrix_multiply, poly_naive, serial_sum};
    let session =
        Analyzer::builder().format(Format::new(16, 80)).mode(RoundingMode::TowardPositive).build();
    for g in [horner(25), serial_sum(64), matrix_multiply(3), poly_naive(8)] {
        let program = Program::from_generated(g);
        let inputs =
            Inputs::positional(program.free().iter().map(|_| Value::num(Rational::ratio(5, 4))));
        let name = program.name().unwrap_or("?").to_string();
        let rep = session.validate(&program, &inputs).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(rep.holds(), "{name} violated: {rep:?}");
        // Error really accumulates in a 16-bit format: measured > 0.
        assert!(rep.measured.unwrap_or(0.0) > 0.0, "{name}");
    }
}

#[test]
fn cross_semantics_agreement_smallstep_vs_machine() {
    // The substitution-based reference semantics and the abstract machine
    // agree on the Table 5 squareRoot3 program (taking the non-sqrt
    // branch so the reference stays rational). The machine side goes
    // through `Analyzer::run`; the small-step side uses the arena parts
    // the `Program` releases.
    use numfuzz::core::Node;
    use numfuzz::interp::smallstep::{normalize, StepSemantics};

    let b = table5().into_iter().find(|b| b.name == "squareRoot3").expect("present");
    let src = format!("{}\nsquareRoot3 [0.000001]{{inf}}", b.source);
    let program = Program::parse(&src).expect("parses");

    let session =
        Analyzer::builder().format(Format::BINARY64).mode(RoundingMode::TowardPositive).build();
    let exec = session.run(&program, &Inputs::none()).expect("runs");
    let machine_val = exec
        .fp
        .as_ret()
        .and_then(Value::as_num)
        .expect("ret num")
        .as_point()
        .expect("point")
        .clone();

    let (mut store, root, _free) = program.into_parts();
    let sem = StepSemantics::Fp(Format::BINARY64, RoundingMode::TowardPositive);
    let nf = normalize(&mut store, root, sem, 10_000_000);
    let ss_val = match store.node(nf) {
        Node::Ret(v) => match store.node(*v) {
            Node::Const(k) => store.constant(*k).clone(),
            other => panic!("unexpected payload {other:?}"),
        },
        other => panic!("unexpected normal form {other:?}"),
    };
    assert_eq!(machine_val, ss_val);
}
