//! A straight-line expression IR for floating-point kernels.
//!
//! This is the common input format of the baseline analyzers (the Gappa-
//! and FPTaylor-style tools of the paper's Table 3 comparison) and of the
//! translation into Λnum. It mirrors the FPBench core fragment the paper
//! can handle: `+ − × ÷ √` over real constants and range-bounded inputs
//! (subtraction appears only in baseline-only kernels; the RP
//! instantiation of Λnum does not type it).

use numfuzz_exact::{RatInterval, Rational};

/// A real-valued expression over indexed inputs.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A real constant.
    Const(Rational),
    /// The `i`-th input.
    Var(usize),
    /// `a + b`.
    Add(Box<Expr>, Box<Expr>),
    /// `a - b`.
    Sub(Box<Expr>, Box<Expr>),
    /// `a * b`.
    Mul(Box<Expr>, Box<Expr>),
    /// `a / b`.
    Div(Box<Expr>, Box<Expr>),
    /// `sqrt(a)`.
    Sqrt(Box<Expr>),
    /// Fused multiply-add `a*b + c` with a **single** rounding — the
    /// operation behind the paper's Horner benchmarks (Fig. 8).
    Fma(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Constant from a decimal literal.
    ///
    /// # Panics
    ///
    /// Panics on an invalid literal (kernel definitions are static).
    pub fn num(s: &str) -> Expr {
        Expr::Const(Rational::from_decimal_str(s).expect("valid kernel literal"))
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// `a / b`.
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }

    /// `sqrt(a)`.
    pub fn sqrt(a: Expr) -> Expr {
        Expr::Sqrt(Box::new(a))
    }

    /// `fma(a, b, c) = a*b + c`, rounded once.
    pub fn fma(a: Expr, b: Expr, c: Expr) -> Expr {
        Expr::Fma(Box::new(a), Box::new(b), Box::new(c))
    }

    /// Number of rounded floating-point operations.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                1 + a.op_count() + b.op_count()
            }
            Expr::Sqrt(a) => 1 + a.op_count(),
            // Counted as two arithmetic operations (mul + add), matching
            // the paper's Ops column, despite the single rounding.
            Expr::Fma(a, b, c) => 2 + a.op_count() + b.op_count() + c.op_count(),
        }
    }

    /// Interval evaluation over input ranges (`None` on division by an
    /// interval containing zero or sqrt of a negative range).
    pub fn eval_interval(&self, inputs: &[RatInterval], sqrt_bits: u32) -> Option<RatInterval> {
        match self {
            Expr::Const(c) => Some(RatInterval::point(c.clone())),
            Expr::Var(i) => inputs.get(*i).cloned(),
            Expr::Add(a, b) => {
                Some(a.eval_interval(inputs, sqrt_bits)?.add(&b.eval_interval(inputs, sqrt_bits)?))
            }
            Expr::Sub(a, b) => {
                Some(a.eval_interval(inputs, sqrt_bits)?.sub(&b.eval_interval(inputs, sqrt_bits)?))
            }
            Expr::Mul(a, b) => {
                Some(a.eval_interval(inputs, sqrt_bits)?.mul(&b.eval_interval(inputs, sqrt_bits)?))
            }
            Expr::Div(a, b) => {
                a.eval_interval(inputs, sqrt_bits)?.div(&b.eval_interval(inputs, sqrt_bits)?)
            }
            Expr::Sqrt(a) => {
                let i = a.eval_interval(inputs, sqrt_bits)?;
                if i.lo().is_negative() {
                    None
                } else {
                    Some(i.sqrt(sqrt_bits))
                }
            }
            Expr::Fma(a, b, c) => Some(
                a.eval_interval(inputs, sqrt_bits)?
                    .mul(&b.eval_interval(inputs, sqrt_bits)?)
                    .add(&c.eval_interval(inputs, sqrt_bits)?),
            ),
        }
    }
}

/// A named kernel: an expression plus input names and ranges.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Kernel name (FPBench name where applicable).
    pub name: String,
    /// Input names and ranges.
    pub inputs: Vec<(String, RatInterval)>,
    /// The body.
    pub expr: Expr,
    /// Relative error already present on every input, in units of the
    /// rounding unit `u` (0 for exact inputs; the `*_with_error`
    /// benchmarks use 1).
    pub input_rel_ulps: u32,
}

impl Kernel {
    /// Builds a kernel with exact inputs.
    pub fn new(name: &str, inputs: Vec<(&str, RatInterval)>, expr: Expr) -> Self {
        Kernel {
            name: name.to_string(),
            inputs: inputs.into_iter().map(|(n, r)| (n.to_string(), r)).collect(),
            expr,
            input_rel_ulps: 0,
        }
    }

    /// Marks every input as carrying `k·u` of relative error.
    pub fn with_input_error(mut self, k: u32) -> Self {
        self.input_rel_ulps = k;
        self
    }

    /// The input ranges, in order.
    pub fn ranges(&self) -> Vec<RatInterval> {
        self.inputs.iter().map(|(_, r)| r.clone()).collect()
    }

    /// Number of rounded operations.
    pub fn op_count(&self) -> usize {
        self.expr.op_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(s: &str) -> Rational {
        Rational::from_decimal_str(s).expect("valid test literal")
    }

    fn iv(lo: &str, hi: &str) -> RatInterval {
        RatInterval::new(rat(lo), rat(hi))
    }

    #[test]
    fn op_count_counts_roundings() {
        // hypot: sqrt(x*x + y*y) = 4 ops.
        let e = Expr::sqrt(Expr::add(
            Expr::mul(Expr::Var(0), Expr::Var(0)),
            Expr::mul(Expr::Var(1), Expr::Var(1)),
        ));
        assert_eq!(e.op_count(), 4);
        assert_eq!(Expr::Var(0).op_count(), 0);
    }

    #[test]
    fn interval_eval() {
        let e = Expr::div(Expr::Var(0), Expr::add(Expr::Var(0), Expr::Var(1)));
        let ranges = vec![iv("0.1", "1000"), iv("0.1", "1000")];
        let i = e.eval_interval(&ranges, 64).unwrap();
        // x/(x+y) over [0.1,1000]^2 is within [0.1/2000, 1000/0.2].
        assert!(i.lo() >= &rat("0.00005"));
        assert!(i.hi() <= &rat("5000"));
        // Division by a zero-containing range fails.
        let bad = Expr::div(Expr::Var(0), Expr::sub(Expr::Var(0), Expr::Var(1)));
        assert_eq!(bad.eval_interval(&ranges, 64), None);
    }

    #[test]
    fn sqrt_eval_rigor() {
        let e = Expr::sqrt(Expr::Var(0));
        let i = e.eval_interval(&[iv("2", "2")], 100).unwrap();
        assert!(i.lo().mul(i.lo()) <= rat("2"));
        assert!(i.hi().mul(i.hi()) >= rat("2"));
    }
}
