//! Contract tests for the `numfuzz fuzz` subsystem: per-seed
//! determinism across job counts, genuine feature coverage, a clean run
//! on the CI seed, and — via deliberately broken oracles — proof that
//! the counterexample/shrinking machinery actually catches failures
//! (mutation smoke).

use numfuzz::fuzz::{
    generate_case, run, CaseFailure, CasePass, CasePlan, FailureKind, FuzzConfig, Oracle,
};
use numfuzz::fuzzing::AnalyzerOracle;
use numfuzz::prelude::*;
use std::process::Command;

fn cfg(cases: usize, seed: u64, jobs: usize) -> FuzzConfig {
    FuzzConfig { cases, seed, jobs, shrink_budget: 300, backward: false, incremental: false }
}

fn counter(report: &str, key: &str) -> usize {
    report
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("report lacks `{key}=`:\n{report}"))
        .parse()
        .expect("numeric counter")
}

#[test]
fn fixed_seed_run_is_clean_and_covers_the_surface() {
    let outcome = run(&cfg(200, 42, 2), &AnalyzerOracle);
    assert!(outcome.ok(), "counterexamples on the CI seed:\n{}", outcome.report);
    let report = &outcome.report;

    // Both instantiations, both real formats, and at least two modes
    // must be exercised (acceptance criteria of the fuzzer).
    let count = |key: &str| -> usize {
        report
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("report lacks `{key}=`:\n{report}"))
            .parse()
            .expect("numeric counter")
    };
    assert!(count("rp") > 0 && count("abs") > 0, "{report}");
    assert!(count("binary64") > 0 && count("binary32") > 0, "{report}");
    let modes_hit = ["ru", "rd", "rz", "rn"].iter().filter(|m| count(m) > 0).count();
    assert!(modes_hit >= 2, "{report}");

    // The full surface: conditionals, both pair metrics, sums, case,
    // let-functions, boxes, monadic nesting, signed/zero constants.
    // Per-feature floors at roughly half the seed-42 empirical counts,
    // so a generator regression that quietly starves one feature fails
    // loudly instead of scraping by at 1 occurrence.
    for (feature, floor) in [
        ("functions", 73),
        ("conditionals", 64),
        ("case-sum", 34),
        ("tensor-pairs", 98),
        ("cartesian-pairs", 67),
        ("sums", 42),
        ("boxes", 37),
        ("sqrt", 56),
        ("div", 60),
        ("sub-or-neg", 24),
        ("negative-consts", 26),
        ("zero-consts", 22),
        ("rnd", 97),
        ("ret", 67),
        ("bind", 88),
        ("stored-monad", 31),
        ("calls", 44),
        ("comparisons", 24),
    ] {
        assert!(
            count(feature) >= floor,
            "feature `{feature}` starved: {} < floor {floor}:\n{report}",
            count(feature)
        );
    }

    // The engines-agree oracle must have real coverage: the independent
    // interval engine produced (and checked) a bound on at least 90% of
    // the accepted cases, and was strictly tighter than the typed grade
    // on a meaningful share of them.
    let passed = count("passed");
    let checked = count("interval_checked");
    assert!(
        checked * 10 >= passed * 9,
        "interval engine abstained too often: {checked}/{passed} checked:\n{report}"
    );
    assert!(count("tighter_interval") >= 1, "{report}");
    assert!(
        count("tighter_typed") + count("tighter_interval") <= checked,
        "tighter counts exceed checked cases:\n{report}"
    );
}

#[test]
fn backward_campaign_is_clean_and_actually_exercises_the_lens() {
    let outcome = run(&FuzzConfig { backward: true, ..cfg(200, 42, 2) }, &AnalyzerOracle);
    assert!(outcome.ok(), "backward counterexamples on the CI seed:\n{}", outcome.report);
    let report = &outcome.report;
    assert!(report.contains("backward: "), "{report}");

    // The campaign must not be vacuous: some whole programs accepted,
    // plenty rejected by strict linearity, and — the differential teeth —
    // functions certified by the backward-stability lens on real grid
    // points.
    assert!(counter(report, "accepted") >= 1, "{report}");
    assert!(counter(report, "rejected") >= 100, "{report}");
    assert!(counter(report, "validated-fns") >= 1, "{report}");
    assert!(counter(report, "skipped-fns") >= 1, "{report}");
    assert!(counter(report, "grid-points") >= 4, "{report}");

    // Forward campaigns are byte-for-byte unaffected by the new mode:
    // no backward line, and the forward report on the same seed is
    // reproduced verbatim inside the backward one minus that line.
    let forward = run(&cfg(200, 42, 2), &AnalyzerOracle);
    assert!(!forward.report.contains("backward: "), "{}", forward.report);
    let stripped: String =
        report.lines().filter(|l| !l.starts_with("backward: ")).map(|l| format!("{l}\n")).collect();
    assert_eq!(stripped, forward.report, "backward mode perturbed the forward facts");
}

#[test]
fn backward_report_is_byte_identical_across_jobs() {
    let base = run(&FuzzConfig { backward: true, ..cfg(80, 7, 1) }, &AnalyzerOracle);
    for jobs in [2, 4] {
        let other = run(&FuzzConfig { backward: true, ..cfg(80, 7, jobs) }, &AnalyzerOracle);
        assert_eq!(base.report, other.report, "jobs={jobs}");
    }
}

#[test]
fn report_is_byte_identical_across_jobs_and_runs() {
    let base = run(&cfg(120, 9001, 1), &AnalyzerOracle);
    for jobs in [2, 4] {
        let other = run(&cfg(120, 9001, jobs), &AnalyzerOracle);
        assert_eq!(base.report, other.report, "jobs={jobs}");
    }
    let again = run(&cfg(120, 9001, 1), &AnalyzerOracle);
    assert_eq!(base.report, again.report, "repeated run drifted");
}

#[test]
fn different_seeds_generate_different_corpora() {
    let a = generate_case(1, 0).program.render();
    let b = generate_case(2, 0).program.render();
    assert_ne!(a, b, "seed does not influence generation");
    // And the same seed reproduces byte-identical programs.
    assert_eq!(a, generate_case(1, 0).program.render());
}

/// An oracle broken on purpose: every program that mentions `sqrt` is
/// reported as a bound violation. The driver must (a) surface the
/// counterexample, (b) shrink it while keeping the defining feature,
/// and (c) emit a reproducer that still parses and checks.
struct SqrtHater;

impl Oracle for SqrtHater {
    fn run_case(
        &self,
        plan: &CasePlan,
        src: &str,
        expected: Option<&Rational>,
    ) -> Result<CasePass, CaseFailure> {
        // Run the real oracle first, then lie about sqrt-bearing
        // programs — modelling a genuine validator bug on well-typed
        // programs (so shrinking, which preserves the failure kind,
        // also preserves well-typedness).
        let pass = AnalyzerOracle.run_case(plan, src, expected)?;
        if src.contains("sqrt") {
            return Err(CaseFailure {
                kind: FailureKind::BoundViolation,
                detail: "injected failure: program uses sqrt".into(),
            });
        }
        Ok(pass)
    }
}

#[test]
fn broken_oracle_is_caught_and_counterexamples_shrink() {
    let outcome = run(&cfg(60, 42, 2), &SqrtHater);
    assert!(
        !outcome.ok(),
        "a broken oracle produced a clean run — the fuzzer cannot catch anything:\n{}",
        outcome.report
    );
    for cx in &outcome.counterexamples {
        assert_eq!(cx.failure.kind, FailureKind::BoundViolation);
        assert!(cx.shrunk.contains("sqrt"), "shrinking lost the failure trigger:\n{}", cx.shrunk);
        assert!(
            cx.shrunk.len() <= cx.original.len(),
            "shrinking grew the program:\n{}\nvs\n{}",
            cx.shrunk,
            cx.original
        );
        // The reproducer is a self-contained, well-typed .nf program
        // (sqrt only exists in the RP signature, so the default session
        // applies).
        let program = Program::parse(&cx.shrunk)
            .unwrap_or_else(|d| panic!("reproducer does not parse: {}\n{}", d.render(), cx.shrunk));
        Analyzer::new()
            .check(&program)
            .unwrap_or_else(|d| panic!("reproducer does not check: {}\n{}", d.render(), cx.shrunk));
    }
    // Shrinking should reach a genuinely small witness: the minimal
    // sqrt-bearing program is a handful of lines.
    let smallest = outcome
        .counterexamples
        .iter()
        .map(|cx| cx.shrunk.lines().count())
        .min()
        .expect("at least one counterexample");
    assert!(smallest <= 4, "greedy shrinking stalled (smallest witness: {smallest} lines)");
}

/// Mutation smoke for the engines-agree oracle: an interval engine that
/// has lost its soundness — it claims bounds 2^20 times tighter than the
/// real engine's — must be caught as `INTERVAL-VIOLATION`
/// counterexamples. This is the differential analogue of `SqrtHater`:
/// the real oracle runs first (so every counterexample is a well-typed,
/// forward-sound program), then the maimed engine re-runs the
/// containment check with its slashed bound.
struct UnsoundIntervalEngine;

impl Oracle for UnsoundIntervalEngine {
    fn run_case(
        &self,
        plan: &CasePlan,
        src: &str,
        expected: Option<&Rational>,
    ) -> Result<CasePass, CaseFailure> {
        let pass = AnalyzerOracle.run_case(plan, src, expected)?;
        let mut builder =
            Analyzer::builder().signature(plan.instantiation).format(plan.format).mode(plan.mode);
        if let Some(unit) = &plan.rnd_unit {
            builder = builder.rounding_unit(unit.clone());
        }
        let analyzer = builder.build();
        let program = analyzer.parse(src).expect("the real oracle already parsed this");
        let report = analyzer
            .validate(&program, &Inputs::none())
            .expect("the real oracle already validated");
        if let (Ok(ib), Some(fp)) = (analyzer.bound_interval(&program), &report.fp) {
            if let Ok(bound) = ib.oracle_bound() {
                let slashed = bound.div(&Rational::pow2(20));
                let verdict = numfuzz::interp::metric_for(plan.instantiation).within(
                    &report.ideal,
                    fp,
                    &slashed,
                );
                if verdict != Within::Yes {
                    return Err(CaseFailure {
                        kind: FailureKind::IntervalViolation,
                        detail: format!(
                            "injected failure: bound {} slashed to {} no longer contains \
                             the true error",
                            bound.to_sci_string(6),
                            slashed.to_sci_string(6)
                        ),
                    });
                }
            }
        }
        Ok(pass)
    }
}

#[test]
fn unsound_interval_engine_is_caught() {
    let outcome = run(&cfg(60, 42, 2), &UnsoundIntervalEngine);
    assert!(
        !outcome.ok(),
        "an unsound interval engine survived the engines-agree oracle:\n{}",
        outcome.report
    );
    assert!(outcome.report.contains("INTERVAL-VIOLATION"), "{}", outcome.report);
    for cx in &outcome.counterexamples {
        assert_eq!(cx.failure.kind, FailureKind::IntervalViolation, "{}", cx.failure.detail);
        // Reproducers are well-typed under the plan's instantiation (the
        // real oracle accepted them before the maimed engine lied).
        let inst = if cx.plan.starts_with("abs") {
            Instantiation::AbsoluteError
        } else {
            Instantiation::RelativePrecision
        };
        let analyzer = Analyzer::builder().signature(inst).build();
        let program = analyzer
            .parse(&cx.shrunk)
            .unwrap_or_else(|d| panic!("reproducer does not parse: {}\n{}", d.render(), cx.shrunk));
        analyzer
            .check(&program)
            .unwrap_or_else(|d| panic!("reproducer does not check: {}\n{}", d.render(), cx.shrunk));
    }
}

/// A second mutation: an oracle that never fails must yield a clean run
/// with zero counterexamples — and one that always fails must flag every
/// case (the driver neither invents nor swallows failures).
struct AlwaysFail;

impl Oracle for AlwaysFail {
    fn run_case(
        &self,
        _plan: &CasePlan,
        _src: &str,
        _expected: Option<&Rational>,
    ) -> Result<CasePass, CaseFailure> {
        Err(CaseFailure { kind: FailureKind::Check, detail: "injected".into() })
    }
}

#[test]
fn driver_neither_invents_nor_swallows_failures() {
    let bad = run(&cfg(10, 5, 1), &AlwaysFail);
    assert_eq!(bad.counterexamples.len(), 10);
    assert!(bad.report.contains("failed=10"), "{}", bad.report);
}

fn numfuzz_bin(args: &[&str], dir: &std::path::Path) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_numfuzz"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("numfuzz binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn cli_fuzz_is_deterministic_and_exits_zero() {
    let dir = std::env::temp_dir().join(format!("numfuzz-fuzz-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let (first, stderr, code) = numfuzz_bin(&["fuzz", "--cases", "40", "--seed", "1"], &dir);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(first.starts_with("numfuzz fuzz: cases=40 seed=1"), "{first}");
    assert!(first.contains("counterexamples: 0"), "{first}");
    for jobs in ["2", "3"] {
        let (out, _, code) =
            numfuzz_bin(&["fuzz", "--cases", "40", "--seed", "1", "--jobs", jobs], &dir);
        assert_eq!(code, Some(0));
        assert_eq!(out, first, "jobs={jobs} changed the report");
    }
    std::fs::remove_dir_all(&dir).ok();
}
