/root/repo/target/debug/deps/numfuzz-002116dc2d130900.d: src/bin/numfuzz.rs

/root/repo/target/debug/deps/numfuzz-002116dc2d130900: src/bin/numfuzz.rs

src/bin/numfuzz.rs:
