//! # numfuzz-metrics
//!
//! Rigorous error metrics for the `numfuzz` reproduction of *Numerical
//! Fuzz* (PLDI 2024):
//!
//! * [`rp`] — Olver's relative precision metric `RP(x, x̃) = |ln(x/x̃)|`
//!   (Definition 2.2), with *decision procedures* rather than approximate
//!   evaluation: `RP(x,y) <= b` is reduced to rational comparisons against
//!   enclosures of `e^±b`;
//! * [`pointwise`] — absolute error, relative error (eq. 3), ULP error and
//!   bits of error (eq. 4);
//! * [`NumMetric`] — the metric attached to the numeric type `num` by a
//!   Λnum instantiation (Section 5), used by the interpreter to validate
//!   error soundness (Corollary 4.20) on interval-valued results.
//!
//! ```
//! use numfuzz_metrics::{rp::rp_within, rp::Within};
//! use numfuzz_exact::Rational;
//!
//! // RP(1+2⁻⁵², 1) <= 2⁻⁵² holds (ln(1+u) < u) …
//! let u = Rational::pow2(-52);
//! let x = Rational::one().add(&u);
//! assert_eq!(rp_within(&x, &Rational::one(), &u), Within::Yes);
//! // … but not within u/2.
//! assert_eq!(rp_within(&x, &Rational::one(), &Rational::pow2(-53)), Within::No);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pointwise;
pub mod rp;

pub use rp::Within;

use numfuzz_exact::{RatInterval, Rational};

/// The metric carried by the numeric type of a Λnum instantiation.
///
/// The paper's leading instantiation (Section 5) uses relative precision
/// over the strictly positive reals; the secondary instantiation in this
/// reproduction uses the absolute-value metric over all reals.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum NumMetric {
    /// `d(x, y) = |ln(x/y)|` on nonzero same-sign reals (Definition 2.2).
    RelativePrecision,
    /// `d(x, y) = |x - y|`.
    Absolute,
}

impl NumMetric {
    /// Rigorously decides whether the worst-case distance between two
    /// interval-valued quantities is within `bound`.
    pub fn within(&self, ideal: &RatInterval, approx: &RatInterval, bound: &Rational) -> Within {
        match self {
            NumMetric::RelativePrecision => rp::rp_within_intervals(ideal, approx, bound),
            NumMetric::Absolute => {
                if pointwise::abs_error_sup(ideal, approx) <= *bound {
                    Within::Yes
                } else {
                    Within::No
                }
            }
        }
    }

    /// A display-quality `f64` distance between two point values (`None`
    /// when the metric is undefined on them).
    pub fn distance_f64(&self, x: &Rational, y: &Rational) -> Option<f64> {
        match self {
            NumMetric::RelativePrecision => {
                if x.is_zero() || y.is_zero() || x.is_positive() != y.is_positive() {
                    None
                } else if x == y {
                    Some(0.0)
                } else {
                    Some(rp::rp_distance_enclosure(x, y, 80).lo().to_f64())
                }
            }
            NumMetric::Absolute => Some(pointwise::abs_error(x, y).to_f64()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(s: &str) -> Rational {
        Rational::from_decimal_str(s).expect("valid test literal")
    }

    #[test]
    fn metric_dispatch() {
        let x = RatInterval::point(rat("2"));
        let y = RatInterval::point(rat("2.2"));
        // |2.2 - 2| = 0.2.
        assert_eq!(NumMetric::Absolute.within(&x, &y, &rat("0.2")), Within::Yes);
        assert_eq!(NumMetric::Absolute.within(&x, &y, &rat("0.19")), Within::No);
        // RP = ln(1.1) = 0.0953.
        assert_eq!(NumMetric::RelativePrecision.within(&x, &y, &rat("0.096")), Within::Yes);
        assert_eq!(NumMetric::RelativePrecision.within(&x, &y, &rat("0.095")), Within::No);
    }

    #[test]
    fn distance_display() {
        let d = NumMetric::RelativePrecision.distance_f64(&rat("2"), &rat("2.2")).unwrap();
        assert!((d - 0.09531017980432486).abs() < 1e-12);
        let a = NumMetric::Absolute.distance_f64(&rat("2"), &rat("2.2")).unwrap();
        assert!((a - 0.2).abs() < 1e-15);
        assert_eq!(NumMetric::RelativePrecision.distance_f64(&rat("-1"), &rat("1")), None);
    }
}
