//! The [`Analyzer`]-backed differential oracle behind `numfuzz fuzz`.
//!
//! The generator, shrinker and campaign driver live in
//! [`numfuzz_fuzz`]; this module supplies the piece that must sit on the
//! public API: for every generated case it drives the full production
//! pipeline and cross-checks it against independent references.
//!
//! Per case, the oracle verifies that the program
//!
//! 1. **parses and lowers** (`Analyzer::parse` — the generator only
//!    emits well-formed surface syntax);
//! 2. **type-checks with a finite monadic grade** (`Analyzer::check` —
//!    the generator's sensitivity discipline guarantees typability, so
//!    any rejection is a checker or generator bug worth a reproducer);
//! 3. **satisfies Corollary 4.20 rigorously** (`Analyzer::validate`:
//!    ideal vs. floating-point run, exact rational enclosures, the
//!    inferred grade as the bound);
//! 4. **agrees with the reference evaluator** on the ideal result
//!    (interpreter machine vs. the fuzz crate's structural evaluator);
//! 5. **round-trips**: pretty-printing, re-parsing and re-checking
//!    yields the identical root type and grade.

use crate::{Analyzer, Inputs};
use numfuzz_core::{Instantiation, Node, Signature, TermId, VarId};
use numfuzz_fuzz::{
    validate_backward_fn, BackwardFacts, CaseFailure, CasePass, CasePlan, FailureKind, FuzzConfig,
    FuzzOutcome, LensOutcome, Oracle,
};

/// The production differential oracle (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalyzerOracle;

fn fail(kind: FailureKind, detail: impl Into<String>) -> CaseFailure {
    CaseFailure { kind, detail: detail.into() }
}

impl Oracle for AnalyzerOracle {
    fn run_case(
        &self,
        plan: &CasePlan,
        src: &str,
        expected_ideal: Option<&crate::exact::Rational>,
    ) -> Result<CasePass, CaseFailure> {
        let mut builder =
            Analyzer::builder().signature(plan.instantiation).format(plan.format).mode(plan.mode);
        if let Some(unit) = &plan.rnd_unit {
            builder = builder.rounding_unit(unit.clone());
        }
        let analyzer = builder.build();
        let name = format!("fuzz-case-{}", plan.index);

        let program =
            analyzer.parse_named(&name, src).map_err(|d| fail(FailureKind::Parse, d.render()))?;
        let typed = analyzer.check(&program).map_err(|d| fail(FailureKind::Check, d.render()))?;
        let grade = typed.grade().ok_or_else(|| {
            fail(FailureKind::Check, format!("root type `{}` is not monadic", typed.ty()))
        })?;
        if grade.is_infinite() {
            return Err(fail(
                FailureKind::InfiniteGrade,
                format!("inferred grade is `inf` (type `{}`)", typed.ty()),
            ));
        }

        let report = analyzer
            .validate(&program, &Inputs::none())
            .map_err(|d| fail(FailureKind::Harness, d.render()))?;
        if !report.holds() {
            return Err(fail(
                FailureKind::BoundViolation,
                format!(
                    "grade {} (bound {}) violated: ideal {:?}, fp {:?}, verdict {:?}",
                    report.grade,
                    report.bound.to_sci_string(6),
                    report.ideal,
                    report.fp,
                    report.verdict
                ),
            ));
        }

        // Differential check against the independent reference
        // evaluator (interval-free programs only).
        if let Some(expected) = expected_ideal {
            match report.ideal.as_point() {
                Some(got) if got == expected => {}
                got => {
                    return Err(fail(
                        FailureKind::IdealMismatch,
                        format!(
                            "interpreter ideal result {got:?} disagrees with the reference \
                             evaluator's {expected}"
                        ),
                    ))
                }
            }
        }

        // pretty → re-parse → re-check must reproduce the exact type.
        let pretty = program.pretty(u32::MAX);
        let reparsed = analyzer.parse(&pretty).map_err(|d| {
            fail(
                FailureKind::RoundTrip,
                format!("pretty-printed program failed to re-parse: {}\n---\n{pretty}", d.render()),
            )
        })?;
        let rechecked = analyzer.check(&reparsed).map_err(|d| {
            fail(
                FailureKind::RoundTrip,
                format!("pretty-printed program failed to re-check: {}\n---\n{pretty}", d.render()),
            )
        })?;
        if rechecked.ty().to_string() != typed.ty().to_string() {
            return Err(fail(
                FailureKind::RoundTrip,
                format!(
                    "re-checked type `{}` differs from original `{}`",
                    rechecked.ty(),
                    typed.ty()
                ),
            ));
        }

        // Backward leg (fuzz --backward): static acceptance/rejection
        // are both facts; the lens certifies accepted functions and only
        // an uncertifiable canonical witness is a failure.
        let backward =
            if plan.backward { Some(backward_leg(&analyzer, &program, plan, src)?) } else { None };

        Ok(CasePass { ty: typed.ty().to_string(), vacuous: report.fp.is_none(), backward })
    }
}

/// Runs the backward analysis mode over one generated case.
///
/// The generator aims at the *forward* discipline, so Bean's strict
/// linearity routinely rejects whole programs (duplicated uses, unused
/// binders, forward-graded declarations) — those rejections are counted,
/// not failed. For the differential teeth the leg re-lowers the source,
/// strips the declared (forward-graded) function types, replaces the
/// main expression with `()`, and backward-types the definitions alone;
/// every function the judgment accepts is then handed to the
/// backward-stability lens ([`numfuzz_fuzz::validate_backward_fn`]),
/// which must exhibit perturbed inputs within the typed per-input
/// bounds on a deterministic grid.
fn backward_leg(
    analyzer: &Analyzer,
    program: &crate::Program,
    plan: &CasePlan,
    src: &str,
) -> Result<BackwardFacts, CaseFailure> {
    let mut facts = BackwardFacts::default();
    match analyzer.check_backward(program) {
        Ok(_) => facts.accepted = true,
        Err(_) => facts.rejected = true,
    }

    let sig = match plan.instantiation {
        Instantiation::RelativePrecision => Signature::relative_precision(),
        Instantiation::AbsoluteError => Signature::absolute_error(),
    };
    let mut lowered = numfuzz_core::compile(src, &sig)
        .map_err(|e| fail(FailureKind::Harness, format!("backward re-lowering failed: {e}")))?;
    let mut spine: Vec<(VarId, TermId)> = Vec::new();
    let mut cur = lowered.root;
    while let Node::LetFun(v, _, lam, rest) = *lowered.store.node(cur) {
        spine.push((v, lam));
        cur = rest;
    }
    let mut rebuilt = lowered.store.unit();
    for (v, lam) in spine.iter().rev() {
        rebuilt = lowered.store.let_fun_at(*v, None, *lam, rebuilt);
    }
    let result = match numfuzz_core::infer_backward(&lowered.store, &sig, rebuilt, &[]) {
        Ok(result) => result,
        // Some definition is backward-untypeable on its own: a fact.
        Err(_) => return Ok(facts),
    };
    for report in &result.fns {
        let named = |v: &VarId| lowered.store.var_name(*v) == report.name;
        let Some(&(_, lam)) = spine.iter().rev().find(|(v, _)| named(v)) else { continue };
        match validate_backward_fn(
            &lowered.store,
            lam,
            &report.inputs,
            plan.instantiation,
            plan.format,
            plan.mode,
        ) {
            LensOutcome::Validated { points } => {
                facts.validated_fns += 1;
                facts.grid_points += points;
            }
            LensOutcome::Skipped { .. } => facts.skipped_fns += 1,
            LensOutcome::Violation { detail } => {
                return Err(fail(
                    FailureKind::BackwardViolation,
                    format!("function `{}` ({}): {detail}", report.name, plan.describe()),
                ));
            }
        }
    }
    Ok(facts)
}

/// Runs a fuzz campaign with the production oracle.
pub fn fuzz_campaign(cfg: &FuzzConfig) -> FuzzOutcome {
    numfuzz_fuzz::run(cfg, &AnalyzerOracle)
}
