function f (c: bool) : num { if c then 1 else () }
f true
