//! Algorithmic sensitivity inference (paper Fig. 10).
//!
//! The checker is bottom-up: it computes, for every subterm, the *minimal*
//! environment of variable sensitivities and the most precise type, and
//! compares against annotations using the subtype relation (Fig. 12). The
//! traversal is iterative (explicit stack) so million-node Table 4
//! programs check without recursion, and child results are consumed as
//! they are merged so peak memory stays proportional to the tree depth
//! frontier rather than the whole program.
//!
//! Types flow through the whole pass as interned [`TyId`]s from the
//! store's [`crate::CoreArena`]: equality is id equality, the subtype and
//! `max`/`min` lattice queries are memoized by id pair, and no `Ty` tree
//! is ever built except at the public boundary (the returned [`Inferred`]
//! root, the per-function [`FnReport`]s, and error messages).
//!
//! Deviations from the published figure (see DESIGN.md §3 for rationale):
//!
//! * (⊸I) enforces `s <= 1` on the λ-bound variable (the figure prints
//!   `s >= 1`, which would reject `λx. x` bodies that *under*-use `x` and
//!   accept 2-sensitive bodies — the opposite of Fig. 2's declarative
//!   rule);
//! * (+E) and (Let) replace a zero scaling by the signature's positive
//!   `rnd` grade, the figure's "`ε` otherwise";
//! * (Op) allows non-`num` result types so `is_pos : !∞ num ⊸ bool` is an
//!   ordinary signature entry.

use crate::arena::{ArenaInner, GradeId, TyId, TyNode, NUM_ID as NUM, UNIT_ID as UNIT};
use crate::cache::{
    hash_ty_tree, node_fingerprints, scope_extend, ForwardJudgment, JudgmentCache, JudgmentCounts,
    JudgmentEntry, NodeFingerprints,
};
use crate::env::Env;
use crate::grade::Grade;
use crate::sig::Signature;
use crate::term::{Node, TermId, TermStore, VarId};
use crate::ty::Ty;
use std::collections::HashMap;
use std::fmt;
use std::sync::MutexGuard;

/// The result of inferring one (sub)term: a minimal environment and type.
#[derive(Clone, Debug)]
pub struct Inferred {
    /// Minimal sensitivities of the free variables.
    pub env: Env,
    /// The inferred (most precise) type.
    pub ty: Ty,
}

/// The internal per-subterm judgment: same as [`Inferred`], but the type
/// stays an interned id (the hot path never resolves).
#[derive(Clone, Debug)]
struct Judgment {
    env: Env,
    ty: TyId,
}

/// Report for a top-level `function` definition.
#[derive(Clone, Debug)]
pub struct FnReport {
    /// The function's name.
    pub name: String,
    /// The type inference produced for its body.
    pub inferred: Ty,
    /// The type assigned in the context (the declaration if present,
    /// otherwise the inferred type).
    pub assigned: Ty,
}

/// Result of checking a whole program term.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// Environment and type of the root term.
    pub root: Inferred,
    /// One report per `function` definition, in source order.
    pub fns: Vec<FnReport>,
}

impl CheckResult {
    /// Looks up a function report by name (the last definition wins, as in
    /// nested lets).
    pub fn fn_report(&self, name: &str) -> Option<&FnReport> {
        self.fns.iter().rev().find(|f| f.name == name)
    }
}

/// Type-checking errors.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckError {
    /// A variable was used without a binding.
    UnboundVar(String),
    /// An operation name is not in the signature.
    UnknownOp(String),
    /// A term's type had the wrong shape for its context.
    Expected {
        /// What the context needed (human-readable).
        what: &'static str,
        /// The type that was found.
        found: Ty,
    },
    /// A function argument does not match the domain type.
    ArgMismatch {
        /// The function's declared domain.
        expected: Ty,
        /// The argument's inferred type.
        found: Ty,
    },
    /// An operation argument does not match the signature.
    OpArgMismatch {
        /// Operation name.
        op: String,
        /// Signature argument type.
        expected: Ty,
        /// Inferred argument type.
        found: Ty,
    },
    /// A λ-bound variable is used at sensitivity above 1 (the body is not
    /// non-expansive; box the parameter instead).
    LambdaSensitivity {
        /// The parameter name.
        var: String,
        /// The inferred sensitivity.
        got: Grade,
    },
    /// A grade product of two symbolic quantities arose (not representable
    /// as a linear expression).
    NonlinearGrade,
    /// `let [x] = v in e` where `v : !_0 σ` but `x` is used.
    BoxZeroGrade {
        /// The bound variable's name.
        var: String,
    },
    /// `case` branches have incompatible types.
    BranchTypeMismatch {
        /// Left branch type.
        left: Ty,
        /// Right branch type.
        right: Ty,
    },
    /// A declared function type is not a supertype of the inferred one.
    DeclaredMismatch {
        /// Function name.
        name: String,
        /// The declaration.
        declared: Ty,
        /// What inference produced.
        inferred: Ty,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UnboundVar(x) => write!(f, "unbound variable `{x}`"),
            CheckError::UnknownOp(op) => write!(f, "unknown operation `{op}`"),
            CheckError::Expected { what, found } => write!(f, "expected {what}, found `{found}`"),
            CheckError::ArgMismatch { expected, found } => {
                write!(f, "argument type `{found}` is not a subtype of `{expected}`")
            }
            CheckError::OpArgMismatch { op, expected, found } => {
                write!(f, "operation `{op}` expects `{expected}`, got `{found}`")
            }
            CheckError::LambdaSensitivity { var, got } => write!(
                f,
                "parameter `{var}` is used at sensitivity {got} > 1; give it a ![{got}] type"
            ),
            CheckError::NonlinearGrade => {
                write!(f, "a product of two symbolic grades arose; annotate with constants")
            }
            CheckError::BoxZeroGrade { var } => {
                write!(f, "`{var}` was boxed at grade 0 but is used")
            }
            CheckError::BranchTypeMismatch { left, right } => {
                write!(f, "case branches have incompatible types `{left}` and `{right}`")
            }
            CheckError::DeclaredMismatch { name, declared, inferred } => write!(
                f,
                "function `{name}`: inferred type `{inferred}` is not a subtype of declared `{declared}`"
            ),
        }
    }
}

impl std::error::Error for CheckError {}

/// Infers the minimal environment and type of `root`, with `free` giving
/// types for free variables.
///
/// # Errors
///
/// Any [`CheckError`]; inference is complete for this algorithmic system,
/// so an error means the term is ill-typed (up to the documented
/// incompleteness of coefficient-wise grade comparison).
pub fn infer(
    store: &TermStore,
    sig: &Signature,
    root: TermId,
    free: &[(VarId, Ty)],
) -> Result<CheckResult, CheckError> {
    infer_in(store, store.tys(), sig, root, free)
}

/// [`infer`], but resolving the store's interned annotations against
/// `tys` instead of the store's own arena — the zero-copy sharding
/// primitive behind parallel batch checking. `tys` must be
/// id-compatible with `store.tys()`: the same arena, or a
/// [`crate::CoreArena::deep_clone`] of it taken after the store's last
/// node was built (arenas are append-only, so any such snapshot contains
/// every id the store references). The pass locks **only** `tys`, so
/// checks against distinct clones never contend.
pub fn infer_in(
    store: &TermStore,
    tys: &crate::CoreArena,
    sig: &Signature,
    root: TermId,
    free: &[(VarId, Ty)],
) -> Result<CheckResult, CheckError> {
    infer_inner(store, tys, sig, root, free, None).map(|(result, _)| result)
}

/// [`infer_in`], with subterm-level judgment memoization against `cache`.
///
/// `config` must fingerprint everything beyond the term that can change
/// a judgment — at minimum the analysis mode and the signature (see
/// [`crate::ConfigFingerprint`]) — and the same value must be passed for
/// a lookup to hit. On rechecking an edited program, only the spine from
/// the edit to the root is recomputed; every untouched subtree judgment
/// replays from the table, and the returned [`JudgmentCounts`] report
/// the split. Cached values are store- and arena-independent, so one
/// cache serves re-parsed programs and `deep_clone`d shard arenas alike.
/// The result is byte-identical to [`infer_in`]'s — memoization is
/// observable only in the counts.
///
/// # Errors
///
/// Exactly as [`infer`]; failed passes memoize nothing new beyond their
/// successfully checked subtrees.
pub fn infer_memoized(
    store: &TermStore,
    tys: &crate::CoreArena,
    sig: &Signature,
    root: TermId,
    free: &[(VarId, Ty)],
    cache: &mut JudgmentCache,
    config: u64,
) -> Result<(CheckResult, JudgmentCounts), CheckError> {
    infer_inner(store, tys, sig, root, free, Some((cache, config)))
}

fn infer_inner(
    store: &TermStore,
    tys: &crate::CoreArena,
    sig: &Signature,
    root: TermId,
    free: &[(VarId, Ty)],
    memo_cfg: Option<(&mut JudgmentCache, u64)>,
) -> Result<(CheckResult, JudgmentCounts), CheckError> {
    assert!(
        tys.same_arena(store.tys()) || tys.len() >= store.tys().len(),
        "infer_in: arena is not an id-compatible copy of the store's arena"
    );
    // The scope-chain seed folds the free interface — each variable's
    // canonical number and type — over the caller's config fingerprint,
    // so a judgment replays only under an identical interface. Computed
    // before the arena lock below: fingerprinting resolves annotation
    // types through the store's arena handle.
    let (memo, seed) = match memo_cfg {
        None => (None, 0),
        Some((cache, config)) => {
            let fps = node_fingerprints(store, root, free);
            let mut seed = config;
            for (v, t) in free {
                let canon = fps.canon(*v).expect("free variable is canonicalized");
                seed = scope_extend(seed, canon, hash_ty_tree(t));
            }
            let memo = Memo {
                cache,
                fps,
                ty_fps: HashMap::new(),
                fns_start: HashMap::new(),
                recomputed: 0,
            };
            (Some(memo), seed)
        }
    };
    // The whole pass holds the arena lock once instead of locking per
    // query; nothing below may call back through the `CoreArena` handle.
    let mut arena = tys.inner();
    let rnd_grade_id = arena.intern_grade(sig.rnd_grade());
    let zero_grade_id = arena.intern_grade(&Grade::zero());
    let var_tys = free.iter().map(|(v, t)| (*v, arena.intern(t))).collect();
    let mut ck = Checker {
        store,
        sig,
        var_tys,
        results: HashMap::new(),
        remaining: count_parent_edges(store),
        fns: Vec::new(),
        ops: HashMap::new(),
        rnd_grade_id,
        zero_grade_id,
        arena,
        memo,
    };
    ck.run(root, seed)?;
    let counts = match &ck.memo {
        None => JudgmentCounts::default(),
        Some(m) => {
            let total = m.fps.reachable() as u64;
            JudgmentCounts {
                reused: total.saturating_sub(m.recomputed),
                recomputed: m.recomputed,
                total,
            }
        }
    };
    let root_res = ck.results.remove(&root).expect("root inferred");
    Ok((
        CheckResult {
            root: Inferred { env: root_res.env, ty: ck.arena.resolve(root_res.ty) },
            fns: ck.fns,
        },
        counts,
    ))
}

/// How many parent edges reference each node, across the whole store.
///
/// Results are dropped once every referencing parent has consumed them, so
/// peak memory tracks the live frontier on trees while node *sharing*
/// (which hash-consing and small-step substitution both create) still
/// works: a shared child's result survives until its last parent takes it.
pub(crate) fn count_parent_edges(store: &TermStore) -> Vec<u32> {
    let mut uses = vec![0u32; store.len()];
    let mut bump = |t: TermId| uses[t.0 as usize] = uses[t.0 as usize].saturating_add(1);
    for i in 0..store.len() {
        match store.node(TermId(i as u32)) {
            Node::Var(_) | Node::UnitVal | Node::Const(_) | Node::Err(..) => {}
            Node::PairW(a, b) | Node::PairT(a, b) | Node::App(a, b) => {
                bump(*a);
                bump(*b);
            }
            Node::Inl(v, _)
            | Node::Inr(v, _)
            | Node::BoxIntro(_, v)
            | Node::Rnd(v)
            | Node::Ret(v)
            | Node::Proj(_, v)
            | Node::Op(_, v) => bump(*v),
            Node::Lam(_, _, body) => bump(*body),
            Node::LetTensor(_, _, v, e)
            | Node::LetBox(_, v, e)
            | Node::LetBind(_, v, e)
            | Node::Let(_, v, e)
            | Node::LetFun(_, _, v, e) => {
                bump(*v);
                bump(*e);
            }
            Node::Case(v, _, e1, _, e2) => {
                bump(*v);
                bump(*e1);
                bump(*e2);
            }
        }
    }
    uses
}

struct Checker<'a> {
    store: &'a TermStore,
    sig: &'a Signature,
    /// The arena table, locked once for the whole run.
    arena: MutexGuard<'a, ArenaInner>,
    var_tys: HashMap<VarId, TyId>,
    results: HashMap<TermId, Judgment>,
    /// Outstanding parent edges per node (see [`count_parent_edges`]).
    remaining: Vec<u32>,
    fns: Vec<FnReport>,
    /// Signature entries interned on first use, keyed by op index.
    ops: HashMap<u32, (TyId, TyId)>,
    rnd_grade_id: GradeId,
    zero_grade_id: GradeId,
    /// Judgment memoization state ([`infer_memoized`] only).
    memo: Option<Memo<'a>>,
}

/// Per-pass memoization state: the shared judgment table plus this
/// store's node fingerprints and canonical-variable translation.
struct Memo<'a> {
    cache: &'a mut JudgmentCache,
    fps: NodeFingerprints,
    /// `hash_ty_tree` of resolved types, memoized by interned id.
    ty_fps: HashMap<TyId, u128>,
    /// Where each in-flight (cache-missed) node's window into `fns`
    /// starts; presence gates memoization in `done`.
    fns_start: HashMap<TermId, usize>,
    /// Judgments computed by this pass (cache misses and leaves).
    recomputed: u64,
}

#[derive(Clone, Copy)]
struct Frame {
    id: TermId,
    stage: u8,
    /// Scope-chain fingerprint the node is checked under (0 when not
    /// memoizing).
    scope: u64,
}

impl<'a> Checker<'a> {
    fn var_ty(&self, v: VarId) -> Result<TyId, CheckError> {
        self.var_tys
            .get(&v)
            .copied()
            .ok_or_else(|| CheckError::UnboundVar(self.store.var_name(v).to_string()))
    }

    /// Consumes one parent edge's view of a child result; the stored
    /// result is freed when the last edge has consumed it.
    fn take(&mut self, id: TermId) -> Option<Judgment> {
        let slot = &mut self.remaining[id.0 as usize];
        if *slot > 1 {
            *slot -= 1;
            self.results.get(&id).cloned()
        } else {
            *slot = 0;
            self.results.remove(&id)
        }
    }

    fn done(&mut self, id: TermId, env: Env, ty: TyId, scope: u64) {
        self.memoize(id, &env, ty, scope);
        self.results.insert(id, Judgment { env, ty });
    }

    /// Memoizes a freshly computed judgment, if this node cache-missed at
    /// stage 0 (leaves never register and are never memoized — they are
    /// cheaper to recompute than to look up).
    fn memoize(&mut self, id: TermId, env: &Env, ty: TyId, scope: u64) {
        let Some(memo) = self.memo.as_mut() else { return };
        let Some(start) = memo.fns_start.remove(&id) else { return };
        let Some(node_fp) = memo.fps.node(id) else { return };
        let mut canon_env = Vec::with_capacity(env.len());
        for (v, g) in env.iter() {
            match memo.fps.canon(*v) {
                Some(c) => canon_env.push((c, g.clone())),
                // Unfingerprinted variable (cannot happen for a var that
                // occurs in the program): skip memoization defensively.
                None => return,
            }
        }
        canon_env.sort_by_key(|(c, _)| *c);
        let resolved = self.arena.resolve(ty);
        memo.cache.insert(
            node_fp,
            scope,
            JudgmentEntry::Forward(ForwardJudgment {
                env: canon_env,
                ty: resolved,
                fns: self.fns[start..].to_vec(),
            }),
        );
    }

    /// Attempts to replay a memoized judgment for `id` under `scope`.
    /// Returns `true` on a hit (result installed, subtree skipped). On a
    /// miss, registers the node's function-report window and counts the
    /// upcoming computation.
    fn try_replay(&mut self, id: TermId, scope: u64) -> bool {
        let Some(memo) = self.memo.as_mut() else { return false };
        if matches!(
            self.store.node(id),
            Node::Var(_) | Node::UnitVal | Node::Const(_) | Node::Err(..)
        ) {
            memo.recomputed += 1;
            return false;
        }
        let Some(node_fp) = memo.fps.node(id) else {
            memo.recomputed += 1;
            return false;
        };
        if let Some(JudgmentEntry::Forward(j)) = memo.cache.get(node_fp, scope) {
            let mut entries = Vec::with_capacity(j.env.len());
            let mut translated = true;
            for (canon, g) in &j.env {
                match memo.fps.var(*canon) {
                    Some(v) => entries.push((v, g.clone())),
                    None => {
                        translated = false;
                        break;
                    }
                }
            }
            if translated {
                let ty = self.arena.intern(&j.ty);
                self.fns.extend(j.fns.iter().cloned());
                self.results.insert(id, Judgment { env: Env::from_entries(entries), ty });
                return true;
            }
        }
        memo.fns_start.insert(id, self.fns.len());
        memo.recomputed += 1;
        false
    }

    /// The scope-chain fingerprint for a child checked under one more
    /// binder `x : ty` (0 when not memoizing).
    fn scope_child(&mut self, parent: u64, x: VarId, ty: TyId) -> u64 {
        let Some(memo) = self.memo.as_mut() else { return 0 };
        let Some(canon) = memo.fps.canon(x) else { return parent };
        let ty_fp = match memo.ty_fps.get(&ty) {
            Some(&fp) => fp,
            None => {
                let fp = hash_ty_tree(&self.arena.resolve(ty));
                memo.ty_fps.insert(ty, fp);
                fp
            }
        };
        scope_extend(parent, canon, ty_fp)
    }

    /// The positive stand-in for a zero scaling in (Let)/(+E) — the
    /// figure's `ε`.
    fn epsilon(&self) -> Grade {
        self.sig.rnd_grade().clone()
    }

    /// Resolves an interned type for an error message (cold path only).
    fn show(&self, ty: TyId) -> Ty {
        self.arena.resolve(ty)
    }

    /// The interned `(arg, ret)` pair of a signature operation.
    fn op_sig(&mut self, op_idx: u32) -> Result<(TyId, TyId), CheckError> {
        if let Some(&entry) = self.ops.get(&op_idx) {
            return Ok(entry);
        }
        let name = self.store.op_name(op_idx);
        let op = self.sig.op(name).ok_or_else(|| CheckError::UnknownOp(name.to_string()))?;
        let entry = (self.arena.intern(&op.arg), self.arena.intern(&op.ret));
        self.ops.insert(op_idx, entry);
        Ok(entry)
    }

    fn run(&mut self, root: TermId, seed: u64) -> Result<(), CheckError> {
        let mut stack = vec![Frame { id: root, stage: 0, scope: seed }];
        while let Some(Frame { id, stage, scope }) = stack.pop() {
            if stage == 0 && (self.results.contains_key(&id) || self.try_replay(id, scope)) {
                continue;
            }
            match (*self.store.node(id), stage) {
                // ----- leaves -----
                (Node::Var(v), _) => {
                    let ty = self.var_ty(v)?;
                    self.done(id, Env::singleton(v, Grade::one()), ty, scope);
                }
                (Node::UnitVal, _) => self.done(id, Env::empty(), UNIT, scope),
                (Node::Const(_), _) => self.done(id, Env::empty(), NUM, scope),
                (Node::Err(g, t), _) => {
                    let ty = self.arena.mk(TyNode::Monad(g, t));
                    self.done(id, Env::empty(), ty, scope);
                }

                // ----- single-child nodes -----
                (Node::Inl(v, _), 0)
                | (Node::Inr(v, _), 0)
                | (Node::BoxIntro(_, v), 0)
                | (Node::Rnd(v), 0)
                | (Node::Ret(v), 0)
                | (Node::Proj(_, v), 0)
                | (Node::Op(_, v), 0) => {
                    stack.push(Frame { id, stage: 1, scope });
                    stack.push(Frame { id: v, stage: 0, scope });
                }
                (Node::Inl(v, rt), 1) => {
                    let r = self.take(v).expect("child done");
                    let ty = self.arena.mk(TyNode::Sum(r.ty, rt));
                    self.done(id, r.env, ty, scope);
                }
                (Node::Inr(v, lt), 1) => {
                    let r = self.take(v).expect("child done");
                    let ty = self.arena.mk(TyNode::Sum(lt, r.ty));
                    self.done(id, r.env, ty, scope);
                }
                (Node::BoxIntro(g, v), 1) => {
                    let r = self.take(v).expect("child done");
                    let env = r.env.scale(self.arena.grade(g)).ok_or(CheckError::NonlinearGrade)?;
                    let ty = self.arena.mk(TyNode::Bang(g, r.ty));
                    self.done(id, env, ty, scope);
                }
                (Node::Rnd(v), 1) => {
                    let r = self.take(v).expect("child done");
                    if r.ty != NUM {
                        return Err(CheckError::Expected {
                            what: "a numeric argument to rnd",
                            found: self.show(r.ty),
                        });
                    }
                    let ty = self.arena.mk(TyNode::Monad(self.rnd_grade_id, NUM));
                    self.done(id, r.env, ty, scope);
                }
                (Node::Ret(v), 1) => {
                    let r = self.take(v).expect("child done");
                    let ty = self.arena.mk(TyNode::Monad(self.zero_grade_id, r.ty));
                    self.done(id, r.env, ty, scope);
                }
                (Node::Proj(first, v), 1) => {
                    let r = self.take(v).expect("child done");
                    match self.arena.node(r.ty) {
                        TyNode::With(a, b) => {
                            let ty = if first { a } else { b };
                            self.done(id, r.env, ty, scope);
                        }
                        _ => {
                            return Err(CheckError::Expected {
                                what: "a cartesian pair",
                                found: self.show(r.ty),
                            })
                        }
                    }
                }
                (Node::Op(op_idx, v), 1) => {
                    let r = self.take(v).expect("child done");
                    let (arg, ret) = self.op_sig(op_idx)?;
                    let env = if self.arena.subtype(r.ty, arg) {
                        r.env
                    } else if let TyNode::Bang(g, inner) = self.arena.node(arg) {
                        // Implicit boxing: `sqrt x` elaborates as
                        // `sqrt [x]{g}`, scaling the environment by the
                        // domain's grade (the (!I) rule applied on the fly).
                        if self.arena.subtype(r.ty, inner) {
                            r.env.scale(self.arena.grade(g)).ok_or(CheckError::NonlinearGrade)?
                        } else {
                            return Err(CheckError::OpArgMismatch {
                                op: self.store.op_name(op_idx).to_string(),
                                expected: self.show(arg),
                                found: self.show(r.ty),
                            });
                        }
                    } else {
                        return Err(CheckError::OpArgMismatch {
                            op: self.store.op_name(op_idx).to_string(),
                            expected: self.show(arg),
                            found: self.show(r.ty),
                        });
                    };
                    self.done(id, env, ret, scope);
                }

                // ----- pairs and application: two independent children -----
                (Node::PairW(a, b), 0) | (Node::PairT(a, b), 0) | (Node::App(a, b), 0) => {
                    stack.push(Frame { id, stage: 1, scope });
                    stack.push(Frame { id: a, stage: 0, scope });
                    stack.push(Frame { id: b, stage: 0, scope });
                }
                (Node::PairW(a, b), 1) => {
                    let ra = self.take(a).expect("child done");
                    let rb = self.take(b).expect("child done");
                    let ty = self.arena.mk(TyNode::With(ra.ty, rb.ty));
                    self.done(id, ra.env.sup(rb.env), ty, scope);
                }
                (Node::PairT(a, b), 1) => {
                    let ra = self.take(a).expect("child done");
                    let rb = self.take(b).expect("child done");
                    let ty = self.arena.mk(TyNode::Tensor(ra.ty, rb.ty));
                    self.done(id, ra.env.add(rb.env), ty, scope);
                }
                (Node::App(a, b), 1) => {
                    let ra = self.take(a).expect("child done");
                    let rb = self.take(b).expect("child done");
                    match self.arena.node(ra.ty) {
                        TyNode::Lolli(dom, cod) => {
                            if !self.arena.subtype(rb.ty, dom) {
                                return Err(CheckError::ArgMismatch {
                                    expected: self.show(dom),
                                    found: self.show(rb.ty),
                                });
                            }
                            self.done(id, ra.env.add(rb.env), cod, scope);
                        }
                        _ => {
                            return Err(CheckError::Expected {
                                what: "a function",
                                found: self.show(ra.ty),
                            })
                        }
                    }
                }

                // ----- λ: register the parameter, then check the body -----
                (Node::Lam(x, ty_id, body), 0) => {
                    self.var_tys.insert(x, ty_id);
                    let body_scope = self.scope_child(scope, x, ty_id);
                    stack.push(Frame { id, stage: 1, scope });
                    stack.push(Frame { id: body, stage: 0, scope: body_scope });
                }
                (Node::Lam(x, ty_id, body), 1) => {
                    let mut r = self.take(body).expect("child done");
                    let s = r.env.remove(x);
                    if !s.le(&Grade::one()) {
                        return Err(CheckError::LambdaSensitivity {
                            var: self.store.var_name(x).to_string(),
                            got: s,
                        });
                    }
                    let ty = self.arena.mk(TyNode::Lolli(ty_id, r.ty));
                    self.done(id, r.env, ty, scope);
                }

                // ----- binders that need the scrutinee's type first -----
                (Node::LetTensor(_, _, v, _), 0)
                | (Node::Case(v, ..), 0)
                | (Node::LetBox(_, v, _), 0)
                | (Node::LetBind(_, v, _), 0) => {
                    stack.push(Frame { id, stage: 1, scope });
                    stack.push(Frame { id: v, stage: 0, scope });
                }
                (Node::Let(_, e, _), 0) | (Node::LetFun(_, _, e, _), 0) => {
                    stack.push(Frame { id, stage: 1, scope });
                    stack.push(Frame { id: e, stage: 0, scope });
                }

                (Node::LetTensor(x, y, v, e), 1) => {
                    let rv = self.results.get(&v).expect("scrutinee done");
                    match self.arena.node(rv.ty) {
                        TyNode::Tensor(a, b) => {
                            self.var_tys.insert(x, a);
                            self.var_tys.insert(y, b);
                            let inner = self.scope_child(scope, x, a);
                            let inner = self.scope_child(inner, y, b);
                            stack.push(Frame { id, stage: 2, scope });
                            stack.push(Frame { id: e, stage: 0, scope: inner });
                        }
                        _ => {
                            return Err(CheckError::Expected {
                                what: "a tensor pair",
                                found: self.show(rv.ty),
                            })
                        }
                    }
                }
                (Node::LetTensor(x, y, v, e), 2) => {
                    let rv = self.take(v).expect("scrutinee done");
                    let mut re = self.take(e).expect("body done");
                    let sx = re.env.remove(x);
                    let sy = re.env.remove(y);
                    let s = sx.sup(&sy);
                    let scaled = rv.env.scale(&s).ok_or(CheckError::NonlinearGrade)?;
                    self.done(id, re.env.add(scaled), re.ty, scope);
                }

                (Node::Case(v, x, e1, y, e2), 1) => {
                    let rv = self.results.get(&v).expect("scrutinee done");
                    match self.arena.node(rv.ty) {
                        TyNode::Sum(a, b) => {
                            self.var_tys.insert(x, a);
                            self.var_tys.insert(y, b);
                            let s1 = self.scope_child(scope, x, a);
                            let s2 = self.scope_child(scope, y, b);
                            stack.push(Frame { id, stage: 2, scope });
                            stack.push(Frame { id: e1, stage: 0, scope: s1 });
                            stack.push(Frame { id: e2, stage: 0, scope: s2 });
                        }
                        _ => {
                            return Err(CheckError::Expected {
                                what: "a sum",
                                found: self.show(rv.ty),
                            })
                        }
                    }
                }
                (Node::Case(v, x, e1, y, e2), 2) => {
                    let rv = self.take(v).expect("scrutinee done");
                    let mut r1 = self.take(e1).expect("left branch done");
                    let mut r2 = self.take(e2).expect("right branch done");
                    let s = r1.env.remove(x).sup(&r2.env.remove(y));
                    // (+E) side condition s > 0: keep a positive dependence
                    // on the guard (the figure's s̄).
                    let s_bar = if s.is_zero() { self.epsilon() } else { s };
                    let ty = self.arena.sup(r1.ty, r2.ty).ok_or_else(|| {
                        CheckError::BranchTypeMismatch {
                            left: self.show(r1.ty),
                            right: self.show(r2.ty),
                        }
                    })?;
                    let theta = r1.env.sup(r2.env);
                    let scaled = rv.env.scale(&s_bar).ok_or(CheckError::NonlinearGrade)?;
                    self.done(id, theta.add(scaled), ty, scope);
                }

                (Node::LetBox(x, v, e), 1) => {
                    let rv = self.results.get(&v).expect("scrutinee done");
                    match self.arena.node(rv.ty) {
                        TyNode::Bang(_, inner) => {
                            self.var_tys.insert(x, inner);
                            let body_scope = self.scope_child(scope, x, inner);
                            stack.push(Frame { id, stage: 2, scope });
                            stack.push(Frame { id: e, stage: 0, scope: body_scope });
                        }
                        _ => {
                            return Err(CheckError::Expected {
                                what: "a boxed value",
                                found: self.show(rv.ty),
                            })
                        }
                    }
                }
                (Node::LetBox(x, v, e), 2) => {
                    let rv = self.take(v).expect("scrutinee done");
                    let mut re = self.take(e).expect("body done");
                    let s = match self.arena.node(rv.ty) {
                        TyNode::Bang(s, _) => self.arena.grade(s),
                        _ => unreachable!("checked at stage 1"),
                    };
                    let r = re.env.remove(x);
                    let t = r.div_min(s).ok_or_else(|| CheckError::BoxZeroGrade {
                        var: self.store.var_name(x).to_string(),
                    })?;
                    let scaled = rv.env.scale(&t).ok_or(CheckError::NonlinearGrade)?;
                    self.done(id, re.env.add(scaled), re.ty, scope);
                }

                (Node::LetBind(x, v, f), 1) => {
                    let rv = self.results.get(&v).expect("scrutinee done");
                    match self.arena.node(rv.ty) {
                        TyNode::Monad(_, inner) => {
                            self.var_tys.insert(x, inner);
                            let body_scope = self.scope_child(scope, x, inner);
                            stack.push(Frame { id, stage: 2, scope });
                            stack.push(Frame { id: f, stage: 0, scope: body_scope });
                        }
                        _ => {
                            return Err(CheckError::Expected {
                                what: "a monadic computation",
                                found: self.show(rv.ty),
                            })
                        }
                    }
                }
                (Node::LetBind(x, v, f), 2) => {
                    let rv = self.take(v).expect("scrutinee done");
                    let mut rf = self.take(f).expect("body done");
                    let r = match self.arena.node(rv.ty) {
                        TyNode::Monad(r, _) => r,
                        _ => unreachable!("checked at stage 1"),
                    };
                    let (q, tau) = match self.arena.node(rf.ty) {
                        TyNode::Monad(q, tau) => (q, tau),
                        _ => {
                            return Err(CheckError::Expected {
                                what: "a monadic body in let-bind",
                                found: self.show(rf.ty),
                            })
                        }
                    };
                    let s = rf.env.remove(x);
                    let sr =
                        s.checked_mul(self.arena.grade(r)).ok_or(CheckError::NonlinearGrade)?;
                    let grade = sr.add(self.arena.grade(q));
                    let scaled = rv.env.scale(&s).ok_or(CheckError::NonlinearGrade)?;
                    let gid = self.arena.intern_grade(&grade);
                    let ty = self.arena.mk(TyNode::Monad(gid, tau));
                    self.done(id, rf.env.add(scaled), ty, scope);
                }

                (Node::Let(x, e, f), 1) => {
                    let re_ty = self.results.get(&e).expect("bound term done").ty;
                    self.var_tys.insert(x, re_ty);
                    let body_scope = self.scope_child(scope, x, re_ty);
                    stack.push(Frame { id, stage: 2, scope });
                    stack.push(Frame { id: f, stage: 0, scope: body_scope });
                }
                (Node::Let(x, e, f), 2) => {
                    let re = self.take(e).expect("bound term done");
                    let mut rf = self.take(f).expect("body done");
                    let s = rf.env.remove(x);
                    // (Let) side condition s > 0.
                    let s_bar = if s.is_zero() { self.epsilon() } else { s };
                    let scaled = re.env.scale(&s_bar).ok_or(CheckError::NonlinearGrade)?;
                    self.done(id, rf.env.add(scaled), rf.ty, scope);
                }

                (Node::LetFun(x, decl, body, rest), 1) => {
                    let rb = self.results.get(&body).expect("function body done");
                    let inferred = rb.ty;
                    let assigned = match decl {
                        None => inferred,
                        Some(declared) => {
                            if !self.arena.subtype(inferred, declared) {
                                return Err(CheckError::DeclaredMismatch {
                                    name: self.store.var_name(x).to_string(),
                                    declared: self.show(declared),
                                    inferred: self.show(inferred),
                                });
                            }
                            declared
                        }
                    };
                    self.fns.push(FnReport {
                        name: self.store.var_name(x).to_string(),
                        inferred: self.show(inferred),
                        assigned: self.show(assigned),
                    });
                    self.var_tys.insert(x, assigned);
                    let rest_scope = self.scope_child(scope, x, assigned);
                    stack.push(Frame { id, stage: 2, scope });
                    stack.push(Frame { id: rest, stage: 0, scope: rest_scope });
                }
                (Node::LetFun(x, _, body, rest), 2) => {
                    let rb = self.take(body).expect("function body done");
                    let mut rr = self.take(rest).expect("rest done");
                    let s = rr.env.remove(x);
                    let s_bar = if s.is_zero() { self.epsilon() } else { s };
                    let scaled = rb.env.scale(&s_bar).ok_or(CheckError::NonlinearGrade)?;
                    self.done(id, rr.env.add(scaled), rr.ty, scope);
                }

                (node, stage) => unreachable!("invalid checker state: {node:?} at stage {stage}"),
            }
        }
        Ok(())
    }
}
