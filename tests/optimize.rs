//! Library-level tests for the `optimize` search: determinism across
//! worker counts and repeated runs, a mutation smoke test proving the
//! oracle leg rejects a deliberately unsound rewrite rule, and
//! candidate-count / rule-coverage floors over the benchmarks the
//! optimizer improves.
//!
//! Budgets are kept small (the beam converges on these programs within a
//! handful of candidates) so the suite stays fast in debug builds.

use numfuzz::optimize::OptimizeConfig;
use numfuzz::prelude::*;

/// `eps` multiple as a numerator/denominator pair.
type Eps = (i64, i64);

/// The Table 1 programs the optimizer strictly improves, with their
/// expected `eps` multiples before and after (as numerator/denominator
/// pairs: one_by_sqrtxx improves 5/2*eps -> eps).
const IMPROVED: [(&str, Eps, Eps); 3] = [
    ("verhulst", (4, 1), (3, 1)),
    ("predatorPrey", (7, 1), (4, 1)),
    ("one_by_sqrtxx", (5, 2), (1, 1)),
];

fn bench_path(stem: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("benches")
        .join("table1")
        .join(format!("{stem}.nf"))
}

fn load(analyzer: &Analyzer, stem: &str) -> Program {
    let path = bench_path(stem);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    analyzer.parse_named(&path.display().to_string(), &src).expect("benchmark parses")
}

fn small_budget() -> OptimizeConfig {
    OptimizeConfig { budget: 16, ..OptimizeConfig::default() }
}

/// The report and the rewritten program must be byte-identical whatever
/// the worker count, and across repeated runs of the same configuration:
/// candidate order is seeded, results are collected in input order, and
/// selection breaks ties lexicographically.
#[test]
fn optimize_is_deterministic_across_jobs_and_repeats() {
    let analyzer = Analyzer::new();
    let program = load(&analyzer, "predatorPrey");

    let baseline = analyzer.optimize(&program, &small_budget()).expect("optimize succeeds");
    assert!(baseline.improved, "predatorPrey should improve at this budget");

    for jobs in [1usize, 2, 4, 4] {
        let cfg = OptimizeConfig { jobs, ..small_budget() };
        let outcome = analyzer.optimize(&program, &cfg).expect("optimize succeeds");
        assert_eq!(outcome.report, baseline.report, "report drifted at --jobs {jobs}");
        assert_eq!(
            outcome.rewritten, baseline.rewritten,
            "rewritten program drifted at --jobs {jobs}"
        );
    }
}

/// Mutation smoke: with the deliberately unsound `swap_div` rule mixed
/// in, the certification pipeline must reject its candidates at the
/// exact-oracle leg (swapping a division's operands preserves types and
/// bounds but changes the ideal value), and the winner must be exactly
/// the winner of the sound-rules-only search.
#[test]
fn unsound_rewrite_is_rejected_by_the_oracle() {
    let analyzer = Analyzer::new();
    let program = load(&analyzer, "verhulst");

    let sound = analyzer.optimize(&program, &small_budget()).expect("optimize succeeds");
    let mutated_cfg = OptimizeConfig { unsound_rule_for_tests: true, ..small_budget() };
    let mutated = analyzer.optimize(&program, &mutated_cfg).expect("optimize succeeds");

    let swap = mutated
        .rule_counts
        .iter()
        .find(|rc| rc.rule == "swap_div_unsound")
        .expect("the unsound rule participated in the search");
    assert!(swap.generated > 0, "the unsound rule generated no candidates");
    assert_eq!(swap.certified, 0, "an unsound candidate was certified");
    assert!(
        mutated.rejected_oracle > 0,
        "unsound candidates must be rejected by the exact-value oracle, \
         got rejections: check {} / interval {} / oracle {}",
        mutated.rejected_check,
        mutated.rejected_interval,
        mutated.rejected_oracle,
    );
    assert_eq!(mutated.best.alpha, sound.best.alpha, "the unsound rule changed the winning bound");
    assert_eq!(mutated.rewritten, sound.rewritten, "the unsound rule changed the emitted program");
}

/// Coverage floors over the improving benchmarks: the search must keep
/// evaluating a minimum number of candidates, certifying a minimum
/// share, exercising the load-bearing rewrite rules, and every emitted
/// winner must re-check through the facade with a bound no worse than
/// the original file's.
#[test]
fn optimizer_candidate_and_coverage_floors() {
    let analyzer = Analyzer::new();
    let unit = analyzer.format().unit_roundoff(analyzer.mode());

    let mut evaluated = 0usize;
    let mut certified = 0usize;
    let mut rules_used: Vec<&'static str> = Vec::new();

    for (stem, (on, od), (bn, bd)) in IMPROVED {
        let program = load(&analyzer, stem);
        let outcome = analyzer.optimize(&program, &small_budget()).expect("optimize succeeds");
        assert!(outcome.improved, "{stem} should strictly improve");

        let orig = Rational::ratio(on, od).mul(&unit);
        let opt = Rational::ratio(bn, bd).mul(&unit);
        assert_eq!(outcome.original.alpha, orig, "{stem}: original bound drifted");
        assert_eq!(outcome.best.alpha, opt, "{stem}: optimized bound drifted");

        // Acceptance criterion: the emitted program re-checks through
        // the full facade with a bound <= the original file's bound.
        let rewritten = analyzer
            .parse_named(&format!("{stem}.optimized"), &outcome.rewritten)
            .expect("rewritten program parses");
        let typed = analyzer.check(&rewritten).expect("rewritten program type-checks");
        let bound = analyzer.bound(&typed).expect("rewritten program has a bound");
        assert!(
            bound.alpha <= outcome.original.alpha,
            "{stem}: emitted program's re-checked bound regressed"
        );
        assert_eq!(bound.alpha, outcome.best.alpha, "{stem}: report and re-checked bound disagree");

        evaluated += outcome.evaluated;
        certified += outcome.certified;
        for rc in &outcome.rule_counts {
            if rc.generated > 0 && !rules_used.contains(&rc.rule) {
                rules_used.push(rc.rule);
            }
        }
    }

    assert!(evaluated >= 10, "candidate floor: evaluated {evaluated} < 10");
    assert!(certified >= 7, "certification floor: certified {certified} < 7");
    for rule in ["rationalize", "div_through", "sqrt_square", "commute"] {
        assert!(
            rules_used.contains(&rule),
            "rule `{rule}` never generated a candidate (used: {rules_used:?})"
        );
    }
}
