//! A big-step evaluator for Λnum, as an explicit-stack abstract machine.
//!
//! One evaluator serves every semantics in the paper: it is parameterized
//! by a [`Rounding`] strategy, so the *ideal* semantics (`rnd` = identity,
//! Def. 4.16), the *floating-point* semantics (`rnd` = ρ), the exceptional
//! semantics of §7.1 and the §7.2 variants all share this code. The
//! machine never recurses, so the million-deep `let` chains of the Table 4
//! programs evaluate safely.
//!
//! Scoping uses a global map with an undo trail: binders save the previous
//! value in a `Restore` continuation frame; λ values capture the bindings
//! of their free variables at closure-creation time, so escaping closures
//! are correct.

use crate::rounding::{RoundOutcome, Rounding};
use crate::value::{Closure, Value};
use numfuzz_core::{Instantiation, Node, TermId, TermStore, VarId};
use numfuzz_exact::{RatInterval, Rational};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

/// Evaluation failures.
///
/// A term that passed the checker can only hit the *numeric* cases
/// (division by an interval containing zero, `sqrt` of a negative,
/// an undecidable comparison on overlapping enclosures).
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// Variable not bound at runtime.
    Unbound(String),
    /// An ill-shaped redex (cannot happen for checked terms).
    Stuck(&'static str),
    /// Division by (an interval containing) zero.
    DivisionByZero,
    /// `sqrt` of a (possibly) negative value.
    NegativeSqrt,
    /// A comparison on enclosures that straddle the threshold.
    AmbiguousTest,
    /// Operation not provided by the instantiation.
    UnknownOp(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(x) => write!(f, "unbound variable `{x}` at runtime"),
            EvalError::Stuck(what) => write!(f, "stuck evaluating {what}"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::NegativeSqrt => write!(f, "square root of a negative value"),
            EvalError::AmbiguousTest => {
                write!(f, "comparison undecidable at the current enclosure precision")
            }
            EvalError::UnknownOp(op) => write!(f, "no semantics for operation `{op}`"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluator configuration.
#[derive(Clone, Copy, Debug)]
pub struct EvalConfig {
    /// Which instantiation's operation semantics to use.
    pub instantiation: Instantiation,
    /// Enclosure precision (bits) for `sqrt`.
    pub sqrt_bits: u32,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { instantiation: Instantiation::RelativePrecision, sqrt_bits: 192 }
    }
}

enum Kont {
    PairRight { right: TermId, with: bool },
    PairDone { left: Value, with: bool },
    Inj { left: bool },
    BoxK,
    RndK,
    RetK,
    AppFun { arg: TermId },
    AppArg { fun: Value },
    ProjK { first: bool },
    LetK { x: VarId, body: TermId },
    LetBindK { x: VarId, body: TermId },
    LetBoxK { x: VarId, body: TermId },
    LetTensorK { x: VarId, y: VarId, body: TermId },
    CaseK { x: VarId, e1: TermId, y: VarId, e2: TermId },
    OpK { op_idx: u32 },
    Restore { x: VarId, old: Option<Value> },
}

/// Evaluates `root` under a rounding strategy, with `inputs` bound.
///
/// # Errors
///
/// See [`EvalError`]; checked terms only fail on numeric side conditions.
pub fn eval(
    store: &TermStore,
    root: TermId,
    rounding: &mut dyn Rounding,
    config: EvalConfig,
    inputs: &[(VarId, Value)],
) -> Result<Value, EvalError> {
    let mut m = Machine {
        store,
        rounding,
        config,
        env: inputs.iter().cloned().collect(),
        fv_cache: HashMap::new(),
    };
    m.run(root)
}

struct Machine<'a> {
    store: &'a TermStore,
    rounding: &'a mut dyn Rounding,
    config: EvalConfig,
    env: HashMap<VarId, Value>,
    fv_cache: HashMap<TermId, Rc<Vec<VarId>>>,
}

enum Step {
    Eval(TermId),
    Apply(Value),
}

impl<'a> Machine<'a> {
    fn lookup(&self, x: VarId) -> Result<Value, EvalError> {
        self.env
            .get(&x)
            .cloned()
            .ok_or_else(|| EvalError::Unbound(self.store.var_name(x).to_string()))
    }

    fn bind(&mut self, konts: &mut Vec<Kont>, x: VarId, v: Value) {
        let old = self.env.insert(x, v);
        konts.push(Kont::Restore { x, old });
    }

    fn run(&mut self, root: TermId) -> Result<Value, EvalError> {
        let mut konts: Vec<Kont> = Vec::new();
        let mut step = Step::Eval(root);
        loop {
            step = match step {
                Step::Eval(t) => match *self.store.node(t) {
                    Node::Var(x) => Step::Apply(self.lookup(x)?),
                    Node::UnitVal => Step::Apply(Value::Unit),
                    Node::Const(k) => Step::Apply(Value::num(self.store.constant(k).clone())),
                    Node::Err(..) => Step::Apply(Value::ErrV),
                    Node::Lam(param, _, body) => {
                        let free = self.free_vars(t);
                        let mut captured = Vec::with_capacity(free.len());
                        for v in free.iter() {
                            captured.push((*v, self.lookup(*v)?));
                        }
                        Step::Apply(Value::Closure(Rc::new(Closure { param, body, captured })))
                    }
                    Node::PairW(a, b) => {
                        konts.push(Kont::PairRight { right: b, with: true });
                        Step::Eval(a)
                    }
                    Node::PairT(a, b) => {
                        konts.push(Kont::PairRight { right: b, with: false });
                        Step::Eval(a)
                    }
                    Node::Inl(v, _) => {
                        konts.push(Kont::Inj { left: true });
                        Step::Eval(v)
                    }
                    Node::Inr(v, _) => {
                        konts.push(Kont::Inj { left: false });
                        Step::Eval(v)
                    }
                    Node::BoxIntro(_, v) => {
                        konts.push(Kont::BoxK);
                        Step::Eval(v)
                    }
                    Node::Rnd(v) => {
                        konts.push(Kont::RndK);
                        Step::Eval(v)
                    }
                    Node::Ret(v) => {
                        konts.push(Kont::RetK);
                        Step::Eval(v)
                    }
                    Node::App(f, a) => {
                        konts.push(Kont::AppFun { arg: a });
                        Step::Eval(f)
                    }
                    Node::Proj(first, v) => {
                        konts.push(Kont::ProjK { first });
                        Step::Eval(v)
                    }
                    Node::Let(x, e, f) | Node::LetFun(x, _, e, f) => {
                        konts.push(Kont::LetK { x, body: f });
                        Step::Eval(e)
                    }
                    Node::LetBind(x, v, f) => {
                        konts.push(Kont::LetBindK { x, body: f });
                        Step::Eval(v)
                    }
                    Node::LetBox(x, v, e) => {
                        konts.push(Kont::LetBoxK { x, body: e });
                        Step::Eval(v)
                    }
                    Node::LetTensor(x, y, v, e) => {
                        konts.push(Kont::LetTensorK { x, y, body: e });
                        Step::Eval(v)
                    }
                    Node::Case(v, x, e1, y, e2) => {
                        konts.push(Kont::CaseK { x, e1, y, e2 });
                        Step::Eval(v)
                    }
                    Node::Op(op_idx, v) => {
                        konts.push(Kont::OpK { op_idx });
                        Step::Eval(v)
                    }
                },
                Step::Apply(value) => match konts.pop() {
                    None => return Ok(value),
                    Some(Kont::Restore { x, old }) => {
                        match old {
                            Some(v) => {
                                self.env.insert(x, v);
                            }
                            None => {
                                self.env.remove(&x);
                            }
                        }
                        Step::Apply(value)
                    }
                    Some(Kont::PairRight { right, with }) => {
                        konts.push(Kont::PairDone { left: value, with });
                        Step::Eval(right)
                    }
                    Some(Kont::PairDone { left, with }) => {
                        let pair = if with {
                            Value::PairW(Rc::new(left), Rc::new(value))
                        } else {
                            Value::PairT(Rc::new(left), Rc::new(value))
                        };
                        Step::Apply(pair)
                    }
                    Some(Kont::Inj { left }) => Step::Apply(if left {
                        Value::Inl(Rc::new(value))
                    } else {
                        Value::Inr(Rc::new(value))
                    }),
                    Some(Kont::BoxK) => Step::Apply(Value::Boxed(Rc::new(value))),
                    Some(Kont::RetK) => Step::Apply(Value::Ret(Rc::new(value))),
                    Some(Kont::RndK) => {
                        let i = match value.as_num() {
                            Some(i) => i,
                            None => return Err(EvalError::Stuck("rnd of a non-number")),
                        };
                        match self.rounding.round(i) {
                            RoundOutcome::Value(r) => {
                                Step::Apply(Value::Ret(Rc::new(Value::Num(r))))
                            }
                            RoundOutcome::Fault => Step::Apply(Value::ErrV),
                        }
                    }
                    Some(Kont::AppFun { arg }) => {
                        konts.push(Kont::AppArg { fun: value });
                        Step::Eval(arg)
                    }
                    Some(Kont::AppArg { fun }) => match fun {
                        Value::Closure(c) => {
                            for (v, val) in c.captured.iter() {
                                self.bind(&mut konts, *v, val.clone());
                            }
                            self.bind(&mut konts, c.param, value);
                            Step::Eval(c.body)
                        }
                        _ => return Err(EvalError::Stuck("application of a non-function")),
                    },
                    Some(Kont::ProjK { first }) => match value {
                        Value::PairW(a, b) => {
                            Step::Apply(if first { (*a).clone() } else { (*b).clone() })
                        }
                        _ => return Err(EvalError::Stuck("projection from a non-pair")),
                    },
                    Some(Kont::LetK { x, body }) => {
                        self.bind(&mut konts, x, value);
                        Step::Eval(body)
                    }
                    Some(Kont::LetBindK { x, body }) => match value {
                        Value::Ret(w) => {
                            self.bind(&mut konts, x, (*w).clone());
                            Step::Eval(body)
                        }
                        // §7.1: let-bind(err, x.f) → err.
                        Value::ErrV => Step::Apply(Value::ErrV),
                        _ => return Err(EvalError::Stuck("let-bind of a non-monadic value")),
                    },
                    Some(Kont::LetBoxK { x, body }) => match value {
                        Value::Boxed(w) => {
                            self.bind(&mut konts, x, (*w).clone());
                            Step::Eval(body)
                        }
                        _ => return Err(EvalError::Stuck("let-box of a non-boxed value")),
                    },
                    Some(Kont::LetTensorK { x, y, body }) => match value {
                        Value::PairT(a, b) => {
                            self.bind(&mut konts, x, (*a).clone());
                            self.bind(&mut konts, y, (*b).clone());
                            Step::Eval(body)
                        }
                        _ => return Err(EvalError::Stuck("let-tensor of a non-pair")),
                    },
                    Some(Kont::CaseK { x, e1, y, e2 }) => match value {
                        Value::Inl(w) => {
                            self.bind(&mut konts, x, (*w).clone());
                            Step::Eval(e1)
                        }
                        Value::Inr(w) => {
                            self.bind(&mut konts, y, (*w).clone());
                            Step::Eval(e2)
                        }
                        _ => return Err(EvalError::Stuck("case on a non-sum")),
                    },
                    Some(Kont::OpK { op_idx }) => {
                        let name = self.store.op_name(op_idx).to_string();
                        Step::Apply(self.apply_op(&name, value)?)
                    }
                },
            };
        }
    }

    /// Free variables of the subterm at `t` (cached per node).
    fn free_vars(&mut self, t: TermId) -> Rc<Vec<VarId>> {
        if let Some(fv) = self.fv_cache.get(&t) {
            return fv.clone();
        }
        let mut used: HashSet<VarId> = HashSet::new();
        let mut bound: HashSet<VarId> = HashSet::new();
        let mut stack = vec![t];
        while let Some(id) = stack.pop() {
            match self.store.node(id) {
                Node::Var(v) => {
                    used.insert(*v);
                }
                Node::UnitVal | Node::Const(_) | Node::Err(..) => {}
                Node::PairW(a, b) | Node::PairT(a, b) | Node::App(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Node::Inl(v, _)
                | Node::Inr(v, _)
                | Node::BoxIntro(_, v)
                | Node::Rnd(v)
                | Node::Ret(v)
                | Node::Proj(_, v)
                | Node::Op(_, v) => stack.push(*v),
                Node::Lam(x, _, body) => {
                    bound.insert(*x);
                    stack.push(*body);
                }
                Node::LetTensor(x, y, v, e) => {
                    bound.insert(*x);
                    bound.insert(*y);
                    stack.push(*v);
                    stack.push(*e);
                }
                Node::Case(v, x, e1, y, e2) => {
                    bound.insert(*x);
                    bound.insert(*y);
                    stack.push(*v);
                    stack.push(*e1);
                    stack.push(*e2);
                }
                Node::LetBox(x, v, e)
                | Node::LetBind(x, v, e)
                | Node::Let(x, v, e)
                | Node::LetFun(x, _, v, e) => {
                    bound.insert(*x);
                    stack.push(*v);
                    stack.push(*e);
                }
            }
        }
        // Binders are globally unique, so set difference is exact.
        let mut fv: Vec<VarId> = used.difference(&bound).copied().collect();
        fv.sort();
        let fv = Rc::new(fv);
        self.fv_cache.insert(t, fv.clone());
        fv
    }

    /// Strips box wrappers (ops with `!` domains may receive either form
    /// because boxing is implicit in the checker).
    fn strip_box(v: &Value) -> &Value {
        match v {
            Value::Boxed(inner) => Self::strip_box(inner),
            other => other,
        }
    }

    fn two_nums<'v>(
        v: &'v Value,
        what: &'static str,
    ) -> Result<(&'v RatInterval, &'v RatInterval), EvalError> {
        match Self::strip_box(v) {
            Value::PairW(a, b) | Value::PairT(a, b) => {
                match (Self::strip_box(a).as_num(), Self::strip_box(b).as_num()) {
                    (Some(x), Some(y)) => Ok((x, y)),
                    _ => Err(EvalError::Stuck(what)),
                }
            }
            _ => Err(EvalError::Stuck(what)),
        }
    }

    fn one_num<'v>(v: &'v Value, what: &'static str) -> Result<&'v RatInterval, EvalError> {
        Self::strip_box(v).as_num().ok_or(EvalError::Stuck(what))
    }

    fn apply_op(&mut self, name: &str, v: Value) -> Result<Value, EvalError> {
        match name {
            "add" => {
                let (a, b) = Self::two_nums(&v, "add of a non-pair")?;
                Ok(Value::Num(a.add(b)))
            }
            "sub" => {
                let (a, b) = Self::two_nums(&v, "sub of a non-pair")?;
                Ok(Value::Num(a.sub(b)))
            }
            "mul" => {
                let (a, b) = Self::two_nums(&v, "mul of a non-pair")?;
                Ok(Value::Num(a.mul(b)))
            }
            "div" => {
                let (a, b) = Self::two_nums(&v, "div of a non-pair")?;
                a.div(b).map(Value::Num).ok_or(EvalError::DivisionByZero)
            }
            "sqrt" => {
                let x = Self::one_num(&v, "sqrt of a non-number")?;
                if x.lo().is_negative() {
                    return Err(EvalError::NegativeSqrt);
                }
                Ok(Value::Num(x.sqrt(self.config.sqrt_bits)))
            }
            "neg" => {
                let x = Self::one_num(&v, "neg of a non-number")?;
                Ok(Value::Num(x.neg()))
            }
            "scale2" => {
                let x = Self::one_num(&v, "scale2 of a non-number")?;
                let two = RatInterval::point(Rational::from_int(2));
                Ok(Value::Num(x.mul(&two)))
            }
            "half" => {
                let x = Self::one_num(&v, "half of a non-number")?;
                let half = RatInterval::point(Rational::ratio(1, 2));
                Ok(Value::Num(x.mul(&half)))
            }
            "is_pos" => {
                let x = Self::one_num(&v, "is_pos of a non-number")?;
                if x.lo().is_positive() {
                    Ok(Value::bool(true))
                } else if !x.hi().is_positive() {
                    Ok(Value::bool(false))
                } else {
                    Err(EvalError::AmbiguousTest)
                }
            }
            "is_gt" => {
                let (a, b) = Self::two_nums(&v, "is_gt of a non-pair")?;
                if a.lo() > b.hi() {
                    Ok(Value::bool(true))
                } else if a.hi() <= b.lo() {
                    Ok(Value::bool(false))
                } else {
                    Err(EvalError::AmbiguousTest)
                }
            }
            other => Err(EvalError::UnknownOp(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounding::{IdentityRounding, ModeRounding};
    use numfuzz_core::{compile, Signature};
    use numfuzz_softfloat::{Format, RoundingMode};

    fn rat(s: &str) -> Rational {
        Rational::from_decimal_str(s).expect("valid test literal")
    }

    fn run_ideal(src: &str) -> Value {
        let sig = Signature::relative_precision();
        let lowered = compile(src, &sig).unwrap();
        eval(&lowered.store, lowered.root, &mut IdentityRounding, EvalConfig::default(), &[])
            .unwrap()
    }

    fn run_fp(src: &str, mode: RoundingMode) -> Value {
        let sig = Signature::relative_precision();
        let lowered = compile(src, &sig).unwrap();
        eval(
            &lowered.store,
            lowered.root,
            &mut ModeRounding { format: Format::BINARY64, mode },
            EvalConfig::default(),
            &[],
        )
        .unwrap()
    }

    #[test]
    fn arithmetic_is_exact_between_roundings() {
        // mul(0.1, 0.3) under the ideal semantics is exactly 0.03.
        let v = run_ideal(
            r#"
            function f (x: num) : num { mul (x, 0.3) }
            f 0.1
            "#,
        );
        assert_eq!(v.as_num().unwrap().as_point().unwrap(), &rat("0.03"));
    }

    #[test]
    fn rnd_rounds_under_fp_semantics() {
        let src = r#"
            function f (x: num) : M[eps]num {
                s = mul (x, 0.3);
                rnd s
            }
            f 0.1
        "#;
        let ideal = run_ideal(src);
        let fp = run_fp(src, RoundingMode::TowardPositive);
        let vi = ideal.as_ret().unwrap().as_num().unwrap().as_point().unwrap().clone();
        let vf = fp.as_ret().unwrap().as_num().unwrap().as_point().unwrap().clone();
        assert_eq!(vi, rat("0.03"));
        assert!(vf > vi, "RU rounds 0.03 up");
        // Within one directed unit roundoff.
        let u = Format::BINARY64.unit_roundoff(RoundingMode::TowardPositive);
        assert!(vf.sub(&vi) <= u.mul(&vi));
    }

    #[test]
    fn case_takes_the_right_branch() {
        let src = r#"
            function f (x: ![inf]num) : M[eps]num {
                let [x1] = x;
                c = is_pos x1;
                if c then { s = mul (x1, x1); rnd s } else ret 1
            }
            f [0.5]{inf}
        "#;
        let v = run_ideal(src);
        assert_eq!(v.as_ret().unwrap().as_num().unwrap().as_point().unwrap(), &rat("0.25"));
    }

    #[test]
    fn sqrt_produces_tight_enclosure() {
        let v = run_ideal(
            r#"
            function f (x: num) : num { sqrt x }
            f 2
            "#,
        );
        let i = v.as_num().unwrap();
        assert!(i.lo().mul(i.lo()) <= rat("2"));
        assert!(i.hi().mul(i.hi()) >= rat("2"));
        assert!(i.width() < Rational::pow2(-150));
    }

    #[test]
    fn closures_capture_their_environment() {
        // g returns a closure over its local; applying it later must see
        // the captured value, not a dangling or rebound variable.
        let src = r#"
            function curriedadd (a: num) (b: num) : num {
                add (|a, b|)
            }
            function makeadder (k: num) : num -o num {
                a = mul (k, 2);
                curriedadd a
            }
            function main (z: ![2.0]num) : num {
                let [z1] = z;
                f1 = makeadder 10;
                f2 = makeadder 100;
                x = f1 z1;
                y = f2 z1;
                add (|x, y|)
            }
            main [1]{2.0}
        "#;
        let v = run_ideal(src);
        // f1 adds 20, f2 adds 200: add(|1+20, 1+200|) = 222.
        assert_eq!(v.as_num().unwrap().as_point().unwrap(), &rat("222"));
    }

    #[test]
    fn deep_let_chain_does_not_overflow_stack() {
        // 50k sequential lets: would blow the call stack if recursive.
        let mut src = String::from("function f (x: num) : num {\n");
        src.push_str("t0 = add (|x, 1|);\n");
        for i in 1..50_000 {
            src.push_str(&format!("t{i} = add (|t{}, 1|);\n", i - 1));
        }
        src.push_str("t49999\n}\nf 0");
        let v = run_ideal(&src);
        assert_eq!(v.as_num().unwrap().as_point().unwrap(), &rat("50000"));
    }

    #[test]
    fn err_propagates_through_binds() {
        // Apply g to a huge constant under checked rounding in a tiny
        // format: the first rounding overflows, and err propagates past
        // the second rounding (§7.1 step rule).
        let sig = Signature::relative_precision();
        let src2 = r#"
            function f (x: ![2.0]num) : M[eps]num {
                let [x1] = x;
                s = mul (x1, x1);
                rnd s
            }
            function g (x: ![4.0]num) : M[3*eps]num {
                let [x1] = x;
                let a = f [x1]{2.0};
                s = mul (a, a);
                rnd s
            }
            g [1000]{4.0}
        "#;
        let lowered = compile(src2, &sig).unwrap();
        let mut rounding = crate::rounding::CheckedRounding {
            format: Format::new(8, 6),
            mode: RoundingMode::NearestEven,
        };
        let v =
            eval(&lowered.store, lowered.root, &mut rounding, EvalConfig::default(), &[]).unwrap();
        assert!(v.is_err(), "overflow must produce err, got {v}");
    }

    #[test]
    fn ambiguous_is_pos_reports() {
        let sig = Signature::relative_precision();
        // sqrt(2) - like enclosure straddling... construct via interval
        // input: feed an interval value directly.
        let src = "function f (x: ![inf]num) : bool { let [x1] = x; is_pos x1 }\nf [1]{inf}";
        let lowered = compile(src, &sig).unwrap();
        // Patch: bind input through eval inputs instead — simpler: a
        // straddling interval cannot be written in source, so call is_pos
        // through the machine by constructing the value here.
        let mut m = Machine {
            store: &lowered.store,
            rounding: &mut IdentityRounding,
            config: EvalConfig::default(),
            env: HashMap::new(),
            fv_cache: HashMap::new(),
        };
        let straddle = Value::Num(RatInterval::new(rat("-1"), rat("1")));
        assert!(matches!(m.apply_op("is_pos", straddle), Err(EvalError::AmbiguousTest)));
        let pos = Value::Num(RatInterval::new(rat("0.5"), rat("1")));
        assert_eq!(m.apply_op("is_pos", pos).unwrap().as_bool(), Some(true));
    }
}
