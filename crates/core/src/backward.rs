//! Backward-error inference: the **Bean** judgment as a second analysis
//! mode over the shared hash-consed IR.
//!
//! Where [`crate::infer`] types *forward* error — one bound on how far the
//! output of the floating-point run drifts from the ideal one — this pass
//! types *backward* error: for every linear input `x` it produces a grade
//! `r` such that the computed result is the **exact** ideal result of a
//! perturbed input `x̃` with `d(x, x̃) ≤ r` (Bean's soundness statement,
//! the classic "the computed answer is the true answer to a nearby
//! question"). The semantic model is a backward error *lens*: a forward
//! floating-point pass plus a demand-pulling pass that constructs the
//! witness `x̃`; `numfuzz_fuzz`'s reference lens evaluator realises it and
//! differentially validates this checker.
//!
//! The judgment context maps each variable to a [`Coeffect`] `(err,
//! absorb)`: the backward error already attributed to the input and the
//! amplification future demands pick up on the way back to it (the
//! inverse of the forward sensitivity along the consumption path — e.g.
//! `sqrt` halves forward error, so a demand on its output *doubles* on
//! the way in). Each `rnd` charges every variable of its context
//! `absorb · ε`; composition (`x = e; …`) replays the binder's
//! accumulated demand onto the producer's context.
//!
//! Bean's discipline is **strictly linear** and first-order, which this
//! pass enforces with dedicated errors (surfaced as the facade's `E05xx`
//! diagnostics):
//!
//! * every non-unit binder must be consumed ([`BackwardError::UnusedLinear`]),
//! * no variable may be consumed twice — general contraction is exactly
//!   what backward error cannot cross ([`BackwardError::DuplicatedUse`]),
//! * `case` branches must consume the same context
//!   ([`BackwardError::BranchSupport`]),
//! * constructs with no backward reading are rejected
//!   ([`BackwardError::Incompatible`]): `!`-introduction/elimination,
//!   Cartesian projections, first-class function values, `err`,
//! * rounding error must land on *some* linear input — `rnd` over
//!   constants has nowhere to push its error ([`BackwardError::NoCarrier`]).
//!
//! Top-level `function`s are Bean's non-linear (duplicable) context: a
//! function *name* is not a tracked resource, but its captured linear
//! variables travel with every use, so a twice-called closure over a
//! linear variable still reports a duplicated use.

use crate::arena::{ArenaInner, GradeId, TyId, TyNode, NUM_ID as NUM, UNIT_ID as UNIT};
use crate::cache::{
    hash_ty_tree, node_fingerprints, scope_extend, BackwardFnEntry, BackwardJudgment,
    BackwardParamEntry, JudgmentCache, JudgmentCounts, JudgmentEntry, NodeFingerprints,
    StableHasher,
};
use crate::check::count_parent_edges;
use crate::env::BackwardEnv;
use crate::grade::{Coeffect, Grade};
use crate::sig::Signature;
use crate::term::{Node, TermId, TermStore, VarId};
use crate::ty::Ty;
use std::collections::HashMap;
use std::fmt;
use std::sync::MutexGuard;

/// The backward judgment for the root term: one error bound per consumed
/// input, plus the (forward-compatible) type.
#[derive(Clone, Debug)]
pub struct BackwardInferred {
    /// Per-input backward error bounds, in binding order: the computed
    /// result is the exact ideal result of inputs perturbed within these
    /// distances.
    pub inputs: Vec<(String, Grade)>,
    /// The term's type (identical shapes to forward inference).
    pub ty: Ty,
}

/// Backward report for one top-level `function` definition.
#[derive(Clone, Debug)]
pub struct BackwardFnReport {
    /// The function's name.
    pub name: String,
    /// The type assigned in the context (declaration if present).
    pub assigned: Ty,
    /// Per-parameter backward error bounds, in parameter order
    /// (unit-typed parameters are omitted — there is nothing to perturb).
    pub inputs: Vec<(String, Grade)>,
}

/// Result of backward-checking a whole program term.
#[derive(Clone, Debug)]
pub struct BackwardResult {
    /// Judgment for the root term.
    pub root: BackwardInferred,
    /// One report per `function` definition, in source order.
    pub fns: Vec<BackwardFnReport>,
}

impl BackwardResult {
    /// Looks up a function report by name (the last definition wins).
    pub fn fn_report(&self, name: &str) -> Option<&BackwardFnReport> {
        self.fns.iter().rev().find(|f| f.name == name)
    }
}

/// Backward-checking errors. The first block mirrors [`crate::CheckError`]
/// (shape errors exist in both modes); the second is Bean's linearity and
/// first-order discipline.
#[derive(Clone, Debug, PartialEq)]
pub enum BackwardError {
    /// A variable was used without a binding.
    UnboundVar(String),
    /// An operation name is not in the signature.
    UnknownOp(String),
    /// A term's type had the wrong shape for its context.
    Expected {
        /// What the context needed (human-readable).
        what: &'static str,
        /// The type that was found.
        found: Ty,
    },
    /// A function argument does not match the domain type.
    ArgMismatch {
        /// The function's declared domain.
        expected: Ty,
        /// The argument's inferred type.
        found: Ty,
    },
    /// An operation argument does not match the signature.
    OpArgMismatch {
        /// Operation name.
        op: String,
        /// Signature argument type.
        expected: Ty,
        /// Inferred argument type.
        found: Ty,
    },
    /// A grade product of two symbolic quantities arose.
    NonlinearGrade,
    /// `case` branches have incompatible types.
    BranchTypeMismatch {
        /// Left branch type.
        left: Ty,
        /// Right branch type.
        right: Ty,
    },
    /// A declared function type is not a supertype of the inferred one.
    DeclaredMismatch {
        /// Function name.
        name: String,
        /// The declaration.
        declared: Ty,
        /// What inference produced.
        inferred: Ty,
    },
    /// A linear binder is never consumed (weakening, which Bean forbids
    /// on data).
    UnusedLinear {
        /// The binder's name.
        var: String,
    },
    /// A linear variable is consumed more than once (general contraction).
    DuplicatedUse {
        /// The variable's name.
        var: String,
    },
    /// A construct with no backward-error interpretation.
    Incompatible {
        /// Which construct (human-readable).
        construct: &'static str,
    },
    /// Rounding error (or a replayed demand) arises over a context with
    /// no linear variable to carry it back.
    NoCarrier {
        /// The syntactic site (`rnd`, `application`, …).
        site: &'static str,
    },
    /// `case` branches consume different sets of linear variables.
    BranchSupport {
        /// A variable consumed by only one branch.
        var: String,
    },
}

impl fmt::Display for BackwardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackwardError::UnboundVar(x) => write!(f, "unbound variable `{x}`"),
            BackwardError::UnknownOp(op) => write!(f, "unknown operation `{op}`"),
            BackwardError::Expected { what, found } => {
                write!(f, "expected {what}, found `{found}`")
            }
            BackwardError::ArgMismatch { expected, found } => {
                write!(f, "argument type `{found}` is not a subtype of `{expected}`")
            }
            BackwardError::OpArgMismatch { op, expected, found } => {
                write!(f, "operation `{op}` expects `{expected}`, got `{found}`")
            }
            BackwardError::NonlinearGrade => {
                write!(f, "a product of two symbolic grades arose; annotate with constants")
            }
            BackwardError::BranchTypeMismatch { left, right } => {
                write!(f, "case branches have incompatible types `{left}` and `{right}`")
            }
            BackwardError::DeclaredMismatch { name, declared, inferred } => write!(
                f,
                "function `{name}`: inferred type `{inferred}` is not a subtype of declared `{declared}`"
            ),
            BackwardError::UnusedLinear { var } => {
                write!(f, "linear variable `{var}` is never consumed")
            }
            BackwardError::DuplicatedUse { var } => {
                write!(f, "linear variable `{var}` is consumed more than once")
            }
            BackwardError::Incompatible { construct } => {
                write!(f, "{construct} has no backward-error interpretation")
            }
            BackwardError::NoCarrier { site } => write!(
                f,
                "rounding error at {site} has no linear variable to flow back to"
            ),
            BackwardError::BranchSupport { var } => {
                write!(f, "`{var}` is consumed by only one case branch")
            }
        }
    }
}

impl std::error::Error for BackwardError {}

/// Infers per-input backward error bounds for `root`, with `free` giving
/// types for free variables.
///
/// # Errors
///
/// Any [`BackwardError`]; the pass is complete for the algorithmic system,
/// so an error means the term lies outside Bean's backward-typable
/// fragment (or is ill-shaped).
pub fn infer_backward(
    store: &TermStore,
    sig: &Signature,
    root: TermId,
    free: &[(VarId, Ty)],
) -> Result<BackwardResult, BackwardError> {
    infer_backward_in(store, store.tys(), sig, root, free)
}

/// [`infer_backward`], resolving annotations against `tys` instead of the
/// store's own arena — the same zero-copy sharding primitive as
/// [`crate::infer_in`], with the same id-compatibility contract.
pub fn infer_backward_in(
    store: &TermStore,
    tys: &crate::CoreArena,
    sig: &Signature,
    root: TermId,
    free: &[(VarId, Ty)],
) -> Result<BackwardResult, BackwardError> {
    infer_backward_inner(store, tys, sig, root, free, None).map(|(result, _)| result)
}

/// [`infer_backward_in`], with subterm-level judgment memoization against
/// `cache` — the backward twin of [`crate::infer_memoized`], with the
/// same key discipline, the same soundness contract (`config` must
/// fingerprint mode and signature), and the same byte-identity guarantee
/// against the unmemoized pass.
///
/// # Errors
///
/// Exactly as [`infer_backward`]; failed passes memoize nothing new
/// beyond their successfully checked subtrees.
pub fn infer_backward_memoized(
    store: &TermStore,
    tys: &crate::CoreArena,
    sig: &Signature,
    root: TermId,
    free: &[(VarId, Ty)],
    cache: &mut JudgmentCache,
    config: u64,
) -> Result<(BackwardResult, JudgmentCounts), BackwardError> {
    infer_backward_inner(store, tys, sig, root, free, Some((cache, config)))
}

fn infer_backward_inner(
    store: &TermStore,
    tys: &crate::CoreArena,
    sig: &Signature,
    root: TermId,
    free: &[(VarId, Ty)],
    memo_cfg: Option<(&mut JudgmentCache, u64)>,
) -> Result<(BackwardResult, JudgmentCounts), BackwardError> {
    assert!(
        tys.same_arena(store.tys()) || tys.len() >= store.tys().len(),
        "infer_backward_in: arena is not an id-compatible copy of the store's arena"
    );
    // Fingerprint before taking the arena lock: fingerprinting resolves
    // annotation types through the store's arena handle.
    let (memo, seed) = match memo_cfg {
        None => (None, 0),
        Some((cache, config)) => {
            let fps = node_fingerprints(store, root, free);
            let mut seed = config;
            for (v, t) in free {
                let canon = fps.canon(*v).expect("free variable is canonicalized");
                seed = scope_extend(seed, canon, hash_ty_tree(t));
            }
            let memo = Memo {
                cache,
                fps,
                ty_fps: HashMap::new(),
                fns_start: HashMap::new(),
                fns_canon: Vec::new(),
                recomputed: 0,
            };
            (Some(memo), seed)
        }
    };
    let mut arena = tys.inner();
    let rnd_grade_id = arena.intern_grade(sig.rnd_grade());
    let zero_grade_id = arena.intern_grade(&Grade::zero());
    let var_tys = free.iter().map(|(v, t)| (*v, arena.intern(t))).collect();
    let mut ck = BackwardChecker {
        store,
        sig,
        var_tys,
        fn_sigs: HashMap::new(),
        results: HashMap::new(),
        remaining: count_parent_edges(store),
        fns: Vec::new(),
        ops: HashMap::new(),
        rnd_grade_id,
        zero_grade_id,
        arena,
        memo,
    };
    ck.run(root, seed)?;
    let counts = match &ck.memo {
        None => JudgmentCounts::default(),
        Some(m) => {
            let total = m.fps.reachable() as u64;
            JudgmentCounts {
                reused: total.saturating_sub(m.recomputed),
                recomputed: m.recomputed,
                total,
            }
        }
    };
    let root_res = ck.results.remove(&root).expect("root inferred");
    let inputs =
        root_res.env.iter().map(|(v, c)| (store.var_name(*v).to_string(), c.err.clone())).collect();
    Ok((
        BackwardResult {
            root: BackwardInferred { inputs, ty: ck.arena.resolve(root_res.ty) },
            fns: ck.fns,
        },
        counts,
    ))
}

/// One parameter of a function value: its binder, whether it carries data
/// (non-unit), and the demand its consumption places on an argument.
#[derive(Clone, Debug)]
struct BParam {
    var: VarId,
    named: bool,
    demand: Coeffect,
}

/// The backward "function info" of a value: the still-unapplied parameters
/// in application order. Present exactly for (possibly partially applied)
/// top-level functions and aliases of them — Bean's duplicable context.
#[derive(Clone, Debug)]
struct BFun {
    params: Vec<BParam>,
}

/// The per-subterm backward judgment.
#[derive(Clone, Debug)]
struct BJudgment {
    env: BackwardEnv,
    ty: TyId,
    fun: Option<BFun>,
}

struct BackwardChecker<'a> {
    store: &'a TermStore,
    sig: &'a Signature,
    arena: MutexGuard<'a, ArenaInner>,
    var_tys: HashMap<VarId, TyId>,
    /// Function-bound variables (Bean's duplicable context): their
    /// captured linear context and parameter demands, replayed at every
    /// use site.
    fn_sigs: HashMap<VarId, (BackwardEnv, Option<BFun>)>,
    results: HashMap<TermId, BJudgment>,
    remaining: Vec<u32>,
    fns: Vec<BackwardFnReport>,
    ops: HashMap<u32, (TyId, TyId)>,
    rnd_grade_id: GradeId,
    zero_grade_id: GradeId,
    /// Judgment memoization state ([`infer_backward_memoized`] only).
    memo: Option<Memo<'a>>,
}

/// Per-pass memoization state (the backward twin of the forward
/// checker's). Function reports need one extra structure: their
/// parameter *names* are presentation (lambda binder names are not part
/// of the content fingerprint), so a canonical mirror of `fns` is kept
/// and memoized instead of the rendered reports.
struct Memo<'a> {
    cache: &'a mut JudgmentCache,
    fps: NodeFingerprints,
    /// `hash_ty_tree` of resolved types, memoized by interned id.
    ty_fps: HashMap<TyId, u128>,
    /// Where each in-flight (cache-missed) node's window into `fns` (and
    /// `fns_canon`, kept parallel) starts; presence gates memoization.
    fns_start: HashMap<TermId, usize>,
    /// Canonical mirror of `fns`; a `None` marks a report that could not
    /// be canonicalized, poisoning every window that contains it.
    fns_canon: Vec<Option<BackwardFnEntry>>,
    /// Judgments computed by this pass (cache misses and leaves).
    recomputed: u64,
}

#[derive(Clone, Copy)]
struct Frame {
    id: TermId,
    stage: u8,
    /// Scope-chain fingerprint the node is checked under (0 when not
    /// memoizing).
    scope: u64,
}

/// Translates a memoized backward judgment into the replaying store's
/// variables; `None` on any canonical number the store cannot resolve
/// (a defensive miss).
fn translate_backward(
    fps: &NodeFingerprints,
    store: &TermStore,
    j: &BackwardJudgment,
) -> Option<(BackwardEnv, Option<BFun>, Vec<BackwardFnReport>)> {
    let mut entries = Vec::with_capacity(j.env.len());
    for (canon, c) in &j.env {
        entries.push((fps.var(*canon)?, c.clone()));
    }
    let fun = match &j.fun {
        None => None,
        Some(ps) => {
            let mut params = Vec::with_capacity(ps.len());
            for p in ps {
                params.push(BParam {
                    var: fps.var(p.var)?,
                    named: p.named,
                    demand: p.demand.clone(),
                });
            }
            Some(BFun { params })
        }
    };
    let mut reports = Vec::with_capacity(j.fns.len());
    for e in &j.fns {
        let mut inputs = Vec::with_capacity(e.inputs.len());
        for (canon, g) in &e.inputs {
            inputs.push((store.var_name(fps.var(*canon)?).to_string(), g.clone()));
        }
        reports.push(BackwardFnReport {
            name: e.name.clone(),
            assigned: e.assigned.clone(),
            inputs,
        });
    }
    Some((BackwardEnv::from_entries(entries), fun, reports))
}

/// Hashes a variable into a scope chain: by canonical number when
/// fingerprinted (stable across stores), by raw id otherwise (cannot
/// happen for program variables; still deterministic within one pass).
fn write_var(h: &mut StableHasher, fps: &NodeFingerprints, v: VarId) {
    match fps.canon(v) {
        Some(c) => {
            h.write_u8(1);
            h.write_u32(c);
        }
        None => {
            h.write_u8(2);
            h.write_u32(v.0);
        }
    }
}

impl<'a> BackwardChecker<'a> {
    fn var_ty(&self, v: VarId) -> Result<TyId, BackwardError> {
        self.var_tys
            .get(&v)
            .copied()
            .ok_or_else(|| BackwardError::UnboundVar(self.store.var_name(v).to_string()))
    }

    fn take(&mut self, id: TermId) -> Option<BJudgment> {
        let slot = &mut self.remaining[id.0 as usize];
        if *slot > 1 {
            *slot -= 1;
            self.results.get(&id).cloned()
        } else {
            *slot = 0;
            self.results.remove(&id)
        }
    }

    fn done(&mut self, id: TermId, env: BackwardEnv, ty: TyId, fun: Option<BFun>, scope: u64) {
        self.memoize(id, &env, ty, &fun, scope);
        self.results.insert(id, BJudgment { env, ty, fun });
    }

    /// Memoizes a freshly computed judgment, if this node cache-missed at
    /// stage 0 and every part of it canonicalizes.
    fn memoize(&mut self, id: TermId, env: &BackwardEnv, ty: TyId, fun: &Option<BFun>, scope: u64) {
        let Some(memo) = self.memo.as_mut() else { return };
        let Some(start) = memo.fns_start.remove(&id) else { return };
        let Some(node_fp) = memo.fps.node(id) else { return };
        let mut canon_env = Vec::with_capacity(env.len());
        for (v, c) in env.iter() {
            match memo.fps.canon(*v) {
                Some(n) => canon_env.push((n, c.clone())),
                None => return,
            }
        }
        canon_env.sort_by_key(|(n, _)| *n);
        let fun = match fun {
            None => None,
            Some(bf) => {
                let mut params = Vec::with_capacity(bf.params.len());
                for p in &bf.params {
                    match memo.fps.canon(p.var) {
                        Some(n) => params.push(BackwardParamEntry {
                            var: n,
                            named: p.named,
                            demand: p.demand.clone(),
                        }),
                        None => return,
                    }
                }
                Some(params)
            }
        };
        let mut fns = Vec::with_capacity(memo.fns_canon.len() - start);
        for entry in &memo.fns_canon[start..] {
            match entry {
                Some(e) => fns.push(e.clone()),
                // A window containing a non-canonicalizable report is
                // never memoized.
                None => return,
            }
        }
        let resolved = self.arena.resolve(ty);
        memo.cache.insert(
            node_fp,
            scope,
            JudgmentEntry::Backward(BackwardJudgment { env: canon_env, ty: resolved, fun, fns }),
        );
    }

    /// Attempts to replay a memoized judgment for `id` under `scope`;
    /// `true` on a hit. On a miss, registers the node's report window and
    /// counts the upcoming computation.
    fn try_replay(&mut self, id: TermId, scope: u64) -> bool {
        let Some(memo) = self.memo.as_mut() else { return false };
        if matches!(self.store.node(id), Node::Var(_) | Node::UnitVal | Node::Const(_)) {
            memo.recomputed += 1;
            return false;
        }
        let Some(node_fp) = memo.fps.node(id) else {
            memo.recomputed += 1;
            return false;
        };
        if let Some(JudgmentEntry::Backward(j)) = memo.cache.get(node_fp, scope) {
            if let Some((env, fun, reports)) = translate_backward(&memo.fps, self.store, &j) {
                let ty = self.arena.intern(&j.ty);
                self.fns.extend(reports);
                memo.fns_canon.extend(j.fns.iter().cloned().map(Some));
                self.results.insert(id, BJudgment { env, ty, fun });
                return true;
            }
        }
        memo.fns_start.insert(id, self.fns.len());
        memo.recomputed += 1;
        false
    }

    /// The scope-chain fingerprint for a child checked under one more
    /// binder `x : ty` (0 when not memoizing).
    fn scope_child(&mut self, parent: u64, x: VarId, ty: TyId) -> u64 {
        let Some(memo) = self.memo.as_mut() else { return 0 };
        let Some(canon) = memo.fps.canon(x) else { return parent };
        let ty_fp = match memo.ty_fps.get(&ty) {
            Some(&fp) => fp,
            None => {
                let fp = hash_ty_tree(&self.arena.resolve(ty));
                memo.ty_fps.insert(ty, fp);
                fp
            }
        };
        scope_extend(parent, canon, ty_fp)
    }

    /// Scope extension for a binder entering the duplicable function
    /// context: uses of the binder replay the function's captured linear
    /// context and parameter demands, so downstream judgments depend on
    /// that content and it must be folded into the chain alongside the
    /// binder's type.
    fn scope_child_fn(
        &mut self,
        parent: u64,
        x: VarId,
        ty: TyId,
        caps: &BackwardEnv,
        fun: &Option<BFun>,
    ) -> u64 {
        let base = self.scope_child(parent, x, ty);
        let Some(memo) = self.memo.as_mut() else { return 0 };
        let mut h = StableHasher::new();
        h.write_u64(base);
        for (v, c) in caps.iter() {
            write_var(&mut h, &memo.fps, *v);
            h.write_str(&c.err.to_string());
            h.write_str(&c.absorb.to_string());
        }
        match fun {
            None => h.write_u8(0),
            Some(bf) => {
                h.write_u8(1);
                for p in &bf.params {
                    write_var(&mut h, &memo.fps, p.var);
                    h.write_u8(p.named as u8);
                    h.write_str(&p.demand.err.to_string());
                    h.write_str(&p.demand.absorb.to_string());
                }
            }
        }
        h.finish64()
    }

    /// Mirrors a just-pushed function report into the canonical window
    /// (`None` if a parameter cannot be canonicalized).
    fn memo_fn_entry(&mut self, name_var: VarId, assigned: TyId, fun: &Option<BFun>) {
        if self.memo.is_none() {
            return;
        }
        let assigned = self.arena.resolve(assigned);
        let memo = self.memo.as_mut().expect("checked above");
        let mut inputs = Vec::new();
        let mut canonical = true;
        if let Some(bf) = fun {
            for p in bf.params.iter().filter(|p| p.named) {
                match memo.fps.canon(p.var) {
                    Some(n) => inputs.push((n, p.demand.err.clone())),
                    None => {
                        canonical = false;
                        break;
                    }
                }
            }
        }
        let entry = canonical.then(|| BackwardFnEntry {
            name: self.store.var_name(name_var).to_string(),
            assigned,
            inputs,
        });
        memo.fns_canon.push(entry);
    }

    fn show(&self, ty: TyId) -> Ty {
        self.arena.resolve(ty)
    }

    fn name(&self, v: VarId) -> String {
        self.store.var_name(v).to_string()
    }

    fn dup(&self, v: VarId) -> BackwardError {
        BackwardError::DuplicatedUse { var: self.name(v) }
    }

    fn op_sig(&mut self, op_idx: u32) -> Result<(TyId, TyId), BackwardError> {
        if let Some(&entry) = self.ops.get(&op_idx) {
            return Ok(entry);
        }
        let name = self.store.op_name(op_idx);
        let op = self.sig.op(name).ok_or_else(|| BackwardError::UnknownOp(name.to_string()))?;
        let entry = (self.arena.intern(&op.arg), self.arena.intern(&op.ret));
        self.ops.insert(op_idx, entry);
        Ok(entry)
    }

    /// The backward amplification through an operation whose domain is
    /// boxed at `grade`: the inverse of the (finite, positive, constant)
    /// forward sensitivity; anything else — zero, `∞` (comparisons), or
    /// symbolic — admits no finite backward routing.
    fn inverse_amplification(&self, grade: GradeId) -> Grade {
        match self.arena.grade(grade).as_constant() {
            Some(c) if !c.is_zero() => Grade::constant(c.recip()),
            _ => Grade::infinite(),
        }
    }

    /// Replays a binder's accumulated demand onto its producer's context:
    /// the (Let)/(⊸E)/(case) composition step. A demanded producer with an
    /// empty context means the demand lands on constants.
    fn compose(
        &self,
        producer: BackwardEnv,
        binder: &Coeffect,
        site: &'static str,
    ) -> Result<BackwardEnv, BackwardError> {
        if producer.is_empty() && !binder.err.is_zero() {
            return Err(BackwardError::NoCarrier { site });
        }
        producer.try_update(|c| c.seq(binder)).ok_or(BackwardError::NonlinearGrade)
    }

    /// Removes a binder from a body context, enforcing consumption for
    /// binders that carry data (`unit`-typed binders are vacuous).
    fn consume_binder(
        &self,
        env: &mut BackwardEnv,
        x: VarId,
        ty: TyId,
    ) -> Result<Coeffect, BackwardError> {
        match env.remove(x) {
            Some(c) => Ok(c),
            None if ty == UNIT => Ok(Coeffect::vacuous()),
            None => Err(BackwardError::UnusedLinear { var: self.name(x) }),
        }
    }

    fn run(&mut self, root: TermId, seed: u64) -> Result<(), BackwardError> {
        let eps = self.sig.rnd_grade().clone();
        let mut stack = vec![Frame { id: root, stage: 0, scope: seed }];
        while let Some(Frame { id, stage, scope }) = stack.pop() {
            if stage == 0 && (self.results.contains_key(&id) || self.try_replay(id, scope)) {
                continue;
            }
            match (*self.store.node(id), stage) {
                // ----- constructs outside Bean's fragment -----
                (Node::Proj(..), _) => {
                    return Err(BackwardError::Incompatible {
                        construct: "projection from a cartesian pair",
                    })
                }
                (Node::BoxIntro(..), _) => {
                    return Err(BackwardError::Incompatible { construct: "box introduction" })
                }
                (Node::LetBox(..), _) => {
                    return Err(BackwardError::Incompatible { construct: "box elimination" })
                }
                (Node::Err(..), _) => {
                    return Err(BackwardError::Incompatible { construct: "the `err` value" })
                }

                // ----- leaves -----
                (Node::Var(v), _) => {
                    let ty = self.var_ty(v)?;
                    if let Some((caps, fun)) = self.fn_sigs.get(&v) {
                        let (caps, fun) = (caps.clone(), fun.clone());
                        self.done(id, caps, ty, fun, scope);
                    } else {
                        self.done(id, BackwardEnv::consume(v), ty, None, scope);
                    }
                }
                (Node::UnitVal, _) => self.done(id, BackwardEnv::empty(), UNIT, None, scope),
                (Node::Const(_), _) => self.done(id, BackwardEnv::empty(), NUM, None, scope),

                // ----- single-child nodes -----
                (Node::Inl(v, _), 0)
                | (Node::Inr(v, _), 0)
                | (Node::Rnd(v), 0)
                | (Node::Ret(v), 0)
                | (Node::Op(_, v), 0) => {
                    stack.push(Frame { id, stage: 1, scope });
                    stack.push(Frame { id: v, stage: 0, scope });
                }
                (Node::Inl(v, rt), 1) => {
                    let r = self.take(v).expect("child done");
                    let ty = self.arena.mk(TyNode::Sum(r.ty, rt));
                    self.done(id, r.env, ty, None, scope);
                }
                (Node::Inr(v, lt), 1) => {
                    let r = self.take(v).expect("child done");
                    let ty = self.arena.mk(TyNode::Sum(lt, r.ty));
                    self.done(id, r.env, ty, None, scope);
                }
                (Node::Rnd(v), 1) => {
                    let r = self.take(v).expect("child done");
                    if r.ty != NUM {
                        return Err(BackwardError::Expected {
                            what: "a numeric argument to rnd",
                            found: self.show(r.ty),
                        });
                    }
                    if r.env.is_empty() {
                        // The committed rounding error has nowhere to go:
                        // constants cannot be perturbed.
                        return Err(BackwardError::NoCarrier { site: "rnd" });
                    }
                    let env = r
                        .env
                        .try_update(|c| c.charge(&eps))
                        .ok_or(BackwardError::NonlinearGrade)?;
                    let ty = self.arena.mk(TyNode::Monad(self.rnd_grade_id, NUM));
                    self.done(id, env, ty, None, scope);
                }
                (Node::Ret(v), 1) => {
                    let r = self.take(v).expect("child done");
                    let ty = self.arena.mk(TyNode::Monad(self.zero_grade_id, r.ty));
                    self.done(id, r.env, ty, r.fun, scope);
                }
                (Node::Op(op_idx, v), 1) => {
                    let r = self.take(v).expect("child done");
                    let (arg, ret) = self.op_sig(op_idx)?;
                    let env = if self.arena.subtype(r.ty, arg) {
                        r.env
                    } else if let TyNode::Bang(g, inner) = self.arena.node(arg) {
                        // Implicit boxing (`sqrt x`): the backward demand
                        // through the op amplifies by the inverse of the
                        // declared sensitivity.
                        if self.arena.subtype(r.ty, inner) {
                            let factor = self.inverse_amplification(g);
                            r.env
                                .try_update(|c| c.amplify(&factor))
                                .ok_or(BackwardError::NonlinearGrade)?
                        } else {
                            return Err(BackwardError::OpArgMismatch {
                                op: self.store.op_name(op_idx).to_string(),
                                expected: self.show(arg),
                                found: self.show(r.ty),
                            });
                        }
                    } else {
                        return Err(BackwardError::OpArgMismatch {
                            op: self.store.op_name(op_idx).to_string(),
                            expected: self.show(arg),
                            found: self.show(r.ty),
                        });
                    };
                    self.done(id, env, ret, None, scope);
                }

                // ----- pairs and application -----
                (Node::PairW(a, b), 0) | (Node::PairT(a, b), 0) | (Node::App(a, b), 0) => {
                    stack.push(Frame { id, stage: 1, scope });
                    stack.push(Frame { id: a, stage: 0, scope });
                    stack.push(Frame { id: b, stage: 0, scope });
                }
                (Node::PairW(a, b), 1) => {
                    let ra = self.take(a).expect("child done");
                    let rb = self.take(b).expect("child done");
                    // A Cartesian pair with exactly one rigid (constant)
                    // side: a demand on the pair cannot be split
                    // proportionally — in the RP instantiation this is
                    // `add (|x, c|)`, whose one-sided solve has unbounded
                    // relative amplification. Mark the open side `∞`.
                    let (ea, eb) = if ra.env.is_empty() != rb.env.is_empty() {
                        let inf = Grade::infinite();
                        let widen = |e: BackwardEnv| {
                            e.try_update(|c| c.amplify(&inf)).expect("∞ product is total")
                        };
                        (widen(ra.env), widen(rb.env))
                    } else {
                        (ra.env, rb.env)
                    };
                    let env = ea.merge_disjoint(eb).map_err(|v| self.dup(v))?;
                    let ty = self.arena.mk(TyNode::With(ra.ty, rb.ty));
                    self.done(id, env, ty, None, scope);
                }
                (Node::PairT(a, b), 1) => {
                    let ra = self.take(a).expect("child done");
                    let rb = self.take(b).expect("child done");
                    let env = ra.env.merge_disjoint(rb.env).map_err(|v| self.dup(v))?;
                    let ty = self.arena.mk(TyNode::Tensor(ra.ty, rb.ty));
                    self.done(id, env, ty, None, scope);
                }
                (Node::App(a, b), 1) => {
                    let ra = self.take(a).expect("child done");
                    let rb = self.take(b).expect("child done");
                    let cod = match self.arena.node(ra.ty) {
                        TyNode::Lolli(dom, cod) => {
                            if !self.arena.subtype(rb.ty, dom) {
                                return Err(BackwardError::ArgMismatch {
                                    expected: self.show(dom),
                                    found: self.show(rb.ty),
                                });
                            }
                            cod
                        }
                        _ => {
                            return Err(BackwardError::Expected {
                                what: "a function",
                                found: self.show(ra.ty),
                            })
                        }
                    };
                    // Bean is first-order: only (possibly partially
                    // applied) top-level functions carry backward
                    // parameter demands.
                    let mut params = match ra.fun {
                        Some(bf) => bf.params,
                        None => {
                            return Err(BackwardError::Incompatible {
                                construct: "first-class function application",
                            })
                        }
                    };
                    let first = params.remove(0);
                    let shifted = self.compose(rb.env, &first.demand, "application")?;
                    let env = ra.env.merge_disjoint(shifted).map_err(|v| self.dup(v))?;
                    let fun = if params.is_empty() { None } else { Some(BFun { params }) };
                    self.done(id, env, cod, fun, scope);
                }

                // ----- λ -----
                (Node::Lam(x, ty_id, body), 0) => {
                    self.var_tys.insert(x, ty_id);
                    let body_scope = self.scope_child(scope, x, ty_id);
                    stack.push(Frame { id, stage: 1, scope });
                    stack.push(Frame { id: body, stage: 0, scope: body_scope });
                }
                (Node::Lam(x, ty_id, body), 1) => {
                    let mut r = self.take(body).expect("child done");
                    let demand = self.consume_binder(&mut r.env, x, ty_id)?;
                    let param = BParam { var: x, named: ty_id != UNIT, demand };
                    let params = match r.fun {
                        Some(bf) => {
                            let mut ps = vec![param];
                            ps.extend(bf.params);
                            ps
                        }
                        None => vec![param],
                    };
                    let ty = self.arena.mk(TyNode::Lolli(ty_id, r.ty));
                    self.done(id, r.env, ty, Some(BFun { params }), scope);
                }

                // ----- binders that need the scrutinee's type first -----
                (Node::LetTensor(_, _, v, _), 0)
                | (Node::Case(v, ..), 0)
                | (Node::LetBind(_, v, _), 0) => {
                    stack.push(Frame { id, stage: 1, scope });
                    stack.push(Frame { id: v, stage: 0, scope });
                }
                (Node::Let(_, e, _), 0) | (Node::LetFun(_, _, e, _), 0) => {
                    stack.push(Frame { id, stage: 1, scope });
                    stack.push(Frame { id: e, stage: 0, scope });
                }

                (Node::LetTensor(x, y, v, e), 1) => {
                    let rv = self.results.get(&v).expect("scrutinee done");
                    match self.arena.node(rv.ty) {
                        TyNode::Tensor(a, b) => {
                            self.var_tys.insert(x, a);
                            self.var_tys.insert(y, b);
                            let inner = self.scope_child(scope, x, a);
                            let inner = self.scope_child(inner, y, b);
                            stack.push(Frame { id, stage: 2, scope });
                            stack.push(Frame { id: e, stage: 0, scope: inner });
                        }
                        _ => {
                            return Err(BackwardError::Expected {
                                what: "a tensor pair",
                                found: self.show(rv.ty),
                            })
                        }
                    }
                }
                (Node::LetTensor(x, y, v, e), 2) => {
                    let rv = self.take(v).expect("scrutinee done");
                    let mut re = self.take(e).expect("body done");
                    let (a, b) = match self.arena.node(rv.ty) {
                        TyNode::Tensor(a, b) => (a, b),
                        _ => unreachable!("checked at stage 1"),
                    };
                    let cx = self.consume_binder(&mut re.env, x, a)?;
                    let cy = self.consume_binder(&mut re.env, y, b)?;
                    // The scrutinee pair carries both components' demands
                    // (sum metric on ⊗).
                    let shifted = self.compose(rv.env, &cx.join_add(&cy), "let-tensor")?;
                    let env = re.env.merge_disjoint(shifted).map_err(|v| self.dup(v))?;
                    self.done(id, env, re.ty, re.fun, scope);
                }

                (Node::Case(v, x, e1, y, e2), 1) => {
                    let rv = self.results.get(&v).expect("scrutinee done");
                    match self.arena.node(rv.ty) {
                        TyNode::Sum(a, b) => {
                            self.var_tys.insert(x, a);
                            self.var_tys.insert(y, b);
                            let s1 = self.scope_child(scope, x, a);
                            let s2 = self.scope_child(scope, y, b);
                            stack.push(Frame { id, stage: 2, scope });
                            stack.push(Frame { id: e1, stage: 0, scope: s1 });
                            stack.push(Frame { id: e2, stage: 0, scope: s2 });
                        }
                        _ => {
                            return Err(BackwardError::Expected {
                                what: "a sum",
                                found: self.show(rv.ty),
                            })
                        }
                    }
                }
                (Node::Case(v, x, e1, y, e2), 2) => {
                    let rv = self.take(v).expect("scrutinee done");
                    let mut r1 = self.take(e1).expect("left branch done");
                    let mut r2 = self.take(e2).expect("right branch done");
                    let (a, b) = match self.arena.node(rv.ty) {
                        TyNode::Sum(a, b) => (a, b),
                        _ => unreachable!("checked at stage 1"),
                    };
                    let c1 = self.consume_binder(&mut r1.env, x, a)?;
                    let c2 = self.consume_binder(&mut r2.env, y, b)?;
                    let ty = self.arena.sup(r1.ty, r2.ty).ok_or_else(|| {
                        BackwardError::BranchTypeMismatch {
                            left: self.show(r1.ty),
                            right: self.show(r2.ty),
                        }
                    })?;
                    // Bean's case: both branches must consume the same
                    // linear context (either may be taken at runtime).
                    let theta = r1
                        .env
                        .sup_same_support(r2.env)
                        .map_err(|v| BackwardError::BranchSupport { var: self.name(v) })?;
                    let shifted = self.compose(rv.env, &c1.sup(&c2), "case")?;
                    let env = theta.merge_disjoint(shifted).map_err(|v| self.dup(v))?;
                    self.done(id, env, ty, None, scope);
                }

                (Node::LetBind(x, v, f), 1) => {
                    let rv = self.results.get(&v).expect("scrutinee done");
                    match self.arena.node(rv.ty) {
                        TyNode::Monad(_, inner) => {
                            self.var_tys.insert(x, inner);
                            let body_scope = self.scope_child(scope, x, inner);
                            stack.push(Frame { id, stage: 2, scope });
                            stack.push(Frame { id: f, stage: 0, scope: body_scope });
                        }
                        _ => {
                            return Err(BackwardError::Expected {
                                what: "a monadic computation",
                                found: self.show(rv.ty),
                            })
                        }
                    }
                }
                (Node::LetBind(x, v, f), 2) => {
                    let rv = self.take(v).expect("scrutinee done");
                    let mut rf = self.take(f).expect("body done");
                    let (r, inner) = match self.arena.node(rv.ty) {
                        TyNode::Monad(r, inner) => (r, inner),
                        _ => unreachable!("checked at stage 1"),
                    };
                    let (q, tau) = match self.arena.node(rf.ty) {
                        TyNode::Monad(q, tau) => (q, tau),
                        _ => {
                            return Err(BackwardError::Expected {
                                what: "a monadic body in let-bind",
                                found: self.show(rf.ty),
                            })
                        }
                    };
                    let c = self.consume_binder(&mut rf.env, x, inner)?;
                    let shifted = self.compose(rv.env, &c, "let-bind")?;
                    let env = rf.env.merge_disjoint(shifted).map_err(|v| self.dup(v))?;
                    // Linear sequencing: the stage grades add (the forward
                    // grade is kept so both modes print the same types).
                    let grade = self.arena.grade(r).add(self.arena.grade(q));
                    let gid = self.arena.intern_grade(&grade);
                    let ty = self.arena.mk(TyNode::Monad(gid, tau));
                    self.done(id, env, ty, None, scope);
                }

                (Node::Let(x, e, f), 1) => {
                    let re = self.results.get(&e).expect("bound term done");
                    let re_ty = re.ty;
                    // A function alias: uses of `x` replay the function's
                    // captures and demands (Bean's duplicable context), so
                    // `x` itself is not a tracked resource — but the
                    // replayed content is part of what the body's
                    // judgments depend on, hence the richer scope hash.
                    let alias = re.fun.as_ref().map(|_| (re.env.clone(), re.fun.clone()));
                    self.var_tys.insert(x, re_ty);
                    let body_scope = match &alias {
                        Some((caps, fun)) => self.scope_child_fn(scope, x, re_ty, caps, fun),
                        None => self.scope_child(scope, x, re_ty),
                    };
                    if let Some(sig) = alias {
                        self.fn_sigs.insert(x, sig);
                    }
                    stack.push(Frame { id, stage: 2, scope });
                    stack.push(Frame { id: f, stage: 0, scope: body_scope });
                }
                (Node::Let(x, e, f), 2) => {
                    let re = self.take(e).expect("bound term done");
                    let mut rf = self.take(f).expect("body done");
                    if re.fun.is_some() {
                        // Alias composition happened at the use sites; an
                        // unused alias simply drops (its captures are then
                        // reported unused at their own binders).
                        self.done(id, rf.env, rf.ty, rf.fun, scope);
                        continue;
                    }
                    let c = self.consume_binder(&mut rf.env, x, re.ty)?;
                    let shifted = self.compose(re.env, &c, "let")?;
                    let env = rf.env.merge_disjoint(shifted).map_err(|v| self.dup(v))?;
                    self.done(id, env, rf.ty, rf.fun, scope);
                }

                (Node::LetFun(x, decl, body, rest), 1) => {
                    let rb = self.results.get(&body).expect("function body done");
                    let inferred = rb.ty;
                    let assigned = match decl {
                        None => inferred,
                        Some(declared) => {
                            if !self.arena.subtype(inferred, declared) {
                                return Err(BackwardError::DeclaredMismatch {
                                    name: self.name(x),
                                    declared: self.show(declared),
                                    inferred: self.show(inferred),
                                });
                            }
                            declared
                        }
                    };
                    let (rb_env, rb_fun) = (rb.env.clone(), rb.fun.clone());
                    let inputs = match &rb_fun {
                        Some(bf) => bf
                            .params
                            .iter()
                            .filter(|p| p.named)
                            .map(|p| (self.name(p.var), p.demand.err.clone()))
                            .collect(),
                        None => Vec::new(),
                    };
                    self.fns.push(BackwardFnReport {
                        name: self.name(x),
                        assigned: self.show(assigned),
                        inputs,
                    });
                    self.memo_fn_entry(x, assigned, &rb_fun);
                    let rest_scope = self.scope_child_fn(scope, x, assigned, &rb_env, &rb_fun);
                    self.fn_sigs.insert(x, (rb_env, rb_fun));
                    self.var_tys.insert(x, assigned);
                    stack.push(Frame { id, stage: 2, scope });
                    stack.push(Frame { id: rest, stage: 0, scope: rest_scope });
                }
                (Node::LetFun(_, _, body, rest), 2) => {
                    let _ = self.take(body);
                    let rr = self.take(rest).expect("rest done");
                    self.done(id, rr.env, rr.ty, rr.fun, scope);
                }

                (node, stage) => unreachable!("invalid backward state: {node:?} at stage {stage}"),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile;
    use crate::sig::Signature;

    fn rp(src: &str) -> Result<BackwardResult, BackwardError> {
        let sig = Signature::relative_precision();
        let lowered = compile(src, &sig).expect("compiles");
        infer_backward(&lowered.store, &sig, lowered.root, &[])
    }

    fn abs(src: &str) -> Result<BackwardResult, BackwardError> {
        let sig = Signature::absolute_error();
        let lowered = compile(src, &sig).expect("compiles");
        infer_backward(&lowered.store, &sig, lowered.root, &[])
    }

    fn bound(res: &BackwardResult, f: &str, x: &str) -> String {
        let report = res.fn_report(f).unwrap_or_else(|| panic!("no report for {f}"));
        report
            .inputs
            .iter()
            .find(|(n, _)| n == x)
            .unwrap_or_else(|| panic!("no input {x} in {f}: {:?}", report.inputs))
            .1
            .to_string()
    }

    #[test]
    fn single_rounding_charges_eps_per_input() {
        let res = rp(r#"
            function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
        "#)
        .expect("backward-typed");
        assert_eq!(bound(&res, "mulfp", "xy"), "eps");
        assert_eq!(res.fn_report("mulfp").unwrap().assigned.to_string(), "(num, num) -o M[eps]num");
    }

    #[test]
    fn composition_replays_demands_onto_producers() {
        // Two roundings: the multiply's inputs absorb both (the add's
        // demand replays through the bind), the late input only one.
        let res = rp(r#"
            function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
            function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
            function ma (x: num) (y: num) (z: num) : M[2*eps]num {
                s = mulfp (x, y);
                let a = s;
                addfp (|a, z|)
            }
        "#)
        .expect("backward-typed");
        assert_eq!(bound(&res, "ma", "x"), "2*eps");
        assert_eq!(bound(&res, "ma", "y"), "2*eps");
        assert_eq!(bound(&res, "ma", "z"), "eps");
        assert_eq!(
            res.fn_report("ma").unwrap().assigned.to_string(),
            "num -o num -o num -o M[2*eps]num"
        );
    }

    #[test]
    fn sqrt_doubles_the_backward_demand() {
        let res = rp(r#"
            function s (x: num) : M[eps]num { r = sqrt x; rnd r }
        "#)
        .expect("backward-typed");
        assert_eq!(bound(&res, "s", "x"), "2*eps");
    }

    #[test]
    fn abs_scaling_halves_and_doubles() {
        let res = abs(r#"
            function f (x: num) : M[delta]num { r = scale2 x; rnd r }
            function g (x: num) : M[delta]num { r = half x; rnd r }
        "#)
        .expect("backward-typed");
        assert_eq!(bound(&res, "f", "x"), "1/2*delta");
        assert_eq!(bound(&res, "g", "x"), "2*delta");
    }

    #[test]
    fn rp_add_against_a_constant_is_unbounded() {
        let res = rp(r#"
            function g (x: num) : M[eps]num { s = add (|x, 1|); rnd s }
        "#)
        .expect("types, with an infinite bound");
        assert_eq!(bound(&res, "g", "x"), "inf");
    }

    #[test]
    fn abs_add_against_a_constant_stays_finite() {
        let res = abs(r#"
            function g (x: num) : M[delta]num { s = add (x, 1); rnd s }
        "#)
        .expect("backward-typed");
        assert_eq!(bound(&res, "g", "x"), "delta");
    }

    #[test]
    fn unused_binder_is_rejected() {
        assert_eq!(
            rp("function f (x: num) : num { 2 }").unwrap_err(),
            BackwardError::UnusedLinear { var: "x".into() }
        );
    }

    #[test]
    fn duplicated_use_is_rejected() {
        assert_eq!(
            rp("function f (x: num) : M[eps]num { rnd (mul (x, x)) }").unwrap_err(),
            BackwardError::DuplicatedUse { var: "x".into() }
        );
    }

    #[test]
    fn rounding_constants_has_no_carrier() {
        assert_eq!(rp("rnd 1.5").unwrap_err(), BackwardError::NoCarrier { site: "rnd" });
        // The same through a composition: a demanded producer with an
        // empty context.
        let err = rp(r#"
            function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
            mulfp (2, 3)
        "#)
        .unwrap_err();
        assert_eq!(err, BackwardError::NoCarrier { site: "application" });
    }

    #[test]
    fn boxes_and_projections_are_outside_the_fragment() {
        assert!(matches!(
            rp("function f (x: ![2]num) : M[eps]num { let [y] = x; rnd y }").unwrap_err(),
            BackwardError::Incompatible { construct: "box elimination" }
        ));
        assert!(matches!(
            rp("fst (|1, 2|)").unwrap_err(),
            BackwardError::Incompatible { construct: "projection from a cartesian pair" }
        ));
        assert!(matches!(
            rp("p = [3]{2}; ret p").unwrap_err(),
            BackwardError::Incompatible { construct: "box introduction" }
        ));
    }

    #[test]
    fn branches_must_consume_the_same_context() {
        let err = rp(r#"
            function h (x: num) (y: num) : num {
                c = is_pos x;
                if c then y else 0
            }
        "#)
        .unwrap_err();
        assert_eq!(err, BackwardError::BranchSupport { var: "y".into() });
    }

    #[test]
    fn conditionals_with_equal_support_type() {
        // Comparisons consume their argument at absorb ∞, but a demand
        // of zero through ∞ is zero, and both branches consume `y`.
        let res = rp(r#"
            function h (x: num) (y: num) : M[eps]num {
                c = is_pos x;
                if c then { rnd (mul (y, 2)) } else { rnd (mul (y, 3)) }
            }
        "#)
        .expect("backward-typed");
        assert_eq!(bound(&res, "h", "y"), "eps");
        assert_eq!(bound(&res, "h", "x"), "0");
    }

    #[test]
    fn twice_called_closure_over_a_linear_variable_is_contraction() {
        // A partially applied function value closes over `w`; calling the
        // alias twice replays the capture twice.
        let err = rp(r#"
            function mul2 (x: num) (y: num) : M[eps]num { rnd (mul (x, y)) }
            function outer (w: num) (u: num) : M[2*eps]num {
                g = mul2 w;
                let a = g u;
                g a
            }
        "#)
        .unwrap_err();
        assert_eq!(err, BackwardError::DuplicatedUse { var: "w".into() });
    }

    #[test]
    fn unused_functions_are_fine_but_unused_data_is_not() {
        // Functions live in the duplicable context: defining and never
        // calling one is allowed.
        let res = rp(r#"
            function f (x: num) : M[eps]num { rnd (mul (x, 2)) }
            ret 0
        "#)
        .expect("backward-typed");
        assert_eq!(bound(&res, "f", "x"), "eps");
        assert!(res.root.inputs.is_empty());
        // But a let-bound datum must be consumed.
        assert_eq!(
            rp("k = 3; ret 0").unwrap_err(),
            BackwardError::UnusedLinear { var: "k".into() }
        );
    }

    #[test]
    fn higher_order_application_is_rejected() {
        let err = rp(r#"
            function apply (f: num -o num) (x: num) : num { f x }
            ret 0
        "#)
        .unwrap_err();
        assert!(matches!(
            err,
            BackwardError::Incompatible { construct: "first-class function application" }
        ));
    }

    #[test]
    fn reports_are_deterministic_and_in_source_order() {
        let src = r#"
            function a (x: num) : M[eps]num { rnd (mul (x, 2)) }
            function b (y: num) : M[eps]num { rnd (mul (y, 3)) }
            ret 1
        "#;
        let first = rp(src).expect("types");
        let names: Vec<&str> = first.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        let second = rp(src).expect("types");
        assert_eq!(format!("{first:?}"), format!("{second:?}"));
    }
}
