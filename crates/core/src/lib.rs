//! # numfuzz-core
//!
//! The Λnum language of *Numerical Fuzz: A Type System for Rounding Error
//! Analysis* (PLDI 2024): a linear call-by-value λ-calculus whose type
//! system combines a Fuzz-style sensitivity analysis with a graded monad
//! `M_u τ` that tracks accumulated rounding error.
//!
//! * [`Grade`] — sensitivities and error indices as exact symbolic linear
//!   expressions over `R≥0 ∪ {∞}`;
//! * [`Ty`] — types (Fig. 1) with subtyping (Fig. 12) and the `max`/`min`
//!   lattice (Fig. 11);
//! * [`CoreArena`] — the hash-consing arena: types and grades intern to
//!   [`TyId`]/[`GradeId`] with O(1) structural equality and memoized
//!   lattice operations (see [`arena`]);
//! * [`TermStore`] — arena-based, hash-consed terms (Fig. 1) scaling to
//!   the paper's 4.2-million-operation benchmarks;
//! * [`Signature`] — the primitive-operation signatures of the Section 5
//!   instantiations (relative precision and absolute error);
//! * [`infer`] — algorithmic sensitivity inference (Fig. 10);
//! * [`parser`] / [`lower`] — the surface syntax of the paper's Figs. 7–9
//!   and its elaboration (ANF + scope resolution) into the arena.
//!
//! ## Example: the paper's `pow2'` (Section 2.3)
//!
//! ```
//! use numfuzz_core::{compile, infer, Signature};
//!
//! let sig = Signature::relative_precision();
//! let src = r#"
//!     function pow2' (x: ![2.0]num) : M[eps]num {
//!         let [x1] = x;
//!         s = mul (x1, x1);
//!         rnd s
//!     }
//! "#;
//! let lowered = compile(src, &sig)?;
//! let result = infer(&lowered.store, &sig, lowered.root, &[])?;
//! // The checker reproduces the paper's type: !2 num ⊸ M_eps num.
//! assert_eq!(result.fn_report("pow2'").unwrap().inferred.to_string(),
//!            "![2]num -o M[eps]num");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
// Grade::add takes references (see numfuzz-exact); CheckError carries full types for messages and checking is not a hot error path.
#![allow(clippy::should_implement_trait)]
#![allow(clippy::result_large_err)]
#![warn(missing_docs)]

pub mod arena;
mod backward;
pub mod cache;
mod check;
mod env;
mod grade;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pool;
mod pretty;
pub mod rewrite;
mod sig;
mod term;
mod ty;
pub mod validate;

pub use arena::{CoreArena, GradeId, TyId, TyNode};
pub use backward::{
    infer_backward, infer_backward_in, infer_backward_memoized, BackwardError, BackwardFnReport,
    BackwardInferred, BackwardResult,
};
pub use cache::{
    AnalysisMode, CacheKey, CacheStats, CacheWeight, ConfigFingerprint, JudgmentCache,
    JudgmentCounts, ResultCache,
};
pub use check::{infer, infer_in, infer_memoized, CheckError, CheckResult, FnReport, Inferred};
pub use env::{BackwardEnv, Env};
pub use grade::{Coeffect, Grade, LinExpr, Sym};
pub use lexer::SyntaxError;
pub use lower::{compile, compile_in, lower_program, lower_program_in, Lowered};
pub use parser::{parse_expr, parse_program, parse_ty, SExpr, SFnDef, SProgram};
pub use pretty::pretty_term;
pub use sig::{Instantiation, OpSig, Signature};
pub use term::{Node, TermId, TermStore, VarId};
pub use ty::Ty;
