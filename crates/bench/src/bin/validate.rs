//! Error-soundness sweep (Corollary 4.20): for every Table 3 kernel and
//! every recorded sample input, run the ideal and floating-point
//! semantics in several formats and modes and *rigorously* check
//! `RP(ideal, fp) <= inferred bound` — one `Analyzer` session per
//! format/mode, one `Program` per benchmark. Also sweeps the Table 5
//! conditionals and a couple of generated Table 4 programs.
//!
//! Exits nonzero on any violation (none exist; this is the empirical
//! witness to the soundness theorem).

use numfuzz::prelude::*;
use numfuzz_benchsuite::{horner, serial_sum, table3, table5};

fn main() {
    let formats = [Format::BINARY64, Format::new(12, 60), Format::new(6, 40)];
    // One session per (format, mode): signature setup is shared inside
    // each; programs are built once and revalidated across all sessions.
    let sessions: Vec<Analyzer> = formats
        .iter()
        .flat_map(|&format| {
            RoundingMode::ALL
                .into_iter()
                .map(move |mode| Analyzer::builder().format(format).mode(mode).build())
        })
        .collect();
    let mut runs = 0usize;
    let mut violations = 0usize;
    let mut faults = 0usize;
    let mut worst_slack = f64::INFINITY;

    println!("Error-soundness validation (Cor. 4.20): RP(ideal, fp) <= grade bound\n");

    for b in table3() {
        let program = Program::from_kernel(&b.kernel).expect("translatable");
        for sample in &b.samples {
            let inputs = Inputs::positional(sample.iter().map(|q| Value::num(q.clone())));
            for session in &sessions {
                let rep = session.validate(&program, &inputs).unwrap_or_else(|e| {
                    panic!("{} {} {}: {e}", b.kernel.name, session.format(), session.mode())
                });
                runs += 1;
                if rep.fp.is_none() {
                    faults += 1; // over/underflow: Cor. 7.5 is vacuous
                }
                if !rep.holds() {
                    violations += 1;
                    println!(
                        "VIOLATION: {} sample {sample:?} {} {}",
                        b.kernel.name,
                        session.format(),
                        session.mode()
                    );
                }
                if let Some(m) = rep.measured {
                    let bound = rep.bound.to_f64();
                    if bound > 0.0 && m > 0.0 {
                        worst_slack = worst_slack.min(bound / m);
                    }
                }
            }
        }
        println!(
            "  {:<20} ok ({} samples x {} format/mode combos)",
            b.kernel.name,
            b.samples.len(),
            sessions.len()
        );
    }

    for b in table5() {
        let program =
            Program::parse_named(b.name, &format!("{}\n{}", b.source, b.sample)).expect("parses");
        for session in &sessions {
            let rep = session.validate(&program, &Inputs::none()).expect("validation harness");
            runs += 1;
            if !rep.holds() {
                violations += 1;
                println!("VIOLATION: {} {} {}", b.name, session.format(), session.mode());
            }
        }
        println!("  {:<20} ok", b.name);
    }

    // Generated programs: Horner50 at a sample point, SerialSum(64).
    for g in [horner(50), serial_sum(64)] {
        let program = Program::from_generated(g);
        let name = program.name().expect("named").to_string();
        let inputs =
            Inputs::positional(program.free().iter().map(|_| Value::num(Rational::ratio(7, 2))));
        for format in formats {
            let session =
                Analyzer::builder().format(format).mode(RoundingMode::TowardPositive).build();
            let rep = session.validate(&program, &inputs).expect("validation harness");
            runs += 1;
            if !rep.holds() {
                violations += 1;
                println!("VIOLATION: {name} {format}");
            }
        }
        println!("  {name:<20} ok");
    }

    println!(
        "\n{runs} validations, {violations} violations, {faults} vacuous (over/underflow -> err)."
    );
    if worst_slack.is_finite() {
        println!("tightest observed bound/measured ratio: {worst_slack:.2}x");
    }
    if violations > 0 {
        std::process::exit(1);
    }
}
