//! Arbitrary-precision unsigned integers.
//!
//! [`BigUint`] stores magnitudes as little-endian `u32` limbs with no
//! trailing zero limbs (so the empty limb vector is the canonical zero).
//! The `u32` limb size keeps schoolbook multiplication and Knuth division
//! simple and fast enough for the grade arithmetic performed by the Λnum
//! checker, where numerators stay small and denominators are powers of two.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// # Examples
///
/// ```
/// use numfuzz_exact::BigUint;
///
/// let a = BigUint::from(10u64).pow(30);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), format!("1{}", "0".repeat(60)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: no trailing zeros.
    limbs: Vec<u32>,
}

const BASE_BITS: u32 = 32;

impl BigUint {
    /// The canonical zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The canonical one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from raw little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Returns the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u32] {
        &self.limbs
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Whether the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * BASE_BITS as u64
                    + (BASE_BITS - top.leading_zeros()) as u64
            }
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / BASE_BITS as u64) as usize;
        let off = (i % BASE_BITS as u64) as u32;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Number of trailing zero bits; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u64 * BASE_BITS as u64 + l.trailing_zeros() as u64);
            }
        }
        None
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// Converts to `u32` if the value fits.
    pub fn to_u32(&self) -> Option<u32> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Approximate conversion to `f64` (round-to-nearest on the top bits).
    ///
    /// Values above `f64::MAX` become `f64::INFINITY`.
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_len();
        if bits == 0 {
            return 0.0;
        }
        if bits <= 64 {
            return self.to_u64().expect("fits in u64") as f64;
        }
        // Take the top 64 bits and scale.
        let shift = bits - 64;
        let top = self.shr_bits(shift).to_u64().expect("top bits fit");
        // Round based on the bit below the kept window (cheap midpoint handling
        // is fine here: this conversion is for display/estimates only).
        let round_up = self.bit(shift - 1);
        let mantissa = if round_up { top.saturating_add(1) } else { top };
        let m = mantissa as f64;
        if shift > 1023 {
            f64::INFINITY
        } else {
            m * 2f64.powi(shift as i32)
        }
    }

    fn cmp_mag(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let s = l as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`, or `None` when `other > self`.
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        if self.cmp_mag(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i64 - other.limbs.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        self.checked_sub(other).expect("BigUint subtraction underflow")
    }

    /// `self * other` (schoolbook; operands in this codebase stay small).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self * m` for a single-limb multiplier.
    pub fn mul_u32(&self, m: u32) -> Self {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            let t = l as u64 * m as u64 + carry;
            out.push(t as u32);
            carry = t >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        BigUint::from_limbs(out)
    }

    /// `self << bits`.
    pub fn shl_bits(&self, bits: u64) -> Self {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / BASE_BITS as u64) as usize;
        let bit_shift = (bits % BASE_BITS as u64) as u32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (BASE_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self >> bits` (floor).
    pub fn shr_bits(&self, bits: u64) -> Self {
        let limb_shift = (bits / BASE_BITS as u64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (bits % BASE_BITS as u64) as u32;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return BigUint::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let lo = src[i] >> bit_shift;
            let hi = src.get(i + 1).copied().unwrap_or(0) << (BASE_BITS - bit_shift);
            out.push(lo | hi);
        }
        BigUint::from_limbs(out)
    }

    /// Divides by a single limb, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u32(&self, d: u32) -> (Self, u32) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | self.limbs[i] as u64;
            out[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        (BigUint::from_limbs(out), rem as u32)
    }

    /// Euclidean division, returning `(quotient, remainder)` with
    /// `self = q * d + r` and `r < d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn div_rem(&self, d: &Self) -> (Self, Self) {
        assert!(!d.is_zero(), "division by zero");
        match self.cmp_mag(d) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if d.limbs.len() == 1 {
            let (q, r) = self.div_rem_u32(d.limbs[0]);
            return (q, BigUint::from(r));
        }
        self.div_rem_knuth(d)
    }

    /// Knuth Algorithm D (base 2^32); requires `d.limbs.len() >= 2` and `self > d`.
    fn div_rem_knuth(&self, d: &Self) -> (Self, Self) {
        let n = d.limbs.len();
        let m = self.limbs.len() - n;
        // D1: normalize so the divisor's top limb has its high bit set.
        let s = d.limbs[n - 1].leading_zeros();
        let vn = d.shl_bits(s as u64).limbs;
        let mut un = self.shl_bits(s as u64).limbs;
        un.resize(self.limbs.len() + 1, 0);
        debug_assert_eq!(vn.len(), n);

        let mut q = vec![0u32; m + 1];
        let b: u64 = 1 << 32;
        for j in (0..=m).rev() {
            // D3: estimate the quotient digit.
            let top2 = ((un[j + n] as u64) << 32) | un[j + n - 1] as u64;
            let mut qhat = top2 / vn[n - 1] as u64;
            let mut rhat = top2 % vn[n - 1] as u64;
            while qhat >= b || qhat * vn[n - 2] as u64 > ((rhat << 32) | un[j + n - 2] as u64) {
                qhat -= 1;
                rhat += vn[n - 1] as u64;
                if rhat >= b {
                    break;
                }
            }
            // D4: multiply and subtract.
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * vn[i] as u64 + carry;
                carry = p >> 32;
                let t = un[i + j] as i64 - (p as u32) as i64 - borrow;
                if t < 0 {
                    un[i + j] = (t + b as i64) as u32;
                    borrow = 1;
                } else {
                    un[i + j] = t as u32;
                    borrow = 0;
                }
            }
            let t = un[j + n] as i64 - carry as i64 - borrow;
            if t < 0 {
                // D6: the estimate was one too large; add the divisor back.
                un[j + n] = (t + b as i64) as u32;
                qhat -= 1;
                let mut c = 0u64;
                for i in 0..n {
                    let t = un[i + j] as u64 + vn[i] as u64 + c;
                    un[i + j] = t as u32;
                    c = t >> 32;
                }
                un[j + n] = un[j + n].wrapping_add(c as u32);
            } else {
                un[j + n] = t as u32;
            }
            q[j] = qhat as u32;
        }
        un.truncate(n);
        let rem = BigUint::from_limbs(un).shr_bits(s as u64);
        (BigUint::from_limbs(q), rem)
    }

    /// Whether the value is a power of two.
    pub fn is_power_of_two(&self) -> bool {
        !self.is_zero() && self.trailing_zeros() == Some(self.bit_len() - 1)
    }

    /// Greatest common divisor.
    ///
    /// Strategy: an O(1) fast path when either operand is a power of two
    /// (the common case here — denominators are overwhelmingly dyadic),
    /// one Euclidean division step whenever the operands are badly
    /// unbalanced (binary GCD would degenerate to O(bits) subtractions),
    /// and binary GCD steps otherwise.
    pub fn gcd(&self, other: &Self) -> Self {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        if self.is_power_of_two() || other.is_power_of_two() {
            let k = self
                .trailing_zeros()
                .expect("nonzero")
                .min(other.trailing_zeros().expect("nonzero"));
            return BigUint::one().shl_bits(k);
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let za = a.trailing_zeros().expect("nonzero");
        let zb = b.trailing_zeros().expect("nonzero");
        let common = za.min(zb);
        a = a.shr_bits(za);
        b = b.shr_bits(zb);
        loop {
            debug_assert!(!a.is_even() && !b.is_even());
            if a.cmp_mag(&b) == Ordering::Less {
                std::mem::swap(&mut a, &mut b);
            }
            // Unbalanced operands: one division collapses the gap.
            if a.bit_len() > b.bit_len() + 32 {
                let (_, r) = a.div_rem(&b);
                if r.is_zero() {
                    return b.shl_bits(common);
                }
                a = r.shr_bits(r.trailing_zeros().expect("nonzero"));
                continue;
            }
            a = a.sub(&b);
            if a.is_zero() {
                return b.shl_bits(common);
            }
            a = a.shr_bits(a.trailing_zeros().expect("nonzero"));
        }
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, exp: u64) -> Self {
        let mut base = self.clone();
        let mut result = BigUint::one();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul(&base);
            }
        }
        result
    }

    /// Integer square root with remainder: returns `(s, r)` with
    /// `s*s + r == self` and `s*s <= self < (s+1)*(s+1)`.
    pub fn isqrt_rem(&self) -> (Self, Self) {
        if self.is_zero() {
            return (BigUint::zero(), BigUint::zero());
        }
        if let Some(v) = self.to_u64() {
            let mut s = (v as f64).sqrt() as u64;
            // Fix up the float estimate at the boundaries.
            while s.checked_mul(s).is_none_or(|sq| sq > v) {
                s -= 1;
            }
            while (s + 1).checked_mul(s + 1).is_some_and(|sq| sq <= v) {
                s += 1;
            }
            return (BigUint::from(s), BigUint::from(v - s * s));
        }
        // Newton's method on integers: x_{k+1} = (x_k + n / x_k) / 2,
        // starting from a power-of-two overestimate, converges from above.
        let bits = self.bit_len();
        let mut x = BigUint::one().shl_bits(bits / 2 + 1);
        loop {
            let (q, _) = self.div_rem(&x);
            let next = x.add(&q).shr_bits(1);
            if next.cmp_mag(&x) != Ordering::Less {
                break;
            }
            x = next;
        }
        // x is now floor(sqrt(self)) (Newton from above lands on it).
        let r = self.sub(&x.mul(&x));
        debug_assert!(r.cmp_mag(&x.mul_u32(2).add(&BigUint::one())) == Ordering::Less);
        (x, r)
    }

    /// Parses a decimal string of ASCII digits.
    pub fn from_decimal_str(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError);
        }
        let mut acc = BigUint::zero();
        for chunk in s.as_bytes().chunks(9) {
            let mut part: u32 = 0;
            for &c in chunk {
                if !c.is_ascii_digit() {
                    return Err(ParseBigUintError);
                }
                part = part * 10 + (c - b'0') as u32;
            }
            acc = acc.mul_u32(10u32.pow(chunk.len() as u32)).add(&BigUint::from(part));
        }
        Ok(acc)
    }

    /// Renders as a decimal string.
    pub fn to_decimal_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u32(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut out = chunks.pop().expect("nonzero").to_string();
        for c in chunks.into_iter().rev() {
            out.push_str(&format!("{c:09}"));
        }
        out
    }
}

/// Error returned when parsing a [`BigUint`] from an invalid string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError;

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal digit string")
    }
}

impl std::error::Error for ParseBigUintError {}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_limbs(vec![v])
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_limbs(vec![v as u32, (v >> 32) as u32])
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u32, (v >> 32) as u32, (v >> 64) as u32, (v >> 96) as u32])
    }
}

impl std::str::FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigUint::from_decimal_str(s)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_mag(other)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal_string())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl std::ops::$trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                BigUint::$inner(self, rhs)
            }
        }
        impl std::ops::$trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                BigUint::$inner(&self, &rhs)
            }
        }
        impl std::ops::$trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                BigUint::$inner(&self, rhs)
            }
        }
    };
}

forward_binop!(Add, add, add);
forward_binop!(Sub, sub, sub);
forward_binop!(Mul, mul, mul);

impl std::ops::Div<&BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl std::ops::Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_decimal_str(s).expect("valid test literal")
    }

    #[test]
    fn zero_and_one_are_canonical() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from(0u32), BigUint::zero());
        assert_eq!(BigUint::from_limbs(vec![0, 0, 0]), BigUint::zero());
        assert_eq!(BigUint::from_limbs(vec![1, 0]), BigUint::one());
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        assert_eq!(a.add(&b), BigUint::from(1u128 << 64));
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = BigUint::from(1u128 << 64);
        assert_eq!(a.sub(&BigUint::one()), BigUint::from(u64::MAX));
        assert_eq!(BigUint::one().checked_sub(&a), None);
    }

    #[test]
    fn mul_matches_decimal() {
        let a = big("123456789012345678901234567890");
        let b = big("987654321098765432109876543210");
        assert_eq!(
            a.mul(&b).to_decimal_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
    }

    #[test]
    fn div_rem_invariant_large() {
        let a = big("340282366920938463463374607431768211457");
        let d = big("18446744073709551629");
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    fn div_rem_needs_addback_case() {
        // Exercises the rare "add back" step (D6) of Knuth's algorithm:
        // dividend = base^2 * (base/2) and divisor slightly above base/2 * base.
        let b32 = BigUint::one().shl_bits(32);
        let u = b32.pow(3).mul_u32(0x8000_0000);
        let v = b32.mul_u32(0x8000_0001);
        let (q, r) = u.div_rem(&v);
        assert!(r < v);
        assert_eq!(q.mul(&v).add(&r), u);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = big("123456789012345678901234567890");
        for bits in [1u64, 31, 32, 33, 64, 95] {
            assert_eq!(a.shl_bits(bits).shr_bits(bits), a);
        }
        assert_eq!(a.shr_bits(1000), BigUint::zero());
    }

    #[test]
    fn gcd_examples() {
        assert_eq!(BigUint::from(12u32).gcd(&BigUint::from(18u32)), BigUint::from(6u32));
        assert_eq!(BigUint::zero().gcd(&BigUint::from(5u32)), BigUint::from(5u32));
        let a = big("123456789012345678901234567890");
        assert_eq!(a.gcd(&a), a);
        // gcd(2^100 * 3, 2^50 * 9) = 2^50 * 3
        let x = BigUint::one().shl_bits(100).mul_u32(3);
        let y = BigUint::one().shl_bits(50).mul_u32(9);
        assert_eq!(x.gcd(&y), BigUint::one().shl_bits(50).mul_u32(3));
    }

    #[test]
    fn pow_small() {
        assert_eq!(BigUint::from(2u32).pow(10), BigUint::from(1024u32));
        assert_eq!(BigUint::from(10u32).pow(0), BigUint::one());
        assert_eq!(BigUint::from(3u32).pow(40).to_decimal_string(), "12157665459056928801");
    }

    #[test]
    fn isqrt_exact_and_inexact() {
        let (s, r) = BigUint::from(144u32).isqrt_rem();
        assert_eq!((s, r), (BigUint::from(12u32), BigUint::zero()));
        let (s, r) = BigUint::from(145u32).isqrt_rem();
        assert_eq!((s, r), (BigUint::from(12u32), BigUint::one()));
        let n = big("123456789012345678901234567890123456789");
        let (s, r) = n.isqrt_rem();
        assert_eq!(s.mul(&s).add(&r), n);
        let s1 = s.add(&BigUint::one());
        assert!(s1.mul(&s1) > n);
    }

    #[test]
    fn decimal_roundtrip() {
        for s in ["0", "1", "999999999", "1000000000", "123456789012345678901234567890"] {
            assert_eq!(big(s).to_decimal_string(), s);
        }
        assert!(BigUint::from_decimal_str("12a").is_err());
        assert!(BigUint::from_decimal_str("").is_err());
    }

    #[test]
    fn to_f64_reasonable() {
        assert_eq!(BigUint::from(12345u32).to_f64(), 12345.0);
        let big_val = BigUint::one().shl_bits(100);
        assert_eq!(big_val.to_f64(), 2f64.powi(100));
        let huge = BigUint::one().shl_bits(2000);
        assert!(huge.to_f64().is_infinite());
    }

    #[test]
    fn bit_accessors() {
        let a = BigUint::from(0b1010u32);
        assert!(!a.bit(0));
        assert!(a.bit(1));
        assert!(a.bit(3));
        assert!(!a.bit(64));
        assert_eq!(a.bit_len(), 4);
        assert_eq!(a.trailing_zeros(), Some(1));
        assert_eq!(BigUint::zero().trailing_zeros(), None);
    }
}
