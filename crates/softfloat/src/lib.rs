//! # numfuzz-softfloat
//!
//! A fully parameterized software implementation of IEEE 754 binary
//! floating point over exact rationals — the floating-point substrate used
//! by the `numfuzz` reproduction of *Numerical Fuzz* (PLDI 2024).
//!
//! * [`Format`] — binary formats `F(p, emax)` with the Table 1 presets
//!   (binary32/64/128) and arbitrary tiny formats for exhaustive testing;
//! * [`Fp`] — NaN / ±∞ / finite values with exact [`Rational`] conversion,
//!   ordinal indexing (for ULP error, eq. 4), and `next_up`/`next_down`;
//! * [`RoundingMode`] and [`Fp::round`] — the four rounding operators of
//!   Table 2, with gradual underflow and IEEE overflow semantics;
//! * [`Fp::round_checked`] — rounding as the partial function
//!   `ρ* : R → R ∪ {⋄}` of Section 7.1 (underflow/overflow are faults);
//! * correctly-rounded `+ − × ÷ √` and FMA, computed exactly and rounded
//!   once (never via host floats).
//!
//! ```
//! use numfuzz_softfloat::{Fp, Format, RoundingMode};
//!
//! // The standard model (paper eq. 2): x ~op~ y = (x op y)(1 + δ), |δ| <= u.
//! let x = Fp::from_f64(0.1);
//! let y = Fp::from_f64(0.7);
//! let z = x.add_fp(&y, RoundingMode::TowardPositive);
//! let exact = x.to_rational().unwrap().add(&y.to_rational().unwrap());
//! let delta = z.to_rational().unwrap().sub(&exact).div(&exact);
//! assert!(delta.abs() <= Format::BINARY64.unit_roundoff(RoundingMode::TowardPositive));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod format;
mod round;
mod value;

pub use format::Format;
pub use round::{RoundingFault, RoundingMode};
pub use value::{Fp, FpClass};

// Re-exported for downstream convenience (metrics, interp).
pub use numfuzz_exact::Rational;
