//! Hash-consed interning arena for the core IR.
//!
//! Types and grades are *hash-consed*: structurally equal values intern to
//! the same [`TyId`]/[`GradeId`], so equality of interned types is a
//! single integer comparison and the subtype/`max`/`min` lattice
//! operations of Figs. 11–12 memoize by id pair. The whole pipeline —
//! lowering, checking, evaluation — passes these ids around instead of
//! cloning [`Ty`] trees.
//!
//! # Id stability
//!
//! The arena is **append-only**: once a node is interned its id never
//! changes and never dangles, even across [`CoreArena::clone`] handles
//! (clones share the same table). Ids are only meaningful relative to the
//! arena that produced them; every [`crate::TermStore`] exposes its arena
//! via [`crate::TermStore::tys`], and stores built from the same
//! [`CoreArena`] handle (one analysis session, in facade terms) may
//! exchange ids freely. Interning the same type twice — in any order,
//! from any handle — always yields the same id, which is what makes the
//! memoized lattice caches sound: a cache entry keyed by `(TyId, TyId)`
//! can never be invalidated by later interning.
//!
//! The arena hands out *owned* [`Ty`]/[`Grade`] values when resolving
//! (the table lives behind a lock so handles are shareable across
//! threads); hot paths never resolve — they walk [`TyNode`]s, which are
//! `Copy`.

use crate::grade::Grade;
use crate::ty::Ty;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Index of a term node in a [`crate::TermStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TermId(pub(crate) u32);

/// A unique variable (fresh per binder).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub(crate) u32);

/// Interned id of a type in a [`CoreArena`]. Two ids from the same arena
/// are equal **iff** the types are structurally equal (O(1) equality).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TyId(u32);

/// Interned id of a grade in a [`CoreArena`] (same equality guarantee).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GradeId(u32);

/// One interned type node: children are ids, so the node itself is `Copy`
/// and structural sharing is maximal (a type DAG, not a tree).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TyNode {
    /// The unit type.
    Unit,
    /// The numeric base type.
    Num,
    /// Tensor product `σ ⊗ τ` (sum metric).
    Tensor(TyId, TyId),
    /// Cartesian product `σ × τ` (max metric).
    With(TyId, TyId),
    /// Sum `σ + τ`.
    Sum(TyId, TyId),
    /// Linear functions `σ ⊸ τ`.
    Lolli(TyId, TyId),
    /// Metric scaling `!_s σ`.
    Bang(GradeId, TyId),
    /// The graded monad `M_u τ`.
    Monad(GradeId, TyId),
}

#[derive(Debug, Default, Clone)]
pub(crate) struct ArenaInner {
    ty_nodes: Vec<TyNode>,
    ty_dedup: HashMap<TyNode, TyId>,
    grades: Vec<Grade>,
    grade_dedup: HashMap<Grade, GradeId>,
    /// Memoized Fig. 12 subtype queries (not symmetric: keyed as asked).
    subtype_cache: HashMap<(TyId, TyId), bool>,
    /// Memoized Fig. 11 `max` (join); `None` records a shape mismatch.
    sup_cache: HashMap<(TyId, TyId), Option<TyId>>,
    /// Memoized Fig. 11 `min` (meet).
    inf_cache: HashMap<(TyId, TyId), Option<TyId>>,
}

/// A shareable hash-consing arena for types and grades. Cloning the
/// handle is O(1) and shares the underlying table (and its memoized
/// lattice caches); see the [module docs](self) for the id-stability
/// guarantees.
#[derive(Clone, Debug)]
pub struct CoreArena {
    inner: Arc<Mutex<ArenaInner>>,
}

impl Default for CoreArena {
    fn default() -> Self {
        CoreArena::new()
    }
}

/// `Unit` and `Num` are pre-interned at fixed slots so the checker can
/// compare against them without taking the lock.
pub(crate) const UNIT_ID: TyId = TyId(0);
pub(crate) const NUM_ID: TyId = TyId(1);

impl CoreArena {
    /// A fresh arena with `unit` and `num` pre-interned.
    pub fn new() -> Self {
        let mut inner = ArenaInner::default();
        inner.ty_nodes.push(TyNode::Unit);
        inner.ty_dedup.insert(TyNode::Unit, UNIT_ID);
        inner.ty_nodes.push(TyNode::Num);
        inner.ty_dedup.insert(TyNode::Num, NUM_ID);
        CoreArena { inner: Arc::new(Mutex::new(inner)) }
    }

    /// Whether two handles share one underlying table (ids interchange).
    pub fn same_arena(&self, other: &CoreArena) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// An opaque identity token for the underlying table: two handles
    /// have equal tokens **iff** [`CoreArena::same_arena`] holds. Useful
    /// as a map key when grouping programs by session arena (the sharded
    /// batch checker keys its per-worker [`CoreArena::deep_clone`]s this
    /// way). The token is only meaningful while at least one handle to
    /// the table is alive.
    pub fn token(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// A deep, independent copy of the current table (new handles to the
    /// copy do share with each other).
    pub fn deep_clone(&self) -> CoreArena {
        CoreArena { inner: Arc::new(Mutex::new(self.lock().clone())) }
    }

    fn lock(&self) -> MutexGuard<'_, ArenaInner> {
        // Interning never panics mid-mutation, so a poisoned lock still
        // guards a consistent table.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Takes the table lock once for a whole pass (the checker holds this
    /// guard for its entire run instead of locking per query). While the
    /// guard is live, the handle's own methods on the same thread would
    /// deadlock — callers must go through the guard exclusively.
    pub(crate) fn inner(&self) -> MutexGuard<'_, ArenaInner> {
        self.lock()
    }

    /// Number of distinct interned types.
    pub fn len(&self) -> usize {
        self.lock().ty_nodes.len()
    }

    /// Whether the arena holds no types at all — always `false` in
    /// practice (`unit` and `num` are pre-interned), provided only to
    /// honor the standard `len`/`is_empty` contract.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The interned `unit` type (no lock taken).
    pub fn unit(&self) -> TyId {
        UNIT_ID
    }

    /// The interned `num` type (no lock taken).
    pub fn num(&self) -> TyId {
        NUM_ID
    }

    /// Interns a single node whose children are already interned.
    pub fn mk(&self, node: TyNode) -> TyId {
        self.lock().mk(node)
    }

    /// `σ ⊗ τ`.
    pub fn tensor(&self, a: TyId, b: TyId) -> TyId {
        self.mk(TyNode::Tensor(a, b))
    }

    /// `σ × τ`.
    pub fn with_ty(&self, a: TyId, b: TyId) -> TyId {
        self.mk(TyNode::With(a, b))
    }

    /// `σ + τ`.
    pub fn sum(&self, a: TyId, b: TyId) -> TyId {
        self.mk(TyNode::Sum(a, b))
    }

    /// `σ ⊸ τ`.
    pub fn lolli(&self, a: TyId, b: TyId) -> TyId {
        self.mk(TyNode::Lolli(a, b))
    }

    /// `!_s σ`.
    pub fn bang(&self, s: GradeId, t: TyId) -> TyId {
        self.mk(TyNode::Bang(s, t))
    }

    /// `M_u τ`.
    pub fn monad(&self, u: GradeId, t: TyId) -> TyId {
        self.mk(TyNode::Monad(u, t))
    }

    /// The node behind an id.
    pub fn node(&self, id: TyId) -> TyNode {
        self.lock().ty_nodes[id.0 as usize]
    }

    /// Interns a [`Ty`] tree bottom-up.
    pub fn intern(&self, t: &Ty) -> TyId {
        self.lock().intern(t)
    }

    /// Reconstructs the [`Ty`] tree behind an id.
    pub fn resolve(&self, id: TyId) -> Ty {
        self.lock().resolve(id)
    }

    /// Interns a grade.
    pub fn intern_grade(&self, g: &Grade) -> GradeId {
        self.lock().intern_grade(g)
    }

    /// The grade behind an id (cloned out of the table).
    pub fn grade(&self, id: GradeId) -> Grade {
        self.lock().grades[id.0 as usize].clone()
    }

    /// The subtype relation of Fig. 12 over interned ids, memoized.
    /// Equal ids short-circuit without touching the cache (reflexivity).
    pub fn subtype(&self, a: TyId, b: TyId) -> bool {
        if a == b {
            return true;
        }
        self.lock().subtype(a, b)
    }

    /// The supertype operation `max` of Fig. 11, memoized. `None` when the
    /// shapes differ.
    pub fn sup(&self, a: TyId, b: TyId) -> Option<TyId> {
        if a == b {
            return Some(a);
        }
        self.lock().sup(a, b)
    }

    /// The subtype operation `min` of Fig. 11 (dual of [`CoreArena::sup`]),
    /// memoized.
    pub fn inf(&self, a: TyId, b: TyId) -> Option<TyId> {
        if a == b {
            return Some(a);
        }
        self.lock().inf(a, b)
    }
}

impl ArenaInner {
    /// The node behind an id.
    pub(crate) fn node(&self, id: TyId) -> TyNode {
        self.ty_nodes[id.0 as usize]
    }

    /// The grade behind an id, borrowed (no clone).
    pub(crate) fn grade(&self, id: GradeId) -> &Grade {
        &self.grades[id.0 as usize]
    }

    pub(crate) fn mk(&mut self, node: TyNode) -> TyId {
        if let Some(&id) = self.ty_dedup.get(&node) {
            return id;
        }
        let id = TyId(self.ty_nodes.len() as u32);
        self.ty_nodes.push(node);
        self.ty_dedup.insert(node, id);
        id
    }

    pub(crate) fn intern(&mut self, t: &Ty) -> TyId {
        // Type trees are shallow (annotation-sized), so recursion is fine
        // here; the hot paths never build `Ty` trees at all.
        let node = match t {
            Ty::Unit => return UNIT_ID,
            Ty::Num => return NUM_ID,
            Ty::Tensor(a, b) => TyNode::Tensor(self.intern(a), self.intern(b)),
            Ty::With(a, b) => TyNode::With(self.intern(a), self.intern(b)),
            Ty::Sum(a, b) => TyNode::Sum(self.intern(a), self.intern(b)),
            Ty::Lolli(a, b) => TyNode::Lolli(self.intern(a), self.intern(b)),
            Ty::Bang(s, t) => {
                let sid = self.intern_grade(s);
                TyNode::Bang(sid, self.intern(t))
            }
            Ty::Monad(u, t) => {
                let uid = self.intern_grade(u);
                TyNode::Monad(uid, self.intern(t))
            }
        };
        self.mk(node)
    }

    pub(crate) fn resolve(&self, id: TyId) -> Ty {
        match self.ty_nodes[id.0 as usize] {
            TyNode::Unit => Ty::Unit,
            TyNode::Num => Ty::Num,
            TyNode::Tensor(a, b) => Ty::tensor(self.resolve(a), self.resolve(b)),
            TyNode::With(a, b) => Ty::with(self.resolve(a), self.resolve(b)),
            TyNode::Sum(a, b) => Ty::sum(self.resolve(a), self.resolve(b)),
            TyNode::Lolli(a, b) => Ty::lolli(self.resolve(a), self.resolve(b)),
            TyNode::Bang(s, t) => Ty::bang(self.grades[s.0 as usize].clone(), self.resolve(t)),
            TyNode::Monad(u, t) => Ty::monad(self.grades[u.0 as usize].clone(), self.resolve(t)),
        }
    }

    pub(crate) fn intern_grade(&mut self, g: &Grade) -> GradeId {
        if let Some(&id) = self.grade_dedup.get(g) {
            return id;
        }
        let id = GradeId(self.grades.len() as u32);
        self.grades.push(g.clone());
        self.grade_dedup.insert(g.clone(), id);
        id
    }

    pub(crate) fn subtype(&mut self, a: TyId, b: TyId) -> bool {
        if a == b {
            return true;
        }
        if let Some(&hit) = self.subtype_cache.get(&(a, b)) {
            return hit;
        }
        let result = match (self.ty_nodes[a.0 as usize], self.ty_nodes[b.0 as usize]) {
            (TyNode::Unit, TyNode::Unit) | (TyNode::Num, TyNode::Num) => true,
            (TyNode::Tensor(a1, b1), TyNode::Tensor(a2, b2))
            | (TyNode::With(a1, b1), TyNode::With(a2, b2))
            | (TyNode::Sum(a1, b1), TyNode::Sum(a2, b2)) => {
                self.subtype(a1, a2) && self.subtype(b1, b2)
            }
            (TyNode::Lolli(a1, b1), TyNode::Lolli(a2, b2)) => {
                self.subtype(a2, a1) && self.subtype(b1, b2)
            }
            (TyNode::Monad(u1, t1), TyNode::Monad(u2, t2)) => {
                self.grade_le(u1, u2) && self.subtype(t1, t2)
            }
            (TyNode::Bang(s1, t1), TyNode::Bang(s2, t2)) => {
                self.grade_le(s2, s1) && self.subtype(t1, t2)
            }
            _ => false,
        };
        self.subtype_cache.insert((a, b), result);
        result
    }

    pub(crate) fn grade_le(&self, a: GradeId, b: GradeId) -> bool {
        a == b || self.grades[a.0 as usize].le(&self.grades[b.0 as usize])
    }

    pub(crate) fn grade_sup(&mut self, a: GradeId, b: GradeId) -> GradeId {
        if a == b {
            return a;
        }
        let g = self.grades[a.0 as usize].sup(&self.grades[b.0 as usize]);
        self.intern_grade(&g)
    }

    pub(crate) fn grade_inf(&mut self, a: GradeId, b: GradeId) -> GradeId {
        if a == b {
            return a;
        }
        let g = self.grades[a.0 as usize].inf(&self.grades[b.0 as usize]);
        self.intern_grade(&g)
    }

    pub(crate) fn sup(&mut self, a: TyId, b: TyId) -> Option<TyId> {
        if a == b {
            return Some(a);
        }
        if let Some(&hit) = self.sup_cache.get(&(a, b)) {
            return hit;
        }
        let result = match (self.ty_nodes[a.0 as usize], self.ty_nodes[b.0 as usize]) {
            (TyNode::Unit, TyNode::Unit) => Some(UNIT_ID),
            (TyNode::Num, TyNode::Num) => Some(NUM_ID),
            (TyNode::Tensor(a1, b1), TyNode::Tensor(a2, b2)) => {
                let (l, r) = (self.sup(a1, a2), self.sup(b1, b2));
                l.zip(r).map(|(l, r)| self.mk(TyNode::Tensor(l, r)))
            }
            (TyNode::With(a1, b1), TyNode::With(a2, b2)) => {
                let (l, r) = (self.sup(a1, a2), self.sup(b1, b2));
                l.zip(r).map(|(l, r)| self.mk(TyNode::With(l, r)))
            }
            (TyNode::Sum(a1, b1), TyNode::Sum(a2, b2)) => {
                let (l, r) = (self.sup(a1, a2), self.sup(b1, b2));
                l.zip(r).map(|(l, r)| self.mk(TyNode::Sum(l, r)))
            }
            // sup of functions narrows the domain (contravariance).
            (TyNode::Lolli(a1, b1), TyNode::Lolli(a2, b2)) => {
                let (l, r) = (self.inf(a1, a2), self.sup(b1, b2));
                l.zip(r).map(|(l, r)| self.mk(TyNode::Lolli(l, r)))
            }
            (TyNode::Monad(u1, t1), TyNode::Monad(u2, t2)) => self.sup(t1, t2).map(|t| {
                let u = self.grade_sup(u1, u2);
                self.mk(TyNode::Monad(u, t))
            }),
            (TyNode::Bang(s1, t1), TyNode::Bang(s2, t2)) => self.sup(t1, t2).map(|t| {
                let s = self.grade_inf(s1, s2);
                self.mk(TyNode::Bang(s, t))
            }),
            _ => None,
        };
        self.sup_cache.insert((a, b), result);
        result
    }

    pub(crate) fn inf(&mut self, a: TyId, b: TyId) -> Option<TyId> {
        if a == b {
            return Some(a);
        }
        if let Some(&hit) = self.inf_cache.get(&(a, b)) {
            return hit;
        }
        let result = match (self.ty_nodes[a.0 as usize], self.ty_nodes[b.0 as usize]) {
            (TyNode::Unit, TyNode::Unit) => Some(UNIT_ID),
            (TyNode::Num, TyNode::Num) => Some(NUM_ID),
            (TyNode::Tensor(a1, b1), TyNode::Tensor(a2, b2)) => {
                let (l, r) = (self.inf(a1, a2), self.inf(b1, b2));
                l.zip(r).map(|(l, r)| self.mk(TyNode::Tensor(l, r)))
            }
            (TyNode::With(a1, b1), TyNode::With(a2, b2)) => {
                let (l, r) = (self.inf(a1, a2), self.inf(b1, b2));
                l.zip(r).map(|(l, r)| self.mk(TyNode::With(l, r)))
            }
            (TyNode::Sum(a1, b1), TyNode::Sum(a2, b2)) => {
                let (l, r) = (self.inf(a1, a2), self.inf(b1, b2));
                l.zip(r).map(|(l, r)| self.mk(TyNode::Sum(l, r)))
            }
            // inf of functions widens the domain (contravariance).
            (TyNode::Lolli(a1, b1), TyNode::Lolli(a2, b2)) => {
                let (l, r) = (self.sup(a1, a2), self.inf(b1, b2));
                l.zip(r).map(|(l, r)| self.mk(TyNode::Lolli(l, r)))
            }
            (TyNode::Monad(u1, t1), TyNode::Monad(u2, t2)) => self.inf(t1, t2).map(|t| {
                let u = self.grade_inf(u1, u2);
                self.mk(TyNode::Monad(u, t))
            }),
            (TyNode::Bang(s1, t1), TyNode::Bang(s2, t2)) => self.inf(t1, t2).map(|t| {
                let s = self.grade_sup(s1, s2);
                self.mk(TyNode::Bang(s, t))
            }),
            _ => None,
        };
        self.inf_cache.insert((a, b), result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfuzz_exact::Rational;

    fn eps() -> Grade {
        Grade::symbol("eps")
    }

    fn two() -> Grade {
        Grade::constant(Rational::from_int(2))
    }

    #[test]
    fn interning_is_structural() {
        let arena = CoreArena::new();
        let t1 = arena.intern(&Ty::lolli(Ty::bang(two(), Ty::Num), Ty::monad(eps(), Ty::Num)));
        let t2 = arena.intern(&Ty::lolli(Ty::bang(two(), Ty::Num), Ty::monad(eps(), Ty::Num)));
        assert_eq!(t1, t2);
        let t3 = arena.intern(&Ty::lolli(Ty::bang(eps(), Ty::Num), Ty::monad(eps(), Ty::Num)));
        assert_ne!(t1, t3);
        // Shared handles intern to the same ids.
        let handle = arena.clone();
        assert!(handle.same_arena(&arena));
        assert_eq!(handle.intern(&Ty::monad(eps(), Ty::Num)), {
            let gid = arena.intern_grade(&eps());
            arena.monad(gid, arena.num())
        });
    }

    #[test]
    fn resolve_round_trips() {
        let arena = CoreArena::new();
        let t =
            Ty::with(Ty::tensor(Ty::Num, Ty::bool()), Ty::monad(eps(), Ty::bang(two(), Ty::Unit)));
        let id = arena.intern(&t);
        assert_eq!(arena.resolve(id), t);
        assert_eq!(arena.intern(&arena.resolve(id)), id);
    }

    #[test]
    fn lattice_ops_agree_with_tree_impls() {
        let arena = CoreArena::new();
        let a = Ty::monad(eps(), Ty::bang(two(), Ty::Num));
        let b = Ty::monad(two(), Ty::bang(eps(), Ty::Num));
        let (ia, ib) = (arena.intern(&a), arena.intern(&b));
        assert_eq!(arena.subtype(ia, ib), a.subtype(&b));
        assert_eq!(arena.sup(ia, ib).map(|i| arena.resolve(i)), a.sup(&b));
        assert_eq!(arena.inf(ia, ib).map(|i| arena.resolve(i)), a.inf(&b));
        // Shape mismatch memoizes as None.
        let unit = arena.unit();
        assert_eq!(arena.sup(ia, unit), None);
        assert_eq!(arena.sup(ia, unit), None);
    }

    #[test]
    fn monad_grades_grow_bang_grades_shrink() {
        let arena = CoreArena::new();
        let geps = arena.intern_grade(&eps());
        let g2eps = arena.intern_grade(&eps().scale(&Rational::from_int(2)));
        let m1 = arena.monad(geps, arena.num());
        let m2 = arena.monad(g2eps, arena.num());
        assert!(arena.subtype(m1, m2));
        assert!(!arena.subtype(m2, m1));
        let gtwo = arena.intern_grade(&two());
        let gone = arena.intern_grade(&Grade::one());
        let b2 = arena.bang(gtwo, arena.num());
        let b1 = arena.bang(gone, arena.num());
        assert!(arena.subtype(b2, b1));
        assert!(!arena.subtype(b1, b2));
    }
}
