// Cartesian projection discards its other component, so it has no
// backward-error interpretation (Bean's first-order fragment).
function first (x: num) (y: num) : num { fst (|x, y|) }
first 1 2
