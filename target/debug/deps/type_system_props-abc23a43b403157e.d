/root/repo/target/debug/deps/type_system_props-abc23a43b403157e.d: crates/core/tests/type_system_props.rs

/root/repo/target/debug/deps/type_system_props-abc23a43b403157e: crates/core/tests/type_system_props.rs

crates/core/tests/type_system_props.rs:
