/root/repo/target/release/deps/validate-d3508e409366b55f.d: crates/bench/src/bin/validate.rs

/root/repo/target/release/deps/validate-d3508e409366b55f: crates/bench/src/bin/validate.rs

crates/bench/src/bin/validate.rs:
