/root/repo/target/debug/deps/numfuzz_interp-c3593949caf4d689.d: crates/interp/src/lib.rs crates/interp/src/eval.rs crates/interp/src/rounding.rs crates/interp/src/smallstep.rs crates/interp/src/soundness.rs crates/interp/src/value.rs

/root/repo/target/debug/deps/libnumfuzz_interp-c3593949caf4d689.rlib: crates/interp/src/lib.rs crates/interp/src/eval.rs crates/interp/src/rounding.rs crates/interp/src/smallstep.rs crates/interp/src/soundness.rs crates/interp/src/value.rs

/root/repo/target/debug/deps/libnumfuzz_interp-c3593949caf4d689.rmeta: crates/interp/src/lib.rs crates/interp/src/eval.rs crates/interp/src/rounding.rs crates/interp/src/smallstep.rs crates/interp/src/soundness.rs crates/interp/src/value.rs

crates/interp/src/lib.rs:
crates/interp/src/eval.rs:
crates/interp/src/rounding.rs:
crates/interp/src/smallstep.rs:
crates/interp/src/soundness.rs:
crates/interp/src/value.rs:
