/root/repo/target/release/deps/numfuzz_interp-d66c95300c580ce4.d: crates/interp/src/lib.rs crates/interp/src/eval.rs crates/interp/src/rounding.rs crates/interp/src/smallstep.rs crates/interp/src/soundness.rs crates/interp/src/value.rs

/root/repo/target/release/deps/libnumfuzz_interp-d66c95300c580ce4.rlib: crates/interp/src/lib.rs crates/interp/src/eval.rs crates/interp/src/rounding.rs crates/interp/src/smallstep.rs crates/interp/src/soundness.rs crates/interp/src/value.rs

/root/repo/target/release/deps/libnumfuzz_interp-d66c95300c580ce4.rmeta: crates/interp/src/lib.rs crates/interp/src/eval.rs crates/interp/src/rounding.rs crates/interp/src/smallstep.rs crates/interp/src/soundness.rs crates/interp/src/value.rs

crates/interp/src/lib.rs:
crates/interp/src/eval.rs:
crates/interp/src/rounding.rs:
crates/interp/src/smallstep.rs:
crates/interp/src/soundness.rs:
crates/interp/src/value.rs:
