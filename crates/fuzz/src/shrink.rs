//! Greedy structural shrinking of failing programs.
//!
//! The shrinker proposes progressively simpler variants of a failing
//! [`FuzzProgram`] and keeps any variant on which the caller's predicate
//! still reports the *same kind* of failure (the predicate re-parses and
//! re-checks, so well-typedness is preserved dynamically rather than by
//! construction — a shrink step that breaks typing changes the failure
//! kind and is rejected). The result is a local minimum: no single edit
//! from the catalog below keeps the failure alive.
//!
//! Edit catalog, applied in order, to a fixpoint or budget exhaustion:
//!
//! 1. drop a `function` definition nothing references;
//! 2. drop a statement whose variable is unused downstream;
//! 3. inline one arm of an `if`/`case` (tail or bound position);
//! 4. replace a numeric subexpression by the constant `2`;
//! 5. hoist a child over its parent operation (`mul (a, b)` → `a`);
//! 6. replace a monadic call by `rnd 2`;
//! 7. shrink a constant to `1`.

use crate::ast::{Block, FnBody, FuzzProgram, MExpr, PExpr, Stmt};
use std::collections::HashSet;

/// Shrinks `program` while `still_fails` accepts the candidate, testing
/// at most `budget` candidates. Returns the smallest accepted program.
pub fn shrink(
    program: &FuzzProgram,
    still_fails: &mut dyn FnMut(&FuzzProgram) -> bool,
    budget: usize,
) -> FuzzProgram {
    let mut cur = program.clone();
    let mut tests = 0usize;
    'outer: loop {
        for cand in candidates(&cur) {
            if tests >= budget {
                break 'outer;
            }
            tests += 1;
            if still_fails(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    cur
}

/// All single-step simplifications of `p`, most aggressive first.
fn candidates(p: &FuzzProgram) -> Vec<FuzzProgram> {
    let mut out = Vec::new();

    // 1. Drop an unreferenced function.
    for i in 0..p.fns.len() {
        let name = &p.fns[i].name;
        let referenced = p.fns.iter().enumerate().any(|(j, f)| j != i && fn_refs(f, name))
            || block_refs(&p.main, name);
        if !referenced {
            let mut q = p.clone();
            q.fns.remove(i);
            out.push(q);
        }
    }

    // 2. Drop a dead statement (per block, per index).
    for target in 0.. {
        let mut q = p.clone();
        if !edit_nth_block(&mut q, target, &mut |b| drop_dead_stmt(b)) {
            break;
        }
        out.push(q);
    }

    // 3. Inline one arm of a conditional.
    for left in [true, false] {
        for target in 0.. {
            let mut q = p.clone();
            if !edit_nth_block(&mut q, target, &mut |b| inline_ctrl(b, left)) {
                break;
            }
            out.push(q);
        }
    }

    // 4/5/7. Expression-level edits.
    type PExprEdit<'a> = &'a dyn Fn(&PExpr) -> Option<PExpr>;
    let pexpr_edits: [PExprEdit; 4] = [
        &|e| num_like(e).then(|| PExpr::c(2)),
        &|e| hoist_child(e, true),
        &|e| hoist_child(e, false),
        &|e| match e {
            PExpr::Const(q) if *q != numfuzz_exact::Rational::one() => Some(PExpr::c(1)),
            _ => None,
        },
    ];
    for edit in pexpr_edits {
        for target in 0.. {
            let mut q = p.clone();
            if !edit_nth_pexpr(&mut q, target, edit) {
                break;
            }
            out.push(q);
        }
    }

    // 6. Collapse monadic calls.
    for target in 0.. {
        let mut q = p.clone();
        let applied = edit_nth_mexpr(&mut q, target, &|m| match m {
            MExpr::CallM(..) => Some(MExpr::Rnd(PExpr::c(2))),
            _ => None,
        });
        if !applied {
            break;
        }
        out.push(q);
    }

    out
}

fn num_like(e: &PExpr) -> bool {
    matches!(
        e,
        PExpr::Op1(..)
            | PExpr::Op2(..)
            | PExpr::OpPair(..)
            | PExpr::Fst(_)
            | PExpr::Snd(_)
            | PExpr::Call(..)
    )
}

fn hoist_child(e: &PExpr, first: bool) -> Option<PExpr> {
    match e {
        PExpr::Op2(_, a, b) => Some((*if first { a.clone() } else { b.clone() }).clone()),
        PExpr::Op1(_, a) => first.then(|| (**a).clone()),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Name-reference scans
// ---------------------------------------------------------------------

fn fn_refs(f: &crate::ast::FnDef, name: &str) -> bool {
    match &f.body {
        FnBody::Pure(b) => b.stmts.iter().any(|s| stmt_refs(s, name)) || pexpr_refs(&b.tail, name),
        FnBody::Monadic(b) => block_refs(b, name),
    }
}

fn block_refs(b: &Block, name: &str) -> bool {
    b.stmts.iter().any(|s| stmt_refs(s, name)) || mexpr_refs(&b.tail, name)
}

fn stmt_refs(s: &Stmt, name: &str) -> bool {
    match s {
        Stmt::Pure(_, e) => pexpr_refs(e, name),
        Stmt::StoreM(_, m) | Stmt::Bind(_, m) => mexpr_refs(m, name),
        Stmt::Unbox(_, p) => p == name,
    }
}

fn mexpr_refs(m: &MExpr, name: &str) -> bool {
    match m {
        MExpr::Rnd(e) | MExpr::Ret(e) => pexpr_refs(e, name),
        MExpr::CallM(f, args) => f == name || args.iter().any(|a| pexpr_refs(a, name)),
        MExpr::StoredM(x) => x == name,
        MExpr::If(c, a, b) => pexpr_refs(c, name) || block_refs(a, name) || block_refs(b, name),
        MExpr::CaseSum(s, _, a, _, b) => {
            pexpr_refs(s, name) || block_refs(a, name) || block_refs(b, name)
        }
    }
}

fn pexpr_refs(e: &PExpr, name: &str) -> bool {
    match e {
        PExpr::Var(x) | PExpr::OpPair(_, x) => x == name,
        PExpr::Const(_) | PExpr::True | PExpr::False => false,
        PExpr::Op1(_, a)
        | PExpr::Fst(a)
        | PExpr::Snd(a)
        | PExpr::Inl(a)
        | PExpr::Inr(a)
        | PExpr::BoxC(_, a)
        | PExpr::BoxInf(a)
        | PExpr::IsPos(a) => pexpr_refs(a, name),
        PExpr::Op2(_, a, b) | PExpr::PairT(a, b) | PExpr::PairW(a, b) | PExpr::IsGt(a, b) => {
            pexpr_refs(a, name) || pexpr_refs(b, name)
        }
        PExpr::Call(f, args) => f == name || args.iter().any(|a| pexpr_refs(a, name)),
    }
}

// ---------------------------------------------------------------------
// Block-level edits
// ---------------------------------------------------------------------

/// Removes the first statement of `b` whose variable is unused in the
/// rest of the block.
fn drop_dead_stmt(b: &mut Block) -> bool {
    for i in 0..b.stmts.len() {
        let var = match &b.stmts[i] {
            Stmt::Pure(x, _) | Stmt::StoreM(x, _) | Stmt::Bind(x, _) | Stmt::Unbox(x, _) => {
                x.clone()
            }
        };
        let mut used = false;
        for s in &b.stmts[i + 1..] {
            used |= stmt_refs(s, &var);
        }
        used |= mexpr_refs(&b.tail, &var);
        if !used {
            b.stmts.remove(i);
            return true;
        }
    }
    false
}

/// Replaces the first conditional in `b` (tail or bound position) with
/// its chosen arm, inlining the arm's statements. Case-bound variables
/// are given the constant `2`.
fn inline_ctrl(b: &mut Block, left: bool) -> bool {
    // Tail position.
    if matches!(b.tail, MExpr::If(..) | MExpr::CaseSum(..)) {
        let taken = std::mem::replace(&mut b.tail, MExpr::Ret(PExpr::c(1)));
        let (pre, arm) = split_ctrl(taken, left);
        b.stmts.extend(pre);
        b.stmts.extend(arm.stmts);
        b.tail = arm.tail;
        return true;
    }
    // Bound positions.
    for i in 0..b.stmts.len() {
        let is_ctrl = matches!(
            &b.stmts[i],
            Stmt::StoreM(_, MExpr::If(..) | MExpr::CaseSum(..))
                | Stmt::Bind(_, MExpr::If(..) | MExpr::CaseSum(..))
        );
        if !is_ctrl {
            continue;
        }
        let (x, m, bind) = match b.stmts.remove(i) {
            Stmt::StoreM(x, m) => (x, m, false),
            Stmt::Bind(x, m) => (x, m, true),
            _ => unreachable!("matched above"),
        };
        let (pre, arm) = split_ctrl(m, left);
        let mut insert = pre;
        insert.extend(arm.stmts);
        insert.push(if bind { Stmt::Bind(x, arm.tail) } else { Stmt::StoreM(x, arm.tail) });
        b.stmts.splice(i..i, insert);
        return true;
    }
    false
}

/// Splits a conditional into (statements to prepend, chosen arm block).
fn split_ctrl(m: MExpr, left: bool) -> (Vec<Stmt>, Block) {
    match m {
        MExpr::If(_, a, b) => (Vec::new(), if left { *a } else { *b }),
        MExpr::CaseSum(_, x, a, y, b) => {
            let (var, arm) = if left { (x, *a) } else { (y, *b) };
            (vec![Stmt::Pure(var, PExpr::c(2))], arm)
        }
        other => unreachable!("split_ctrl on {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Indexed traversals
// ---------------------------------------------------------------------

/// Applies `f` to the `target`-th block (in a fixed traversal order) on
/// which it reports success; returns whether any block consumed the
/// index.
fn edit_nth_block(
    p: &mut FuzzProgram,
    target: usize,
    f: &mut dyn FnMut(&mut Block) -> bool,
) -> bool {
    let mut seen = 0usize;
    let mut blocks: Vec<&mut Block> = Vec::new();
    for d in &mut p.fns {
        if let FnBody::Monadic(b) = &mut d.body {
            blocks.push(b);
        }
    }
    blocks.push(&mut p.main);
    // Breadth-first over nested arms.
    let mut queue = blocks;
    while let Some(b) = queue.pop() {
        // Probe on a clone so unsuccessful blocks don't consume indexes.
        let mut probe = b.clone();
        if f(&mut probe) {
            if seen == target {
                *b = probe;
                return true;
            }
            seen += 1;
        }
        for s in &mut b.stmts {
            if let Stmt::StoreM(_, m) | Stmt::Bind(_, m) = s {
                push_arm_blocks(m, &mut queue);
            }
        }
        push_arm_blocks(&mut b.tail, &mut queue);
    }
    false
}

fn push_arm_blocks<'a>(m: &'a mut MExpr, queue: &mut Vec<&'a mut Block>) {
    if let MExpr::If(_, a, b) | MExpr::CaseSum(_, _, a, _, b) = m {
        queue.push(a);
        queue.push(b);
    }
}

/// Applies `edit` to the `target`-th applicable `PExpr` node.
fn edit_nth_pexpr(
    p: &mut FuzzProgram,
    target: usize,
    edit: &dyn Fn(&PExpr) -> Option<PExpr>,
) -> bool {
    let mut seen = 0usize;
    let mut done = false;
    visit_pexprs(p, &mut |e| {
        if done {
            return;
        }
        if let Some(repl) = edit(e) {
            if seen == target {
                *e = repl;
                done = true;
            }
            seen += 1;
        }
    });
    done
}

/// Applies `edit` to the `target`-th applicable `MExpr` node.
fn edit_nth_mexpr(
    p: &mut FuzzProgram,
    target: usize,
    edit: &dyn Fn(&MExpr) -> Option<MExpr>,
) -> bool {
    let mut seen = 0usize;
    let mut done = false;
    visit_mexprs(p, &mut |m| {
        if done {
            return;
        }
        if let Some(repl) = edit(m) {
            if seen == target {
                *m = repl;
                done = true;
            }
            seen += 1;
        }
    });
    done
}

fn visit_pexprs(p: &mut FuzzProgram, f: &mut dyn FnMut(&mut PExpr)) {
    for d in &mut p.fns {
        match &mut d.body {
            FnBody::Pure(b) => {
                for s in &mut b.stmts {
                    visit_stmt_pexprs(s, f);
                }
                visit_pexpr(&mut b.tail, f);
            }
            FnBody::Monadic(b) => visit_block_pexprs(b, f),
        }
    }
    visit_block_pexprs(&mut p.main, f);
}

fn visit_block_pexprs(b: &mut Block, f: &mut dyn FnMut(&mut PExpr)) {
    for s in &mut b.stmts {
        visit_stmt_pexprs(s, f);
    }
    visit_mexpr_pexprs(&mut b.tail, f);
}

fn visit_stmt_pexprs(s: &mut Stmt, f: &mut dyn FnMut(&mut PExpr)) {
    match s {
        Stmt::Pure(_, e) => visit_pexpr(e, f),
        Stmt::StoreM(_, m) | Stmt::Bind(_, m) => visit_mexpr_pexprs(m, f),
        Stmt::Unbox(..) => {}
    }
}

fn visit_mexpr_pexprs(m: &mut MExpr, f: &mut dyn FnMut(&mut PExpr)) {
    match m {
        MExpr::Rnd(e) | MExpr::Ret(e) => visit_pexpr(e, f),
        MExpr::CallM(_, args) => {
            for a in args {
                visit_pexpr(a, f);
            }
        }
        MExpr::StoredM(_) => {}
        MExpr::If(c, a, b) => {
            visit_pexpr(c, f);
            visit_block_pexprs(a, f);
            visit_block_pexprs(b, f);
        }
        MExpr::CaseSum(s, _, a, _, b) => {
            visit_pexpr(s, f);
            visit_block_pexprs(a, f);
            visit_block_pexprs(b, f);
        }
    }
}

fn visit_pexpr(e: &mut PExpr, f: &mut dyn FnMut(&mut PExpr)) {
    f(e);
    match e {
        PExpr::Const(_) | PExpr::Var(_) | PExpr::OpPair(..) | PExpr::True | PExpr::False => {}
        PExpr::Op1(_, a)
        | PExpr::Fst(a)
        | PExpr::Snd(a)
        | PExpr::Inl(a)
        | PExpr::Inr(a)
        | PExpr::BoxC(_, a)
        | PExpr::BoxInf(a)
        | PExpr::IsPos(a) => visit_pexpr(a, f),
        PExpr::Op2(_, a, b) | PExpr::PairT(a, b) | PExpr::PairW(a, b) | PExpr::IsGt(a, b) => {
            visit_pexpr(a, f);
            visit_pexpr(b, f);
        }
        PExpr::Call(_, args) => {
            for a in args {
                visit_pexpr(a, f);
            }
        }
    }
}

fn visit_mexprs(p: &mut FuzzProgram, f: &mut dyn FnMut(&mut MExpr)) {
    for d in &mut p.fns {
        if let FnBody::Monadic(b) = &mut d.body {
            visit_block_mexprs(b, f);
        }
    }
    visit_block_mexprs(&mut p.main, f);
}

fn visit_block_mexprs(b: &mut Block, f: &mut dyn FnMut(&mut MExpr)) {
    for s in &mut b.stmts {
        if let Stmt::StoreM(_, m) | Stmt::Bind(_, m) = s {
            visit_mexpr(m, f);
        }
    }
    visit_mexpr(&mut b.tail, f);
}

fn visit_mexpr(m: &mut MExpr, f: &mut dyn FnMut(&mut MExpr)) {
    f(m);
    if let MExpr::If(_, a, b) | MExpr::CaseSum(_, _, a, _, b) = m {
        visit_block_mexprs(a, f);
        visit_block_mexprs(b, f);
    }
}

/// The set of variable/function names a program mentions anywhere —
/// useful for tests asserting shrink quality.
pub fn mentioned_names(p: &FuzzProgram) -> HashSet<String> {
    let mut names = HashSet::new();
    let mut q = p.clone();
    visit_pexprs(&mut q, &mut |e| match e {
        PExpr::Var(x) | PExpr::OpPair(_, x) | PExpr::Call(x, _) => {
            names.insert(x.clone());
        }
        _ => {}
    });
    visit_mexprs(&mut q, &mut |m| match m {
        MExpr::CallM(x, _) | MExpr::StoredM(x) => {
            names.insert(x.clone());
        }
        _ => {}
    });
    names
}
