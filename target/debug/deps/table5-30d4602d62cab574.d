/root/repo/target/debug/deps/table5-30d4602d62cab574.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-30d4602d62cab574: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
