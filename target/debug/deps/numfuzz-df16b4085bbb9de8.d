/root/repo/target/debug/deps/numfuzz-df16b4085bbb9de8.d: src/lib.rs src/analyzer.rs src/compat.rs src/diag.rs src/program.rs

/root/repo/target/debug/deps/libnumfuzz-df16b4085bbb9de8.rlib: src/lib.rs src/analyzer.rs src/compat.rs src/diag.rs src/program.rs

/root/repo/target/debug/deps/libnumfuzz-df16b4085bbb9de8.rmeta: src/lib.rs src/analyzer.rs src/compat.rs src/diag.rs src/program.rs

src/lib.rs:
src/analyzer.rs:
src/compat.rs:
src/diag.rs:
src/program.rs:
