function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
function divfp (xy: (num, num)) : M[eps]num { s = div xy; rnd s }
function x_by_xy (x: ![2]num) (y: num) : M[2*eps]num {
    let [x1] = x;
    let s = addfp (| x1, y |);
    divfp (x1, s)
}
x_by_xy [0.1]{2} 1000
