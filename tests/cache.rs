//! The content-addressed result cache, end to end: hit/miss accounting,
//! key sensitivity to program content and analyzer configuration, LRU
//! eviction under a byte budget, and — the soundness property — byte
//! identity between cached and uncached analysis across job counts.

use numfuzz::prelude::*;

fn cached_analyzer(budget: usize) -> (Analyzer, AnalysisCache) {
    let cache = AnalysisCache::with_budget(budget);
    (Analyzer::builder().cache(cache.clone()).build(), cache)
}

#[test]
fn hit_and_miss_accounting() {
    let (analyzer, cache) = cached_analyzer(1 << 20);
    let program = analyzer.parse("rnd 1.5").unwrap();

    analyzer.check_cached(&program).unwrap();
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.insertions), (0, 1, 1));

    analyzer.check_cached(&program).unwrap();
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (1, 1));

    // bound is keyed separately: first call misses (and hits the stored
    // check on its way), later calls hit directly.
    analyzer.bound_cached(&program).unwrap();
    let s = cache.stats();
    assert_eq!(s.misses, 2, "bound key is distinct from check key");
    analyzer.bound_cached(&program).unwrap();
    assert_eq!(cache.stats().hits, s.hits + 1);
}

#[test]
fn content_addressing_ignores_names_and_binder_names() {
    let (analyzer, cache) = cached_analyzer(1 << 20);
    // Same content under different file names: one analysis.
    let a = analyzer.parse_named("a.nf", "s = mul (2, 2); rnd s").unwrap();
    let b = analyzer.parse_named("b.nf", "s = mul (2, 2); rnd s").unwrap();
    // Alpha-renamed binder: still the same content address.
    let c = analyzer.parse_named("c.nf", "t = mul (2, 2); rnd t").unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.fingerprint(), c.fingerprint());

    analyzer.check_cached(&a).unwrap();
    analyzer.check_cached(&b).unwrap();
    analyzer.check_cached(&c).unwrap();
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (2, 1), "one analysis served all three");
}

#[test]
fn function_names_are_content_not_presentation() {
    // FnReport.name (and therefore check/bound output) carries the
    // `function` binder's spelling — renamed functions may not share a
    // cache entry.
    let (analyzer, cache) = cached_analyzer(1 << 20);
    let f = analyzer.parse("function f (x: num) : M[eps]num { rnd x }\nf 2").unwrap();
    let g = analyzer.parse("function g (x: num) : M[eps]num { rnd x }\ng 2").unwrap();
    assert_ne!(f.fingerprint(), g.fingerprint());
    let tf = analyzer.check_cached(&f).unwrap();
    let tg = analyzer.check_cached(&g).unwrap();
    assert_eq!(tf.functions()[0].name, "f");
    assert_eq!(tg.functions()[0].name, "g", "g must not replay f's report");
    assert_eq!(cache.stats().hits, 0);
    // But each replays itself.
    assert_eq!(analyzer.check_cached(&g).unwrap().functions()[0].name, "g");
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn alpha_renamed_errors_render_their_own_source() {
    // Structurally identical ill-typed programs whose *sources* differ
    // (renamed let binder) share a structural fingerprint, but the
    // diagnostic quotes the source — the Err outcome may not be
    // replayed across them.
    let (analyzer, cache) = cached_analyzer(1 << 20);
    let a = analyzer.parse("s = mul (true, 2); rnd s").unwrap();
    let b = analyzer.parse("t = mul (true, 2); rnd t").unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint(), "alpha-equivalent content");
    assert_ne!(a.display_fingerprint(), b.display_fingerprint(), "different rendering");
    let da = analyzer.check_cached(&a).unwrap_err();
    let db = analyzer.check_cached(&b).unwrap_err();
    assert!(da.snippet.as_deref().unwrap().contains("rnd s"), "{da:?}");
    assert!(db.snippet.as_deref().unwrap().contains("rnd t"), "b must not replay a's snippet");
    assert_eq!(cache.stats().hits, 0, "display mismatch is a miss, not a hit");
    // Identical source still replays.
    let b2 = analyzer.parse("t = mul (true, 2); rnd t").unwrap();
    let db2 = analyzer.check_cached(&b2).unwrap_err();
    assert_eq!(db2.snippet, db.snippet);
    assert_eq!(cache.stats().hits, 1);

    // The same guard holds inside a deduplicated batch: the duplicate of
    // `a` fans out a's rendering, while `b` is analyzed separately.
    let (analyzer, _) = cached_analyzer(1 << 20);
    let batch = vec![
        analyzer.parse("s = mul (true, 2); rnd s").unwrap(),
        analyzer.parse("t = mul (true, 2); rnd t").unwrap(),
        analyzer.parse("s = mul (true, 2); rnd s").unwrap(),
    ];
    for jobs in [1, 2] {
        let (results, _) = analyzer.check_batch_sharded(&batch, jobs);
        let snippets: Vec<&str> =
            results.iter().map(|r| r.as_ref().unwrap_err().snippet.as_deref().unwrap()).collect();
        assert!(snippets[0].contains("rnd s"), "jobs={jobs}");
        assert!(snippets[1].contains("rnd t"), "jobs={jobs}: own source, not the owner's");
        assert!(snippets[2].contains("rnd s"), "jobs={jobs}");
    }
}

#[test]
fn cached_diagnostics_carry_each_programs_own_name() {
    let (analyzer, cache) = cached_analyzer(1 << 20);
    let a = analyzer.parse_named("first.nf", "2 3").unwrap();
    let b = analyzer.parse_named("second.nf", "2 3").unwrap();
    let da = analyzer.check_cached(&a).unwrap_err();
    let db = analyzer.check_cached(&b).unwrap_err();
    assert_eq!(cache.stats().hits, 1, "identical ill-typed program replays from cache");
    assert_eq!(da.file.as_deref(), Some("first.nf"));
    assert_eq!(db.file.as_deref(), Some("second.nf"), "replayed diagnostic is re-localized");
    assert_eq!(da.code, db.code);
    assert_eq!(da.message, db.message);
}

#[test]
fn key_is_sensitive_to_rounding_mode_format_and_instantiation() {
    let cache = AnalysisCache::with_budget(1 << 20);
    let base = Analyzer::builder().cache(cache.clone()).build();
    let rd = Analyzer::builder().mode(RoundingMode::TowardNegative).cache(cache.clone()).build();
    let b32 = Analyzer::builder().format(Format::BINARY32).cache(cache.clone()).build();
    let abs =
        Analyzer::builder().signature(Instantiation::AbsoluteError).cache(cache.clone()).build();

    let src = "rnd 1.5";
    let program = base.parse(src).unwrap();
    base.bound_cached(&program).unwrap();
    let after_base = cache.stats();

    // Same source under round-toward−∞: must miss, and the bound really
    // differs (RN/RD halve vs. full unit roundoff is mode-specific).
    rd.bound_cached(&rd.parse(src).unwrap()).unwrap();
    let s = cache.stats();
    assert_eq!(s.hits, after_base.hits, "different mode may not hit");
    assert!(s.misses > after_base.misses);

    // Same source in binary32: must miss.
    let before = cache.stats();
    b32.bound_cached(&b32.parse(src).unwrap()).unwrap();
    let s = cache.stats();
    assert_eq!(s.hits, before.hits, "different format may not hit");

    // Same source under the absolute-error instantiation: must miss.
    let before = cache.stats();
    abs.bound_cached(&abs.parse(src).unwrap()).unwrap();
    let s = cache.stats();
    assert_eq!(s.hits, before.hits, "different instantiation may not hit");

    // And each configuration hits itself on replay.
    let before = cache.stats();
    rd.bound_cached(&rd.parse(src).unwrap()).unwrap();
    b32.bound_cached(&b32.parse(src).unwrap()).unwrap();
    assert_eq!(cache.stats().hits, before.hits + 2);
}

#[test]
fn lru_eviction_under_a_tiny_budget() {
    // A budget big enough for roughly one entry: every new program evicts
    // the previous one.
    let (analyzer, cache) = cached_analyzer(400);
    let sources: Vec<String> = (1..=6).map(|i| format!("rnd {i}.5")).collect();
    for src in &sources {
        analyzer.check_cached(&analyzer.parse(src).unwrap()).unwrap();
    }
    let s = cache.stats();
    assert_eq!(s.misses, 6);
    assert!(s.evictions >= 5, "tiny budget must evict: {s:?}");
    assert!(s.bytes <= s.budget, "residency respects the budget: {s:?}");
    assert!(s.entries <= 2, "at most a couple of entries fit: {s:?}");

    // The earliest program was evicted — checking it again misses.
    let before = cache.stats();
    analyzer.check_cached(&analyzer.parse(&sources[0]).unwrap()).unwrap();
    let s = cache.stats();
    assert_eq!(s.hits, before.hits);
    assert_eq!(s.misses, before.misses + 1);
}

/// Renders a batch outcome the way the CLI does, for byte comparison.
fn render_all(analyzer: &Analyzer, results: &[Result<Typed, Diagnostic>]) -> Vec<String> {
    results
        .iter()
        .map(|r| match r {
            Ok(typed) => match analyzer.bound_of_ty(typed.ty()) {
                Some(b) => format!("{} — {b}", typed.ty()),
                None => typed.ty().to_string(),
            },
            Err(d) => d.render(),
        })
        .collect()
}

#[test]
fn cached_and_uncached_batches_are_byte_identical_across_jobs() {
    // A corpus with well-typed programs, ill-typed programs, and
    // duplicates (same content, different names).
    let sources = [
        ("a.nf", "s = mul (2, 2); rnd s"),
        ("bad1.nf", "2 3"),
        ("b.nf", "function f (x: num) : M[eps]num { rnd x }\nf 2"),
        ("dup-of-a.nf", "s = mul (2, 2); rnd s"),
        ("bad2.nf", "2 3"),
        ("c.nf", "rnd (|1, 2|)"),
        ("dup-of-a-again.nf", "s = mul (2, 2); rnd s"),
    ];
    let plain = Analyzer::new();
    let programs: Vec<Program> =
        sources.iter().map(|(n, s)| plain.parse_named(n, s).unwrap()).collect();
    let expected = render_all(&plain, &plain.check_all(&programs));
    // Uncached diagnostics name each program's own file.
    let uncached = plain.check_all(&programs);
    assert_eq!(uncached[1].as_ref().unwrap_err().file.as_deref(), Some("bad1.nf"));
    assert_eq!(uncached[4].as_ref().unwrap_err().file.as_deref(), Some("bad2.nf"));

    for jobs in [1, 2, 4] {
        let (analyzer, cache) = cached_analyzer(1 << 20);
        let programs: Vec<Program> =
            sources.iter().map(|(n, s)| analyzer.parse_named(n, s).unwrap()).collect();
        // First batch: only distinct programs are analyzed.
        let (results, _) = analyzer.check_batch_sharded(&programs, jobs);
        assert_eq!(render_all(&analyzer, &results), expected, "cold cached batch, jobs={jobs}");
        assert_eq!(
            results[4].as_ref().unwrap_err().file.as_deref(),
            Some("bad2.nf"),
            "duplicate's diagnostic is re-localized, jobs={jobs}"
        );
        let s = cache.stats();
        assert_eq!(s.insertions, 4, "4 distinct contents analyzed once each, jobs={jobs}");
        // Second batch: everything replays.
        let (replayed, _) = analyzer.check_batch_sharded(&programs, jobs);
        assert_eq!(render_all(&analyzer, &replayed), expected, "warm cached batch, jobs={jobs}");
        let s2 = cache.stats();
        assert_eq!(s2.insertions, 4, "warm batch recomputes nothing, jobs={jobs}");
        assert_eq!(s2.hits, s.hits + 7, "warm batch hits once per input, jobs={jobs}");
    }
}

#[test]
fn check_all_respects_session_cache_and_jobs_knob() {
    let cache = AnalysisCache::with_budget(1 << 20);
    let analyzer = Analyzer::builder().jobs(2).cache(cache.clone()).build();
    let programs: Vec<Program> =
        (0..8).map(|i| analyzer.parse(&format!("rnd {}.5", i % 2)).unwrap()).collect();
    let results = analyzer.check_all(&programs);
    assert!(results.iter().all(Result::is_ok));
    let s = cache.stats();
    assert_eq!(s.insertions, 2, "8 programs, 2 distinct contents");
}

#[test]
fn forward_and_backward_results_never_replay_each_other() {
    // The analysis mode is part of the config fingerprint: a warm
    // forward entry must miss for the backward judgment and vice versa,
    // even for byte-identical programs under one session.
    let (analyzer, cache) = cached_analyzer(1 << 20);
    // A defs-only program both judgments accept (the backward checker
    // rejects mains that round over constants — no linear carrier).
    let src = "function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }";
    let program = analyzer.parse(src).unwrap();

    analyzer.check_cached(&program).unwrap();
    let warm_forward = cache.stats();

    let bwd = analyzer.check_backward_cached(&program).unwrap();
    let s = cache.stats();
    assert_eq!(s.hits, warm_forward.hits, "backward check replayed a forward entry");
    assert!(s.misses > warm_forward.misses);
    let f = bwd.function("mulfp").expect("backward report for mulfp");
    assert_eq!(f.inputs.len(), 1);
    assert_eq!((f.inputs[0].0.as_str(), f.inputs[0].1.to_string().as_str()), ("xy", "eps"));

    // Each mode hits itself on replay, and the replay is byte-identical.
    let before = cache.stats();
    analyzer.check_cached(&program).unwrap();
    let replayed = analyzer.check_backward_cached(&program).unwrap();
    assert_eq!(cache.stats().hits, before.hits + 2);
    assert_eq!(format!("{replayed:?}"), format!("{bwd:?}"), "cached backward replay drifted");

    // The other direction: warmed backward-first, the forward judgment
    // must still miss.
    let (analyzer, cache) = cached_analyzer(1 << 20);
    let program = analyzer.parse(src).unwrap();
    analyzer.check_backward_cached(&program).unwrap();
    let warm_backward = cache.stats();
    analyzer.check_cached(&program).unwrap();
    let s = cache.stats();
    assert_eq!(s.hits, warm_backward.hits, "forward check replayed a backward entry");

    // The bound op is mode-distinct too: its own entry misses, and the
    // only replay is the warm backward-*check* entry it builds on (one
    // hit) — never a forward entry.
    let before = cache.stats();
    let backward_bound = analyzer.bound_backward_cached(&program).unwrap();
    let s = cache.stats();
    assert_eq!(s.hits, before.hits + 1, "backward bound replays only its mode's check entry");
    assert!(s.misses > before.misses);
    let alpha = backward_bound.function("mulfp").unwrap().inputs[0].alpha.as_ref();
    assert!(alpha.is_some(), "eps resolves to the unit roundoff");
    let before = cache.stats();
    analyzer.bound_backward_cached(&program).unwrap();
    assert_eq!(cache.stats().hits, before.hits + 1, "backward bound replays itself");
}

#[test]
fn backward_batches_are_byte_identical_across_jobs_and_cache_state() {
    let sources = [
        ("ok.nf", "function f (x: num) : M[eps]num { rnd x }\nf 2"),
        ("linear.nf", "function g (x: num) : M[eps]num { rnd (mul (x, x)) }\ng 2"),
        ("dup.nf", "function f (x: num) : M[eps]num { rnd x }\nf 2"),
        ("nocarrier.nf", "rnd 1.5"),
    ];
    let plain = Analyzer::new();
    let programs: Vec<Program> =
        sources.iter().map(|(n, s)| plain.parse_named(n, s).unwrap()).collect();
    let render = |results: &[Result<BackwardTyped, Diagnostic>]| -> Vec<String> {
        results
            .iter()
            .map(|r| match r {
                Ok(t) => format!(
                    "{} {:?}",
                    t.ty(),
                    t.functions()
                        .iter()
                        .map(|f| (f.name.clone(), f.inputs.clone()))
                        .collect::<Vec<_>>()
                ),
                Err(d) => d.render(),
            })
            .collect()
    };
    let expected = render(&plain.check_all_backward(&programs));
    assert!(expected[1].contains("E0502"), "{:?}", expected[1]);
    assert!(expected[3].contains("E0504"), "{:?}", expected[3]);

    for jobs in [1, 2, 4] {
        let (analyzer, cache) = cached_analyzer(1 << 20);
        let programs: Vec<Program> =
            sources.iter().map(|(n, s)| analyzer.parse_named(n, s).unwrap()).collect();
        let (cold, _) = analyzer.check_backward_batch_sharded(&programs, jobs);
        assert_eq!(render(&cold), expected, "cold backward batch, jobs={jobs}");
        assert_eq!(cache.stats().insertions, 3, "3 distinct contents, jobs={jobs}");
        let (warm, _) = analyzer.check_backward_batch_sharded(&programs, jobs);
        assert_eq!(render(&warm), expected, "warm backward batch, jobs={jobs}");
        assert_eq!(cache.stats().insertions, 3, "warm batch recomputes nothing, jobs={jobs}");
    }
}

#[test]
fn uncached_entry_points_stay_uncached() {
    let (analyzer, cache) = cached_analyzer(1 << 20);
    let program = analyzer.parse("rnd 1.5").unwrap();
    analyzer.check(&program).unwrap();
    analyzer.check(&program).unwrap();
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.insertions), (0, 0, 0), "plain check bypasses the cache");
}
