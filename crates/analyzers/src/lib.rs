//! # numfuzz-analyzers
//!
//! Baseline roundoff-error analyzers for the `numfuzz` reproduction of
//! *Numerical Fuzz* (PLDI 2024). The paper's Table 3 compares Λnum
//! against Gappa and FPTaylor; this crate provides faithful stand-ins for
//! the *techniques* those tools implement (see DESIGN.md §1 for the
//! substitution argument):
//!
//! * [`ir`] — a straight-line kernel IR with input ranges (the FPBench
//!   fragment the paper supports);
//! * [`analyze_interval`] — forward interval propagation of (range,
//!   absolute error) pairs, à la Gappa;
//! * [`analyze_taylor`] — first-order symbolic Taylor forms with interval
//!   coefficient bounds and a rigorous second-order remainder, à la
//!   FPTaylor;
//! * [`std_bounds`] — the γ_n textbook bounds quoted in Table 4's "Std."
//!   column;
//! * [`kernel_to_core`] — the translation of kernels into Λnum terms used
//!   to produce the Λnum column.
//!
//! Both analyzers are *sound* (each carries tests comparing against
//! ground-truth softfloat executions) and both work over exact rationals,
//! so reported bounds are never polluted by the analyzer's own rounding.

#![forbid(unsafe_code)]
// Expr::add/sub/mul/div are static constructors (no receiver), mirroring the IR node names.
#![allow(clippy::should_implement_trait)]
#![warn(missing_docs)]

pub mod interval_analysis;
pub mod ir;
pub mod std_bounds;
pub mod taylor;
pub mod to_core;

pub use interval_analysis::{analyze_interval, AnalysisError, ErrorBound};
pub use ir::{Expr, Kernel};
pub use taylor::analyze_taylor;
pub use to_core::{kernel_to_core, kernel_to_core_in, CoreKernel, TranslateError};
