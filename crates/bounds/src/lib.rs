//! # numfuzz-bounds
//!
//! An **independent** interval/Taylor-form roundoff bound engine — the
//! repo's stand-in for the FPTaylor/Gappa column of the paper's Table 1
//! comparison (Section 6.2), and the second opinion behind the fuzzer's
//! engines-agree oracle.
//!
//! The engine shares *nothing* with the graded typing judgment: it is a
//! direct abstract interpreter over the core term language. Every
//! numeric quantity is tracked as a triple (`NumAbs`):
//!
//! * an exact rational **ideal** enclosure `I` (the infinite-precision
//!   value lies in `I`),
//! * an exact rational **floating-point** enclosure `F` (every value the
//!   machine run can produce lies in `F` — constants stay exact and
//!   rounding happens only at explicit `rnd`, mirroring the reference
//!   machine), and
//! * a pointwise **error** bound `err`: for the true ideal value `v ∈ I`
//!   and the true machine value `w ∈ F`, `d(v, w) ≤ err` in the
//!   instantiation's metric.
//!
//! Interval arithmetic over `+ - × ÷` is *exact* (rational endpoints,
//! see `numfuzz-exact`); outward widening happens only at `sqrt`, by a
//! controlled `2^-bits` amount. Error terms compose by the standard
//! first-order rules of each Section 5 instantiation:
//!
//! * **Relative precision** (`d(x,y) = |ln(y/x)|`): `rnd` charges the
//!   unit roundoff `u(format, mode)` (sound for all four modes because
//!   the faithful-rounding relative error `δ` satisfies
//!   `|ln(1+δ)| ≤ ln(1+u) < u`); `add` takes the max of its operand
//!   errors (operands must be same-signed — checked on the enclosures);
//!   `mul`/`div` add errors; `sqrt` halves them.
//! * **Absolute error** (`d(x,y) = |x-y|`): `rnd` charges
//!   `u · sup|F|` (the standard model, valid because rounding faults on
//!   under/overflow exactly like the checked machine); `add`/`sub` add
//!   errors; `scale2`/`half` scale them.
//!
//! Branches (`is_pos`, `is_gt`, `case`) are decided only when **both**
//! the ideal and floating-point enclosures decide them the same way
//! (robust tests); anything else is reported as [`BoundError`] rather
//! than guessed at — the engine is sound or silent, never unsound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use numfuzz_core::{Instantiation, Node, TermId, TermStore, VarId};
use numfuzz_exact::{RatInterval, Rational};
use numfuzz_softfloat::{Format, Fp, RoundingMode};
use std::fmt;
use std::rc::Rc;

/// Recursion guard: generated fuzz programs stay under ~100 nodes of
/// nesting and the Table 1 corpus is tiny; anything deeper is outside
/// the fragment this engine promises to cover.
const DEPTH_LIMIT: u32 = 2048;

/// What the engine needs to know about the machine it is bounding.
#[derive(Clone, Debug)]
pub struct BoundConfig {
    /// Which Section 5 instantiation's metric and operations apply.
    pub instantiation: Instantiation,
    /// The floating-point format `rnd` targets.
    pub format: Format,
    /// The rounding mode `rnd` uses.
    pub mode: RoundingMode,
    /// Precision (in bits) of `sqrt` enclosures, as in the reference
    /// machine's `EvalConfig`.
    pub sqrt_bits: u32,
}

impl BoundConfig {
    /// A configuration with the default `sqrt` enclosure precision.
    pub fn new(instantiation: Instantiation, format: Format, mode: RoundingMode) -> Self {
        BoundConfig { instantiation, format, mode, sqrt_bits: 192 }
    }

    /// The per-`rnd` unit roundoff this engine charges (Table 2).
    pub fn unit(&self) -> Rational {
        self.format.unit_roundoff(self.mode)
    }
}

/// Why the engine could not produce a bound.
///
/// The engine never guesses: a program outside its fragment (a
/// non-robust branch, a sign-indefinite `add` under the RP metric, an
/// operation missing from the instantiation) yields an error, as does a
/// rounding fault (where the checked machine is vacuous too).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundError {
    /// The program uses a construct the engine cannot bound soundly.
    Unsupported(String),
    /// A `rnd` step faulted (overflow/underflow) — the exceptional
    /// machine semantics would produce `err` here, so there is no
    /// floating-point value to bound.
    Fault(String),
    /// The term nests deeper than the engine's recursion limit.
    DepthLimit,
}

impl fmt::Display for BoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundError::Unsupported(why) => write!(f, "unsupported by interval engine: {why}"),
            BoundError::Fault(why) => write!(f, "rounding fault: {why}"),
            BoundError::DepthLimit => write!(f, "term nests deeper than the interval engine limit"),
        }
    }
}

impl std::error::Error for BoundError {}

/// The abstract numeric value: ideal enclosure, floating-point
/// enclosure, and a pointwise error bound between them.
#[derive(Clone, Debug)]
struct NumAbs {
    ideal: RatInterval,
    fp: RatInterval,
    err: Rational,
}

impl NumAbs {
    fn exact(iv: RatInterval) -> Self {
        NumAbs { ideal: iv.clone(), fp: iv, err: Rational::zero() }
    }
}

/// Abstract values mirror the machine's value grammar.
#[derive(Clone, Debug)]
enum AVal {
    Unit,
    Num(Box<NumAbs>),
    PairW(Rc<AVal>, Rc<AVal>),
    PairT(Rc<AVal>, Rc<AVal>),
    Inl(Rc<AVal>),
    Inr(Rc<AVal>),
    Boxed(Rc<AVal>),
    Closure { param: VarId, body: TermId, env: Env },
    Ret(Rc<AVal>),
}

impl AVal {
    fn num(n: NumAbs) -> Self {
        AVal::Num(Box::new(n))
    }
}

type Env = Vec<(VarId, AVal)>;

/// The result of a successful interval analysis: both enclosures and
/// the roundoff bound.
#[derive(Clone, Debug)]
pub struct IntervalBound {
    ideal: RatInterval,
    fp: RatInterval,
    err: Rational,
    metric: Instantiation,
}

impl IntervalBound {
    /// Enclosure of the ideal (infinite-precision) result.
    pub fn ideal(&self) -> &RatInterval {
        &self.ideal
    }

    /// Enclosure of every value the machine run can produce.
    pub fn fp(&self) -> &RatInterval {
        &self.fp
    }

    /// The pointwise roundoff bound: for the true ideal result `v` and
    /// the true machine result `w`, `d(v, w) ≤ bound()` in the
    /// instantiation's metric. This is the number comparable with the
    /// typed engine's `Analyzer::bound` (and with Table 1).
    pub fn bound(&self) -> &Rational {
        &self.err
    }

    /// A (slightly) widened bound that also covers the *enclosure
    /// corners*: `sup { d(x, y) : x ∈ ideal, y ∈ fp } ≤ oracle_bound()`.
    ///
    /// The soundness validator measures distances between enclosures
    /// rather than points, so the engines-agree oracle must charge the
    /// enclosure widths on top of the pointwise bound (triangle
    /// inequality: `d(x,y) ≤ d(x,v) + d(v,w) + d(w,y)`). For point
    /// inputs the slop is just the `sqrt` enclosure width, around
    /// `2^-190` — negligible against any real roundoff bound.
    pub fn oracle_bound(&self) -> Result<Rational, BoundError> {
        let slop = |iv: &RatInterval| -> Result<Rational, BoundError> {
            if iv.is_point() {
                return Ok(Rational::zero());
            }
            match self.metric {
                Instantiation::AbsoluteError => Ok(iv.width()),
                Instantiation::RelativePrecision => {
                    // ln(hi/lo) ≤ (hi - lo)/min|x| on a sign-definite
                    // interval.
                    let denom = iv.abs_inf();
                    if denom.is_zero() {
                        Err(BoundError::Unsupported(
                            "sign-indefinite enclosure has no RP width".into(),
                        ))
                    } else {
                        Ok(iv.width().div(&denom))
                    }
                }
            }
        };
        Ok(self.err.add(&slop(&self.ideal)?).add(&slop(&self.fp)?))
    }
}

struct Engine<'a> {
    store: &'a TermStore,
    cfg: &'a BoundConfig,
    unit: Rational,
}

/// Analyzes a closed program (or one whose free variables are supplied
/// as point/range enclosures via [`analyze_with_inputs`]).
///
/// The result must be a monadic numeric computation (`rnd`/`ret`
/// shaped), exactly the programs the soundness validator covers.
pub fn analyze(
    store: &TermStore,
    root: TermId,
    cfg: &BoundConfig,
) -> Result<IntervalBound, BoundError> {
    analyze_with_inputs(store, root, cfg, &[])
}

/// [`analyze`] with enclosures for the program's free variables. Each
/// input is treated as error-free: ideal and machine runs start from the
/// same (interval of) values.
pub fn analyze_with_inputs(
    store: &TermStore,
    root: TermId,
    cfg: &BoundConfig,
    inputs: &[(VarId, RatInterval)],
) -> Result<IntervalBound, BoundError> {
    let engine = Engine { store, cfg, unit: cfg.unit() };
    let mut env: Env =
        inputs.iter().map(|(v, iv)| (*v, AVal::num(NumAbs::exact(iv.clone())))).collect();
    let val = engine.eval(root, &mut env, 0)?;
    engine.finish(val)
}

/// Range-parameterized analysis of a named top-level function: walks the
/// `function` spine of `root`, applies the definition named `fname` to
/// one error-free enclosure per curried `num` parameter, and bounds the
/// result — `bound()` then holds for *every* point input in the ranges.
/// This is how the Table 1 comparison runs each benchmark over its input
/// box.
pub fn analyze_fn(
    store: &TermStore,
    root: TermId,
    cfg: &BoundConfig,
    fname: &str,
    ranges: &[RatInterval],
) -> Result<IntervalBound, BoundError> {
    let engine = Engine { store, cfg, unit: cfg.unit() };
    let mut env: Env = Vec::new();
    let mut t = root;
    loop {
        match store.node(t) {
            Node::Let(x, e, rest) | Node::LetFun(x, _, e, rest) => {
                let v = engine.eval(*e, &mut env, 0)?;
                let found = store.var_name(*x) == fname;
                env.push((*x, v.clone()));
                if found {
                    let mut cur = v;
                    for r in ranges {
                        let arg = AVal::num(NumAbs::exact(r.clone()));
                        cur = engine.apply(cur, arg, 0)?;
                    }
                    return engine.finish(cur);
                }
                t = *rest;
            }
            _ => {
                return Err(BoundError::Unsupported(format!(
                    "no top-level function named `{fname}`"
                )))
            }
        }
    }
}

impl Engine<'_> {
    fn eval(&self, t: TermId, env: &mut Env, depth: u32) -> Result<AVal, BoundError> {
        if depth > DEPTH_LIMIT {
            return Err(BoundError::DepthLimit);
        }
        let d = depth + 1;
        match *self.store.node(t) {
            Node::Var(v) => {
                env.iter().rev().find(|(x, _)| *x == v).map(|(_, val)| val.clone()).ok_or_else(
                    || {
                        BoundError::Unsupported(format!(
                            "unbound variable `{}`",
                            self.store.var_name(v)
                        ))
                    },
                )
            }
            Node::UnitVal => Ok(AVal::Unit),
            Node::Const(idx) => {
                Ok(AVal::num(NumAbs::exact(RatInterval::point(self.store.constant(idx).clone()))))
            }
            Node::PairW(a, b) => {
                Ok(AVal::PairW(Rc::new(self.eval(a, env, d)?), Rc::new(self.eval(b, env, d)?)))
            }
            Node::PairT(a, b) => {
                Ok(AVal::PairT(Rc::new(self.eval(a, env, d)?), Rc::new(self.eval(b, env, d)?)))
            }
            Node::Inl(v, _) => Ok(AVal::Inl(Rc::new(self.eval(v, env, d)?))),
            Node::Inr(v, _) => Ok(AVal::Inr(Rc::new(self.eval(v, env, d)?))),
            Node::Lam(x, _, body) => Ok(AVal::Closure { param: x, body, env: env.clone() }),
            Node::BoxIntro(_, v) => Ok(AVal::Boxed(Rc::new(self.eval(v, env, d)?))),
            Node::Rnd(v) => {
                let n = self.as_num(self.eval(v, env, d)?, "rnd of a non-number")?;
                Ok(AVal::Ret(Rc::new(AVal::num(self.round(n)?))))
            }
            Node::Ret(v) => Ok(AVal::Ret(Rc::new(self.eval(v, env, d)?))),
            Node::Err(..) => Err(BoundError::Fault("explicit `err` term".into())),
            Node::App(f, a) => {
                let fv = self.eval(f, env, d)?;
                let av = self.eval(a, env, d)?;
                self.apply(fv, av, d)
            }
            Node::Proj(first, v) => match strip_box(self.eval(v, env, d)?) {
                AVal::PairW(a, b) => Ok(if first { (*a).clone() } else { (*b).clone() }),
                _ => Err(BoundError::Unsupported("projection from a non-pair".into())),
            },
            Node::LetTensor(x, y, v, e) => match strip_box(self.eval(v, env, d)?) {
                AVal::PairT(a, b) | AVal::PairW(a, b) => {
                    env.push((x, (*a).clone()));
                    env.push((y, (*b).clone()));
                    let r = self.eval(e, env, d);
                    env.truncate(env.len() - 2);
                    r
                }
                _ => Err(BoundError::Unsupported("tensor-let of a non-pair".into())),
            },
            Node::Case(v, x, e1, y, e2) => match strip_box(self.eval(v, env, d)?) {
                AVal::Inl(inner) => self.eval_bound(e1, env, d, x, (*inner).clone()),
                AVal::Inr(inner) => self.eval_bound(e2, env, d, y, (*inner).clone()),
                _ => Err(BoundError::Unsupported("case on a non-sum".into())),
            },
            Node::LetBox(x, v, e) => {
                let val = match self.eval(v, env, d)? {
                    AVal::Boxed(inner) => (*inner).clone(),
                    other => other,
                };
                self.eval_bound(e, env, d, x, val)
            }
            Node::LetBind(x, v, e) => match self.eval(v, env, d)? {
                AVal::Ret(inner) => self.eval_bound(e, env, d, x, (*inner).clone()),
                _ => Err(BoundError::Unsupported("bind of a non-monadic value".into())),
            },
            Node::Let(x, e, f) | Node::LetFun(x, _, e, f) => {
                let val = self.eval(e, env, d)?;
                self.eval_bound(f, env, d, x, val)
            }
            Node::Op(idx, v) => {
                let name = self.store.op_name(idx).to_string();
                let operand = self.eval(v, env, d)?;
                self.apply_op(&name, operand)
            }
        }
    }

    /// Evaluates `t` with one extra binding in scope.
    fn eval_bound(
        &self,
        t: TermId,
        env: &mut Env,
        depth: u32,
        x: VarId,
        val: AVal,
    ) -> Result<AVal, BoundError> {
        env.push((x, val));
        let r = self.eval(t, env, depth);
        env.pop();
        r
    }

    fn apply(&self, f: AVal, arg: AVal, depth: u32) -> Result<AVal, BoundError> {
        match strip_box(f) {
            AVal::Closure { param, body, env } => {
                let mut call_env = env;
                call_env.push((param, arg));
                self.eval(body, &mut call_env, depth + 1)
            }
            _ => Err(BoundError::Unsupported("application of a non-function".into())),
        }
    }

    /// The `rnd` step: rounds the floating-point enclosure endpoint-wise
    /// (rounding is monotone, so the rounded endpoints enclose every
    /// rounded point) and charges one unit roundoff in the metric.
    /// Faults exactly where the checked machine faults (over/underflow
    /// at either endpoint).
    fn round(&self, n: NumAbs) -> Result<NumAbs, BoundError> {
        let round_end = |q: &Rational| -> Result<Rational, BoundError> {
            let f = Fp::round_checked(q, self.cfg.format, self.cfg.mode)
                .map_err(|fault| BoundError::Fault(fault.to_string()))?;
            Ok(f.to_rational().expect("checked rounding is finite"))
        };
        let fp = RatInterval::new(round_end(n.fp.lo())?, round_end(n.fp.hi())?);
        let charge = match self.cfg.instantiation {
            // |ln(1+δ)| ≤ ln(1+u) < u for every mode's faithful δ.
            Instantiation::RelativePrecision => self.unit.clone(),
            // |rnd(w) - w| ≤ u·|w| ≤ u·sup|F| (standard model; valid
            // because under/overflow faulted above).
            Instantiation::AbsoluteError => self.unit.mul(&n.fp.abs_sup()),
        };
        Ok(NumAbs { ideal: n.ideal, fp, err: n.err.add(&charge) })
    }

    fn as_num(&self, v: AVal, what: &str) -> Result<NumAbs, BoundError> {
        match strip_box(v) {
            AVal::Num(n) => Ok(*n),
            _ => Err(BoundError::Unsupported(what.into())),
        }
    }

    fn two_nums(&self, v: AVal, what: &str) -> Result<(NumAbs, NumAbs), BoundError> {
        match strip_box(v) {
            AVal::PairW(a, b) | AVal::PairT(a, b) => {
                Ok((self.as_num((*a).clone(), what)?, self.as_num((*b).clone(), what)?))
            }
            _ => Err(BoundError::Unsupported(what.into())),
        }
    }

    fn apply_op(&self, name: &str, v: AVal) -> Result<AVal, BoundError> {
        let rp = matches!(self.cfg.instantiation, Instantiation::RelativePrecision);
        match name {
            "add" => {
                let (a, b) = self.two_nums(v, "add of a non-pair")?;
                let err = if rp {
                    // RP(x+y, x̃+ỹ) ≤ max(RP(x,x̃), RP(y,ỹ)) — only for
                    // same-signed summands (all four enclosures must
                    // agree on a strict sign).
                    let all_pos =
                        [&a.ideal, &b.ideal, &a.fp, &b.fp].iter().all(|iv| iv.lo().is_positive());
                    let all_neg =
                        [&a.ideal, &b.ideal, &a.fp, &b.fp].iter().all(|iv| iv.hi().is_negative());
                    if !(all_pos || all_neg) {
                        return Err(BoundError::Unsupported(
                            "RP add of sign-indefinite operands".into(),
                        ));
                    }
                    a.err.max(b.err)
                } else {
                    a.err.add(&b.err)
                };
                Ok(AVal::num(NumAbs { ideal: a.ideal.add(&b.ideal), fp: a.fp.add(&b.fp), err }))
            }
            "sub" => {
                let (a, b) = self.two_nums(v, "sub of a non-pair")?;
                if rp {
                    // Cancellation makes RP(x-y, x̃-ỹ) unbounded by the
                    // operand errors; the RP signature has no `sub`.
                    return Err(BoundError::Unsupported("sub under the RP metric".into()));
                }
                Ok(AVal::num(NumAbs {
                    ideal: a.ideal.sub(&b.ideal),
                    fp: a.fp.sub(&b.fp),
                    err: a.err.add(&b.err),
                }))
            }
            "mul" => {
                let (a, b) = self.two_nums(v, "mul of a non-pair")?;
                let err = if rp {
                    // RP(xy, x̃ỹ) ≤ RP(x,x̃) + RP(y,ỹ).
                    a.err.add(&b.err)
                } else {
                    // |xy - x̃ỹ| = |x(y-ỹ) + ỹ(x-x̃)|
                    //            ≤ sup|I_x|·e_y + sup|F_y|·e_x.
                    a.ideal.abs_sup().mul(&b.err).add(&b.fp.abs_sup().mul(&a.err))
                };
                Ok(AVal::num(NumAbs { ideal: a.ideal.mul(&b.ideal), fp: a.fp.mul(&b.fp), err }))
            }
            "div" => {
                let (a, b) = self.two_nums(v, "div of a non-pair")?;
                if !rp {
                    return Err(BoundError::Unsupported("div under the absolute metric".into()));
                }
                let ideal = a.ideal.div(&b.ideal).ok_or_else(|| {
                    BoundError::Unsupported("division by an enclosure containing zero".into())
                })?;
                let fp = a.fp.div(&b.fp).ok_or_else(|| {
                    BoundError::Unsupported("division by an enclosure containing zero".into())
                })?;
                // RP(x/y, x̃/ỹ) ≤ RP(x,x̃) + RP(y,ỹ).
                Ok(AVal::num(NumAbs { ideal, fp, err: a.err.add(&b.err) }))
            }
            "sqrt" => {
                let a = self.as_num(v, "sqrt of a non-number")?;
                if !rp {
                    return Err(BoundError::Unsupported("sqrt under the absolute metric".into()));
                }
                if a.ideal.lo().is_negative() || a.fp.lo().is_negative() {
                    return Err(BoundError::Unsupported(
                        "sqrt of a possibly-negative value".into(),
                    ));
                }
                // RP(√x, √x̃) = RP(x, x̃)/2.
                Ok(AVal::num(NumAbs {
                    ideal: a.ideal.sqrt(self.cfg.sqrt_bits),
                    fp: a.fp.sqrt(self.cfg.sqrt_bits),
                    err: a.err.mul(&Rational::ratio(1, 2)),
                }))
            }
            "neg" => {
                let a = self.as_num(v, "neg of a non-number")?;
                // Both metrics are invariant under negation.
                Ok(AVal::num(NumAbs { ideal: a.ideal.neg(), fp: a.fp.neg(), err: a.err }))
            }
            "scale2" | "half" => {
                let a = self.as_num(v, "scaling of a non-number")?;
                let k =
                    if name == "scale2" { Rational::from_int(2) } else { Rational::ratio(1, 2) };
                let kiv = RatInterval::point(k.clone());
                // RP is invariant under positive scaling; absolute error
                // scales with the factor.
                let err = if rp { a.err } else { a.err.mul(&k) };
                Ok(AVal::num(NumAbs { ideal: a.ideal.mul(&kiv), fp: a.fp.mul(&kiv), err }))
            }
            "is_pos" => {
                let a = self.as_num(v, "is_pos of a non-number")?;
                // Robust only: ideal and machine runs must take the same
                // branch for every point in the enclosures.
                if a.ideal.lo().is_positive() && a.fp.lo().is_positive() {
                    Ok(AVal::Inl(Rc::new(AVal::Unit)))
                } else if !a.ideal.hi().is_positive() && !a.fp.hi().is_positive() {
                    Ok(AVal::Inr(Rc::new(AVal::Unit)))
                } else {
                    Err(BoundError::Unsupported("is_pos test is not robust".into()))
                }
            }
            "is_gt" => {
                let (a, b) = self.two_nums(v, "is_gt of a non-pair")?;
                if a.ideal.lo() > b.ideal.hi() && a.fp.lo() > b.fp.hi() {
                    Ok(AVal::Inl(Rc::new(AVal::Unit)))
                } else if a.ideal.hi() <= b.ideal.lo() && a.fp.hi() <= b.fp.lo() {
                    Ok(AVal::Inr(Rc::new(AVal::Unit)))
                } else {
                    Err(BoundError::Unsupported("is_gt test is not robust".into()))
                }
            }
            other => Err(BoundError::Unsupported(format!("unknown operation `{other}`"))),
        }
    }

    /// Unwraps the final value: the program must have produced a monadic
    /// numeric result.
    fn finish(&self, val: AVal) -> Result<IntervalBound, BoundError> {
        let inner = match val {
            AVal::Ret(inner) => (*inner).clone(),
            other => other,
        };
        match strip_box(inner) {
            AVal::Num(n) => Ok(IntervalBound {
                ideal: n.ideal,
                fp: n.fp,
                err: n.err,
                metric: self.cfg.instantiation,
            }),
            _ => Err(BoundError::Unsupported("program result is not a monadic number".into())),
        }
    }
}

fn strip_box(v: AVal) -> AVal {
    match v {
        AVal::Boxed(inner) => strip_box((*inner).clone()),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfuzz_core::{compile, Signature};

    fn rp_cfg() -> BoundConfig {
        BoundConfig::new(
            Instantiation::RelativePrecision,
            Format::BINARY64,
            RoundingMode::TowardPositive,
        )
    }

    fn analyze_src(src: &str, cfg: &BoundConfig) -> Result<IntervalBound, BoundError> {
        let sig = match cfg.instantiation {
            Instantiation::RelativePrecision => Signature::relative_precision(),
            Instantiation::AbsoluteError => Signature::absolute_error(),
        };
        let lowered = compile(src, &sig).expect("test program compiles");
        analyze(&lowered.store, lowered.root, cfg)
    }

    #[test]
    fn single_rnd_charges_one_unit() {
        let cfg = rp_cfg();
        let b = analyze_src("rnd 1.5", &cfg).expect("bounded");
        assert_eq!(b.bound(), &cfg.unit());
        // 1.5 is exactly representable: the machine enclosure is the
        // constant itself and the oracle slop is zero.
        assert_eq!(b.fp(), &RatInterval::point(Rational::ratio(3, 2)));
        assert_eq!(b.oracle_bound().unwrap(), cfg.unit());
    }

    #[test]
    fn product_of_two_rnds_adds_errors() {
        let cfg = rp_cfg();
        let src = "let a = rnd 0.1; let b = rnd 0.2;\ns = mul (a, b);\nrnd s";
        let b = analyze_src(src, &cfg).expect("bounded");
        let three_u = cfg.unit().mul(&Rational::from_int(3));
        assert_eq!(b.bound(), &three_u);
        // Point input ⇒ the machine enclosure is the machine value
        // exactly; toward +∞ it sits strictly above the exact ideal.
        assert_eq!(b.ideal(), &RatInterval::point(Rational::ratio(1, 50)));
        assert!(b.fp().is_point());
        assert!(b.fp().lo() > &Rational::ratio(1, 50));
    }

    #[test]
    fn hypot_beats_or_matches_the_typed_grade() {
        // The soundness suite's running example: typed grade 5/2·eps.
        // The interval engine, free of the judgment's let-sequencing,
        // finds 2·eps (mul: u, add: max = u, sqrt: /2, final rnd: +u).
        let src = "function mulfp (xy: (num, num)) : M[eps]num {\n\
                   \x20 s = mul xy;\n\
                   \x20 rnd s\n\
                   }\n\
                   function sqrtfp (x: ![1/2]num) : M[eps]num {\n\
                   \x20 s = sqrt x;\n\
                   \x20 rnd s\n\
                   }\n\
                   function hypot (x: num) (y: num) : M[5/2*eps]num {\n\
                   \x20 let a = mulfp (x, x);\n\
                   \x20 let b = mulfp (y, y);\n\
                   \x20 s = add (| a, b |);\n\
                   \x20 let c = rnd s;\n\
                   \x20 sqrtfp [c]{1/2}\n\
                   }\n\
                   hypot 3.7 0.51";
        let cfg = rp_cfg();
        let sig = Signature::relative_precision();
        let lowered = compile(src, &sig).expect("compiles");
        let b = analyze(&lowered.store, lowered.root, &cfg).expect("bounded");
        let two_u = cfg.unit().mul(&Rational::from_int(2));
        assert_eq!(b.bound(), &two_u);

        // Ranged: the same bound holds over the whole Table 1 input box.
        let range = RatInterval::new(Rational::ratio(1, 10), Rational::from_int(1000));
        let rb = analyze_fn(&lowered.store, lowered.root, &cfg, "hypot", &[range.clone(), range])
            .expect("bounded over the box");
        assert_eq!(rb.bound(), &two_u);
        assert!(rb.ideal().lo() > &Rational::zero());
    }

    #[test]
    fn abs_rnd_charges_magnitude_scaled_unit() {
        let cfg = BoundConfig::new(
            Instantiation::AbsoluteError,
            Format::BINARY64,
            RoundingMode::NearestEven,
        );
        let b = analyze_src("rnd 3.0", &cfg).expect("bounded");
        assert_eq!(b.bound(), &cfg.unit().mul(&Rational::from_int(3)));
    }

    #[test]
    fn non_robust_test_is_refused_not_guessed() {
        let cfg = BoundConfig::new(
            Instantiation::AbsoluteError,
            Format::BINARY64,
            RoundingMode::NearestEven,
        );
        let sig = Signature::absolute_error();
        let lowered =
            compile("t = is_pos [0.5]{inf}; case t of (inl a. ret 1.0 | inr b. ret 2.0)", &sig)
                .expect("compiles");
        // Point 0.5 is robustly positive...
        assert!(analyze(&lowered.store, lowered.root, &cfg).is_ok());
        // ...but a range straddling zero is not.
        let lowered2 = compile(
            "function f (x: ![inf]num) : M[0]num { t = is_pos x; case t of (inl a. ret 1.0 | inr b. ret 2.0) }\nf [0.5]{inf}",
            &sig,
        )
        .expect("compiles");
        let straddle = RatInterval::new(Rational::from_int(-1), Rational::from_int(1));
        let r = analyze_fn(&lowered2.store, lowered2.root, &cfg, "f", &[straddle]);
        assert!(matches!(r, Err(BoundError::Unsupported(_))), "{r:?}");
    }

    #[test]
    fn overflowing_rnd_faults_like_the_checked_machine() {
        let cfg = rp_cfg();
        let r = analyze_src("rnd 1.0e400", &cfg);
        assert!(matches!(r, Err(BoundError::Fault(_))), "{r:?}");
    }
}
