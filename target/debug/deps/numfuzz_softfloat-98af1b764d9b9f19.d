/root/repo/target/debug/deps/numfuzz_softfloat-98af1b764d9b9f19.d: crates/softfloat/src/lib.rs crates/softfloat/src/arith.rs crates/softfloat/src/format.rs crates/softfloat/src/round.rs crates/softfloat/src/value.rs

/root/repo/target/debug/deps/libnumfuzz_softfloat-98af1b764d9b9f19.rlib: crates/softfloat/src/lib.rs crates/softfloat/src/arith.rs crates/softfloat/src/format.rs crates/softfloat/src/round.rs crates/softfloat/src/value.rs

/root/repo/target/debug/deps/libnumfuzz_softfloat-98af1b764d9b9f19.rmeta: crates/softfloat/src/lib.rs crates/softfloat/src/arith.rs crates/softfloat/src/format.rs crates/softfloat/src/round.rs crates/softfloat/src/value.rs

crates/softfloat/src/lib.rs:
crates/softfloat/src/arith.rs:
crates/softfloat/src/format.rs:
crates/softfloat/src/round.rs:
crates/softfloat/src/value.rs:
