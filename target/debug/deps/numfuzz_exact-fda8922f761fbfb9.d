/root/repo/target/debug/deps/numfuzz_exact-fda8922f761fbfb9.d: crates/exact/src/lib.rs crates/exact/src/bigint.rs crates/exact/src/biguint.rs crates/exact/src/funcs.rs crates/exact/src/interval.rs crates/exact/src/rational.rs Cargo.toml

/root/repo/target/debug/deps/libnumfuzz_exact-fda8922f761fbfb9.rmeta: crates/exact/src/lib.rs crates/exact/src/bigint.rs crates/exact/src/biguint.rs crates/exact/src/funcs.rs crates/exact/src/interval.rs crates/exact/src/rational.rs Cargo.toml

crates/exact/src/lib.rs:
crates/exact/src/bigint.rs:
crates/exact/src/biguint.rs:
crates/exact/src/funcs.rs:
crates/exact/src/interval.rs:
crates/exact/src/rational.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
