/root/repo/target/debug/deps/table4-9a3caa62587b7ded.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-9a3caa62587b7ded: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
