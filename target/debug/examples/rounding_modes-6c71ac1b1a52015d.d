/root/repo/target/debug/examples/rounding_modes-6c71ac1b1a52015d.d: examples/rounding_modes.rs

/root/repo/target/debug/examples/rounding_modes-6c71ac1b1a52015d: examples/rounding_modes.rs

examples/rounding_modes.rs:
