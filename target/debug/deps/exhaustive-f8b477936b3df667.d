/root/repo/target/debug/deps/exhaustive-f8b477936b3df667.d: crates/softfloat/tests/exhaustive.rs Cargo.toml

/root/repo/target/debug/deps/libexhaustive-f8b477936b3df667.rmeta: crates/softfloat/tests/exhaustive.rs Cargo.toml

crates/softfloat/tests/exhaustive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
