/root/repo/target/debug/deps/exhaustive-1cc840db5dc90834.d: crates/softfloat/tests/exhaustive.rs

/root/repo/target/debug/deps/exhaustive-1cc840db5dc90834: crates/softfloat/tests/exhaustive.rs

crates/softfloat/tests/exhaustive.rs:
