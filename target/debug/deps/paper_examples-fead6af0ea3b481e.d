/root/repo/target/debug/deps/paper_examples-fead6af0ea3b481e.d: crates/core/tests/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-fead6af0ea3b481e.rmeta: crates/core/tests/paper_examples.rs Cargo.toml

crates/core/tests/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
