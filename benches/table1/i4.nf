function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
function sqrtfp (x: ![1/2]num) : M[eps]num { s = sqrt x; rnd s }
function i4 (x: num) (y: num) : M[2*eps]num {
    let m = mulfp (y, y);
    let s = addfp (| x, m |);
    sqrtfp [s]{1/2}
}
i4 777 0.3
