//! The secondary instantiation (paper Section 5's "different error
//! metrics" claim): `num` as the reals with the **absolute-value** metric.
//! Subtraction becomes typable (it is non-expansive for absolute error),
//! scaling operations carry their Lipschitz constants in `!` types, and
//! `rnd` carries an absolute grade symbol `delta`.
//!
//! ```sh
//! cargo run --example absolute_error
//! ```

use numfuzz::interp::rounding::ModeRounding;
use numfuzz::prelude::*;

fn main() -> Result<(), Diagnostic> {
    // In a fixed range |v| <= M the standard model gives
    // |round(v) - v| <= u*M, so delta := u*M is a sound absolute rounding
    // unit; here every rounded intermediate is <= 4.
    let format = Format::new(10, 30);
    let mode = RoundingMode::NearestEven;
    let delta = format.unit_roundoff(mode).mul(&Rational::from_int(4));
    let analyzer = Analyzer::builder()
        .signature(Instantiation::AbsoluteError)
        .format(format)
        .mode(mode)
        .rounding_unit(delta) // substituted for `delta` in grades
        .build();

    // An affine update x - (x + c)/2 ... written with the abs-error ops:
    // sub : (num, num) ⊸ num, half : ![1/2]num ⊸ num, rnd : M[delta].
    // The analyzer's own `parse` lowers against *its* signature (the
    // default `Program::parse` would reject `sub`/`half`).
    let program = analyzer.parse(
        r#"
        function step (x: ![3/2]num) (c: num) : M[2*delta]num {
            let [x1] = x;
            s = add (x1, c);
            h = half s;
            m = rnd h;
            let m1 = m;
            d = sub (x1, m1);
            rnd d
        }
        step [4]{3/2} 1
    "#,
    )?;
    let typed = analyzer.check(&program)?;
    println!("step : {}", typed.function("step").expect("present").inferred);
    println!("main : {}", typed.ty());
    println!("bound from type: {}", analyzer.bound(&typed)?);

    // Validate under the absolute metric with plain mode rounding.
    let mut fp = ModeRounding { format, mode };
    let rep = analyzer.validate_with_rounding(&program, &Inputs::none(), &mut fp)?;
    println!("\nideal    : {}", rep.ideal.lo().to_sci_string(6));
    println!(
        "fp       : {}",
        rep.fp.as_ref().map(|i| i.lo().to_sci_string(6)).unwrap_or_else(|| "err".into())
    );
    println!("bound    : |ideal - fp| <= {}", rep.bound.to_sci_string(3));
    if let Some(m) = rep.measured {
        println!("measured : {m:.3e}");
    }
    println!("verdict  : {}", if rep.holds() { "bound holds (rigorous)" } else { "VIOLATION" });
    assert!(rep.holds());
    Ok(())
}
