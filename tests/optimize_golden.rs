//! Golden-file tests for `numfuzz optimize`: the report on stdout is
//! fully deterministic (candidate order is seeded, selection is
//! lexicographic, and wall times go to stderr), so it is pinned byte for
//! byte — no masking. The three pinned benchmarks are the Table 1
//! programs the optimizer strictly improves, so the goldens also lock in
//! the improvements themselves.
//!
//! Regenerate after an intentional change with
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test optimize_golden
//! ```

use std::process::Command;

fn run_optimize(bench: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_numfuzz"))
        .args(["optimize", &format!("benches/table1/{bench}.nf")])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("numfuzz optimize runs");
    assert!(
        out.status.success(),
        "numfuzz optimize {bench} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn check_golden(bench: &str) {
    let got = run_optimize(bench);
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("optimize_{bench}.expected"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\n(run `UPDATE_GOLDEN=1 cargo test --test optimize_golden` to create)",
            path.display()
        )
    });
    assert_eq!(
        got, expected,
        "optimize {bench} output drifted (if intentional: \
         UPDATE_GOLDEN=1 cargo test --test optimize_golden)"
    );
}

#[test]
fn optimize_verhulst_matches_golden() {
    check_golden("verhulst");
}

#[test]
fn optimize_predator_prey_matches_golden() {
    check_golden("predatorPrey");
}

#[test]
fn optimize_one_by_sqrtxx_matches_golden() {
    check_golden("one_by_sqrtxx");
}
