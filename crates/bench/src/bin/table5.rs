//! Regenerates the paper's Table 5: conditional benchmarks. Each surface
//! program becomes a `Program` (parsed + lowered + type-checked, timed);
//! the reported bound comes from the function's monadic grade via
//! eq. (8).

use numfuzz::prelude::*;
use numfuzz_bench::{fmt_time, rp_bound_string, PAPER_TABLE5};
use numfuzz_benchsuite::table5;
use std::time::Instant;

fn main() {
    let analyzer =
        Analyzer::builder().format(Format::BINARY64).mode(RoundingMode::TowardPositive).build();

    println!("Table 5: conditional benchmarks (binary64, round toward +inf)\n");
    println!(
        "{:<22} | {:>9} {:>10} | {:>9} {:>9}",
        "Benchmark", "Lnum", "t(check)", "paperLnum", "paper(ms)"
    );

    for b in table5() {
        let t0 = Instant::now();
        let program = analyzer.parse_named(b.name, b.source).expect("parses");
        let typed = analyzer.check(&program).expect("checks");
        let elapsed = t0.elapsed();
        let rep = typed.function(b.function).expect("function present");
        // The bound of calling the function: eq. (8) on the curried
        // type's monadic codomain.
        let bound = analyzer.bound_of_ty(&rep.inferred).expect("monadic codomain");
        let paper =
            PAPER_TABLE5.iter().find(|(n, ..)| *n == b.name).copied().unwrap_or((b.name, "-", "-"));
        println!(
            "{:<22} | {:>9} {:>10} | {:>9} {:>9}",
            b.name,
            rp_bound_string(&bound.alpha),
            fmt_time(elapsed),
            paper.1,
            paper.2,
        );
    }
    println!("\nNote: bounds assume both executions take the same branch (Section 5.1);");
    println!("guards are infinitely sensitive (is_pos / is_gt at ![inf]).");
}
