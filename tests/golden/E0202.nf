rnd 1
