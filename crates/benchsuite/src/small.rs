//! The seventeen small kernels of the paper's Table 3.
//!
//! Thirteen come from FPBench (marked `fpbench: true`) — the subset the
//! paper can handle: `+ × ÷ √` over strictly positive inputs; the rest are
//! the Horner-scheme family of Section 5. Every kernel records the exact
//! Λnum error coefficient (the grade is `coeff · eps`) that the paper's
//! Table 3 column reports after the eq. (8) conversion, plus sample inputs
//! used by the error-soundness validator.

use numfuzz_analyzers::{Expr, Kernel};
use numfuzz_exact::{RatInterval, Rational};

/// One Table 3 row.
#[derive(Clone, Debug)]
pub struct SmallBench {
    /// Kernel (IR form, for the baselines and the Λnum translation).
    pub kernel: Kernel,
    /// Whether the kernel comes from FPBench (starred in the paper).
    pub fpbench: bool,
    /// The Λnum grade as a multiple of `eps` (exact).
    pub expected_eps_coeff: Rational,
    /// Sample inputs (one per kernel input) for soundness validation.
    pub samples: Vec<Vec<Rational>>,
}

fn rat(s: &str) -> Rational {
    Rational::from_decimal_str(s).expect("valid benchmark literal")
}

/// The paper's input range for Table 3: `[0.1, 1000]`.
fn std_range() -> RatInterval {
    RatInterval::new(rat("0.1"), rat("1000"))
}

fn coeff(n: i64, d: i64) -> Rational {
    Rational::ratio(n, d)
}

fn v(i: usize) -> Expr {
    Expr::Var(i)
}

/// FMA-based Horner evaluation of the degree-`n` polynomial with
/// coefficients `a_i = i + 1` (positive, so RP applies).
pub fn horner_expr(degree: usize) -> Expr {
    let mut acc = Expr::Const(Rational::from_int(degree as i64 + 1));
    for i in (0..degree).rev() {
        acc = Expr::fma(acc, v(0), Expr::Const(Rational::from_int(i as i64 + 1)));
    }
    acc
}

fn bench(
    name: &str,
    fpbench: bool,
    inputs: Vec<&str>,
    expr: Expr,
    expected: Rational,
    samples: &[&[&str]],
) -> SmallBench {
    let kernel = Kernel::new(name, inputs.into_iter().map(|n| (n, std_range())).collect(), expr);
    SmallBench {
        kernel,
        fpbench,
        expected_eps_coeff: expected,
        samples: samples.iter().map(|row| row.iter().map(|s| rat(s)).collect()).collect(),
    }
}

/// All Table 3 kernels, in the paper's row order.
///
/// `Horner2_with_error` is the 14th row; its Λnum form needs monadic
/// inputs and lives in [`horner2_with_error_source`], while its baseline
/// form is the Horner-2 kernel with one unit of input error.
pub fn table3() -> Vec<SmallBench> {
    vec![
        bench(
            "hypot",
            true,
            vec!["x1", "x2"],
            Expr::sqrt(Expr::add(Expr::mul(v(0), v(0)), Expr::mul(v(1), v(1)))),
            coeff(5, 2),
            &[&["3.7", "0.51"], &["0.1", "1000"], &["999.5", "999.5"]],
        ),
        bench(
            "x_by_xy",
            true,
            vec!["x", "y"],
            Expr::div(v(0), Expr::add(v(0), v(1))),
            coeff(2, 1),
            &[&["0.1", "1000"], &["500", "0.25"]],
        ),
        bench(
            "one_by_sqrtxx",
            false,
            vec!["x"],
            Expr::div(Expr::num("1"), Expr::sqrt(Expr::mul(v(0), v(0)))),
            coeff(5, 2),
            &[&["0.1"], &["33.3"], &["1000"]],
        ),
        bench(
            "sqrt_add",
            true,
            vec!["x"],
            Expr::div(
                Expr::num("1"),
                Expr::add(Expr::sqrt(Expr::add(v(0), Expr::num("1"))), Expr::sqrt(v(0))),
            ),
            coeff(9, 2),
            &[&["0.1"], &["42"], &["1000"]],
        ),
        bench(
            "test02_sum8",
            true,
            vec!["x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7"],
            (1..8).fold(v(0), |acc, i| Expr::add(acc, v(i))),
            coeff(7, 1),
            &[&["0.1", "2", "3", "4", "5", "6", "7", "1000"]],
        ),
        bench(
            "nonlin1",
            true,
            vec!["z"],
            Expr::div(v(0), Expr::add(v(0), Expr::num("1"))),
            coeff(2, 1),
            &[&["0.1"], &["999.9"]],
        ),
        bench(
            "test05_nonlin1",
            true,
            vec!["z"],
            Expr::div(v(0), Expr::add(v(0), Expr::num("1"))),
            coeff(2, 1),
            &[&["0.5"], &["123.456"]],
        ),
        bench(
            "verhulst",
            true,
            vec!["x"],
            Expr::div(
                Expr::mul(Expr::num("4.0"), v(0)),
                Expr::add(Expr::num("1.0"), Expr::div(v(0), Expr::num("1.11"))),
            ),
            coeff(4, 1),
            &[&["0.1"], &["0.27"], &["1000"]],
        ),
        bench(
            "predatorPrey",
            true,
            vec!["x"],
            Expr::div(
                Expr::mul(Expr::mul(Expr::num("4.0"), v(0)), v(0)),
                Expr::add(
                    Expr::num("1.0"),
                    Expr::mul(
                        Expr::div(v(0), Expr::num("1.11")),
                        Expr::div(v(0), Expr::num("1.11")),
                    ),
                ),
            ),
            coeff(7, 1),
            &[&["0.1"], &["0.35"], &["1000"]],
        ),
        bench(
            "test06_sums4_sum1",
            true,
            vec!["x0", "x1", "x2", "x3"],
            Expr::add(Expr::add(Expr::add(v(0), v(1)), v(2)), v(3)),
            coeff(3, 1),
            &[&["0.1", "2", "30", "1000"]],
        ),
        bench(
            "test06_sums4_sum2",
            true,
            vec!["x0", "x1", "x2", "x3"],
            Expr::add(Expr::add(v(0), v(1)), Expr::add(v(2), v(3))),
            coeff(3, 1),
            &[&["0.1", "2", "30", "1000"]],
        ),
        bench(
            "i4",
            true,
            vec!["x", "y"],
            Expr::sqrt(Expr::add(v(0), Expr::mul(v(1), v(1)))),
            coeff(2, 1),
            &[&["0.1", "1000"], &["777", "0.3"]],
        ),
        bench(
            "Horner2",
            false,
            vec!["x"],
            horner_expr(2),
            coeff(2, 1),
            &[&["0.1"], &["9.75"], &["1000"]],
        ),
        bench(
            "Horner5",
            false,
            vec!["x"],
            horner_expr(5),
            coeff(5, 1),
            &[&["0.1"], &["3.3"], &["1000"]],
        ),
        bench(
            "Horner10",
            false,
            vec!["x"],
            horner_expr(10),
            coeff(10, 1),
            &[&["0.1"], &["2"], &["57"]],
        ),
        bench(
            "Horner20",
            false,
            vec!["x"],
            horner_expr(20),
            coeff(20, 1),
            &[&["0.1"], &["1.5"], &["2.25"]],
        ),
    ]
}

/// The Horner2-with-input-error row: baseline form (one unit of relative
/// input error on the Horner-2 kernel).
pub fn horner2_with_error_kernel() -> SmallBench {
    let mut b = bench(
        "Horner2_with_error",
        false,
        vec!["x"],
        horner_expr(2),
        coeff(7, 1),
        &[&["0.1"], &["9.75"], &["1000"]],
    );
    b.kernel = b.kernel.with_input_error(1);
    b
}

/// The Λnum surface program for Horner2_with_error (Fig. 9): every input
/// arrives with `eps` of error and the inferred total is `7·eps`.
pub fn horner2_with_error_source() -> &'static str {
    r#"
function FMA (x: num) (y: num) (z: num) : M[eps]num {
    a = mul (x,y);
    b = add (|a,z|);
    rnd b
}
function Horner2we (a0: M[eps]num) (a1: M[eps]num) (a2: M[eps]num) (x: ![2.0]M[eps]num) : M[7*eps]num {
    let [x1] = x;
    let a0' = a0; let a1' = a1;
    let a2' = a2; let x' = x1;
    s1 = FMA a2' x' a1';
    let z = s1;
    FMA z x' a0'
}
"#
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfuzz_analyzers::kernel_to_core;
    use numfuzz_core::{infer, Grade, Signature, Ty};

    /// Every Table 3 kernel's Λnum translation infers exactly the grade
    /// the paper reports (the central reproduction check).
    #[test]
    fn all_table3_grades_match_the_paper() {
        let sig = Signature::relative_precision();
        for b in table3() {
            let ck = kernel_to_core(&b.kernel).expect("translatable");
            let res = infer(&ck.store, &sig, ck.root, &ck.free)
                .unwrap_or_else(|e| panic!("{}: {e}", b.kernel.name));
            let expected = Ty::monad(Grade::symbol("eps").scale(&b.expected_eps_coeff), Ty::Num);
            assert_eq!(
                res.root.ty, expected,
                "{}: inferred {} expected {}",
                b.kernel.name, res.root.ty, expected
            );
        }
    }

    /// Op counts match the paper's Ops column.
    #[test]
    fn op_counts_match_table3() {
        // Our convention counts one op per rounding (two for FMA). The
        // paper's Ops column is one higher for a few rows (x_by_xy 3,
        // test02_sum8 8, sums4 4, i4 4) — see EXPERIMENTS.md.
        let expected: &[(&str, usize)] = &[
            ("hypot", 4),
            ("x_by_xy", 2),
            ("one_by_sqrtxx", 3),
            ("sqrt_add", 5),
            ("test02_sum8", 7),
            ("nonlin1", 2),
            ("test05_nonlin1", 2),
            ("verhulst", 4),
            ("predatorPrey", 7),
            ("test06_sums4_sum1", 3),
            ("test06_sums4_sum2", 3),
            ("i4", 3),
            ("Horner2", 4),
            ("Horner5", 10),
            ("Horner10", 20),
            ("Horner20", 40),
        ];
        let benches = table3();
        for (name, ops) in expected {
            let b = benches.iter().find(|b| &b.kernel.name == name).unwrap();
            assert_eq!(b.kernel.op_count(), *ops, "{name}");
        }
    }

    /// Sample inputs lie inside the declared ranges.
    #[test]
    fn samples_in_range() {
        for b in table3() {
            for row in &b.samples {
                assert_eq!(row.len(), b.kernel.inputs.len(), "{}", b.kernel.name);
                for (val, (_, range)) in row.iter().zip(&b.kernel.inputs) {
                    assert!(range.contains(val), "{}: {val} outside range", b.kernel.name);
                }
            }
        }
    }

    /// The with-error row checks out at 7·eps from the surface program.
    #[test]
    fn horner2_with_error_is_7_eps() {
        let sig = Signature::relative_precision();
        let lowered = numfuzz_core::compile(horner2_with_error_source(), &sig).unwrap();
        let res = infer(&lowered.store, &sig, lowered.root, &[]).unwrap();
        let rep = res.fn_report("Horner2we").unwrap();
        assert!(rep.inferred.to_string().ends_with("M[7*eps]num"), "{}", rep.inferred);
    }
}
