//! The [`Analyzer`]-backed differential oracle behind `numfuzz fuzz`.
//!
//! The generator, shrinker and campaign driver live in
//! [`numfuzz_fuzz`]; this module supplies the piece that must sit on the
//! public API: for every generated case it drives the full production
//! pipeline and cross-checks it against independent references.
//!
//! Per case, the oracle verifies that the program
//!
//! 1. **parses and lowers** (`Analyzer::parse` — the generator only
//!    emits well-formed surface syntax);
//! 2. **type-checks with a finite monadic grade** (`Analyzer::check` —
//!    the generator's sensitivity discipline guarantees typability, so
//!    any rejection is a checker or generator bug worth a reproducer);
//! 3. **satisfies Corollary 4.20 rigorously** (`Analyzer::validate`:
//!    ideal vs. floating-point run, exact rational enclosures, the
//!    inferred grade as the bound);
//! 4. **agrees with the reference evaluator** on the ideal result
//!    (interpreter machine vs. the fuzz crate's structural evaluator);
//! 5. **round-trips**: pretty-printing, re-parsing and re-checking
//!    yields the identical root type and grade.

use crate::{Analyzer, Inputs};
use numfuzz_core::{Instantiation, Node, Signature, TermId, VarId};
use numfuzz_fuzz::{
    validate_backward_fn, BackwardFacts, CaseFailure, CasePass, CasePlan, FailureKind, FuzzConfig,
    FuzzOutcome, IncrementalFacts, IntervalFacts, LensOutcome, Oracle,
};

/// The production differential oracle (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalyzerOracle;

fn fail(kind: FailureKind, detail: impl Into<String>) -> CaseFailure {
    CaseFailure { kind, detail: detail.into() }
}

impl Oracle for AnalyzerOracle {
    fn run_case(
        &self,
        plan: &CasePlan,
        src: &str,
        expected_ideal: Option<&crate::exact::Rational>,
    ) -> Result<CasePass, CaseFailure> {
        let mut builder =
            Analyzer::builder().signature(plan.instantiation).format(plan.format).mode(plan.mode);
        if let Some(unit) = &plan.rnd_unit {
            builder = builder.rounding_unit(unit.clone());
        }
        let analyzer = builder.build();
        let name = format!("fuzz-case-{}", plan.index);

        let program =
            analyzer.parse_named(&name, src).map_err(|d| fail(FailureKind::Parse, d.render()))?;
        let typed = analyzer.check(&program).map_err(|d| fail(FailureKind::Check, d.render()))?;
        let grade = typed.grade().ok_or_else(|| {
            fail(FailureKind::Check, format!("root type `{}` is not monadic", typed.ty()))
        })?;
        if grade.is_infinite() {
            return Err(fail(
                FailureKind::InfiniteGrade,
                format!("inferred grade is `inf` (type `{}`)", typed.ty()),
            ));
        }

        let report = analyzer
            .validate(&program, &Inputs::none())
            .map_err(|d| fail(FailureKind::Harness, d.render()))?;
        if !report.holds() {
            return Err(fail(
                FailureKind::BoundViolation,
                format!(
                    "grade {} (bound {}) violated: ideal {:?}, fp {:?}, verdict {:?}",
                    report.grade,
                    report.bound.to_sci_string(6),
                    report.ideal,
                    report.fp,
                    report.verdict
                ),
            ));
        }

        // Differential check against the independent reference
        // evaluator (interval-free programs only).
        if let Some(expected) = expected_ideal {
            match report.ideal.as_point() {
                Some(got) if got == expected => {}
                got => {
                    return Err(fail(
                        FailureKind::IdealMismatch,
                        format!(
                            "interpreter ideal result {got:?} disagrees with the reference \
                             evaluator's {expected}"
                        ),
                    ))
                }
            }
        }

        // pretty → re-parse → re-check must reproduce the exact type.
        let pretty = program.pretty(u32::MAX);
        let reparsed = analyzer.parse(&pretty).map_err(|d| {
            fail(
                FailureKind::RoundTrip,
                format!("pretty-printed program failed to re-parse: {}\n---\n{pretty}", d.render()),
            )
        })?;
        let rechecked = analyzer.check(&reparsed).map_err(|d| {
            fail(
                FailureKind::RoundTrip,
                format!("pretty-printed program failed to re-check: {}\n---\n{pretty}", d.render()),
            )
        })?;
        if rechecked.ty().to_string() != typed.ty().to_string() {
            return Err(fail(
                FailureKind::RoundTrip,
                format!(
                    "re-checked type `{}` differs from original `{}`",
                    rechecked.ty(),
                    typed.ty()
                ),
            ));
        }

        // Engines-agree leg (always on, no flag): the independent
        // interval engine must also bound the true error. The engine
        // deliberately ignores the plan's rounding-unit override and the
        // typing judgment — that independence is what gives the check
        // teeth. An abstention (program outside the engine's fragment, a
        // rounding fault, undefined enclosure slop) is a *fact*; a
        // produced bound that the true error escapes is a counterexample.
        let mut interval = IntervalFacts::default();
        if let Ok(ib) = analyzer.bound_interval(&program) {
            if let Ok(oracle_bound) = ib.oracle_bound() {
                interval.checked = true;
                if let Some(fp) = &report.fp {
                    let verdict = crate::interp::metric_for(plan.instantiation).within(
                        &report.ideal,
                        fp,
                        &oracle_bound,
                    );
                    if verdict != crate::metrics::Within::Yes {
                        return Err(fail(
                            FailureKind::IntervalViolation,
                            format!(
                                "interval bound {} (containment bound {}) escaped: ideal {:?}, \
                                 fp {:?}, verdict {verdict:?} (typed bound {})",
                                ib.bound().to_sci_string(6),
                                oracle_bound.to_sci_string(6),
                                report.ideal,
                                fp,
                                report.bound.to_sci_string(6),
                            ),
                        ));
                    }
                }
                // Raw (slop-free) bounds are the comparable numbers; a
                // tie counts for neither engine.
                interval.tighter_typed = &report.bound < ib.bound();
                interval.tighter_interval = ib.bound() < &report.bound;
            }
        }

        // Backward leg (fuzz --backward): static acceptance/rejection
        // are both facts; the lens certifies accepted functions and only
        // an uncertifiable canonical witness is a failure.
        let backward =
            if plan.backward { Some(backward_leg(&analyzer, &program, plan, src)?) } else { None };

        // Incremental leg (fuzz --incremental): an edit sequence through
        // the judgment-memoized path must stay byte-identical to the
        // from-scratch checker, forward and backward.
        let incremental = if plan.incremental { Some(incremental_leg(plan, src)?) } else { None };

        Ok(CasePass {
            ty: typed.ty().to_string(),
            vacuous: report.fp.is_none(),
            interval,
            backward,
            incremental,
        })
    }
}

/// Runs the backward analysis mode over one generated case.
///
/// The generator aims at the *forward* discipline, so Bean's strict
/// linearity routinely rejects whole programs (duplicated uses, unused
/// binders, forward-graded declarations) — those rejections are counted,
/// not failed. For the differential teeth the leg re-lowers the source,
/// strips the declared (forward-graded) function types, replaces the
/// main expression with `()`, and backward-types the definitions alone;
/// every function the judgment accepts is then handed to the
/// backward-stability lens ([`numfuzz_fuzz::validate_backward_fn`]),
/// which must exhibit perturbed inputs within the typed per-input
/// bounds on a deterministic grid.
fn backward_leg(
    analyzer: &Analyzer,
    program: &crate::Program,
    plan: &CasePlan,
    src: &str,
) -> Result<BackwardFacts, CaseFailure> {
    let mut facts = BackwardFacts::default();
    match analyzer.check_backward(program) {
        Ok(_) => facts.accepted = true,
        Err(_) => facts.rejected = true,
    }

    let sig = match plan.instantiation {
        Instantiation::RelativePrecision => Signature::relative_precision(),
        Instantiation::AbsoluteError => Signature::absolute_error(),
    };
    let mut lowered = numfuzz_core::compile(src, &sig)
        .map_err(|e| fail(FailureKind::Harness, format!("backward re-lowering failed: {e}")))?;
    let mut spine: Vec<(VarId, TermId)> = Vec::new();
    let mut cur = lowered.root;
    while let Node::LetFun(v, _, lam, rest) = *lowered.store.node(cur) {
        spine.push((v, lam));
        cur = rest;
    }
    let mut rebuilt = lowered.store.unit();
    for (v, lam) in spine.iter().rev() {
        rebuilt = lowered.store.let_fun_at(*v, None, *lam, rebuilt);
    }
    let result = match numfuzz_core::infer_backward(&lowered.store, &sig, rebuilt, &[]) {
        Ok(result) => result,
        // Some definition is backward-untypeable on its own: a fact.
        Err(_) => return Ok(facts),
    };
    for report in &result.fns {
        let named = |v: &VarId| lowered.store.var_name(*v) == report.name;
        let Some(&(_, lam)) = spine.iter().rev().find(|(v, _)| named(v)) else { continue };
        match validate_backward_fn(
            &lowered.store,
            lam,
            &report.inputs,
            plan.instantiation,
            plan.format,
            plan.mode,
        ) {
            LensOutcome::Validated { points } => {
                facts.validated_fns += 1;
                facts.grid_points += points;
            }
            LensOutcome::Skipped { .. } => facts.skipped_fns += 1,
            LensOutcome::Violation { detail } => {
                return Err(fail(
                    FailureKind::BackwardViolation,
                    format!("function `{}` ({}): {detail}", report.name, plan.describe()),
                ));
            }
        }
    }
    Ok(facts)
}

/// Runs the incremental analysis mode over one generated case: the
/// original program plus a deterministic sequence of single-constant
/// edits, each checked from scratch *and* through a session-persistent
/// judgment cache ([`Analyzer::check_incremental`]). Outputs must match
/// byte for byte on every variant — forward reports, backward reports,
/// and diagnostics alike. The edits replay a `numfuzz watch` session:
/// the cache carries over from variant to variant, so later variants
/// exercise genuine cross-edit replay, not just cold insertion.
fn incremental_leg(plan: &CasePlan, src: &str) -> Result<IncrementalFacts, CaseFailure> {
    let mut builder =
        Analyzer::builder().signature(plan.instantiation).format(plan.format).mode(plan.mode);
    if let Some(unit) = &plan.rnd_unit {
        builder = builder.rounding_unit(unit.clone());
    }
    let analyzer = builder.judgment_cache_bytes(8 << 20).build();

    let mut variants = vec![src.to_string()];
    variants.extend(constant_mutations(src, plan.case_seed, 3));
    let mut facts = IncrementalFacts::default();
    for (n, variant) in variants.iter().enumerate() {
        // Constant mutations keep the surface syntax well-formed by
        // construction; a parse failure would be a mutator bug, and
        // parsing happens before any memoization anyway.
        let program = match analyzer.parse_named(&format!("fuzz-edit-{n}"), variant) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let mismatch = |leg: &str, plain: &str, memo: &str| {
            fail(
                FailureKind::IncrementalMismatch,
                format!(
                    "{leg} output diverged on edit {n} ({}):\n--- from scratch ---\n{plain}\n\
                     --- incremental ---\n{memo}\n--- program ---\n{variant}",
                    plan.describe()
                ),
            )
        };

        let plain = analyzer.check(&program).map(|t| crate::serve::check_report(&t));
        let memo = analyzer.check_incremental(&program);
        match (&plain, &memo) {
            (Ok(p), Ok((t, counts))) => {
                let m = crate::serve::check_report(t);
                if *p != m {
                    return Err(mismatch("forward", p, &m));
                }
                facts.reused += counts.reused;
                facts.recomputed += counts.recomputed;
            }
            (Err(dp), Err(dm)) => {
                if dp.render() != dm.render() {
                    return Err(mismatch("forward", &dp.render(), &dm.render()));
                }
            }
            _ => {
                let p = match &plain {
                    Ok(s) => s.clone(),
                    Err(d) => d.render(),
                };
                return Err(mismatch("forward", &p, "opposite outcome"));
            }
        }

        let plain =
            analyzer.check_backward(&program).map(|t| crate::serve::backward_check_report(&t));
        let memo = analyzer.check_backward_incremental(&program);
        match (&plain, &memo) {
            (Ok(p), Ok((t, counts))) => {
                let m = crate::serve::backward_check_report(t);
                if *p != m {
                    return Err(mismatch("backward", p, &m));
                }
                facts.reused += counts.reused;
                facts.recomputed += counts.recomputed;
            }
            (Err(dp), Err(dm)) => {
                if dp.render() != dm.render() {
                    return Err(mismatch("backward", &dp.render(), &dm.render()));
                }
            }
            _ => {
                let p = match &plain {
                    Ok(s) => s.clone(),
                    Err(d) => d.render(),
                };
                return Err(mismatch("backward", &p, "opposite outcome"));
            }
        }
        facts.edits += 1;
    }
    Ok(facts)
}

/// Deterministic single-constant edits of a rendered program: each pick
/// bumps one standalone integer digit run (never a digit inside an
/// identifier), so the variant stays parseable and differs from the
/// original in exactly one `Const` leaf (or one annotation constant).
fn constant_mutations(src: &str, seed: u64, count: usize) -> Vec<String> {
    let runs = literal_runs(src);
    if runs.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let pick = (seed.wrapping_add(i as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 32) as usize
            % runs.len();
        let (start, end) = runs[pick];
        if let Ok(v) = src[start..end].parse::<u64>() {
            out.push(format!("{}{}{}", &src[..start], v + 1, &src[end..]));
        }
    }
    out
}

/// Byte ranges of standalone integer digit runs in `src` (bounded length,
/// not preceded by an identifier character or `.`).
fn literal_runs(src: &str) -> Vec<(usize, usize)> {
    let bytes = src.as_bytes();
    let mut runs = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let standalone = i == 0 || {
                let p = bytes[i - 1] as char;
                !(p.is_ascii_alphanumeric() || p == '_' || p == '.')
            };
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if standalone && i - start <= 12 {
                runs.push((start, i));
            }
        } else {
            i += 1;
        }
    }
    runs
}

/// Runs a fuzz campaign with the production oracle.
pub fn fuzz_campaign(cfg: &FuzzConfig) -> FuzzOutcome {
    numfuzz_fuzz::run(cfg, &AnalyzerOracle)
}
