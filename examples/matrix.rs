//! Table 4 at example scale: generate an n×n matrix-multiply program with
//! a rounding after every operation, type-check it, compare the inferred
//! element-wise bound against the textbook γ_n bound, and watch checking
//! time scale with program size.
//!
//! ```sh
//! cargo run --release --example matrix
//! ```

use numfuzz::analyzers::std_bounds;
use numfuzz::benchsuite::matrix_multiply;
use numfuzz::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sig = Signature::relative_precision();
    let u = Rational::pow2(-52);

    println!("n  | ops     | nodes    | grade        | bound     | gamma_n   | t(check)");
    for n in [2usize, 4, 8, 16] {
        let g = matrix_multiply(n);
        let nodes = g.store.len();
        let t0 = Instant::now();
        let res = infer(&g.store, &sig, g.root, &g.free)?;
        let dt = t0.elapsed();
        let grade = match &res.root.ty {
            Ty::Monad(grade, _) => grade.clone(),
            other => panic!("unexpected {other}"),
        };
        let bound = numfuzz::metrics::rp::rp_to_rel_bound(&grade.eval_eps(&u).expect("numeric"))
            .expect("small");
        let gamma = std_bounds::inner_product(n as u64, &u).expect("small");
        println!(
            "{:<2} | {:<7} | {:<8} | {:<12} | {:<9} | {:<9} | {:?}",
            n,
            g.ops,
            nodes,
            grade.to_string(),
            bound.to_sci_string(3),
            gamma.to_sci_string(3),
            dt,
        );
    }
    println!();
    println!("The inferred (2n-1)*eps element-wise bound is ~2x the literature's");
    println!("gamma_n = n*u/(1-n*u): Lnum rounds the products and the partial sums");
    println!("separately, while the fused inner-product analysis amortizes them —");
    println!("the same factor the paper reports in Table 4.");
    println!("(Full scale: NUMFUZZ_LARGE=1 cargo run --release -p numfuzz-bench --bin table4.)");
    Ok(())
}
