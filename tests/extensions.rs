//! Integration tests for the Section 7 extensions and the secondary
//! (absolute-error) instantiation, through the facade's
//! `validate_with_rounding` / builder knobs.

use numfuzz::interp::rounding::{ChoiceRounding, StatefulRounding, StochasticRounding};
use numfuzz::prelude::*;
use rand::SeedableRng;

const POLY: &str = r#"
    function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
    function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
    function poly (x: ![3.0]num) : M[3*eps]num {
        let [x1] = x;
        let a = mulfp (x1, x1);
        let b = mulfp (a, x1);
        addfp (|b, 1|)
    }
    poly [1.7]{3.0}
"#;

/// A session at the small format the §7.2 tests use.
fn small_session() -> Analyzer {
    Analyzer::builder().format(Format::new(7, 40)).mode(RoundingMode::TowardPositive).build()
}

#[test]
fn nondeterministic_rounding_all_resolutions_within_bound() {
    let session = small_session();
    let program = session.parse(POLY).expect("parses");
    let format = session.format();
    let modes =
        vec![RoundingMode::TowardPositive, RoundingMode::TowardNegative, RoundingMode::NearestEven];
    // 3 roundings, 3 modes: 27 resolutions, all must hold (TP+ reading).
    let mut distinct = std::collections::HashSet::new();
    for choices in ChoiceRounding::all_choice_vectors(modes.len(), 3) {
        let mut fp = ChoiceRounding::new(format, modes.clone(), choices.clone());
        let rep =
            session.validate_with_rounding(&program, &Inputs::none(), &mut fp).expect("harness");
        assert!(rep.holds(), "choices {choices:?}");
        if let Some(i) = &rep.fp {
            distinct.insert(i.lo().to_string());
        }
    }
    // Non-determinism is real: several distinct outcomes appear.
    assert!(distinct.len() > 1, "expected multiple resolutions, got {distinct:?}");
}

#[test]
fn stateful_rounding_bound_for_every_initial_state() {
    let session = small_session();
    let program = session.parse(POLY).expect("parses");
    let modes = vec![
        RoundingMode::TowardPositive,
        RoundingMode::NearestEven,
        RoundingMode::TowardNegative,
        RoundingMode::TowardZero,
    ];
    for s0 in 0..modes.len() {
        let mut fp = StatefulRounding { format: session.format(), modes: modes.clone(), state: s0 };
        let rep =
            session.validate_with_rounding(&program, &Inputs::none(), &mut fp).expect("harness");
        assert!(rep.holds(), "initial state {s0}");
    }
}

#[test]
fn stochastic_rounding_every_sample_within_bound() {
    let session = small_session();
    let program = session.parse(POLY).expect("parses");
    let u = session.rounding_unit();
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for seed in 0..32u64 {
        let mut fp = StochasticRounding {
            format: session.format(),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        };
        let rep =
            session.validate_with_rounding(&program, &Inputs::none(), &mut fp).expect("harness");
        // Worst-case (every sample) satisfies the bound, hence so does
        // the expectation (the §7.2 TD monad's third variant).
        assert!(rep.holds(), "seed {seed}");
        if let Some(m) = rep.measured {
            sum += m;
            n += 1;
        }
    }
    let mean = sum / n as f64;
    let bound = Rational::from_int(3).mul(&u).to_f64();
    assert!(mean <= bound, "mean distance {mean} above bound {bound}");
}

#[test]
fn exceptional_semantics_err_and_vacuity() {
    // `Analyzer::validate` is the checked (faulting) semantics of §7.1.
    let session =
        Analyzer::builder().format(Format::new(7, 10)).mode(RoundingMode::NearestEven).build();

    // Values that overflow a p=7, emax=10 format (max ~2032).
    let big = session.parse(&POLY.replace("poly [1.7]{3.0}", "poly [100]{3.0}")).expect("parses");
    let rep = session.validate(&big, &Inputs::none()).expect("harness");
    assert!(rep.fp.is_none(), "expected err (overflow): {rep:?}");
    assert!(rep.holds(), "Cor. 7.5 is vacuous on err");

    // Underflow likewise faults.
    let tiny =
        session.parse(&POLY.replace("poly [1.7]{3.0}", "poly [0.001]{3.0}")).expect("parses");
    let rep = session.validate(&tiny, &Inputs::none()).expect("harness");
    assert!(rep.fp.is_none(), "expected err (underflow): {rep:?}");
}

#[test]
fn absolute_error_instantiation_end_to_end() {
    // delta = u * M with all rounded intermediates |v| <= 4.
    let format = Format::new(10, 30);
    let mode = RoundingMode::NearestEven;
    let delta = format.unit_roundoff(mode).mul(&Rational::from_int(4));
    let session = Analyzer::builder()
        .signature(Instantiation::AbsoluteError)
        .format(format)
        .mode(mode)
        .rounding_unit(delta)
        .build();

    let src = r#"
        function lerp (x: num) (y: num) : M[2*delta]num {
            s = add (x, y);
            h = half s;
            m = rnd h;
            let m1 = m;
            d = sub (m1, 1);
            rnd d
        }
        lerp 3 0.5
    "#;
    let program = session.parse(src).expect("parses");
    let typed = session.check(&program).expect("checks");
    assert_eq!(typed.ty().to_string(), "M[2*delta]num");

    // The bound read off the type is absolute: 2*delta itself.
    let bound = session.bound(&typed).expect("bound");
    assert_eq!(bound.alpha, session.rounding_unit().mul(&Rational::from_int(2)));

    use numfuzz::interp::rounding::ModeRounding;
    let mut fp = ModeRounding { format, mode };
    let rep = session.validate_with_rounding(&program, &Inputs::none(), &mut fp).expect("harness");
    assert!(rep.holds(), "{rep:?}");

    // Subtraction is not typable in the RP instantiation (Section 6.1):
    // the default-signature parse rejects `sub` outright, with a span.
    let err = Program::parse(src).expect_err("RP has no subtraction");
    assert_eq!(err.code, ErrorCode::UnboundName);
    assert!(err.span.is_some(), "diagnostic should carry a span: {err}");
}

#[test]
fn sensitivity_only_analysis_without_rounding() {
    // pow2 (Section 2.2): a pure sensitivity judgment, no monad involved.
    let analyzer = Analyzer::new();
    let program = Program::parse(
        r#"
        function pow2 (x: ![2.0]num) : num {
            let [x1] = x;
            mul (x1, x1)
        }
        pow2 [1.5]{2.0}
    "#,
    )
    .expect("parses");
    let typed = analyzer.check(&program).expect("checks");
    assert_eq!(typed.function("pow2").unwrap().inferred.to_string(), "![2]num -o num");
    // A non-monadic program has no eq. (8) bound; the facade says so
    // with a structured code instead of panicking.
    let err = analyzer.bound(&typed).expect_err("no monad");
    assert_eq!(err.code, ErrorCode::NotMonadicNum);

    // Metric preservation, concretely: inputs at RP distance d give
    // outputs at distance exactly 2d (squaring doubles log-distance).
    let run = |x: &str| -> Rational {
        let src = format!(
            "function pow2 (x: ![2.0]num) : num {{ let [x1] = x; mul (x1, x1) }}\npow2 [{x}]{{2.0}}"
        );
        let program = Program::parse(&src).expect("parses");
        let exec = analyzer.run(&program, &Inputs::none()).expect("runs");
        exec.ideal.as_num().unwrap().as_point().unwrap().clone()
    };
    let (a, b) = (run("1.5"), run("3"));
    // RP(1.5, 3) = ln 2; RP(2.25, 9) = ln 4 = 2 ln 2: check multiplicatively.
    assert_eq!(b.div(&a), Rational::from_int(4));
}
