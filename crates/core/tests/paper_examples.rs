//! Golden tests: the checker must reproduce the paper's inferred types and
//! error grades for every worked example, with *exact* symbolic grades.
//!
//! Sources: Section 2.2–2.3 (pow2, pow2', pow4), Fig. 7 (mulfp/addfp),
//! Fig. 8 (MA, FMA), Fig. 9 (Horner2, Horner2_with_error), Section 5.1
//! (case1), and the Table 3 `hypot` kernel whose 2.5·eps bound the paper
//! reports as 5.55e-16.

use numfuzz_core::{compile, infer, CheckError, CheckResult, Signature};

fn check(src: &str) -> CheckResult {
    let sig = Signature::relative_precision();
    let lowered = compile(src, &sig).unwrap_or_else(|e| panic!("compile failed: {e}"));
    infer(&lowered.store, &sig, lowered.root, &[]).unwrap_or_else(|e| panic!("check failed: {e}"))
}

fn check_err(src: &str) -> CheckError {
    let sig = Signature::relative_precision();
    let lowered = compile(src, &sig).unwrap_or_else(|e| panic!("compile failed: {e}"));
    infer(&lowered.store, &sig, lowered.root, &[]).expect_err("expected a type error")
}

/// Fig. 7: defined rounding operations.
const FIG7: &str = r#"
function mulfp (xy: (num, num)) : M[eps]num {
    s = mul xy;
    rnd s
}
function addfp (xy: <num, num>) : M[eps]num {
    s = add xy;
    rnd s
}
function divfp (xy: (num, num)) : M[eps]num {
    s = div xy;
    rnd s
}
function sqrtfp (x: ![1/2]num) : M[eps]num {
    s = sqrt x;
    rnd s
}
"#;

#[test]
fn fig7_rounded_operations() {
    let r = check(FIG7);
    assert_eq!(r.fn_report("mulfp").unwrap().inferred.to_string(), "(num, num) -o M[eps]num");
    assert_eq!(r.fn_report("addfp").unwrap().inferred.to_string(), "<num, num> -o M[eps]num");
    assert_eq!(r.fn_report("divfp").unwrap().inferred.to_string(), "(num, num) -o M[eps]num");
    assert_eq!(r.fn_report("sqrtfp").unwrap().inferred.to_string(), "![1/2]num -o M[eps]num");
}

#[test]
fn pow2_is_2_sensitive() {
    // Section 2.2: pow2 ≜ λx. mul (x, x) : !2 num ⊸ num.
    let r = check(
        r#"
        function pow2 (x: ![2.0]num) : num {
            let [x1] = x;
            mul (x1, x1)
        }
        "#,
    );
    assert_eq!(r.fn_report("pow2").unwrap().inferred.to_string(), "![2]num -o num");
}

#[test]
fn pow2_prime_rounds_once() {
    // Section 2.3: pow2' : !2 num ⊸ M_u num.
    let r = check(
        r#"
        function pow2' (x: ![2.0]num) : M[eps]num {
            let [x1] = x;
            s = mul (x1, x1);
            rnd s
        }
        "#,
    );
    assert_eq!(r.fn_report("pow2'").unwrap().inferred.to_string(), "![2]num -o M[eps]num");
}

#[test]
fn pow4_accumulates_3u() {
    // Section 2.3: pow4 = pow2' ∘ pow2' : !4 num ⊸ M_{3u} num, the
    // motivating 2u + u composition example.
    let r = check(
        r#"
        function pow2' (x: ![2.0]num) : M[eps]num {
            let [x1] = x;
            s = mul (x1, x1);
            rnd s
        }
        function pow4 (x: ![4.0]num) : M[3*eps]num {
            let [x1] = x;
            let y = pow2' [x1]{2.0};
            pow2' [y]{2.0}
        }
        "#,
    );
    assert_eq!(r.fn_report("pow4").unwrap().inferred.to_string(), "![4]num -o M[3*eps]num");
}

#[test]
fn fig8_ma_and_fma() {
    // Fig. 8: MA incurs 2·eps (two roundings), FMA a single eps.
    let src = format!(
        "{FIG7}
        function MA (x: num) (y: num) (z: num) : M[2*eps]num {{
            s = mulfp (x,y);
            let a = s;
            addfp (|a,z|)
        }}
        function FMA (x: num) (y: num) (z: num) : M[eps]num {{
            a = mul (x,y);
            b = add (|a,z|);
            rnd b
        }}
        "
    );
    let r = check(&src);
    assert_eq!(r.fn_report("MA").unwrap().inferred.to_string(), "num -o num -o num -o M[2*eps]num");
    assert_eq!(r.fn_report("FMA").unwrap().inferred.to_string(), "num -o num -o num -o M[eps]num");
}

const FMA_DEF: &str = r#"
function FMA (x: num) (y: num) (z: num) : M[eps]num {
    a = mul (x,y);
    b = add (|a,z|);
    rnd b
}
"#;

#[test]
fn fig9_horner2() {
    // Fig. 9: Horner2 evaluates a2 x² + a1 x + a0 with two FMAs: 2·eps,
    // and is 2-sensitive in x.
    let src = format!(
        "{FMA_DEF}
        function Horner2 (a0: num) (a1: num) (a2: num) (x: ![2.0]num) : M[2*eps]num {{
            let [x1] = x;
            s1 = FMA a2 x1 a1;
            let z = s1;
            FMA z x1 a0
        }}
        "
    );
    let r = check(&src);
    assert_eq!(
        r.fn_report("Horner2").unwrap().inferred.to_string(),
        "num -o num -o num -o ![2]num -o M[2*eps]num"
    );
}

#[test]
fn fig9_horner2_with_error() {
    // Fig. 9: with eps-grade error on every input, the total is 7·eps
    // (5·eps from sensitivity-amplified input error + 2·eps fresh).
    let src = format!(
        "{FMA_DEF}
        function Horner2we (a0: M[eps]num) (a1: M[eps]num) (a2: M[eps]num) (x: ![2.0]M[eps]num) : M[7*eps]num {{
            let [x1] = x;
            let a0' = a0; let a1' = a1;
            let a2' = a2; let x' = x1;
            s1 = FMA a2' x' a1';
            let z = s1;
            FMA z x' a0'
        }}
        "
    );
    let r = check(&src);
    assert_eq!(
        r.fn_report("Horner2we").unwrap().inferred.to_string(),
        "M[eps]num -o M[eps]num -o M[eps]num -o ![2]M[eps]num -o M[7*eps]num"
    );
}

#[test]
fn pow4_with_input_error_matches_eq11() {
    // Eq. (11): error u' in the input gives 3·eps + 4·u' out. The paper
    // displays pow4' : M[u']num ⊸ M[3·eps + 4·u']num, eliding the `!4`
    // that its own (MuE) rule requires on the argument (pow4 is
    // 4-sensitive, so the monadic input must be boxed at 4, exactly as
    // Fig. 9 boxes Horner2_with_error's x at 2). We infer the sound type.
    let r = check(
        r#"
        function pow2' (x: ![2.0]num) : M[eps]num {
            let [x1] = x;
            s = mul (x1, x1);
            rnd s
        }
        function pow4' (mx: ![4.0]M[u']num) : M[3*eps + 4*u']num {
            let [m] = mx;
            let x = m;
            let y = pow2' [x]{2.0};
            pow2' [y]{2.0}
        }
        "#,
    );
    assert_eq!(
        r.fn_report("pow4'").unwrap().inferred.to_string(),
        "![4]M[u']num -o M[3*eps + 4*u']num"
    );
}

#[test]
fn section51_case1_conditional() {
    // Section 5.1: case1 squares positives, else returns 0; one rounding.
    // The guard forces infinite sensitivity: !∞ num ⊸ M_eps num.
    let r = check(
        r#"
        function case1 (x: ![inf]num) : M[eps]num {
            let [x1] = x;
            c = is_pos x1;
            if c then {
                s = mul (x1, x1);
                rnd s
            } else ret 1
        }
        "#,
    );
    assert_eq!(r.fn_report("case1").unwrap().inferred.to_string(), "![inf]num -o M[eps]num");
}

#[test]
fn hypot_is_2_5_eps() {
    // Table 3 `hypot`: sqrt(x² + y²) with four roundings infers 5/2·eps;
    // via eq. (8), 2.5 · 2⁻⁵² / (1 − ·) ≈ 5.55e-16 as the paper reports.
    let src = format!(
        "{FIG7}
        function hypot (x: num) (y: num) : M[5/2*eps]num {{
            let a = mulfp (x,x);
            let b = mulfp (y,y);
            let c = addfp (|a,b|);
            sqrtfp [c]{{1/2}}
        }}
        "
    );
    let r = check(&src);
    assert_eq!(r.fn_report("hypot").unwrap().inferred.to_string(), "num -o num -o M[5/2*eps]num");
}

#[test]
fn lambda_overuse_is_rejected() {
    // λx. mul (x, x) at type num ⊸ num is exactly what (⊸I) must reject:
    // the body is 2-sensitive.
    let err = check_err("function bad (x: num) : num { mul (x, x) }");
    match err {
        CheckError::LambdaSensitivity { var, got } => {
            assert_eq!(var, "x");
            assert_eq!(got.to_string(), "2");
        }
        other => panic!("expected LambdaSensitivity, got {other}"),
    }
}

#[test]
fn declared_bound_too_tight_is_rejected() {
    // Claiming a single eps for two roundings must fail.
    let err = check_err(
        r#"
        function f (x: num) : M[eps]num {
            a = mul (x, 2);
            b = rnd a;
            let c = b;
            d = mul (c, 3);
            rnd d
        }
        "#,
    );
    match err {
        CheckError::DeclaredMismatch { name, .. } => assert_eq!(name, "f"),
        other => panic!("expected DeclaredMismatch, got {other}"),
    }
}

#[test]
fn subsumption_allows_looser_declaration() {
    // Declaring 10*eps for a 2*eps function is fine (Subsumption).
    let r = check(
        r#"
        function f (x: num) : M[10*eps]num {
            a = mul (x, 2);
            b = rnd a;
            let c = b;
            d = mul (c, 3);
            rnd d
        }
        "#,
    );
    let rep = r.fn_report("f").unwrap();
    assert_eq!(rep.inferred.to_string(), "num -o M[2*eps]num");
    assert_eq!(rep.assigned.to_string(), "num -o M[10*eps]num");
}

#[test]
fn tensor_pair_double_use_rejected_with_pair_ok() {
    // Using a variable twice through ⊗ costs sensitivity 1+1 = 2; through
    // × it costs max = 1. This is the (⊗I)/(×I) distinction of Fig. 10.
    let err = check_err("function t (x: num) : (num, num) { (x, x) }");
    assert!(matches!(err, CheckError::LambdaSensitivity { .. }));
    let r = check("function w (x: num) : <num, num> { (|x, x|) }");
    assert_eq!(r.fn_report("w").unwrap().inferred.to_string(), "num -o <num, num>");
}

#[test]
fn sqrt_halves_sensitivity() {
    // x through sqrt alone is 1/2-sensitive; boxed at 1/2 the λ sees 1/2 <= 1.
    let r = check("function s (x: num) : num { sqrt x }");
    assert_eq!(r.fn_report("s").unwrap().inferred.to_string(), "num -o num");
}

#[test]
fn serial_sum_grades_accumulate_linearly() {
    // Four adds rounded in sequence: 3·eps… no wait, x0+x1, +x2, +x3 is
    // three rounded additions: 3·eps (the test02_sum8 pattern of Table 3).
    let src = format!(
        "{FIG7}
        function sum4 (x0: num) (x1: num) (x2: num) (x3: num) : M[3*eps]num {{
            let s1 = addfp (|x0, x1|);
            let s2 = addfp (|s1, x2|);
            addfp (|s2, x3|)
        }}
        "
    );
    let r = check(&src);
    assert_eq!(
        r.fn_report("sum4").unwrap().inferred.to_string(),
        "num -o num -o num -o num -o M[3*eps]num"
    );
}

#[test]
fn ret_costs_nothing() {
    let r = check("function r (x: num) : M[0]num { ret x }");
    assert_eq!(r.fn_report("r").unwrap().inferred.to_string(), "num -o M[0]num");
}
