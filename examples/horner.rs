//! Horner's scheme (the paper's Section 5 running example): per-step FMA
//! rounding, error growth linear in the degree, and error *propagation*
//! from inputs that already carry roundoff (eq. 13 / Fig. 9).
//!
//! ```sh
//! cargo run --example horner
//! ```

use numfuzz::benchsuite::horner;
use numfuzz::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sig = Signature::relative_precision();

    // ---- Part 1: Horner2 and Horner2_with_error (Fig. 9) ----
    let src = format!(
        "{}\n{}",
        numfuzz::benchsuite::horner2_with_error_source(),
        r#"function Horner2 (a0: num) (a1: num) (a2: num) (x: ![2.0]num) : M[2*eps]num {
            let [x1] = x;
            s1 = FMA a2 x1 a1;
            let z = s1;
            FMA z x1 a0
        }"#
    );
    let lowered = compile(&src, &sig)?;
    let res = infer(&lowered.store, &sig, lowered.root, &[])?;
    println!("Fig. 9 reproductions:");
    for name in ["Horner2", "Horner2we"] {
        let rep = res.fn_report(name).expect("present");
        println!("  {:<9} : {}", name, rep.inferred);
    }
    println!();
    println!("Reading the with-error type (eq. 13): inputs at eps of error each");
    println!("contribute 5*eps through the sensitivities (3 coefficients at 1,");
    println!("x at 2), plus 2*eps of fresh rounding = 7*eps total.\n");

    // ---- Part 2: error growth is linear in the degree ----
    println!("degree | grade       | relative bound (binary64, RU)");
    let u = Format::BINARY64.unit_roundoff(RoundingMode::TowardPositive);
    for n in [2usize, 5, 10, 50, 100] {
        let g = horner(n);
        let res = infer(&g.store, &sig, g.root, &g.free)?;
        let alpha = match &res.root.ty {
            Ty::Monad(grade, _) => grade.eval_eps(&u).expect("numeric"),
            other => panic!("unexpected {other}"),
        };
        let rel = numfuzz::metrics::rp::rp_to_rel_bound(&alpha).expect("small");
        println!("  {:>4} | {:<11} | {}", n, format!("{}", grade_of(&res.root.ty)), rel.to_sci_string(3));
    }

    // ---- Part 3: validate the degree-50 bound on a real run ----
    let g = horner(50);
    let inputs: Vec<(numfuzz::core::VarId, Value)> = g
        .free
        .iter()
        .map(|(v, _)| (*v, Value::num(Rational::ratio(5, 4))))
        .collect();
    let format = Format::new(12, 60); // visible error
    let mode = RoundingMode::TowardPositive;
    let mut fp = ModeRounding { format, mode };
    let rep = validate(&g.store, &sig, g.root, &inputs, &mut fp, &format.unit_roundoff(mode))?;
    println!("\nHorner50 at x = 1.25 in {format}:");
    println!("  bound    {}", rep.bound.to_sci_string(3));
    if let Some(m) = rep.measured {
        println!("  measured {m:.3e}");
    }
    assert!(rep.holds());
    println!("  bound holds (rigorous)");
    Ok(())
}

fn grade_of(t: &Ty) -> String {
    match t {
        Ty::Monad(g, _) => g.to_string(),
        other => other.to_string(),
    }
}
