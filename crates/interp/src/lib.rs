//! # numfuzz-interp
//!
//! Operational semantics for Λnum (the `numfuzz` reproduction of
//! *Numerical Fuzz*, PLDI 2024):
//!
//! * [`eval`] — a big-step abstract machine (explicit stack, handles
//!   million-node programs) parameterized by a [`Rounding`] strategy;
//! * [`rounding`] — the ideal identity semantics, the four IEEE modes,
//!   the §7.1 exceptional semantics (`err` on overflow/underflow), and
//!   the §7.2 non-deterministic / state-dependent / stochastic variants;
//! * [`smallstep`] — a substitution-based reference implementation of the
//!   Fig. 3 step relation, cross-checked against the machine;
//! * [`validate`] — the error-soundness checker: rigorously verifies
//!   Corollary 4.20 (`d(⟦e⟧_id, ⟦e⟧_fp) <= r` for `⊢ e : M_r num`) on
//!   actual runs.
//!
//! ```
//! use numfuzz_core::{compile, Signature};
//! use numfuzz_interp::{validate, rounding::ModeRounding};
//! use numfuzz_softfloat::{Format, RoundingMode};
//!
//! let sig = Signature::relative_precision();
//! let src = "function f (x: num) : M[eps]num { s = mul (x, 0.3); rnd s }\nf 0.1";
//! let lowered = compile(src, &sig)?;
//! let format = Format::BINARY64;
//! let mode = RoundingMode::TowardPositive;
//! let mut fp = ModeRounding { format, mode };
//! let report = validate(&lowered.store, &sig, lowered.root, &[], &mut fp,
//!                       &format.unit_roundoff(mode))?;
//! assert!(report.holds()); // RP(ideal, fp) <= eps, rigorously
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
// SoundnessError carries full types/grades for diagnostics; validation is not a hot error path.
#![allow(clippy::result_large_err)]
#![warn(missing_docs)]

mod eval;
pub mod rounding;
pub mod smallstep;
mod soundness;
mod value;

pub use eval::{eval, EvalConfig, EvalError};
pub use rounding::{RoundOutcome, Rounding};
pub use soundness::{
    metric_for, report_for, validate, validate_with, SoundnessError, SoundnessReport,
};
pub use value::{Closure, Value};
