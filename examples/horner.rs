//! Horner's scheme (the paper's Section 5 running example): per-step FMA
//! rounding, error growth linear in the degree, and error *propagation*
//! from inputs that already carry roundoff (eq. 13 / Fig. 9).
//!
//! ```sh
//! cargo run --example horner
//! ```

use numfuzz::benchsuite::horner;
use numfuzz::interp::rounding::ModeRounding;
use numfuzz::prelude::*;

fn main() -> Result<(), Diagnostic> {
    let analyzer = Analyzer::new(); // RP, binary64, round toward +inf

    // ---- Part 1: Horner2 and Horner2_with_error (Fig. 9) ----
    let src = format!(
        "{}\n{}",
        numfuzz::benchsuite::horner2_with_error_source(),
        r#"function Horner2 (a0: num) (a1: num) (a2: num) (x: ![2.0]num) : M[2*eps]num {
            let [x1] = x;
            s1 = FMA a2 x1 a1;
            let z = s1;
            FMA z x1 a0
        }"#
    );
    let program = analyzer.parse(&src)?;
    let typed = analyzer.check(&program)?;
    println!("Fig. 9 reproductions:");
    for name in ["Horner2", "Horner2we"] {
        let rep = typed.function(name).expect("present");
        println!("  {:<9} : {}", name, rep.inferred);
    }
    println!();
    println!("Reading the with-error type (eq. 13): inputs at eps of error each");
    println!("contribute 5*eps through the sensitivities (3 coefficients at 1,");
    println!("x at 2), plus 2*eps of fresh rounding = 7*eps total.\n");

    // ---- Part 2: error growth is linear in the degree ----
    println!("degree | grade       | relative bound (binary64, RU)");
    for n in [2usize, 5, 10, 50, 100] {
        let program = Program::from_generated(horner(n));
        let typed = analyzer.check(&program)?;
        let bound = analyzer.bound(&typed)?;
        println!(
            "  {:>4} | {:<11} | {}",
            n,
            bound.grade.to_string(),
            bound.relative.expect("small").to_sci_string(3)
        );
    }

    // ---- Part 3: validate the degree-50 bound on a real run ----
    let format = Format::new(12, 60); // visible error
    let session = Analyzer::builder().format(format).mode(RoundingMode::TowardPositive).build();
    let program = Program::from_generated(horner(50));
    let inputs =
        Inputs::positional(program.free().iter().map(|_| Value::num(Rational::ratio(5, 4))));
    // Plain mode rounding (no §7.1 faulting), as the paper's Table 4 runs.
    let mut fp = ModeRounding { format, mode: RoundingMode::TowardPositive };
    let rep = session.validate_with_rounding(&program, &inputs, &mut fp)?;
    println!("\nHorner50 at x = 1.25 in {format}:");
    println!("  bound    {}", rep.bound.to_sci_string(3));
    if let Some(m) = rep.measured {
        println!("  measured {m:.3e}");
    }
    assert!(rep.holds());
    println!("  bound holds (rigorous)");
    Ok(())
}
