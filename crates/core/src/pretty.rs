//! A compact pretty-printer for arena terms, used in error messages,
//! examples and debugging. Output follows the surface syntax; it is
//! re-parsable for programs that avoid exotic nesting, but its contract is
//! readability, not round-tripping.

use crate::term::{Node, TermId, TermStore};

/// Renders a term. Iterative in spirit but recursion-bounded by
/// `max_depth`: deeper structure prints as `...` (benchmark terms are
/// millions of nodes deep; printing them fully is never what you want).
pub fn pretty_term(store: &TermStore, id: TermId, max_depth: u32) -> String {
    let mut out = String::new();
    go(store, id, max_depth, &mut out);
    out
}

fn go(store: &TermStore, id: TermId, depth: u32, out: &mut String) {
    if depth == 0 {
        out.push_str("...");
        return;
    }
    let d = depth - 1;
    match store.node(id) {
        Node::Var(v) => out.push_str(store.var_name(*v)),
        Node::UnitVal => out.push_str("()"),
        Node::Const(k) => out.push_str(&store.constant(*k).to_string()),
        Node::PairW(a, b) => {
            out.push_str("(|");
            go(store, *a, d, out);
            out.push_str(", ");
            go(store, *b, d, out);
            out.push_str("|)");
        }
        Node::PairT(a, b) => {
            out.push('(');
            go(store, *a, d, out);
            out.push_str(", ");
            go(store, *b, d, out);
            out.push(')');
        }
        Node::Inl(v, _) => {
            out.push_str("inl ");
            go(store, *v, d, out);
        }
        Node::Inr(v, _) => {
            out.push_str("inr ");
            go(store, *v, d, out);
        }
        Node::Lam(x, ty, body) => {
            out.push_str("\\(");
            out.push_str(store.var_name(*x));
            out.push_str(": ");
            out.push_str(&store.ty(*ty).to_string());
            out.push_str("). ");
            go(store, *body, d, out);
        }
        Node::BoxIntro(g, v) => {
            out.push('[');
            go(store, *v, d, out);
            out.push_str("]{");
            out.push_str(&store.grade(*g).to_string());
            out.push('}');
        }
        Node::Rnd(v) => {
            out.push_str("rnd ");
            go(store, *v, d, out);
        }
        Node::Ret(v) => {
            out.push_str("ret ");
            go(store, *v, d, out);
        }
        Node::Err(g, t) => {
            out.push_str(&format!("err[{}]{{{}}}", store.grade(*g), store.ty(*t)));
        }
        Node::App(f, a) => {
            go(store, *f, d, out);
            out.push(' ');
            let needs_paren = !matches!(
                store.node(*a),
                Node::Var(_) | Node::Const(_) | Node::UnitVal | Node::PairT(..) | Node::PairW(..)
            );
            if needs_paren {
                out.push('(');
            }
            go(store, *a, d, out);
            if needs_paren {
                out.push(')');
            }
        }
        Node::Proj(first, v) => {
            out.push_str(if *first { "fst " } else { "snd " });
            go(store, *v, d, out);
        }
        Node::LetTensor(x, y, v, e) => {
            out.push_str(&format!("let ({}, {}) = ", store.var_name(*x), store.var_name(*y)));
            go(store, *v, d, out);
            out.push_str("; ");
            go(store, *e, d, out);
        }
        Node::Case(v, x, e1, y, e2) => {
            out.push_str("case ");
            go(store, *v, d, out);
            out.push_str(&format!(" of (inl {} . ", store.var_name(*x)));
            go(store, *e1, d, out);
            out.push_str(&format!(" | inr {} . ", store.var_name(*y)));
            go(store, *e2, d, out);
            out.push(')');
        }
        Node::LetBox(x, v, e) => {
            out.push_str(&format!("let [{}] = ", store.var_name(*x)));
            go(store, *v, d, out);
            out.push_str("; ");
            go(store, *e, d, out);
        }
        Node::LetBind(x, v, e) => {
            out.push_str(&format!("let {} = ", store.var_name(*x)));
            go(store, *v, d, out);
            out.push_str("; ");
            go(store, *e, d, out);
        }
        Node::Let(x, e, f) => {
            out.push_str(&format!("{} = ", store.var_name(*x)));
            go(store, *e, d, out);
            out.push_str("; ");
            go(store, *f, d, out);
        }
        Node::LetFun(x, _, body, rest) => {
            out.push_str(&format!("function {} = ", store.var_name(*x)));
            go(store, *body, d, out);
            out.push_str("; ");
            go(store, *rest, d, out);
        }
        Node::Op(op, v) => {
            out.push_str(store.op_name(*op));
            out.push(' ');
            go(store, *v, d, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::Signature;

    #[test]
    fn prints_paper_style() {
        let sig = Signature::relative_precision();
        let src = "function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }";
        let lowered = crate::lower::compile(src, &sig).unwrap();
        let text = pretty_term(&lowered.store, lowered.root, 16);
        assert!(text.contains("function mulfp"), "{text}");
        assert!(text.contains("mul xy"), "{text}");
        assert!(text.contains("rnd s"), "{text}");
    }

    #[test]
    fn depth_limit_truncates() {
        let sig = Signature::relative_precision();
        let src = "function f (x: num) : num { a = mul (x, x); b = mul (a, a); mul (b, b) }";
        let lowered = crate::lower::compile(src, &sig).unwrap();
        let text = pretty_term(&lowered.store, lowered.root, 3);
        assert!(text.contains("..."));
    }
}
