/root/repo/target/debug/deps/table5-c0b832c415f1933f.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-c0b832c415f1933f: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
