//! Content-addressed result caching for the analysis pipeline.
//!
//! A resident analysis service (`numfuzz serve`) sees the same programs
//! over and over; so does a batch run over a corpus with duplicated
//! kernels. Every analysis outcome in this system — checking, bounding,
//! validation — is a *pure function* of the hash-consed term, its free
//! variables, and the analyzer configuration (signature, format, mode,
//! rounding unit): inference (Fig. 10) consults nothing else, so a result
//! computed once may be replayed for any structurally identical program
//! under the same configuration. This module provides the two halves of
//! that memoization:
//!
//! * [`fingerprint_term`] — a stable 128-bit *content* fingerprint of a
//!   term DAG. Alpha-equivalent programs (same structure, different
//!   internal [`VarId`] numbering or binder spellings) fingerprint
//!   identically: variables are renumbered canonically in traversal
//!   order, annotations are resolved out of the arena and hashed
//!   structurally, and constants hash by canonical rational value. Two
//!   deliberate exceptions, because they are visible in *results*:
//!   `function` names (they appear in per-function reports) and the
//!   free-variable interface (names and raw ids — inferred environments
//!   mention them). The hash is FNV-1a/128 over a canonical byte
//!   encoding — deterministic across processes and platforms (no
//!   per-process seed), so keys are true content addresses. The
//!   companion [`fingerprint_term_with_display`] additionally hashes
//!   every binder spelling, which gates the replay of memoized
//!   *diagnostics* (error messages quote names and source lines).
//! * [`ResultCache`] — a byte-budgeted LRU table from [`CacheKey`]
//!   (program fingerprint + configuration fingerprint) to any clonable
//!   result, with hit/miss/insert/evict accounting ([`CacheStats`]).
//!
//! The facade crate wraps a `ResultCache` in an `Arc<Mutex<..>>` handle
//! (`numfuzz::AnalysisCache`) shared by every session of a service, and
//! threads it through `Analyzer::check_cached` / `bound_cached` and the
//! sharded batch entry points.

use crate::check::FnReport;
use crate::grade::{Coeffect, Grade};
use crate::term::{Node, TermId, TermStore, VarId};
use crate::ty::Ty;
use crate::TyId;
use std::collections::{BTreeMap, HashMap};

/// FNV-1a offset basis for the 128-bit variant.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a prime for the 128-bit variant.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// An incremental FNV-1a/128 hasher over a canonical byte stream.
///
/// Deliberately *not* `std::hash::Hasher`: `DefaultHasher` is seeded per
/// process, and content addresses must be stable across processes (a
/// service restart must not invalidate a future persistent cache, and
/// tests pin fingerprints). FNV is not collision-resistant against an
/// adversary, but at 128 bits accidental collisions are negligible for a
/// memoization table whose worst failure is a wrong-but-well-typed reply.
#[derive(Clone, Copy, Debug)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV128_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorbs one byte (a node/type tag).
    pub fn write_u8(&mut self, b: u8) {
        self.write(&[b]);
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u128` (little-endian) — e.g. a child fingerprint.
    pub fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// cannot collide.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The 128-bit digest.
    pub fn finish128(&self) -> u128 {
        self.state
    }

    /// The digest folded to 64 bits (for configuration keys).
    pub fn finish64(&self) -> u64 {
        (self.state as u64) ^ ((self.state >> 64) as u64)
    }
}

// Tag bytes for the canonical term encoding. Annotation-bearing variants
// get their own tags so `inl v : σ+τ` and `inr v : τ+σ` cannot collide.
const TAG_VAR: u8 = 1;
const TAG_UNIT: u8 = 2;
const TAG_CONST: u8 = 3;
const TAG_PAIR_W: u8 = 4;
const TAG_PAIR_T: u8 = 5;
const TAG_INL: u8 = 6;
const TAG_INR: u8 = 7;
const TAG_LAM: u8 = 8;
const TAG_BOX: u8 = 9;
const TAG_RND: u8 = 10;
const TAG_RET: u8 = 11;
const TAG_ERR: u8 = 12;
const TAG_APP: u8 = 13;
const TAG_PROJ1: u8 = 14;
const TAG_PROJ2: u8 = 15;
const TAG_LET_TENSOR: u8 = 16;
const TAG_CASE: u8 = 17;
const TAG_LET_BOX: u8 = 18;
const TAG_LET_BIND: u8 = 19;
const TAG_LET: u8 = 20;
const TAG_LET_FUN: u8 = 21;
const TAG_OP: u8 = 22;

// Tags for the canonical type encoding.
const TY_UNIT: u8 = 32;
const TY_NUM: u8 = 33;
const TY_TENSOR: u8 = 34;
const TY_WITH: u8 = 35;
const TY_SUM: u8 = 36;
const TY_LOLLI: u8 = 37;
const TY_BANG: u8 = 38;
const TY_MONAD: u8 = 39;

/// Computes the content fingerprint of a program: the term DAG under
/// `root` plus its free-variable interface `free`, both resolved to
/// canonical form (see the [module docs](self) for what "canonical"
/// guarantees). Runs in `O(distinct nodes)`: shared subterms hash once.
///
/// Free variables contribute their *raw* ids and display names as well as
/// their canonical numbers: a cached result (e.g. an inferred environment)
/// mentions free variables by identity, so two programs may only share a
/// cache entry when their input interfaces match exactly, not merely up
/// to renaming. Bound variables, by contrast, never escape into results
/// and hash canonically.
///
/// ```
/// use numfuzz_core::cache::fingerprint_term;
/// use numfuzz_core::{compile, Signature};
///
/// let sig = Signature::relative_precision();
/// let a = compile("s = mul (2, 2); rnd s", &sig)?;
/// let b = compile("s = mul (2, 2); rnd s", &sig)?;
/// let c = compile("s = mul (2, 3); rnd s", &sig)?;
/// assert_eq!(
///     fingerprint_term(&a.store, a.root, &[]),
///     fingerprint_term(&b.store, b.root, &[]),
/// );
/// assert_ne!(
///     fingerprint_term(&a.store, a.root, &[]),
///     fingerprint_term(&c.store, c.root, &[]),
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fingerprint_term(store: &TermStore, root: TermId, free: &[(VarId, Ty)]) -> u128 {
    fingerprint_term_with_display(store, root, free).0
}

/// [`fingerprint_term`] plus a *display* fingerprint: a hash of every
/// variable's display name in canonical traversal order.
///
/// The structural fingerprint decides whether two programs compute the
/// same *results*; the display fingerprint decides whether they would
/// render the same *diagnostics*. Error messages quote binder names and
/// source snippets, so a memoized `Err` outcome may only be replayed for
/// a program whose display fingerprint (and source text, which the
/// caller mixes in) also matches — successful outcomes depend only on
/// the structural half (plus `function` names, which are part of it).
pub fn fingerprint_term_with_display(
    store: &TermStore,
    root: TermId,
    free: &[(VarId, Ty)],
) -> (u128, u128) {
    let mut fp = Fingerprinter {
        store,
        terms: HashMap::new(),
        tys: HashMap::new(),
        vars: HashMap::new(),
        next_var: 0,
    };
    // Free variables are numbered first, in interface order, so their
    // canonical ids are independent of where they first occur in the body.
    for (v, _) in free {
        fp.canon_var(*v);
    }
    let root_hash = fp.hash_term(root);

    let mut h = StableHasher::new();
    h.write_u128(root_hash);
    h.write_u64(free.len() as u64);
    for (v, ty) in free {
        h.write_u32(fp.canon_var(*v));
        h.write_u32(v.0);
        h.write_str(store.var_name(*v));
        h.write_u128(hash_ty_tree(ty));
    }

    let mut names: Vec<(u32, VarId)> = fp.vars.iter().map(|(&v, &n)| (n, v)).collect();
    names.sort_unstable();
    let mut d = StableHasher::new();
    d.write_u64(names.len() as u64);
    for (_, v) in names {
        d.write_str(store.var_name(v));
    }
    (h.finish128(), d.finish128())
}

/// The canonical structural hash of an owned [`Ty`] tree (annotations are
/// shallow, so plain recursion is fine here).
pub fn hash_ty_tree(ty: &Ty) -> u128 {
    let mut h = StableHasher::new();
    match ty {
        Ty::Unit => h.write_u8(TY_UNIT),
        Ty::Num => h.write_u8(TY_NUM),
        Ty::Tensor(a, b) => {
            h.write_u8(TY_TENSOR);
            h.write_u128(hash_ty_tree(a));
            h.write_u128(hash_ty_tree(b));
        }
        Ty::With(a, b) => {
            h.write_u8(TY_WITH);
            h.write_u128(hash_ty_tree(a));
            h.write_u128(hash_ty_tree(b));
        }
        Ty::Sum(a, b) => {
            h.write_u8(TY_SUM);
            h.write_u128(hash_ty_tree(a));
            h.write_u128(hash_ty_tree(b));
        }
        Ty::Lolli(a, b) => {
            h.write_u8(TY_LOLLI);
            h.write_u128(hash_ty_tree(a));
            h.write_u128(hash_ty_tree(b));
        }
        Ty::Bang(s, t) => {
            h.write_u8(TY_BANG);
            // Grades are canonical linear expressions with a total display
            // order, so their rendering is a faithful canonical form.
            h.write_str(&s.to_string());
            h.write_u128(hash_ty_tree(t));
        }
        Ty::Monad(u, t) => {
            h.write_u8(TY_MONAD);
            h.write_str(&u.to_string());
            h.write_u128(hash_ty_tree(t));
        }
    }
    h.finish128()
}

/// Memoized canonical hashing of one store's term DAG.
struct Fingerprinter<'a> {
    store: &'a TermStore,
    terms: HashMap<TermId, u128>,
    tys: HashMap<TyId, u128>,
    /// Canonical variable numbering, assigned in deterministic traversal
    /// order (free interface first, then binders as encountered).
    vars: HashMap<VarId, u32>,
    next_var: u32,
}

impl Fingerprinter<'_> {
    fn canon_var(&mut self, v: VarId) -> u32 {
        if let Some(&n) = self.vars.get(&v) {
            return n;
        }
        let n = self.next_var;
        self.next_var += 1;
        self.vars.insert(v, n);
        n
    }

    fn hash_ty(&mut self, id: TyId) -> u128 {
        if let Some(&h) = self.tys.get(&id) {
            return h;
        }
        let h = hash_ty_tree(&self.store.ty(id));
        self.tys.insert(id, h);
        h
    }

    /// Post-order DAG hash with an explicit stack: million-node let chains
    /// must not overflow the call stack, and shared subterms hash once.
    fn hash_term(&mut self, root: TermId) -> u128 {
        enum Task {
            Enter(TermId),
            Exit(TermId),
        }
        let mut stack = vec![Task::Enter(root)];
        while let Some(task) = stack.pop() {
            match task {
                Task::Enter(id) => {
                    if self.terms.contains_key(&id) {
                        continue;
                    }
                    stack.push(Task::Exit(id));
                    // Binders claim their canonical numbers on entry, so a
                    // variable's number is assigned before any use of it is
                    // visited. Children enter in reverse so they are
                    // *visited* left-to-right (deterministic numbering).
                    match *self.store.node(id) {
                        Node::Var(v) => {
                            self.canon_var(v);
                        }
                        Node::UnitVal | Node::Const(_) | Node::Err(..) => {}
                        Node::PairW(a, b) | Node::PairT(a, b) | Node::App(a, b) => {
                            stack.push(Task::Enter(b));
                            stack.push(Task::Enter(a));
                        }
                        Node::Inl(v, _)
                        | Node::Inr(v, _)
                        | Node::BoxIntro(_, v)
                        | Node::Rnd(v)
                        | Node::Ret(v)
                        | Node::Proj(_, v)
                        | Node::Op(_, v) => stack.push(Task::Enter(v)),
                        Node::Lam(x, _, body) => {
                            self.canon_var(x);
                            stack.push(Task::Enter(body));
                        }
                        Node::LetTensor(x, y, v, e) => {
                            self.canon_var(x);
                            self.canon_var(y);
                            stack.push(Task::Enter(e));
                            stack.push(Task::Enter(v));
                        }
                        Node::Case(v, x, e1, y, e2) => {
                            self.canon_var(x);
                            self.canon_var(y);
                            stack.push(Task::Enter(e2));
                            stack.push(Task::Enter(e1));
                            stack.push(Task::Enter(v));
                        }
                        Node::LetBox(x, v, e) | Node::LetBind(x, v, e) | Node::Let(x, v, e) => {
                            self.canon_var(x);
                            stack.push(Task::Enter(e));
                            stack.push(Task::Enter(v));
                        }
                        Node::LetFun(x, _, body, rest) => {
                            self.canon_var(x);
                            stack.push(Task::Enter(rest));
                            stack.push(Task::Enter(body));
                        }
                    }
                }
                Task::Exit(id) => {
                    if self.terms.contains_key(&id) {
                        continue;
                    }
                    let h = self.hash_node(id);
                    self.terms.insert(id, h);
                }
            }
        }
        self.terms[&root]
    }

    /// Hashes one node whose children (and binder variables) are already
    /// processed.
    fn hash_node(&mut self, id: TermId) -> u128 {
        let mut h = StableHasher::new();
        match *self.store.node(id) {
            Node::Var(v) => {
                h.write_u8(TAG_VAR);
                h.write_u32(self.canon_var(v));
            }
            Node::UnitVal => h.write_u8(TAG_UNIT),
            Node::Const(k) => {
                h.write_u8(TAG_CONST);
                // Rationals are kept canonical (reduced, sign-normalized),
                // so the rendering is a canonical form.
                h.write_str(&self.store.constant(k).to_string());
            }
            Node::PairW(a, b) => {
                h.write_u8(TAG_PAIR_W);
                h.write_u128(self.terms[&a]);
                h.write_u128(self.terms[&b]);
            }
            Node::PairT(a, b) => {
                h.write_u8(TAG_PAIR_T);
                h.write_u128(self.terms[&a]);
                h.write_u128(self.terms[&b]);
            }
            Node::Inl(v, ty) => {
                h.write_u8(TAG_INL);
                h.write_u128(self.terms[&v]);
                h.write_u128(self.hash_ty(ty));
            }
            Node::Inr(v, ty) => {
                h.write_u8(TAG_INR);
                h.write_u128(self.terms[&v]);
                h.write_u128(self.hash_ty(ty));
            }
            Node::Lam(x, ty, body) => {
                h.write_u8(TAG_LAM);
                h.write_u32(self.canon_var(x));
                h.write_u128(self.hash_ty(ty));
                h.write_u128(self.terms[&body]);
            }
            Node::BoxIntro(s, v) => {
                h.write_u8(TAG_BOX);
                h.write_str(&self.store.grade(s).to_string());
                h.write_u128(self.terms[&v]);
            }
            Node::Rnd(v) => {
                h.write_u8(TAG_RND);
                h.write_u128(self.terms[&v]);
            }
            Node::Ret(v) => {
                h.write_u8(TAG_RET);
                h.write_u128(self.terms[&v]);
            }
            Node::Err(u, ty) => {
                h.write_u8(TAG_ERR);
                h.write_str(&self.store.grade(u).to_string());
                h.write_u128(self.hash_ty(ty));
            }
            Node::App(a, b) => {
                h.write_u8(TAG_APP);
                h.write_u128(self.terms[&a]);
                h.write_u128(self.terms[&b]);
            }
            Node::Proj(first, v) => {
                h.write_u8(if first { TAG_PROJ1 } else { TAG_PROJ2 });
                h.write_u128(self.terms[&v]);
            }
            Node::LetTensor(x, y, v, e) => {
                h.write_u8(TAG_LET_TENSOR);
                h.write_u32(self.canon_var(x));
                h.write_u32(self.canon_var(y));
                h.write_u128(self.terms[&v]);
                h.write_u128(self.terms[&e]);
            }
            Node::Case(v, x, e1, y, e2) => {
                h.write_u8(TAG_CASE);
                h.write_u128(self.terms[&v]);
                h.write_u32(self.canon_var(x));
                h.write_u128(self.terms[&e1]);
                h.write_u32(self.canon_var(y));
                h.write_u128(self.terms[&e2]);
            }
            Node::LetBox(x, v, e) => {
                h.write_u8(TAG_LET_BOX);
                h.write_u32(self.canon_var(x));
                h.write_u128(self.terms[&v]);
                h.write_u128(self.terms[&e]);
            }
            Node::LetBind(x, v, e) => {
                h.write_u8(TAG_LET_BIND);
                h.write_u32(self.canon_var(x));
                h.write_u128(self.terms[&v]);
                h.write_u128(self.terms[&e]);
            }
            Node::Let(x, v, e) => {
                h.write_u8(TAG_LET);
                h.write_u32(self.canon_var(x));
                h.write_u128(self.terms[&v]);
                h.write_u128(self.terms[&e]);
            }
            Node::LetFun(x, declared, body, rest) => {
                h.write_u8(TAG_LET_FUN);
                h.write_u32(self.canon_var(x));
                // Function names are *content*, not presentation: they
                // appear in per-function reports (and therefore in
                // check/bound output), so `function f` and `function g`
                // may not share a cache entry.
                h.write_str(self.store.var_name(x));
                match declared {
                    Some(ty) => {
                        h.write_u8(1);
                        h.write_u128(self.hash_ty(ty));
                    }
                    None => h.write_u8(0),
                }
                h.write_u128(self.terms[&body]);
                h.write_u128(self.terms[&rest]);
            }
            Node::Op(op, v) => {
                h.write_u8(TAG_OP);
                h.write_str(self.store.op_name(op));
                h.write_u128(self.terms[&v]);
            }
        }
        h.finish128()
    }
}

/// Per-node content fingerprints of one store's reachable term DAG: the
/// substrate of judgment-level memoization ([`JudgmentCache`]).
///
/// [`TermId`]s are store-local — every parse builds a fresh hash-consed
/// store, so ids do not survive an edit. The per-subterm *content*
/// fingerprints computed here do: they are exactly the hashes
/// [`fingerprint_term`] computes for every node on the way to the root
/// (alpha-invariant, annotation-resolving, process-stable), so a subterm
/// untouched by an edit fingerprints identically in the re-parsed store
/// and can address the same memoized judgment. The canonical variable
/// numbering (free interface first, then binders in traversal order) is
/// exposed in both directions: memoized environments store canonical
/// numbers, and replaying them into a new store translates numbers back
/// to that store's [`VarId`]s.
#[derive(Debug)]
pub struct NodeFingerprints {
    terms: HashMap<TermId, u128>,
    canon: HashMap<VarId, u32>,
    uncanon: Vec<VarId>,
}

impl NodeFingerprints {
    /// The content fingerprint of the subterm rooted at `id`, if `id` is
    /// reachable from the fingerprinted root.
    pub fn node(&self, id: TermId) -> Option<u128> {
        self.terms.get(&id).copied()
    }

    /// The canonical number of a variable occurring in the program.
    pub fn canon(&self, v: VarId) -> Option<u32> {
        self.canon.get(&v).copied()
    }

    /// The store's [`VarId`] behind a canonical number (the inverse of
    /// [`NodeFingerprints::canon`]).
    pub fn var(&self, canon: u32) -> Option<VarId> {
        self.uncanon.get(canon as usize).copied()
    }

    /// Number of distinct reachable nodes — the number of judgments a
    /// from-scratch checking pass computes.
    pub fn reachable(&self) -> usize {
        self.terms.len()
    }
}

/// Fingerprints every node reachable from `root` (see
/// [`NodeFingerprints`]). One `O(distinct nodes)` hashing pass, the
/// incremental analogue of [`fingerprint_term`]: the root's fingerprint
/// here equals the per-node hash that function folds into its result.
pub fn node_fingerprints(
    store: &TermStore,
    root: TermId,
    free: &[(VarId, Ty)],
) -> NodeFingerprints {
    let mut fp = Fingerprinter {
        store,
        terms: HashMap::new(),
        tys: HashMap::new(),
        vars: HashMap::new(),
        next_var: 0,
    };
    for (v, _) in free {
        fp.canon_var(*v);
    }
    let _ = fp.hash_term(root);
    let mut uncanon = vec![VarId(0); fp.next_var as usize];
    for (&v, &n) in &fp.vars {
        uncanon[n as usize] = v;
    }
    NodeFingerprints { terms: fp.terms, canon: fp.vars, uncanon }
}

/// Extends a scope-chain fingerprint with one binder.
///
/// A judgment depends on its subterm *and* on the types its free
/// variables carry, so the memo key pairs the subterm fingerprint with a
/// hash of the whole scope chain: each binder in scope contributes its
/// canonical number and the structural hash of its assigned type, in
/// binding order, on top of the configuration fingerprint the chain was
/// seeded with. Matching chains therefore assign every canonical
/// variable the same type — which, together with a matching subterm
/// fingerprint, makes the memoized judgment sound to replay (see
/// `docs/paper-map.md`).
pub fn scope_extend(parent: u64, canon_var: u32, ty_fp: u128) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(parent);
    h.write_u32(canon_var);
    h.write_u128(ty_fp);
    h.finish64()
}

/// A memoized forward judgment for one subtree: everything
/// [`crate::infer`] computes for it, in store- and arena-independent
/// form.
#[derive(Clone, Debug)]
pub struct ForwardJudgment {
    /// `(canonical variable, sensitivity)` entries of the minimal
    /// environment, sorted by canonical number.
    pub env: Vec<(u32, Grade)>,
    /// The inferred type, resolved out of the arena (portable across
    /// sessions and `deep_clone`d shards).
    pub ty: Ty,
    /// Function reports emitted while checking this subtree, in emission
    /// order (function names are part of the content fingerprint, so they
    /// replay verbatim).
    pub fns: Vec<FnReport>,
}

/// One still-unapplied parameter of a memoized backward function value.
#[derive(Clone, Debug)]
pub struct BackwardParamEntry {
    /// The parameter binder's canonical number.
    pub var: u32,
    /// Whether the parameter carries data (non-unit).
    pub named: bool,
    /// The demand its consumption places on an argument.
    pub demand: Coeffect,
}

/// One memoized backward per-function report. Parameter *names* are
/// presentation (not content), so inputs are stored by canonical number
/// and renamed from the replaying store.
#[derive(Clone, Debug)]
pub struct BackwardFnEntry {
    /// The function's name (content — part of the subterm fingerprint).
    pub name: String,
    /// The type assigned in the context.
    pub assigned: Ty,
    /// Per-parameter backward error bounds, by canonical number.
    pub inputs: Vec<(u32, Grade)>,
}

/// A memoized backward judgment for one subtree: everything
/// [`crate::infer_backward`] computes for it, in store- and
/// arena-independent form.
#[derive(Clone, Debug)]
pub struct BackwardJudgment {
    /// `(canonical variable, coeffect)` entries of the consumed context,
    /// sorted by canonical number.
    pub env: Vec<(u32, Coeffect)>,
    /// The subtree's type, resolved out of the arena.
    pub ty: Ty,
    /// Parameter demands if the subtree is a (possibly partially
    /// applied) function value.
    pub fun: Option<Vec<BackwardParamEntry>>,
    /// Per-function reports emitted while checking this subtree.
    pub fns: Vec<BackwardFnEntry>,
}

/// One memoized judgment — the value type of a [`JudgmentCache`]. The
/// scope chain is seeded with a mode-separated configuration fingerprint
/// so forward and backward entries never share an address, but replay
/// sites still match on the variant defensively (a mismatch is a miss).
#[derive(Clone, Debug)]
pub enum JudgmentEntry {
    /// A [`crate::infer`] subtree judgment.
    Forward(ForwardJudgment),
    /// A [`crate::infer_backward`] subtree judgment.
    Backward(BackwardJudgment),
}

fn ty_weight(t: &Ty) -> usize {
    24 + match t {
        Ty::Unit | Ty::Num => 0,
        Ty::Tensor(a, b) | Ty::With(a, b) | Ty::Sum(a, b) | Ty::Lolli(a, b) => {
            ty_weight(a) + ty_weight(b)
        }
        Ty::Bang(_, t) | Ty::Monad(_, t) => 32 + ty_weight(t),
    }
}

impl CacheWeight for JudgmentEntry {
    fn weight(&self) -> usize {
        match self {
            JudgmentEntry::Forward(j) => {
                48 + 48 * j.env.len()
                    + ty_weight(&j.ty)
                    + j.fns
                        .iter()
                        .map(|f| {
                            32 + f.name.len() + ty_weight(&f.inferred) + ty_weight(&f.assigned)
                        })
                        .sum::<usize>()
            }
            JudgmentEntry::Backward(j) => {
                48 + 80 * j.env.len()
                    + ty_weight(&j.ty)
                    + j.fun.as_ref().map_or(0, |ps| 88 * ps.len())
                    + j.fns
                        .iter()
                        .map(|f| 32 + f.name.len() + ty_weight(&f.assigned) + 48 * f.inputs.len())
                        .sum::<usize>()
            }
        }
    }
}

/// Reuse accounting for one memoized checking pass.
///
/// A replayed subtree judgment transitively stands in for every judgment
/// beneath it, so `reused` counts *all* judgments a from-scratch pass
/// would have computed that this pass did not (`total - recomputed`),
/// not merely the direct cache hits.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct JudgmentCounts {
    /// Judgments replayed from the memo table, directly or transitively.
    pub reused: u64,
    /// Judgments actually computed by this pass.
    pub recomputed: u64,
    /// Judgments a from-scratch pass computes (distinct reachable nodes).
    pub total: u64,
}

impl JudgmentCounts {
    /// `reused / total` in `[0, 1]` (1.0 for an empty program).
    pub fn reuse_ratio(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.reused as f64 / self.total as f64
        }
    }
}

/// A byte-budgeted LRU table of subterm-level typing judgments, shared
/// by [`crate::infer_memoized`] and [`crate::infer_backward_memoized`].
///
/// Keys are `(subterm content fingerprint, scope-chain fingerprint)`
/// pairs — the chain is seeded with the caller's configuration
/// fingerprint, so one table safely serves both analysis modes and any
/// number of sessions. Values ([`JudgmentEntry`]) are store- and
/// arena-independent, which is what makes the table correct under the
/// sharded pool's `deep_clone`d arenas: a judgment memoized against one
/// clone re-interns its types into whichever arena replays it.
#[derive(Debug)]
pub struct JudgmentCache {
    inner: ResultCache<JudgmentEntry>,
}

impl JudgmentCache {
    /// An empty cache holding at most ~`budget_bytes` of judgment weight.
    pub fn new(budget_bytes: usize) -> Self {
        JudgmentCache { inner: ResultCache::new(budget_bytes) }
    }

    /// Looks up the judgment memoized for a subterm under a scope chain.
    pub fn get(&mut self, node: u128, scope: u64) -> Option<JudgmentEntry> {
        self.inner.get(&CacheKey { program: node, config: scope })
    }

    /// Memoizes one judgment, evicting least-recently-used entries to
    /// respect the byte budget.
    pub fn insert(&mut self, node: u128, scope: u64, entry: JudgmentEntry) {
        self.inner.insert(CacheKey { program: node, config: scope }, entry);
    }

    /// Current counters (same semantics as [`ResultCache::stats`]).
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Drops every entry, keeping lifetime counters.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

/// Which analysis produced (or is requesting) a cached result.
///
/// The forward judgment (NumFuzz: one rounding-error bound on the output)
/// and the backward judgment (Bean: one perturbation bound per input)
/// disagree on *everything* observable — accepted programs, reported
/// grades, diagnostics — so the mode is a mandatory component of every
/// configuration fingerprint: a warm forward entry must be a **miss** for
/// a backward request on the very same program, and vice versa.
/// [`ConfigFingerprint`] writes the mode discriminant first so the two
/// key spaces diverge at the first absorbed byte.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AnalysisMode {
    /// NumFuzz forward rounding-error inference ([`crate::infer`]).
    Forward,
    /// Bean backward-error inference ([`crate::infer_backward`]).
    Backward,
}

impl AnalysisMode {
    /// The stable discriminant byte absorbed into fingerprints.
    pub fn discriminant(self) -> u8 {
        match self {
            AnalysisMode::Forward => 1,
            AnalysisMode::Backward => 2,
        }
    }

    /// The protocol / CLI spelling (`"forward"` / `"backward"`).
    pub fn as_str(self) -> &'static str {
        match self {
            AnalysisMode::Forward => "forward",
            AnalysisMode::Backward => "backward",
        }
    }
}

/// Builder for the configuration half of a [`CacheKey`]: the analysis
/// mode plus whatever the caller's configuration contributes (signature,
/// format, rounding unit, operation kind). Constructing one *requires* an
/// [`AnalysisMode`], making it impossible to mint a config fingerprint
/// that two analysis modes share.
///
/// ```
/// use numfuzz_core::cache::{AnalysisMode, ConfigFingerprint};
///
/// let mut fwd = ConfigFingerprint::new(AnalysisMode::Forward);
/// let mut bwd = ConfigFingerprint::new(AnalysisMode::Backward);
/// for f in [&mut fwd, &mut bwd] {
///     f.write_str("binary64");
///     f.write_u8(1); // operation: check
/// }
/// assert_ne!(fwd.finish(), bwd.finish());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ConfigFingerprint {
    hasher: StableHasher,
}

impl ConfigFingerprint {
    /// Starts a configuration fingerprint for `mode` (absorbed first).
    pub fn new(mode: AnalysisMode) -> Self {
        let mut hasher = StableHasher::new();
        hasher.write_u8(mode.discriminant());
        ConfigFingerprint { hasher }
    }

    /// Absorbs one configuration byte (e.g. an operation discriminant).
    pub fn write_u8(&mut self, b: u8) {
        self.hasher.write_u8(b);
    }

    /// Absorbs a configuration integer.
    pub fn write_u64(&mut self, v: u64) {
        self.hasher.write_u64(v);
    }

    /// Absorbs a configuration integer.
    pub fn write_u32(&mut self, v: u32) {
        self.hasher.write_u32(v);
    }

    /// Absorbs a wide configuration digest (e.g. a hashed type tree).
    pub fn write_u128(&mut self, v: u128) {
        self.hasher.write_u128(v);
    }

    /// Absorbs a length-prefixed configuration string (format name,
    /// rounding unit rendering, signature digest…).
    pub fn write_str(&mut self, s: &str) {
        self.hasher.write_str(s);
    }

    /// The 64-bit configuration fingerprint for [`CacheKey::config`].
    pub fn finish(&self) -> u64 {
        self.hasher.finish64()
    }
}

/// The address of one memoized result: *what* was analyzed
/// ([`fingerprint_term`]) under *which* configuration (a caller-supplied
/// fingerprint of signature, format, mode, rounding unit, and the
/// operation performed — check vs. bound vs. validate).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Content fingerprint of the program.
    pub program: u128,
    /// Fingerprint of the analyzer configuration + operation kind.
    pub config: u64,
}

/// Running counters of one [`ResultCache`]. All counters are cumulative
/// over the cache's lifetime except `entries`/`bytes`, which are current.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values stored (including replacements).
    pub insertions: u64,
    /// Entries removed to respect the byte budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate bytes currently resident (entry weights + overhead).
    pub bytes: usize,
    /// The configured byte budget.
    pub budget: usize,
}

/// Approximate in-memory size of a cached value, used to enforce the
/// byte budget. Estimates only need to be consistent (the cache accounts
/// removal with the weight it recorded at insert), not exact.
pub trait CacheWeight {
    /// Approximate heap footprint in bytes.
    fn weight(&self) -> usize;
}

impl CacheWeight for String {
    fn weight(&self) -> usize {
        self.len()
    }
}

/// Fixed per-entry accounting overhead (key, recency index, map slots).
const ENTRY_OVERHEAD: usize = 96;

/// A byte-budgeted LRU map from [`CacheKey`] to a clonable analysis
/// outcome.
///
/// Recency is tracked with a monotonically increasing sequence number and
/// a `BTreeMap<seq, key>` index: `get` and `insert` are `O(log n)`, and
/// eviction pops the smallest live sequence number. The structure is not
/// internally synchronized — wrap it in a `Mutex` to share (the facade's
/// `AnalysisCache` does).
///
/// ```
/// use numfuzz_core::cache::{CacheKey, CacheWeight, ResultCache};
///
/// struct Blob(usize);
/// impl CacheWeight for Blob {
///     fn weight(&self) -> usize {
///         self.0
///     }
/// }
/// impl Clone for Blob {
///     fn clone(&self) -> Self {
///         Blob(self.0)
///     }
/// }
///
/// let key = |n| CacheKey { program: n, config: 0 };
/// let mut cache = ResultCache::new(4096);
/// assert!(cache.get(&key(1)).is_none()); // miss
/// cache.insert(key(1), Blob(100));
/// assert!(cache.get(&key(1)).is_some()); // hit
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct ResultCache<V> {
    budget: usize,
    map: HashMap<CacheKey, Entry<V>>,
    recency: BTreeMap<u64, CacheKey>,
    seq: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    weight: usize,
    seq: u64,
}

impl<V: Clone + CacheWeight> ResultCache<V> {
    /// An empty cache that will hold at most ~`budget_bytes` of entry
    /// weight (plus fixed per-entry overhead).
    pub fn new(budget_bytes: usize) -> Self {
        ResultCache {
            budget: budget_bytes,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            seq: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Looks up a result, counting a hit or a miss and refreshing the
    /// entry's recency on hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<V> {
        self.get_if(key, |_| true)
    }

    /// [`ResultCache::get`] with an admission guard: a resident entry the
    /// guard rejects counts as a **miss** (the caller will recompute and
    /// re-insert), not a hit. The facade uses this to refuse replaying a
    /// memoized diagnostic for a program whose display fingerprint
    /// differs — same analysis outcome, different rendering.
    pub fn get_if(&mut self, key: &CacheKey, admit: impl FnOnce(&V) -> bool) -> Option<V> {
        match self.map.get_mut(key) {
            Some(entry) if admit(&entry.value) => {
                self.hits += 1;
                self.recency.remove(&entry.seq);
                self.seq += 1;
                entry.seq = self.seq;
                self.recency.insert(self.seq, *key);
                Some(entry.value.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether a key is resident, *without* touching recency or counters
    /// (for duplicate-scheduling decisions, not for reads).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains_key(key)
    }

    /// Stores a result, replacing any previous entry for the key, then
    /// evicts least-recently-used entries until the byte budget holds. A
    /// value heavier than the whole budget is evicted immediately (the
    /// insert is still counted).
    pub fn insert(&mut self, key: CacheKey, value: V) {
        self.insertions += 1;
        let evicted = self.place(key, value);
        self.evictions += evicted;
    }

    /// The insert mechanics without counter effects: places the entry,
    /// enforces the budget, and reports how many entries were evicted.
    /// [`ResultCache::insert`] counts those as evictions; a snapshot
    /// restore does not (restored entries that never fit were never
    /// live).
    fn place(&mut self, key: CacheKey, value: V) -> u64 {
        let weight = value.weight() + ENTRY_OVERHEAD;
        if let Some(old) = self.map.remove(&key) {
            self.recency.remove(&old.seq);
            self.bytes -= old.weight;
        }
        self.seq += 1;
        self.bytes += weight;
        self.map.insert(key, Entry { value, weight, seq: self.seq });
        self.recency.insert(self.seq, key);
        let mut evicted = 0;
        while self.bytes > self.budget {
            let Some((_, victim)) = self.recency.pop_first() else { break };
            let entry = self.map.remove(&victim).expect("recency index tracks the map");
            self.bytes -= entry.weight;
            evicted += 1;
        }
        evicted
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            entries: self.map.len(),
            bytes: self.bytes,
            budget: self.budget,
        }
    }

    /// Drops every entry (counters other than `entries`/`bytes` are
    /// preserved — they are lifetime totals).
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
        self.bytes = 0;
    }
}

// ---------------------------------------------------------------------
// Snapshot persistence
// ---------------------------------------------------------------------

/// A value that can round-trip through a [`ResultCache`] snapshot. The
/// encoding must be self-contained bytes: keys are already stable content
/// addresses ([`StableHasher`] has no per-process seed), so a snapshot
/// written by one process replays in another.
pub trait SnapshotValue: Sized {
    /// Appends this value's canonical byte encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from exactly `bytes`; `None` on any malformation
    /// (the restore path treats that record as corrupt and stops).
    fn decode(bytes: &[u8]) -> Option<Self>;
}

impl SnapshotValue for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// What a snapshot restore managed to load: entries placed into the
/// table, and whether the restore stopped early at a corrupt or truncated
/// record (everything before the damage is kept — a partially written
/// snapshot restores its intact prefix).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SnapshotLoad {
    /// Entries restored into the cache.
    pub restored: usize,
    /// `true` when the snapshot ended at a corrupt record (bad checksum,
    /// truncation, undecodable payload) rather than a clean end-of-file.
    pub truncated: bool,
}

/// Snapshot format magic: file type + format version in one prefix.
const SNAPSHOT_MAGIC: &[u8; 8] = b"NFZSNAP1";

/// Per-record checksum: FNV-1a/64 over key and payload, so a torn write
/// or bit flip is detected record-locally.
fn record_checksum(key: &CacheKey, payload: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_u128(key.program);
    h.write_u64(key.config);
    h.write_u64(payload.len() as u64);
    h.write(payload);
    h.finish64()
}

impl<V: Clone + CacheWeight + SnapshotValue> ResultCache<V> {
    /// Serializes every resident entry, oldest recency first — restoring
    /// a snapshot therefore reproduces the same LRU eviction order.
    ///
    /// Layout: an 8-byte magic/version prefix, then one record per entry:
    /// `program (u128 LE) · config (u64 LE) · payload length (u32 LE) ·
    /// payload · checksum (u64 LE)`. All integers little-endian; the
    /// checksum covers key and payload.
    pub fn snapshot(&self) -> Vec<u8> {
        self.snapshot_within(usize::MAX)
    }

    /// [`ResultCache::snapshot`] compacted to at most `cap` bytes of
    /// output: entries are dropped LRU-first (the same order live
    /// eviction would use) until the remaining records — measured by
    /// their actual encoded size, not the in-memory weight estimate —
    /// fit. The kept set is still written oldest recency first, so a
    /// restore reproduces its LRU order. A snapshot file therefore never
    /// exceeds the cap however large the in-memory cache has grown.
    pub fn snapshot_within(&self, cap: usize) -> Vec<u8> {
        // Record sizes, newest first, to find how many newest entries fit.
        const RECORD_FIXED: usize = 16 + 8 + 4 + 8;
        let mut sizes: Vec<usize> = Vec::with_capacity(self.map.len());
        let mut payload = Vec::new();
        for key in self.recency.values().rev() {
            payload.clear();
            self.map[key].value.encode(&mut payload);
            sizes.push(RECORD_FIXED + payload.len());
        }
        let mut remaining = cap.saturating_sub(SNAPSHOT_MAGIC.len());
        let mut keep = 0usize;
        for size in &sizes {
            match remaining.checked_sub(*size) {
                Some(r) => {
                    remaining = r;
                    keep += 1;
                }
                None => break,
            }
        }
        let mut out = Vec::with_capacity(64 + self.bytes.min(cap));
        out.extend_from_slice(SNAPSHOT_MAGIC);
        for key in self.recency.values().skip(self.map.len() - keep) {
            let entry = &self.map[key];
            payload.clear();
            entry.value.encode(&mut payload);
            out.extend_from_slice(&key.program.to_le_bytes());
            out.extend_from_slice(&key.config.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&payload);
            out.extend_from_slice(&record_checksum(key, &payload).to_le_bytes());
        }
        out
    }

    /// Loads a [`ResultCache::snapshot`] into this cache,
    /// corruption-tolerantly: a wrong magic restores nothing, and a
    /// corrupt or truncated record stops the restore there, keeping every
    /// intact entry before it. Restored entries do not count as
    /// insertions (the hit/miss/insert counters track live traffic), and
    /// entries beyond the byte budget are dropped oldest-first without
    /// counting as evictions.
    pub fn restore(&mut self, bytes: &[u8]) -> SnapshotLoad {
        let mut load = SnapshotLoad::default();
        let Some(mut rest) = bytes.strip_prefix(SNAPSHOT_MAGIC.as_slice()) else {
            load.truncated = !bytes.is_empty();
            return load;
        };
        const RECORD_HEADER: usize = 16 + 8 + 4;
        while !rest.is_empty() {
            if rest.len() < RECORD_HEADER {
                load.truncated = true;
                break;
            }
            let program = u128::from_le_bytes(rest[0..16].try_into().expect("sliced"));
            let config = u64::from_le_bytes(rest[16..24].try_into().expect("sliced"));
            let len = u32::from_le_bytes(rest[24..28].try_into().expect("sliced")) as usize;
            let Some(record_end) = RECORD_HEADER.checked_add(len).map(|n| n + 8) else {
                load.truncated = true;
                break;
            };
            if rest.len() < record_end {
                load.truncated = true;
                break;
            }
            let payload = &rest[RECORD_HEADER..RECORD_HEADER + len];
            let stored =
                u64::from_le_bytes(rest[record_end - 8..record_end].try_into().expect("sliced"));
            let key = CacheKey { program, config };
            if stored != record_checksum(&key, payload) {
                load.truncated = true;
                break;
            }
            let Some(value) = V::decode(payload) else {
                load.truncated = true;
                break;
            };
            self.place(key, value);
            load.restored += 1;
            rest = &rest[record_end..];
        }
        load
    }
}

/// Writes `bytes` to `path` atomically: a temp file in the same directory
/// (same filesystem, so the rename is atomic), flushed, then renamed over
/// the destination. A crash mid-write leaves the previous snapshot — or
/// no file — never a half-written one.
///
/// # Errors
///
/// Filesystem errors creating, writing, or renaming the temp file.
pub fn persist_atomically(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, Signature};

    #[derive(Clone, Debug, PartialEq)]
    struct Blob(&'static str, usize);
    impl CacheWeight for Blob {
        fn weight(&self) -> usize {
            self.1
        }
    }

    fn key(n: u128) -> CacheKey {
        CacheKey { program: n, config: 7 }
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Budget fits exactly two entries of weight 100 (+overhead each).
        let mut cache = ResultCache::new(2 * (100 + ENTRY_OVERHEAD));
        cache.insert(key(1), Blob("a", 100));
        cache.insert(key(2), Blob("b", 100));
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(cache.get(&key(1)), Some(Blob("a", 100)));
        cache.insert(key(3), Blob("c", 100));
        assert!(cache.contains(&key(1)), "recently used survives");
        assert!(!cache.contains(&key(2)), "LRU entry evicted");
        assert!(cache.contains(&key(3)));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= stats.budget);
    }

    #[test]
    fn oversized_value_does_not_stick() {
        let mut cache = ResultCache::new(64);
        cache.insert(key(1), Blob("huge", 1 << 20));
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn replacement_updates_bytes_exactly() {
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(key(1), Blob("a", 100));
        let before = cache.stats().bytes;
        cache.insert(key(1), Blob("a2", 300));
        assert_eq!(cache.stats().bytes, before + 200);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut cache = ResultCache::new(1 << 20);
        assert!(cache.get(&key(9)).is_none());
        cache.insert(key(9), Blob("x", 10));
        assert!(cache.get(&key(9)).is_some());
        assert!(cache.get(&key(10)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        // Different config under the same program fingerprint is a
        // different address.
        assert!(cache.get(&CacheKey { program: 9, config: 8 }).is_none());
    }

    #[test]
    fn fingerprint_is_alpha_invariant_and_content_sensitive() {
        let sig = Signature::relative_precision();
        // Same structure, differently named binders: same fingerprint.
        let a = compile("s = mul (2, 2); rnd s", &sig).unwrap();
        let b = compile("t = mul (2, 2); rnd t", &sig).unwrap();
        assert_eq!(
            fingerprint_term(&a.store, a.root, &[]),
            fingerprint_term(&b.store, b.root, &[])
        );
        // A different constant changes it.
        let c = compile("s = mul (2, 3); rnd s", &sig).unwrap();
        assert_ne!(
            fingerprint_term(&a.store, a.root, &[]),
            fingerprint_term(&c.store, c.root, &[])
        );
        // A different operation changes it.
        let d = compile("s = div (2, 2); rnd s", &sig).unwrap();
        assert_ne!(
            fingerprint_term(&a.store, a.root, &[]),
            fingerprint_term(&d.store, d.root, &[])
        );
    }

    #[test]
    fn fingerprint_is_stable_across_store_construction_order() {
        // The same program compiled after unrelated programs shared the
        // session arena must fingerprint identically: ids shift, content
        // does not.
        let sig = Signature::relative_precision();
        let arena = crate::CoreArena::new();
        let noise = crate::compile_in(arena.clone(), "rnd (|1, 2|)", &sig).unwrap();
        let _ = noise;
        let a = crate::compile_in(arena, "s = mul (2, 2); rnd s", &sig).unwrap();
        let b = compile("s = mul (2, 2); rnd s", &sig).unwrap();
        assert_eq!(
            fingerprint_term(&a.store, a.root, &[]),
            fingerprint_term(&b.store, b.root, &[])
        );
    }

    #[test]
    fn fingerprint_distinguishes_annotations() {
        let sig = Signature::relative_precision();
        let a = compile("inl {num} ()", &sig).unwrap();
        let b = compile("inl {unit} ()", &sig).unwrap();
        assert_ne!(
            fingerprint_term(&a.store, a.root, &[]),
            fingerprint_term(&b.store, b.root, &[])
        );
    }

    #[test]
    fn config_fingerprint_separates_analysis_modes() {
        // Identical configuration payloads under different modes must
        // produce different addresses — a warm forward entry can never
        // answer a backward request.
        let payload = |mode| {
            let mut f = ConfigFingerprint::new(mode);
            f.write_str("binary64");
            f.write_str("nearest-even");
            f.write_u8(1);
            f.finish()
        };
        assert_ne!(payload(AnalysisMode::Forward), payload(AnalysisMode::Backward));
        // And the fingerprint is deterministic per mode.
        assert_eq!(payload(AnalysisMode::Forward), payload(AnalysisMode::Forward));
        assert_eq!(AnalysisMode::Forward.as_str(), "forward");
        assert_eq!(AnalysisMode::Backward.as_str(), "backward");
    }

    #[test]
    fn snapshot_round_trips_entries_and_recency_order() {
        let mut cache: ResultCache<String> = ResultCache::new(1 << 16);
        cache.insert(key(1), "one".to_string());
        cache.insert(key(2), "two".to_string());
        cache.insert(key(3), "three".to_string());
        // Touch key 1 so the recency order is 2 < 3 < 1.
        assert!(cache.get(&key(1)).is_some());
        let bytes = cache.snapshot();

        let mut restored: ResultCache<String> = ResultCache::new(1 << 16);
        let load = restored.restore(&bytes);
        assert_eq!(load, SnapshotLoad { restored: 3, truncated: false });
        for k in [1u128, 2, 3] {
            assert_eq!(restored.get(&key(k)), cache.get(&key(k)), "entry {k}");
        }
        // Restored counters track live traffic only: the three lookups
        // above, no insertions.
        assert_eq!(restored.stats().insertions, 0);
        assert_eq!(restored.stats().entries, 3);
        // Recency survived: squeezing the budget must evict 2 first.
        let mut tight: ResultCache<String> = ResultCache::new(2 * (5 + ENTRY_OVERHEAD));
        tight.restore(&bytes);
        assert!(tight.get(&key(2)).is_none(), "oldest entry dropped under a tight budget");
        assert!(tight.get(&key(1)).is_some(), "most recent entry kept");
        assert_eq!(tight.stats().evictions, 0, "budget-dropped restores are not evictions");
    }

    #[test]
    fn snapshot_within_compacts_lru_first_and_round_trips() {
        let mut cache: ResultCache<String> = ResultCache::new(1 << 16);
        cache.insert(key(1), "one".to_string());
        cache.insert(key(2), "two".to_string());
        cache.insert(key(3), "three".to_string());
        // Touch key 1 so the recency order is 2 < 3 < 1.
        assert!(cache.get(&key(1)).is_some());

        // An uncapped snapshot and a cap-sized one are identical.
        let full = cache.snapshot();
        assert_eq!(cache.snapshot_within(full.len()), full);
        assert_eq!(cache.snapshot_within(usize::MAX), full);

        // One byte under full: the LRU entry (key 2) is compacted away,
        // the cap is honored, and the survivors round-trip in order.
        let capped = cache.snapshot_within(full.len() - 1);
        assert!(capped.len() < full.len());
        let mut restored: ResultCache<String> = ResultCache::new(1 << 16);
        let load = restored.restore(&capped);
        assert_eq!(load, SnapshotLoad { restored: 2, truncated: false });
        assert!(restored.get(&key(2)).is_none(), "LRU entry dropped at the cap");
        assert_eq!(restored.get(&key(3)).as_deref(), Some("three"));
        assert_eq!(restored.get(&key(1)).as_deref(), Some("one"));

        // A cap too small for any record still writes a valid, empty
        // snapshot (magic only).
        let empty = cache.snapshot_within(SNAPSHOT_MAGIC.len());
        assert_eq!(empty, SNAPSHOT_MAGIC.to_vec());
        let mut fresh: ResultCache<String> = ResultCache::new(1 << 16);
        assert_eq!(fresh.restore(&empty), SnapshotLoad::default());
    }

    #[test]
    fn snapshot_restore_tolerates_corruption() {
        let mut cache: ResultCache<String> = ResultCache::new(1 << 16);
        cache.insert(key(1), "alpha".to_string());
        cache.insert(key(2), "beta".to_string());
        let bytes = cache.snapshot();

        // Garbage / wrong magic: nothing restores, nothing panics.
        let mut fresh: ResultCache<String> = ResultCache::new(1 << 16);
        assert_eq!(
            fresh.restore(b"not a snapshot at all"),
            SnapshotLoad { restored: 0, truncated: true }
        );
        assert_eq!(fresh.restore(&[]), SnapshotLoad::default());

        // Truncation mid-record: the intact prefix restores.
        let mut fresh: ResultCache<String> = ResultCache::new(1 << 16);
        let load = fresh.restore(&bytes[..bytes.len() - 3]);
        assert_eq!(load, SnapshotLoad { restored: 1, truncated: true });
        assert!(fresh.get(&key(1)).is_some());

        // A flipped payload byte fails the record checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 10; // inside the second record's payload
        flipped[last] ^= 0xff;
        let mut fresh: ResultCache<String> = ResultCache::new(1 << 16);
        let load = fresh.restore(&flipped);
        assert!(load.truncated);
        assert!(load.restored <= 1);
    }

    #[test]
    fn persist_atomically_writes_and_replaces() {
        let dir = std::env::temp_dir().join(format!("nfz-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");
        persist_atomically(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        persist_atomically(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stable_hasher_is_deterministic() {
        let mut h1 = StableHasher::new();
        h1.write_str("numfuzz");
        h1.write_u32(42);
        let mut h2 = StableHasher::new();
        h2.write_str("numfuzz");
        h2.write_u32(42);
        assert_eq!(h1.finish128(), h2.finish128());
        assert_eq!(h1.finish64(), h2.finish64());
        // Length prefixing: ("ab","c") != ("a","bc").
        let mut h3 = StableHasher::new();
        h3.write_str("ab");
        h3.write_str("c");
        let mut h4 = StableHasher::new();
        h4.write_str("a");
        h4.write_str("bc");
        assert_ne!(h3.finish128(), h4.finish128());
    }
}
