//! A compact pretty-printer for arena terms, used in error messages,
//! examples and debugging. Output follows the surface syntax and
//! **re-parses** for programs built from it: `function` chains print with
//! their parameter sugar restored, and constants print as exact decimals
//! whenever they have one (denominator `2^a·5^b`). The residue that
//! cannot round-trip — bare lambdas outside `function` sugar, `err`
//! terms, constants like `1/3` — prints readably but is not surface
//! syntax.

use crate::term::{Node, TermId, TermStore};
use crate::ty::Ty;
use numfuzz_exact::Rational;

/// Renders a term. Iterative in spirit but recursion-bounded by
/// `max_depth`: deeper structure prints as `...` (benchmark terms are
/// millions of nodes deep; printing them fully is never what you want).
pub fn pretty_term(store: &TermStore, id: TermId, max_depth: u32) -> String {
    let mut out = String::new();
    go(store, id, max_depth, &mut out);
    out
}

fn go(store: &TermStore, id: TermId, depth: u32, out: &mut String) {
    if depth == 0 {
        out.push_str("...");
        return;
    }
    let d = depth - 1;
    match store.node(id) {
        Node::Var(v) => out.push_str(store.var_name(*v)),
        Node::UnitVal => out.push_str("()"),
        Node::Const(k) => out.push_str(&constant_literal(store.constant(*k))),
        Node::PairW(a, b) => {
            out.push_str("(|");
            go(store, *a, d, out);
            out.push_str(", ");
            go(store, *b, d, out);
            out.push_str("|)");
        }
        Node::PairT(a, b) => {
            out.push('(');
            go(store, *a, d, out);
            out.push_str(", ");
            go(store, *b, d, out);
            out.push(')');
        }
        Node::Inl(v, ann) => {
            // `true` is sugar for `inl () : bool`; restore it so the
            // output re-parses to the identical term.
            if matches!(store.node(*v), Node::UnitVal) && store.ty(*ann) == Ty::Unit {
                out.push_str("true");
            } else {
                out.push_str(&format!("inl {{{}}} ", store.ty(*ann)));
                go(store, *v, d, out);
            }
        }
        Node::Inr(v, ann) => {
            if matches!(store.node(*v), Node::UnitVal) && store.ty(*ann) == Ty::Unit {
                out.push_str("false");
            } else {
                out.push_str(&format!("inr {{{}}} ", store.ty(*ann)));
                go(store, *v, d, out);
            }
        }
        Node::Lam(x, ty, body) => {
            out.push_str("\\(");
            out.push_str(store.var_name(*x));
            out.push_str(": ");
            out.push_str(&store.ty(*ty).to_string());
            out.push_str("). ");
            go(store, *body, d, out);
        }
        Node::BoxIntro(g, v) => {
            out.push('[');
            go(store, *v, d, out);
            out.push_str("]{");
            out.push_str(&store.grade(*g).to_string());
            out.push('}');
        }
        Node::Rnd(v) => {
            out.push_str("rnd ");
            go(store, *v, d, out);
        }
        Node::Ret(v) => {
            out.push_str("ret ");
            go(store, *v, d, out);
        }
        Node::Err(g, t) => {
            out.push_str(&format!("err[{}]{{{}}}", store.grade(*g), store.ty(*t)));
        }
        Node::App(f, a) => {
            go(store, *f, d, out);
            out.push(' ');
            let needs_paren = !matches!(
                store.node(*a),
                Node::Var(_) | Node::Const(_) | Node::UnitVal | Node::PairT(..) | Node::PairW(..)
            );
            if needs_paren {
                out.push('(');
            }
            go(store, *a, d, out);
            if needs_paren {
                out.push(')');
            }
        }
        Node::Proj(first, v) => {
            out.push_str(if *first { "fst " } else { "snd " });
            go(store, *v, d, out);
        }
        Node::LetTensor(x, y, v, e) => {
            out.push_str(&format!("let ({}, {}) = ", store.var_name(*x), store.var_name(*y)));
            go(store, *v, d, out);
            out.push_str("; ");
            go(store, *e, d, out);
        }
        Node::Case(v, x, e1, y, e2) => {
            out.push_str("case ");
            go(store, *v, d, out);
            out.push_str(&format!(" of (inl {} . ", store.var_name(*x)));
            go(store, *e1, d, out);
            out.push_str(&format!(" | inr {} . ", store.var_name(*y)));
            go(store, *e2, d, out);
            out.push(')');
        }
        Node::LetBox(x, v, e) => {
            emit_stmt(store, Binder::Box, *x, *v, d, out);
            go(store, *e, d, out);
        }
        Node::LetBind(x, v, e) => {
            emit_stmt(store, Binder::Bind, *x, *v, d, out);
            go(store, *e, d, out);
        }
        Node::Let(x, e, f) => {
            emit_stmt(store, Binder::Plain, *x, *e, d, out);
            go(store, *f, d, out);
        }
        Node::LetFun(x, decl, body, rest) => {
            // Restore the surface sugar when possible: a declared type
            // plus a lambda chain prints as
            // `function f (p: T) ... : R { body }`.
            if let Some(decl) = decl {
                let mut params = Vec::new();
                let mut inner = *body;
                let mut ret = store.ty(*decl);
                while let (Node::Lam(p, pt, b), Ty::Lolli(_, cod)) =
                    (store.node(inner), ret.clone())
                {
                    params.push((store.var_name(*p).to_string(), store.ty(*pt)));
                    inner = *b;
                    ret = *cod;
                }
                out.push_str(&format!("function {}", store.var_name(*x)));
                for (p, t) in &params {
                    out.push_str(&format!(" ({p}: {t})"));
                }
                out.push_str(&format!(" : {ret} {{ "));
                go(store, inner, d, out);
                out.push_str(" }\n");
                go(store, *rest, d, out);
            } else {
                out.push_str(&format!("function {} = ", store.var_name(*x)));
                go(store, *body, d, out);
                out.push_str("; ");
                go(store, *rest, d, out);
            }
        }
        Node::Op(op, v) => {
            out.push_str(store.op_name(*op));
            out.push(' ');
            go(store, *v, d, out);
        }
    }
}

/// Statement flavors of the surface syntax.
#[derive(Clone, Copy)]
enum Binder {
    /// `x = e;`
    Plain,
    /// `let x = e;` (monadic bind)
    Bind,
    /// `let [x] = e;` (box elimination)
    Box,
}

/// Prints one `… = e;` statement. When the bound term is itself a
/// statement chain (ANF puts let-chains in bound position), the chain is
/// hoisted — `x = (y = a; b); c` prints as `y = a; x = b; c` — because
/// the surface grammar has no parenthesized blocks. Call-by-value
/// evaluation order is unchanged by this floating.
fn emit_stmt(
    store: &TermStore,
    kind: Binder,
    x: crate::term::VarId,
    bound: TermId,
    d: u32,
    out: &mut String,
) {
    if d == 0 {
        out.push_str("...; ");
        return;
    }
    match store.node(bound) {
        Node::Let(y, a, b) => {
            let (y, a, b) = (*y, *a, *b);
            emit_stmt(store, Binder::Plain, y, a, d - 1, out);
            emit_stmt(store, kind, x, b, d - 1, out);
        }
        Node::LetBind(y, a, b) => {
            let (y, a, b) = (*y, *a, *b);
            emit_stmt(store, Binder::Bind, y, a, d - 1, out);
            emit_stmt(store, kind, x, b, d - 1, out);
        }
        Node::LetBox(y, a, b) => {
            let (y, a, b) = (*y, *a, *b);
            emit_stmt(store, Binder::Box, y, a, d - 1, out);
            emit_stmt(store, kind, x, b, d - 1, out);
        }
        _ => {
            match kind {
                Binder::Plain => out.push_str(&format!("{} = ", store.var_name(x))),
                Binder::Bind => out.push_str(&format!("let {} = ", store.var_name(x))),
                Binder::Box => out.push_str(&format!("let [{}] = ", store.var_name(x))),
            }
            go(store, bound, d - 1, out);
            out.push_str("; ");
        }
    }
}

/// Renders a constant as a literal the lexer accepts: an exact decimal
/// when the denominator is `2^a·5^b` (every float and every decimal
/// source literal qualifies), the `n/d` display form otherwise.
fn constant_literal(q: &Rational) -> String {
    if q.is_integer() {
        return q.to_string();
    }
    // Find the smallest k with q·10^k integral. Each ×10 strips the
    // denominator's factors of 2 and 5; when a step leaves the
    // denominator unchanged there is another prime in it and no finite
    // decimal exists, so `1/3`-like constants bail after one step
    // instead of looping to the bound (which only guards softfloat
    // extremes, well under 10^-400).
    let ten = Rational::from_int(10);
    let mut scaled = q.clone();
    for k in 1..=512u32 {
        let next = scaled.mul(&ten);
        if next.denom() == scaled.denom() {
            return q.to_string();
        }
        scaled = next;
        if scaled.is_integer() {
            let digits = scaled.abs().to_string();
            let sign = if q.is_negative() { "-" } else { "" };
            let k = k as usize;
            return if digits.len() > k {
                format!("{sign}{}.{}", &digits[..digits.len() - k], &digits[digits.len() - k..])
            } else {
                format!("{sign}0.{}{digits}", "0".repeat(k - digits.len()))
            };
        }
    }
    q.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::Signature;

    #[test]
    fn prints_paper_style() {
        let sig = Signature::relative_precision();
        let src = "function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }";
        let lowered = crate::lower::compile(src, &sig).unwrap();
        let text = pretty_term(&lowered.store, lowered.root, 16);
        assert!(text.contains("function mulfp"), "{text}");
        assert!(text.contains("mul xy"), "{text}");
        assert!(text.contains("rnd s"), "{text}");
    }

    #[test]
    fn constants_print_as_literals() {
        let dec = |s: &str| Rational::from_decimal_str(s).unwrap();
        assert_eq!(constant_literal(&dec("0.1")), "0.1");
        assert_eq!(constant_literal(&dec("-2.5")), "-2.5");
        assert_eq!(constant_literal(&dec("42")), "42");
        assert_eq!(constant_literal(&dec("0.001")), "0.001");
        assert_eq!(constant_literal(&Rational::pow2(-4)), "0.0625");
        // No finite decimal expansion: falls back to the display form.
        assert_eq!(constant_literal(&Rational::ratio(1, 3)), "1/3");
    }

    #[test]
    fn function_sugar_round_trips() {
        let sig = Signature::relative_precision();
        let src = r#"
            function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
            function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
            function MA (x: num) (y: num) (z: num) : M[2*eps]num {
                s = mulfp (x,y);
                let a = s;
                addfp (|a,z|)
            }
            MA 0.1 0.3 7
        "#;
        let lowered = crate::lower::compile(src, &sig).unwrap();
        let printed = pretty_term(&lowered.store, lowered.root, u32::MAX);
        assert!(printed.contains("function mulfp (xy: (num, num)) : M[eps]num {"), "{printed}");
        // The printed program parses and lowers again.
        let again = crate::lower::compile(&printed, &sig)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{printed}"));
        let reprinted = pretty_term(&again.store, again.root, u32::MAX);
        assert_eq!(printed, reprinted, "printing reaches a fixpoint");
    }

    #[test]
    fn user_temp_like_names_do_not_capture() {
        // `_t0`/`_t1` as *source* binders must not collide with generated
        // ANF temporaries, or the hoisted statement chains would shadow
        // each other on re-parse.
        let sig = Signature::relative_precision();
        let src = r#"
            function f (x: num) : M[2*eps]num {
                _t0 = mul (x, x);
                let _t1 = rnd (mul (_t0, _t0));
                rnd (mul (_t1, _t1))
            }
            f 2
        "#;
        let lowered = crate::lower::compile(src, &sig).unwrap();
        let printed = pretty_term(&lowered.store, lowered.root, u32::MAX);
        let again = crate::lower::compile(&printed, &sig)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{printed}"));
        assert_eq!(printed, pretty_term(&again.store, again.root, u32::MAX));
    }

    #[test]
    fn depth_limit_truncates() {
        let sig = Signature::relative_precision();
        let src = "function f (x: num) : num { a = mul (x, x); b = mul (a, a); mul (b, b) }";
        let lowered = crate::lower::compile(src, &sig).unwrap();
        let text = pretty_term(&lowered.store, lowered.root, 3);
        assert!(text.contains("..."));
    }
}
