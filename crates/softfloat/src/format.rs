//! Binary floating-point formats, parameterized exactly as in the paper's
//! Table 1: a precision `p` and a maximum exponent `emax`, with
//! `emin = 1 - emax` (IEEE 754-2008 interchange formats).

use crate::round::RoundingMode;
use numfuzz_exact::Rational;
use std::fmt;

/// A binary floating-point format `F(p, emax)`.
///
/// A finite member of the format has the form `(-1)^s * m * 2^(e-p+1)` with
/// significand `m ∈ [0, 2^p)` and exponent `e ∈ [emin, emax]` (Section 2.1,
/// eq. 1, with base β = 2).
///
/// # Examples
///
/// ```
/// use numfuzz_softfloat::Format;
///
/// let f = Format::BINARY64;
/// assert_eq!(f.precision(), 53);
/// assert_eq!(f.emax(), 1023);
/// assert_eq!(f.emin(), -1022);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Format {
    prec: u32,
    emax: i64,
}

impl Format {
    /// IEEE 754 binary32 (Table 1: p = 24, emax = 127).
    pub const BINARY32: Format = Format { prec: 24, emax: 127 };
    /// IEEE 754 binary64 (Table 1: p = 53, emax = 1023).
    pub const BINARY64: Format = Format { prec: 53, emax: 1023 };
    /// IEEE 754 binary128 (Table 1: p = 113, emax = 16383).
    pub const BINARY128: Format = Format { prec: 113, emax: 16383 };

    /// Builds a custom format.
    ///
    /// # Panics
    ///
    /// Panics unless `prec >= 2` and `emax >= 1`.
    pub fn new(prec: u32, emax: i64) -> Self {
        assert!(prec >= 2, "precision must be at least 2");
        assert!(emax >= 1, "emax must be at least 1");
        Format { prec, emax }
    }

    /// The precision `p` (number of significand bits, hidden bit included).
    pub fn precision(&self) -> u32 {
        self.prec
    }

    /// The maximum exponent.
    pub fn emax(&self) -> i64 {
        self.emax
    }

    /// The minimum (normal) exponent, `emin = 1 - emax`.
    pub fn emin(&self) -> i64 {
        1 - self.emax
    }

    /// The unit roundoff for a rounding mode (paper Table 2): `2^(1-p)` for
    /// the directed modes and `2^-p` for round-to-nearest.
    pub fn unit_roundoff(&self, mode: RoundingMode) -> Rational {
        match mode {
            RoundingMode::NearestEven => Rational::pow2(-(self.prec as i64)),
            _ => Rational::pow2(1 - self.prec as i64),
        }
    }

    /// Machine epsilon `2^(1-p)` (the grade constant `eps` used by the Λnum
    /// instantiation with round-toward-+∞ in Section 5).
    pub fn machine_epsilon(&self) -> Rational {
        Rational::pow2(1 - self.prec as i64)
    }

    /// The largest finite value, `(2 - 2^(1-p)) * 2^emax`.
    pub fn max_finite_value(&self) -> Rational {
        Rational::from_int(2)
            .sub(&Rational::pow2(1 - self.prec as i64))
            .mul(&Rational::pow2(self.emax))
    }

    /// The smallest positive normal value, `2^emin`.
    pub fn min_normal_value(&self) -> Rational {
        Rational::pow2(self.emin())
    }

    /// The smallest positive subnormal value, `2^(emin - p + 1)`.
    pub fn min_subnormal_value(&self) -> Rational {
        Rational::pow2(self.emin() - self.prec as i64 + 1)
    }

    /// Number of finite non-negative floats (useful for exhaustive tests):
    /// `(emax - emin + 1) * 2^(p-1) + 2^(p-1)` — every exponent block holds
    /// `2^(p-1)` values and the subnormal block (including zero) another.
    pub fn nonnegative_count(&self) -> u128 {
        let blocks = (self.emax - self.emin() + 1) as u128 + 1;
        blocks * (1u128 << (self.prec - 1))
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Format::BINARY32 => write!(f, "binary32"),
            Format::BINARY64 => write!(f, "binary64"),
            Format::BINARY128 => write!(f, "binary128"),
            Format { prec, emax } => write!(f, "binary(p={prec}, emax={emax})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        // The paper's Table 1.
        assert_eq!(Format::BINARY32.precision(), 24);
        assert_eq!(Format::BINARY32.emax(), 127);
        assert_eq!(Format::BINARY64.precision(), 53);
        assert_eq!(Format::BINARY64.emax(), 1023);
        assert_eq!(Format::BINARY128.precision(), 113);
        assert_eq!(Format::BINARY128.emax(), 16383);
        // emin = 1 - emax for each.
        assert_eq!(Format::BINARY32.emin(), -126);
        assert_eq!(Format::BINARY64.emin(), -1022);
        assert_eq!(Format::BINARY128.emin(), -16382);
    }

    #[test]
    fn table2_unit_roundoffs() {
        let f = Format::BINARY64;
        for mode in
            [RoundingMode::TowardPositive, RoundingMode::TowardNegative, RoundingMode::TowardZero]
        {
            assert_eq!(f.unit_roundoff(mode), Rational::pow2(-52));
        }
        assert_eq!(f.unit_roundoff(RoundingMode::NearestEven), Rational::pow2(-53));
    }

    #[test]
    fn extreme_values_match_ieee() {
        let f = Format::BINARY64;
        assert_eq!(f.max_finite_value().to_f64(), f64::MAX);
        assert_eq!(f.min_normal_value().to_f64(), f64::MIN_POSITIVE);
        assert_eq!(f.min_subnormal_value().to_f64(), 5e-324);
    }

    #[test]
    fn tiny_format_count() {
        // p=3, emax=2: exponents -1..=2 (4 blocks) * 4 + 4 subnormal slots.
        let f = Format::new(3, 2);
        assert_eq!(f.nonnegative_count(), 20);
    }

    #[test]
    #[should_panic(expected = "precision must be at least 2")]
    fn rejects_degenerate_precision() {
        let _ = Format::new(1, 10);
    }
}
