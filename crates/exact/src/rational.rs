//! Exact rational numbers.
//!
//! [`Rational`] is the numeric workhorse of the whole workspace: grades in
//! the Λnum type system, floating-point values in the softfloat substrate,
//! and interval endpoints in the analyzers are all exact rationals, so no
//! part of the trusted computation path depends on host floating point.
//!
//! # Representation
//!
//! A value is stored inline as a machine-word fraction `i64/u64` whenever
//! it fits, and only promotes to a heap-allocated [`BigInt`]/[`BigUint`]
//! pair on overflow. Grade arithmetic — small multiples of `eps = 2⁻⁵²`
//! and friends — therefore never touches the heap, which is what makes
//! whole-program checking allocation-free on the numeric side. The two
//! forms are kept *canonical*: any value whose reduced numerator fits in
//! `i64` and whose denominator fits in `u64` is always stored small, so
//! derived equality and hashing agree across construction routes.

use crate::bigint::{BigInt, Sign};
use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::fmt;

/// An exact rational number `num/den` with `den > 0` and `gcd(num, den) = 1`.
///
/// # Examples
///
/// ```
/// use numfuzz_exact::Rational;
///
/// let a = Rational::from_decimal_str("0.1")?;
/// let b = Rational::ratio(1, 10);
/// assert_eq!(a, b);
/// let c = &a + &b;
/// assert_eq!(c, Rational::ratio(1, 5));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    repr: Repr,
}

/// Internal representation. Invariants:
///
/// * both variants are in lowest terms with a positive denominator;
/// * `Big` is used **only** when the value does not fit `Small` (numerator
///   outside `i64` or denominator outside `u64`), so structurally derived
///   `Eq`/`Hash` are canonical.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    Small { num: i64, den: u64 },
    Big { num: BigInt, den: BigUint },
}

/// Euclid's algorithm on machine words.
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn bigint_of_i128(v: i128) -> BigInt {
    if v == 0 {
        return BigInt::zero();
    }
    let sign = if v < 0 { Sign::Minus } else { Sign::Plus };
    BigInt::from_sign_mag(sign, BigUint::from(v.unsigned_abs()))
}

fn bigint_to_i64(n: &BigInt) -> Option<i64> {
    let mag = n.magnitude().to_u64()?;
    match n.sign() {
        Sign::Zero => Some(0),
        Sign::Plus => (mag <= i64::MAX as u64).then_some(mag as i64),
        Sign::Minus => {
            if mag <= i64::MAX as u64 {
                Some(-(mag as i64))
            } else if mag == (i64::MAX as u64) + 1 {
                Some(i64::MIN)
            } else {
                None
            }
        }
    }
}

impl Rational {
    /// The canonical zero.
    pub fn zero() -> Self {
        Rational { repr: Repr::Small { num: 0, den: 1 } }
    }

    /// The canonical one.
    pub fn one() -> Self {
        Rational { repr: Repr::Small { num: 1, den: 1 } }
    }

    /// Builds `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let num = if den.is_negative() { num.neg() } else { num };
        Rational::new_unsigned(num, den.into_magnitude())
    }

    /// Reduces `num/den` (den > 0) and picks the canonical representation.
    fn new_unsigned(num: BigInt, den: BigUint) -> Self {
        if num.is_zero() {
            return Rational::zero();
        }
        let g = num.magnitude().gcd(&den);
        if g.is_one() {
            Rational::demote(num, den)
        } else {
            let (nq, _) = num.magnitude().div_rem(&g);
            let (dq, _) = den.div_rem(&g);
            Rational::demote(BigInt::from_sign_mag(num.sign(), nq), dq)
        }
    }

    /// Canonicalizes an already-reduced big pair: store small if it fits.
    fn demote(num: BigInt, den: BigUint) -> Self {
        if let (Some(n), Some(d)) = (bigint_to_i64(&num), den.to_u64()) {
            return Rational { repr: Repr::Small { num: n, den: d } };
        }
        Rational { repr: Repr::Big { num, den } }
    }

    /// Reduces a word-sized fraction (`den > 0`) without touching the heap
    /// unless the reduced parts overflow the small representation.
    fn from_i128_frac(num: i128, den: u128) -> Self {
        debug_assert!(den > 0);
        if num == 0 {
            return Rational::zero();
        }
        let g = gcd_u128(num.unsigned_abs(), den);
        let (n, d) = (num / g as i128, den / g);
        if let Ok(n64) = i64::try_from(n) {
            if let Ok(d64) = u64::try_from(d) {
                return Rational { repr: Repr::Small { num: n64, den: d64 } };
            }
        }
        Rational { repr: Repr::Big { num: bigint_of_i128(n), den: BigUint::from(d) } }
    }

    /// The big-integer view of the value (clones the small form).
    fn to_big(&self) -> (BigInt, BigUint) {
        match &self.repr {
            Repr::Small { num, den } => (BigInt::from(*num), BigUint::from(*den)),
            Repr::Big { num, den } => (num.clone(), den.clone()),
        }
    }

    /// Builds `n/d` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn ratio(n: i64, d: i64) -> Self {
        assert!(d != 0, "rational with zero denominator");
        let (n, d) =
            if d < 0 { (-(n as i128), (d as i128).unsigned_abs()) } else { (n as i128, d as u128) };
        Rational::from_i128_frac(n, d)
    }

    /// Builds the integer `n`.
    pub fn from_int(n: i64) -> Self {
        Rational { repr: Repr::Small { num: n, den: 1 } }
    }

    /// `2^k` for any (possibly negative) `k`.
    pub fn pow2(k: i64) -> Self {
        if (0..=62).contains(&k) {
            return Rational { repr: Repr::Small { num: 1i64 << k, den: 1 } };
        }
        if (-63..0).contains(&k) {
            return Rational { repr: Repr::Small { num: 1, den: 1u64 << (-k) } };
        }
        if k >= 0 {
            Rational::demote(BigInt::one().shl_bits(k as u64), BigUint::one())
        } else {
            Rational::demote(BigInt::one(), BigUint::one().shl_bits((-k) as u64))
        }
    }

    /// The numerator (signed, in lowest terms).
    pub fn numer(&self) -> BigInt {
        match &self.repr {
            Repr::Small { num, .. } => BigInt::from(*num),
            Repr::Big { num, .. } => num.clone(),
        }
    }

    /// The denominator (positive, in lowest terms).
    pub fn denom(&self) -> BigUint {
        match &self.repr {
            Repr::Small { den, .. } => BigUint::from(*den),
            Repr::Big { den, .. } => den.clone(),
        }
    }

    /// Number of significant bits of the numerator's magnitude (`0` for
    /// zero), read without materializing a big integer. Together with
    /// [`Rational::denom_bit_len`] this keeps exponent estimation in the
    /// softfloat rounding path allocation-free for inline values.
    pub fn numer_bit_len(&self) -> u64 {
        match &self.repr {
            Repr::Small { num, .. } => (64 - num.unsigned_abs().leading_zeros()) as u64,
            Repr::Big { num, .. } => num.magnitude().bit_len(),
        }
    }

    /// Number of significant bits of the denominator (always `>= 1`),
    /// read without materializing a big integer.
    pub fn denom_bit_len(&self) -> u64 {
        match &self.repr {
            Repr::Small { den, .. } => (64 - den.leading_zeros()) as u64,
            Repr::Big { den, .. } => den.bit_len(),
        }
    }

    /// Whether the value currently fits the inline machine-word form
    /// (always true when it *can*: the representation is canonical).
    pub fn is_small(&self) -> bool {
        matches!(self.repr, Repr::Small { .. })
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Small { num, .. } => *num == 0,
            Repr::Big { num, .. } => num.is_zero(),
        }
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        match &self.repr {
            Repr::Small { num, .. } => *num > 0,
            Repr::Big { num, .. } => num.is_positive(),
        }
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        match &self.repr {
            Repr::Small { num, .. } => *num < 0,
            Repr::Big { num, .. } => num.is_negative(),
        }
    }

    /// Whether the value is an integer.
    pub fn is_integer(&self) -> bool {
        match &self.repr {
            Repr::Small { den, .. } => *den == 1,
            Repr::Big { den, .. } => den.is_one(),
        }
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        match &self.repr {
            Repr::Small { num, .. } => match num.cmp(&0) {
                Ordering::Less => Sign::Minus,
                Ordering::Equal => Sign::Zero,
                Ordering::Greater => Sign::Plus,
            },
            Repr::Big { num, .. } => num.sign(),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        if let (Repr::Small { num: an, den: ad }, Repr::Small { num: bn, den: bd }) =
            (&self.repr, &other.repr)
        {
            let n1 = (*an as i128).checked_mul(*bd as i128);
            let n2 = (*bn as i128).checked_mul(*ad as i128);
            if let (Some(n1), Some(n2)) = (n1, n2) {
                if let Some(n) = n1.checked_add(n2) {
                    return Rational::from_i128_frac(n, *ad as u128 * *bd as u128);
                }
            }
        }
        let (an, ad) = self.to_big();
        let (bn, bd) = other.to_big();
        let num = an.mul(&BigInt::from(bd.clone())).add(&bn.mul(&BigInt::from(ad.clone())));
        Rational::new_unsigned(num, ad.mul(&bd))
    }

    /// `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// `self * other`.
    pub fn mul(&self, other: &Self) -> Self {
        if let (Repr::Small { num: an, den: ad }, Repr::Small { num: bn, den: bd }) =
            (&self.repr, &other.repr)
        {
            // Cross-reduce first so products usually stay in one word.
            let g1 = gcd_u128(an.unsigned_abs() as u128, *bd as u128).max(1);
            let g2 = gcd_u128(bn.unsigned_abs() as u128, *ad as u128).max(1);
            let n1 = *an as i128 / g1 as i128;
            let n2 = *bn as i128 / g2 as i128;
            let d1 = *ad as u128 / g2;
            let d2 = *bd as u128 / g1;
            if let (Some(n), Some(d)) = (n1.checked_mul(n2), d1.checked_mul(d2)) {
                return Rational::from_i128_frac(n, d);
            }
        }
        let (an, ad) = self.to_big();
        let (bn, bd) = other.to_big();
        Rational::new_unsigned(an.mul(&bn), ad.mul(&bd))
    }

    /// `self / other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div(&self, other: &Self) -> Self {
        assert!(!other.is_zero(), "division by zero rational");
        if let (Repr::Small { num: an, den: ad }, Repr::Small { num: bn, den: bd }) =
            (&self.repr, &other.repr)
        {
            // a/b ÷ c/d = (a·d)/(b·c), sign moved to the numerator.
            let g1 = gcd_u128(an.unsigned_abs() as u128, bn.unsigned_abs() as u128).max(1);
            let g2 = gcd_u128(*ad as u128, *bd as u128).max(1);
            let n1 = *an as i128 / g1 as i128;
            let d2 = *bd as u128 / g2;
            let d1 = *ad as u128 / g2;
            let n2 = *bn as i128 / g1 as i128;
            let num = n1.checked_mul(d2 as i128);
            let den = (d1 as i128).checked_mul(n2);
            if let (Some(num), Some(den)) = (num, den) {
                let (num, den) = if den < 0 {
                    (num.checked_neg(), den.unsigned_abs())
                } else {
                    (Some(num), den as u128)
                };
                if let Some(num) = num {
                    return Rational::from_i128_frac(num, den);
                }
            }
        }
        let (an, ad) = self.to_big();
        let (bn, bd) = other.to_big();
        let num = an.mul(&BigInt::from(bd));
        let den = BigInt::from_sign_mag(bn.sign(), ad.mul(bn.magnitude()));
        Rational::new(num, den)
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        match &self.repr {
            Repr::Small { num, den } => {
                if let Some(n) = num.checked_neg() {
                    Rational { repr: Repr::Small { num: n, den: *den } }
                } else {
                    // -(i64::MIN) = 2^63 needs the big form.
                    Rational {
                        repr: Repr::Big { num: BigInt::from(*num).neg(), den: BigUint::from(*den) },
                    }
                }
            }
            Repr::Big { num, den } => Rational::demote(num.neg(), den.clone()),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        if self.is_negative() {
            self.neg()
        } else {
            self.clone()
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Self {
        assert!(!self.is_zero(), "reciprocal of zero");
        if let Repr::Small { num, den } = &self.repr {
            let mag = num.unsigned_abs();
            if mag <= i64::MAX as u64 {
                let n = if *num < 0 { -(*den as i128) } else { *den as i128 };
                return Rational::from_i128_frac(n, mag as u128);
            }
        }
        let (num, den) = self.to_big();
        Rational::demote(BigInt::from_sign_mag(num.sign(), den), num.into_magnitude())
    }

    /// `self^exp` for a signed exponent.
    ///
    /// # Panics
    ///
    /// Panics when raising zero to a negative power.
    pub fn pow(&self, exp: i64) -> Self {
        if exp >= 0 {
            let (num, den) = self.to_big();
            Rational::demote(num.pow(exp as u64), den.pow(exp as u64))
        } else {
            self.recip().pow(-exp)
        }
    }

    /// `floor(self)` as an integer.
    pub fn floor(&self) -> BigInt {
        if let Repr::Small { num, den } = &self.repr {
            // div_euclid floors for positive divisors.
            return BigInt::from((*num as i128).div_euclid(*den as i128) as i64);
        }
        let (num, den) = self.to_big();
        let (q, r) = num.div_rem(&BigInt::from(den));
        if num.is_negative() && !r.is_zero() {
            q.sub(&BigInt::one())
        } else {
            q
        }
    }

    /// `ceil(self)` as an integer.
    pub fn ceil(&self) -> BigInt {
        self.neg().floor().neg()
    }

    /// `floor(self * 2^k)` as an integer, for any (possibly negative) `k`.
    ///
    /// This is the primitive used by the softfloat rounding code and the
    /// enclosure routines: it extracts `k` fractional bits exactly.
    pub fn floor_mul_pow2(&self, k: i64) -> BigInt {
        let (num, den) = self.to_big();
        let scaled_num = if k >= 0 { num.shl_bits(k as u64) } else { num.clone() };
        let scaled_den = if k >= 0 { den.clone() } else { den.shl_bits((-k) as u64) };
        let (q, r) = scaled_num.div_rem(&BigInt::from(scaled_den));
        if scaled_num.is_negative() && !r.is_zero() {
            q.sub(&BigInt::one())
        } else {
            q
        }
    }

    /// Approximate conversion to `f64` (accurate to well under one ulp;
    /// intended for display and plotting, never for the trusted path).
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        if let Repr::Small { num, den } = &self.repr {
            // Both parts exactly representable: one correctly-rounded op.
            if num.unsigned_abs() <= (1 << 53) && *den <= (1 << 53) {
                return *num as f64 / *den as f64;
            }
        }
        let (num, den) = self.to_big();
        let num_bits = num.magnitude().bit_len() as i64;
        let den_bits = den.bit_len() as i64;
        // Scale so the integer quotient has ~80 significant bits.
        let shift = 80 - (num_bits - den_bits);
        let t = self.abs().floor_mul_pow2(shift);
        let tf = t.to_f64();
        // Apply 2^-shift in chunks so intermediates never over/underflow
        // (f64 exponents only span ~[-1074, 1023]).
        let mag = ldexp(tf, -shift);
        if self.is_negative() {
            -mag
        } else {
            mag
        }
    }

    /// Parses decimal notation: `"3"`, `"-0.25"`, `"1e-5"`, `"2.5e3"`, or an
    /// exact fraction `"3/4"`.
    pub fn from_decimal_str(s: &str) -> Result<Self, ParseRationalError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseRationalError(s.to_string()));
        }
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse().map_err(|_| ParseRationalError(s.to_string()))?;
            let den: BigInt = d.trim().parse().map_err(|_| ParseRationalError(s.to_string()))?;
            if den.is_zero() {
                return Err(ParseRationalError(s.to_string()));
            }
            return Ok(Rational::new(num, den));
        }
        let (mantissa, exp10) = match s.split_once(['e', 'E']) {
            Some((m, e)) => {
                let exp: i64 = e.parse().map_err(|_| ParseRationalError(s.to_string()))?;
                (m, exp)
            }
            None => (s, 0),
        };
        let (sign, digits) = match mantissa.strip_prefix('-') {
            Some(rest) => (Sign::Minus, rest),
            None => (Sign::Plus, mantissa.strip_prefix('+').unwrap_or(mantissa)),
        };
        let (int_part, frac_part) = match digits.split_once('.') {
            Some((i, f)) => (i, f),
            None => (digits, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(ParseRationalError(s.to_string()));
        }
        let joined = format!("{int_part}{frac_part}");
        let mag = BigUint::from_decimal_str(if joined.is_empty() { "0" } else { &joined })
            .map_err(|_| ParseRationalError(s.to_string()))?;
        let num = if mag.is_zero() { BigInt::zero() } else { BigInt::from_sign_mag(sign, mag) };
        let exp = exp10 - frac_part.len() as i64;
        let ten = BigUint::from(10u32);
        Ok(if exp >= 0 {
            Rational::new_unsigned(num.mul(&BigInt::from(ten.pow(exp as u64))), BigUint::one())
        } else {
            Rational::new_unsigned(num, ten.pow((-exp) as u64))
        })
    }

    /// Formats in scientific notation with `sig` significant digits,
    /// e.g. `5.55e-16`. Rounds to nearest.
    ///
    /// # Panics
    ///
    /// Panics if `sig == 0`.
    pub fn to_sci_string(&self, sig: usize) -> String {
        assert!(sig > 0, "need at least one significant digit");
        if self.is_zero() {
            return "0".to_string();
        }
        let neg = self.is_negative();
        let q = self.abs();
        // Initial decimal-exponent estimate from digit counts.
        let mut e = q.numer().magnitude().to_decimal_string().len() as i64
            - q.denom().to_decimal_string().len() as i64;
        let ten = Rational::from_int(10);
        // Adjust so that 10^e <= q < 10^(e+1).
        while q < ten.pow(e) {
            e -= 1;
        }
        while q >= ten.pow(e + 1) {
            e += 1;
        }
        // mantissa = round(q * 10^(sig-1-e)).
        let scaled = q.mul(&ten.pow(sig as i64 - 1 - e));
        let mut m = scaled.add(&Rational::ratio(1, 2)).floor();
        let limit = BigInt::from(10u64).pow(sig as u64);
        if m >= limit {
            let (q10, _) = m.div_rem(&BigInt::from(10i64));
            m = q10;
            e += 1;
        }
        let digits = m.to_string();
        debug_assert_eq!(digits.len(), sig);
        let body = if sig == 1 { digits } else { format!("{}.{}", &digits[..1], &digits[1..]) };
        format!(
            "{}{}e{}{:02}",
            if neg { "-" } else { "" },
            body,
            if e < 0 { "-" } else { "+" },
            e.abs()
        )
    }
}

/// `x * 2^e` with chunked scaling to avoid spurious intermediate
/// overflow/underflow. Results entering the subnormal range may be rounded
/// twice; this helper backs display-only conversions.
fn ldexp(x: f64, e: i64) -> f64 {
    let mut r = x;
    let mut e = e;
    while e > 900 {
        r *= 2f64.powi(900);
        e -= 900;
        if r.is_infinite() {
            return r;
        }
    }
    while e < -900 {
        r *= 2f64.powi(-900);
        e += 900;
        if r == 0.0 {
            return r;
        }
    }
    r * 2f64.powi(e as i32)
}

/// Error returned when parsing a [`Rational`] from an invalid string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError(String);

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {:?}", self.0)
    }
}

impl std::error::Error for ParseRationalError {}

impl std::str::FromStr for Rational {
    type Err = ParseRationalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Rational::from_decimal_str(s)
    }
}

impl From<BigInt> for Rational {
    fn from(num: BigInt) -> Self {
        Rational::demote(num, BigUint::one())
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        if let (Repr::Small { num: an, den: ad }, Repr::Small { num: bn, den: bd }) =
            (&self.repr, &other.repr)
        {
            // |i64|·u64 < 2^127: the cross products always fit i128.
            return (*an as i128 * *bd as i128).cmp(&(*bn as i128 * *ad as i128));
        }
        let (an, ad) = self.to_big();
        let (bn, bd) = other.to_big();
        an.mul(&BigInt::from(bd)).cmp(&bn.mul(&BigInt::from(ad)))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small { num, den: 1 } => write!(f, "{num}"),
            Repr::Small { num, den } => write!(f, "{num}/{den}"),
            Repr::Big { num, den } => {
                if den.is_one() {
                    write!(f, "{num}")
                } else {
                    write!(f, "{num}/{den}")
                }
            }
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

macro_rules! forward_binop_rat {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl std::ops::$trait<&Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                Rational::$inner(self, rhs)
            }
        }
        impl std::ops::$trait<Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                Rational::$inner(&self, &rhs)
            }
        }
        impl std::ops::$trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                Rational::$inner(&self, rhs)
            }
        }
    };
}

forward_binop_rat!(Add, add, add);
forward_binop_rat!(Sub, sub, sub);
forward_binop_rat!(Mul, mul, mul);
forward_binop_rat!(Div, div, div);

impl std::ops::Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational::neg(self)
    }
}

impl std::ops::Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational::neg(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(s: &str) -> Rational {
        Rational::from_decimal_str(s).expect("valid test literal")
    }

    #[test]
    fn normalization() {
        assert_eq!(Rational::ratio(2, 4), Rational::ratio(1, 2));
        assert_eq!(Rational::ratio(-2, 4), Rational::ratio(1, -2));
        assert_eq!(Rational::ratio(0, 7), Rational::zero());
        assert_eq!(Rational::ratio(6, 3), Rational::from_int(2));
    }

    #[test]
    fn field_ops() {
        let a = Rational::ratio(1, 3);
        let b = Rational::ratio(1, 6);
        assert_eq!(a.add(&b), Rational::ratio(1, 2));
        assert_eq!(a.sub(&b), Rational::ratio(1, 6));
        assert_eq!(a.mul(&b), Rational::ratio(1, 18));
        assert_eq!(a.div(&b), Rational::from_int(2));
        assert_eq!(a.recip(), Rational::from_int(3));
        assert_eq!(a.neg().abs(), a);
    }

    #[test]
    fn pow_and_pow2() {
        assert_eq!(Rational::ratio(2, 3).pow(3), Rational::ratio(8, 27));
        assert_eq!(Rational::ratio(2, 3).pow(-2), Rational::ratio(9, 4));
        assert_eq!(Rational::pow2(-3), Rational::ratio(1, 8));
        assert_eq!(Rational::pow2(5), Rational::from_int(32));
        assert_eq!(Rational::pow2(-52), Rational::ratio(1, 4503599627370496));
    }

    #[test]
    fn ordering_cross_mul() {
        assert!(Rational::ratio(1, 3) < Rational::ratio(1, 2));
        assert!(Rational::ratio(-1, 2) < Rational::ratio(-1, 3));
        assert!(Rational::ratio(7, 7) == Rational::one());
        assert_eq!(rat("0.1").max(rat("0.2")), rat("0.2"));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(rat("2.5").floor(), BigInt::from(2i64));
        assert_eq!(rat("-2.5").floor(), BigInt::from(-3i64));
        assert_eq!(rat("2.5").ceil(), BigInt::from(3i64));
        assert_eq!(rat("-2.5").ceil(), BigInt::from(-2i64));
        assert_eq!(rat("4").floor(), BigInt::from(4i64));
        assert_eq!(rat("4").ceil(), BigInt::from(4i64));
    }

    #[test]
    fn floor_mul_pow2_fraction_extraction() {
        // floor(3/4 * 2^2) = 3
        assert_eq!(Rational::ratio(3, 4).floor_mul_pow2(2), BigInt::from(3i64));
        // floor(5 * 2^-1) = 2
        assert_eq!(Rational::from_int(5).floor_mul_pow2(-1), BigInt::from(2i64));
        // Negative values floor toward -infinity.
        assert_eq!(Rational::ratio(-3, 4).floor_mul_pow2(1), BigInt::from(-2i64));
    }

    #[test]
    fn parse_decimal_forms() {
        assert_eq!(rat("0.1"), Rational::ratio(1, 10));
        assert_eq!(rat("-0.25"), Rational::ratio(-1, 4));
        assert_eq!(rat("1e-5"), Rational::ratio(1, 100_000));
        assert_eq!(rat("2.5e3"), Rational::from_int(2500));
        assert_eq!(rat("2.5E+1"), Rational::from_int(25));
        assert_eq!(rat("3/4"), Rational::ratio(3, 4));
        assert_eq!(rat(" 7 "), Rational::from_int(7));
        assert!(Rational::from_decimal_str("").is_err());
        assert!(Rational::from_decimal_str("1/0").is_err());
        assert!(Rational::from_decimal_str("abc").is_err());
    }

    #[test]
    fn to_f64_close() {
        assert_eq!(rat("0.5").to_f64(), 0.5);
        assert_eq!(Rational::from_int(-3).to_f64(), -3.0);
        let third = Rational::ratio(1, 3).to_f64();
        assert!((third - 1.0 / 3.0).abs() < 1e-16);
        assert_eq!(Rational::zero().to_f64(), 0.0);
        // 2^-52 exactly.
        assert_eq!(Rational::pow2(-52).to_f64(), 2f64.powi(-52));
    }

    #[test]
    fn sci_string_matches_paper_style() {
        // 7 * 2^-52 = 1.55e-15, the Horner2_with_error bound from the paper.
        let u = Rational::pow2(-52);
        let bound = Rational::from_int(7).mul(&u);
        assert_eq!(bound.to_sci_string(3), "1.55e-15");
        assert_eq!(u.to_sci_string(3), "2.22e-16");
        assert_eq!(rat("0").to_sci_string(3), "0");
        assert_eq!(rat("-123.45").to_sci_string(4), "-1.235e+02");
        assert_eq!(rat("999.96").to_sci_string(4), "1.000e+03");
        assert_eq!(rat("1").to_sci_string(1), "1e+00");
    }

    #[test]
    fn small_values_stay_inline_and_canonical() {
        // Common grade arithmetic never promotes.
        assert!(Rational::pow2(-52).is_small());
        assert!(Rational::ratio(5, 2).mul(&Rational::pow2(-52)).is_small());
        assert!(rat("0.1").add(&rat("0.3")).is_small());
        // A big-route construction of a small value demotes to the same
        // canonical form (equality and hashing agree).
        let via_big = Rational::new(BigInt::from(10i64).pow(3), BigInt::from(4i64));
        let small = Rational::ratio(250, 1);
        assert!(via_big.is_small());
        assert_eq!(via_big, small);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |r: &Rational| {
            let mut s = DefaultHasher::new();
            r.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&via_big), h(&small));
    }

    #[test]
    fn overflow_promotes_and_demotes() {
        let huge = Rational::from_int(i64::MAX).mul(&Rational::from_int(3));
        assert!(!huge.is_small());
        // Arithmetic that shrinks back re-enters the inline form.
        let back = huge.div(&Rational::from_int(3));
        assert!(back.is_small());
        assert_eq!(back, Rational::from_int(i64::MAX));
        // Negation at the i64 boundary.
        let min = Rational::from_int(i64::MIN);
        let negmin = min.neg();
        assert!(!negmin.is_small());
        assert_eq!(negmin.neg(), min);
        // pow2 beyond the word promotes; reciprocal relations still hold.
        let p100 = Rational::pow2(100);
        assert!(!p100.is_small());
        assert_eq!(p100.recip(), Rational::pow2(-100));
        assert_eq!(p100.mul(&Rational::pow2(-100)), Rational::one());
    }
}
