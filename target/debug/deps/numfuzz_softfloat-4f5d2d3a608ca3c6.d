/root/repo/target/debug/deps/numfuzz_softfloat-4f5d2d3a608ca3c6.d: crates/softfloat/src/lib.rs crates/softfloat/src/arith.rs crates/softfloat/src/format.rs crates/softfloat/src/round.rs crates/softfloat/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libnumfuzz_softfloat-4f5d2d3a608ca3c6.rmeta: crates/softfloat/src/lib.rs crates/softfloat/src/arith.rs crates/softfloat/src/format.rs crates/softfloat/src/round.rs crates/softfloat/src/value.rs Cargo.toml

crates/softfloat/src/lib.rs:
crates/softfloat/src/arith.rs:
crates/softfloat/src/format.rs:
crates/softfloat/src/round.rs:
crates/softfloat/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
