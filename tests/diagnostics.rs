//! The facade's error-path contract: malformed programs, unbound
//! variables, and grade mismatches yield *spanned* `Diagnostic`s with
//! stable codes — never panics — and `Program::parse` → `pretty` →
//! re-parse round-trips.

use numfuzz::prelude::*;

#[test]
fn malformed_programs_are_spanned_syntax_diagnostics() {
    // Lexical garbage.
    let err =
        Program::parse_named("lex.nf", "function f (x: num) : num { x # y }").expect_err("rejects");
    assert_eq!(err.code, ErrorCode::Syntax);
    let span = err.span.expect("lexer errors carry positions");
    assert_eq!(span.line, 1);
    assert!(err.to_string().starts_with("lex.nf:1:"), "{err}");

    // Grammatical garbage, off line one.
    let err = Program::parse_named("parse.nf", "function f (x: num) : num {\n  let = x;\n  x\n}")
        .expect_err("rejects");
    assert_eq!(err.code, ErrorCode::Syntax);
    assert_eq!(err.span.expect("spanned").line, 2);

    // The rendered form includes the offending line and a caret.
    let rendered = err.render();
    assert!(rendered.contains("parse.nf:2:"), "{rendered}");
    assert!(rendered.contains("let = x;"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");
}

#[test]
fn unbound_names_are_located_in_the_source() {
    let src = "function f (x: num) : num {\n    mul (x, yy)\n}";
    let err = Program::parse_named("scope.nf", src).expect_err("rejects");
    assert_eq!(err.code, ErrorCode::UnboundName);
    // Lowering reports no position; the facade recovers the span from
    // the interned source.
    let span = err.span.expect("located");
    assert_eq!((span.line, span.col), (2, 13), "{err}");
    assert!(err.message.contains("yy"), "{err}");
}

#[test]
fn misused_operations_are_diagnosed() {
    let err = Program::parse("function f (x: num) : num { mul }").expect_err("rejects");
    assert_eq!(err.code, ErrorCode::MisusedOp);
}

#[test]
fn grade_mismatches_are_located_at_the_function() {
    // pow2' really rounds once: declaring M[0*eps] must fail (E0109).
    let src = r#"
function pow2' (x: ![2.0]num) : M[0*eps]num {
    let [x1] = x;
    s = mul (x1, x1);
    rnd s
}
"#;
    let program = Program::parse_named("grade.nf", src).expect("lowers fine");
    let err = Analyzer::new().check(&program).expect_err("grade too small");
    assert_eq!(err.code, ErrorCode::GradeMismatch);
    let span = err.span.expect("located at the function name");
    assert_eq!((span.line, span.col), (2, 10), "{err}");
    assert!(err.message.contains("pow2'"), "{err}");
}

#[test]
fn lambda_sensitivity_and_shape_errors_have_codes() {
    let analyzer = Analyzer::new();

    // 2-sensitive parameter without a bang type.
    let p = Program::parse("function f (x: num) : num { mul (x, x) }").expect("lowers");
    let err = analyzer.check(&p).expect_err("rejects");
    assert_eq!(err.code, ErrorCode::LambdaSensitivity);
    assert!(err.span.is_some(), "{err}");

    // rnd of a non-number.
    let p = Program::parse("rnd ()").expect("lowers");
    let err = analyzer.check(&p).expect_err("rejects");
    assert_eq!(err.code, ErrorCode::Shape);

    // Operation argument of the wrong shape.
    let p = Program::parse("function f (x: num) : num { mul x }").expect("lowers");
    let err = analyzer.check(&p).expect_err("rejects");
    assert_eq!(err.code, ErrorCode::OpArgMismatch);
}

#[test]
fn input_errors_are_structured_not_panics() {
    let analyzer = Analyzer::new();
    let program = Program::parse("function f (x: num) : M[eps]num { rnd x }\nf").expect("lowers");
    // `f` unapplied: root is a function, so validate reports NotMonadicNum.
    let err = analyzer.validate(&program, &Inputs::none()).expect_err("not monadic");
    assert_eq!(err.code, ErrorCode::NotMonadicNum);

    // A named input for a closed program is a BadInput diagnostic.
    let closed = Program::parse("ret 1").expect("lowers");
    let err = analyzer
        .run(&closed, &Inputs::none().with_num("x", Rational::one()))
        .expect_err("no free vars");
    assert_eq!(err.code, ErrorCode::BadInput);

    // Missing inputs likewise.
    let kernel_prog = {
        use numfuzz::analyzers::{Expr, Kernel};
        let k = Kernel::new(
            "needs-a",
            vec![("a", RatInterval::new(Rational::one(), Rational::from_int(2)))],
            Expr::add(Expr::Var(0), Expr::Var(0)),
        );
        Program::from_kernel(&k).expect("translates")
    };
    let err = analyzer.run(&kernel_prog, &Inputs::none()).expect_err("missing input");
    assert_eq!(err.code, ErrorCode::BadInput);
    assert!(err.message.contains('a'), "{err}");
}

#[test]
fn cross_instantiation_programs_are_rejected_up_front() {
    // A default-parsed (relative-precision) program handed to an
    // absolute-error session fails with a clear mismatch code, not a
    // misleading unknown-operation error.
    let program = Program::parse("function f (x: num) : M[eps]num { rnd x }").expect("parses");
    let abs = Analyzer::builder().signature(Instantiation::AbsoluteError).build();
    let err = abs.check(&program).expect_err("mismatched session");
    assert_eq!(err.code, ErrorCode::SignatureMismatch);
    assert!(!err.code.is_program_error(), "harness misuse, not a program defect");
    let err = abs.validate(&program, &Inputs::none()).expect_err("mismatched session");
    assert_eq!(err.code, ErrorCode::SignatureMismatch);
}

#[test]
fn untranslatable_kernels_are_diagnosed() {
    use numfuzz::analyzers::{Expr, Kernel};
    let k = Kernel::new(
        "has-sub",
        vec![("a", RatInterval::new(Rational::one(), Rational::from_int(2)))],
        Expr::sub(Expr::Var(0), Expr::Const(Rational::one())),
    );
    let err = Program::from_kernel(&k).expect_err("RP has no subtraction");
    assert_eq!(err.code, ErrorCode::Untranslatable);
}

#[test]
fn parse_pretty_reparse_round_trips() {
    let corpus = [
        "function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }",
        r#"
        function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
        function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
        function MA (x: num) (y: num) (z: num) : M[2*eps]num {
            s = mulfp (x,y);
            let a = s;
            addfp (|a,z|)
        }
        MA 0.1 0.3 7
        "#,
        r#"
        function pow2' (x: ![2.0]num) : M[eps]num {
            let [x1] = x;
            s = mul (x1, x1);
            rnd s
        }
        pow2' [1.5]{2.0}
        "#,
        r#"
        function case1 (x: ![inf]num) : M[eps]num {
            let [x1] = x;
            c = is_pos x1;
            if c then { s = mul (x1, x1); rnd s } else ret 1
        }
        case1 [0.75]{inf}
        "#,
    ];
    let analyzer = Analyzer::new();
    for src in corpus {
        let program = Program::parse(src).expect("parses");
        let printed = program.pretty(u32::MAX);
        let again = Program::parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{printed}"));
        // Same type after the round trip, and printing is a fixpoint.
        let t1 = analyzer.check(&program).expect("checks");
        let t2 = analyzer.check(&again).expect("re-checks");
        assert_eq!(t1.ty(), t2.ty(), "type drift on:\n{printed}");
        assert_eq!(printed, again.pretty(u32::MAX), "printing not a fixpoint on:\n{printed}");
    }
}

#[test]
fn check_all_reports_per_program_results() {
    let analyzer = Analyzer::new();
    let good = Program::parse("function f (x: num) : M[eps]num { rnd x }").expect("parses");
    let bad = Program::parse("function g (x: num) : num { mul (x, x) }").expect("parses");
    let results = analyzer.check_all(&[good, bad]);
    assert_eq!(results.len(), 2);
    assert!(results[0].is_ok());
    assert_eq!(results[1].as_ref().expect_err("ill-typed").code, ErrorCode::LambdaSensitivity);
}
