/root/repo/target/debug/deps/numfuzz_benchsuite-8b1bd58395c5bd33.d: crates/benchsuite/src/lib.rs crates/benchsuite/src/conditionals.rs crates/benchsuite/src/generators.rs crates/benchsuite/src/small.rs

/root/repo/target/debug/deps/libnumfuzz_benchsuite-8b1bd58395c5bd33.rlib: crates/benchsuite/src/lib.rs crates/benchsuite/src/conditionals.rs crates/benchsuite/src/generators.rs crates/benchsuite/src/small.rs

/root/repo/target/debug/deps/libnumfuzz_benchsuite-8b1bd58395c5bd33.rmeta: crates/benchsuite/src/lib.rs crates/benchsuite/src/conditionals.rs crates/benchsuite/src/generators.rs crates/benchsuite/src/small.rs

crates/benchsuite/src/lib.rs:
crates/benchsuite/src/conditionals.rs:
crates/benchsuite/src/generators.rs:
crates/benchsuite/src/small.rs:
