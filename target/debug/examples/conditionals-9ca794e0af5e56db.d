/root/repo/target/debug/examples/conditionals-9ca794e0af5e56db.d: examples/conditionals.rs

/root/repo/target/debug/examples/conditionals-9ca794e0af5e56db: examples/conditionals.rs

examples/conditionals.rs:
