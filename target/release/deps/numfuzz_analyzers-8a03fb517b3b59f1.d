/root/repo/target/release/deps/numfuzz_analyzers-8a03fb517b3b59f1.d: crates/analyzers/src/lib.rs crates/analyzers/src/interval_analysis.rs crates/analyzers/src/ir.rs crates/analyzers/src/std_bounds.rs crates/analyzers/src/taylor.rs crates/analyzers/src/to_core.rs

/root/repo/target/release/deps/libnumfuzz_analyzers-8a03fb517b3b59f1.rlib: crates/analyzers/src/lib.rs crates/analyzers/src/interval_analysis.rs crates/analyzers/src/ir.rs crates/analyzers/src/std_bounds.rs crates/analyzers/src/taylor.rs crates/analyzers/src/to_core.rs

/root/repo/target/release/deps/libnumfuzz_analyzers-8a03fb517b3b59f1.rmeta: crates/analyzers/src/lib.rs crates/analyzers/src/interval_analysis.rs crates/analyzers/src/ir.rs crates/analyzers/src/std_bounds.rs crates/analyzers/src/taylor.rs crates/analyzers/src/to_core.rs

crates/analyzers/src/lib.rs:
crates/analyzers/src/interval_analysis.rs:
crates/analyzers/src/ir.rs:
crates/analyzers/src/std_bounds.rs:
crates/analyzers/src/taylor.rs:
crates/analyzers/src/to_core.rs:
