//! Λnum types (paper Fig. 1), the subtype relation (Fig. 12), and the
//! supertype/subtype lattice operations `max`/`min` (Fig. 11).

use crate::grade::Grade;
use std::fmt;

/// A Λnum type.
///
/// The two product types carry different metrics (Section 4.1): the
/// Cartesian product `×` takes the **max** of component distances, the
/// tensor product `⊗` their **sum** — which is exactly why `add` can be
/// typed over `×` while `mul` needs `⊗` in the RP instantiation (Fig. 5).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Ty {
    /// The unit type.
    Unit,
    /// The numeric base type; its interpretation (carrier and metric) is
    /// fixed by the instantiation (Section 5).
    Num,
    /// Tensor product `σ ⊗ τ` (sum metric).
    Tensor(Box<Ty>, Box<Ty>),
    /// Cartesian product `σ × τ` (max metric).
    With(Box<Ty>, Box<Ty>),
    /// Sum `σ + τ` (distance ∞ across injections).
    Sum(Box<Ty>, Box<Ty>),
    /// Linear (1-sensitive) functions `σ ⊸ τ`.
    Lolli(Box<Ty>, Box<Ty>),
    /// Metric scaling `!_s σ`.
    Bang(Grade, Box<Ty>),
    /// The graded monad `M_u τ` of rounded computations (Section 4.2).
    Monad(Grade, Box<Ty>),
}

impl Ty {
    /// The booleans, encoded as `unit + unit` as in Section 5.1.
    pub fn bool() -> Ty {
        Ty::Sum(Box::new(Ty::Unit), Box::new(Ty::Unit))
    }

    /// `σ ⊗ τ`.
    pub fn tensor(a: Ty, b: Ty) -> Ty {
        Ty::Tensor(Box::new(a), Box::new(b))
    }

    /// `σ × τ`.
    pub fn with(a: Ty, b: Ty) -> Ty {
        Ty::With(Box::new(a), Box::new(b))
    }

    /// `σ + τ`.
    pub fn sum(a: Ty, b: Ty) -> Ty {
        Ty::Sum(Box::new(a), Box::new(b))
    }

    /// `σ ⊸ τ`.
    pub fn lolli(a: Ty, b: Ty) -> Ty {
        Ty::Lolli(Box::new(a), Box::new(b))
    }

    /// `!_s σ`.
    pub fn bang(s: Grade, t: Ty) -> Ty {
        Ty::Bang(s, Box::new(t))
    }

    /// `M_u τ`.
    pub fn monad(u: Grade, t: Ty) -> Ty {
        Ty::Monad(u, Box::new(t))
    }

    /// The subtype relation of Fig. 12. `σ ⊑ τ` means a value of type `σ`
    /// can be used where `τ` is expected: monadic grades may grow
    /// (subsumption loosens error bounds), bang grades may shrink on the
    /// right (`!_{s'} σ ⊑ !_s σ'` needs `s <= s'`), and `⊸` is
    /// contravariant on the left.
    pub fn subtype(&self, other: &Ty) -> bool {
        match (self, other) {
            (Ty::Unit, Ty::Unit) | (Ty::Num, Ty::Num) => true,
            (Ty::Tensor(a1, b1), Ty::Tensor(a2, b2))
            | (Ty::With(a1, b1), Ty::With(a2, b2))
            | (Ty::Sum(a1, b1), Ty::Sum(a2, b2)) => a1.subtype(a2) && b1.subtype(b2),
            (Ty::Lolli(a1, b1), Ty::Lolli(a2, b2)) => a2.subtype(a1) && b1.subtype(b2),
            (Ty::Monad(u1, t1), Ty::Monad(u2, t2)) => u1.le(u2) && t1.subtype(t2),
            (Ty::Bang(s1, t1), Ty::Bang(s2, t2)) => s2.le(s1) && t1.subtype(t2),
            _ => false,
        }
    }

    /// The supertype operation `max` of Fig. 11 — the least type (in the
    /// coefficient-wise grade order) that both arguments are subtypes of.
    ///
    /// Returns `None` when the two types have different shapes.
    pub fn sup(&self, other: &Ty) -> Option<Ty> {
        match (self, other) {
            (Ty::Unit, Ty::Unit) => Some(Ty::Unit),
            (Ty::Num, Ty::Num) => Some(Ty::Num),
            (Ty::Tensor(a1, b1), Ty::Tensor(a2, b2)) => Some(Ty::tensor(a1.sup(a2)?, b1.sup(b2)?)),
            (Ty::With(a1, b1), Ty::With(a2, b2)) => Some(Ty::with(a1.sup(a2)?, b1.sup(b2)?)),
            (Ty::Sum(a1, b1), Ty::Sum(a2, b2)) => Some(Ty::sum(a1.sup(a2)?, b1.sup(b2)?)),
            (Ty::Lolli(a1, b1), Ty::Lolli(a2, b2)) => Some(Ty::lolli(a1.inf(a2)?, b1.sup(b2)?)),
            (Ty::Monad(u1, t1), Ty::Monad(u2, t2)) => Some(Ty::monad(u1.sup(u2), t1.sup(t2)?)),
            (Ty::Bang(s1, t1), Ty::Bang(s2, t2)) => Some(Ty::bang(s1.inf(s2), t1.sup(t2)?)),
            _ => None,
        }
    }

    /// The subtype operation `min` of Fig. 11 (dual of [`Ty::sup`]).
    pub fn inf(&self, other: &Ty) -> Option<Ty> {
        match (self, other) {
            (Ty::Unit, Ty::Unit) => Some(Ty::Unit),
            (Ty::Num, Ty::Num) => Some(Ty::Num),
            (Ty::Tensor(a1, b1), Ty::Tensor(a2, b2)) => Some(Ty::tensor(a1.inf(a2)?, b1.inf(b2)?)),
            (Ty::With(a1, b1), Ty::With(a2, b2)) => Some(Ty::with(a1.inf(a2)?, b1.inf(b2)?)),
            (Ty::Sum(a1, b1), Ty::Sum(a2, b2)) => Some(Ty::sum(a1.inf(a2)?, b1.inf(b2)?)),
            (Ty::Lolli(a1, b1), Ty::Lolli(a2, b2)) => Some(Ty::lolli(a1.sup(a2)?, b1.inf(b2)?)),
            (Ty::Monad(u1, t1), Ty::Monad(u2, t2)) => Some(Ty::monad(u1.inf(u2), t1.inf(t2)?)),
            (Ty::Bang(s1, t1), Ty::Bang(s2, t2)) => Some(Ty::bang(s1.sup(s2), t1.inf(t2)?)),
            _ => None,
        }
    }

    fn is_atom(&self) -> bool {
        matches!(
            self,
            Ty::Unit | Ty::Num | Ty::Tensor(..) | Ty::With(..) | Ty::Bang(..) | Ty::Monad(..)
        )
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let wrap = |t: &Ty, f: &mut fmt::Formatter<'_>| {
            if t.is_atom() {
                write!(f, "{t}")
            } else {
                write!(f, "({t})")
            }
        };
        match self {
            Ty::Unit => write!(f, "unit"),
            Ty::Num => write!(f, "num"),
            Ty::Tensor(a, b) => write!(f, "({a}, {b})"),
            Ty::With(a, b) => write!(f, "<{a}, {b}>"),
            Ty::Sum(a, b) => {
                if **a == Ty::Unit && **b == Ty::Unit {
                    write!(f, "bool")
                } else {
                    wrap(a, f)?;
                    write!(f, " + ")?;
                    wrap(b, f)
                }
            }
            Ty::Lolli(a, b) => {
                wrap(a, f)?;
                write!(f, " -o {b}")
            }
            Ty::Bang(s, t) => {
                write!(f, "![{s}]")?;
                wrap(t, f)
            }
            Ty::Monad(u, t) => {
                write!(f, "M[{u}]")?;
                wrap(t, f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfuzz_exact::Rational;

    fn eps() -> Grade {
        Grade::symbol("eps")
    }

    fn two() -> Grade {
        Grade::constant(Rational::from_int(2))
    }

    #[test]
    fn display_matches_surface_syntax() {
        let t = Ty::lolli(Ty::bang(two(), Ty::Num), Ty::monad(eps(), Ty::Num));
        assert_eq!(t.to_string(), "![2]num -o M[eps]num");
        assert_eq!(Ty::bool().to_string(), "bool");
        assert_eq!(Ty::tensor(Ty::Num, Ty::Num).to_string(), "(num, num)");
        assert_eq!(Ty::with(Ty::Num, Ty::Num).to_string(), "<num, num>");
        assert_eq!(
            Ty::lolli(Ty::lolli(Ty::Num, Ty::Num), Ty::Num).to_string(),
            "(num -o num) -o num"
        );
        assert_eq!(Ty::sum(Ty::Num, Ty::Unit).to_string(), "num + unit");
    }

    #[test]
    fn subtype_monad_grades_grow() {
        // M[eps]num ⊑ M[2*eps]num (subsumption loosens bounds).
        let a = Ty::monad(eps(), Ty::Num);
        let b = Ty::monad(eps().scale(&Rational::from_int(2)), Ty::Num);
        assert!(a.subtype(&b));
        assert!(!b.subtype(&a));
        assert!(a.subtype(&a));
    }

    #[test]
    fn subtype_bang_grades_shrink() {
        // ![2]num ⊑ ![1]num: a value usable at sensitivity 2 is usable at 1.
        let a = Ty::bang(two(), Ty::Num);
        let b = Ty::bang(Grade::one(), Ty::Num);
        assert!(a.subtype(&b));
        assert!(!b.subtype(&a));
    }

    #[test]
    fn subtype_lolli_contravariant() {
        // (![1]num ⊸ M[2eps]num) accepts ![2]num arguments:
        // ![2]num -o M[eps]num ⊑ ![1]num -o M[2*eps]num.
        let f1 = Ty::lolli(Ty::bang(Grade::one(), Ty::Num), Ty::monad(eps(), Ty::Num));
        let f2 = Ty::lolli(
            Ty::bang(two(), Ty::Num),
            Ty::monad(eps().scale(&Rational::from_int(2)), Ty::Num),
        );
        // f1 : takes stronger (less-scaled) arg... direction check:
        // arg of f2 (![2]) ⊑ arg of f1 (![1]), result of f1 ⊑ result of f2,
        // hence f1 ⊑ f2? No: contravariance needs arg_f2 ⊑ arg_f1 for f1 ⊑ f2.
        assert!(
            f1.subtype(&f2) == (Ty::bang(two(), Ty::Num).subtype(&Ty::bang(Grade::one(), Ty::Num)))
        );
        assert!(f1.subtype(&f2));
    }

    #[test]
    fn sup_inf_duality() {
        let a = Ty::monad(eps(), Ty::bang(two(), Ty::Num));
        let b = Ty::monad(two(), Ty::bang(eps(), Ty::Num));
        let s = a.sup(&b).unwrap();
        let i = a.inf(&b).unwrap();
        assert!(a.subtype(&s) && b.subtype(&s));
        assert!(i.subtype(&a) && i.subtype(&b));
        // Shape mismatch is rejected.
        assert_eq!(Ty::Num.sup(&Ty::Unit), None);
        assert_eq!(Ty::tensor(Ty::Num, Ty::Num).inf(&Ty::with(Ty::Num, Ty::Num)), None);
    }

    #[test]
    fn sup_of_lolli_narrows_domain() {
        let f1 = Ty::lolli(Ty::bang(two(), Ty::Num), Ty::Num);
        let f2 = Ty::lolli(Ty::bang(eps(), Ty::Num), Ty::Num);
        // sup takes inf of domains = ![max(2,eps) coeffwise] = ![2 + eps]...
        // coefficient-wise sup of grades 2 and eps is 2 + eps? No: sup is
        // coefficient-wise max: constant 2, eps-coeff 1 -> "2 + eps".
        let s = f1.sup(&f2).unwrap();
        match s {
            Ty::Lolli(dom, _) => match *dom {
                Ty::Bang(g, _) => assert_eq!(g.to_string(), "2 + eps"),
                other => panic!("unexpected domain {other}"),
            },
            other => panic!("unexpected sup {other}"),
        }
        assert!(f1.subtype(&f1.sup(&f2).unwrap()));
        assert!(f2.subtype(&f1.sup(&f2).unwrap()));
    }
}
