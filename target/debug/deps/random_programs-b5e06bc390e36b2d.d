/root/repo/target/debug/deps/random_programs-b5e06bc390e36b2d.d: tests/random_programs.rs

/root/repo/target/debug/deps/random_programs-b5e06bc390e36b2d: tests/random_programs.rs

tests/random_programs.rs:
