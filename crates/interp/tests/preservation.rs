//! Subject reduction, tested (paper Lemmas 4.15/4.18): stepping a
//! well-typed closed term preserves typability, and under the ideal/FP
//! refinements the monadic grade can only *shrink* (each `rnd k → ret k`
//! discharges rounding permission), so every step's type is a subtype of
//! the previous one.

use numfuzz_core::{compile, infer, Signature, Ty};
use numfuzz_interp::smallstep::{step, StepSemantics};
use numfuzz_softfloat::{Format, RoundingMode};

const PROGRAMS: &[&str] = &[
    // MA (Fig. 8) applied.
    r#"
    function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
    function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
    function MA (x: num) (y: num) (z: num) : M[2*eps]num {
        s = mulfp (x,y);
        let a = s;
        addfp (|a,z|)
    }
    MA 0.25 0.5 3
    "#,
    // Conditional (same-branch discipline).
    r#"
    function f (x: ![inf]num) : M[eps]num {
        let [x1] = x;
        c = is_pos x1;
        if c then { s = mul (x1, x1); rnd s } else ret 1
    }
    f [0.5]{inf}
    "#,
    // Nested binds exercising the associativity step rule.
    r#"
    function two (x: num) : M[2*eps]num {
        let a = rnd x;
        rnd a
    }
    function outer (x: num) : M[3*eps]num {
        let b = two x;
        rnd b
    }
    outer 0.1
    "#,
];

#[test]
fn each_step_preserves_typability_with_shrinking_grades() {
    let sig = Signature::relative_precision();
    for (which, src) in PROGRAMS.iter().enumerate() {
        for sem in [
            StepSemantics::Ideal,
            StepSemantics::Fp(Format::BINARY64, RoundingMode::TowardPositive),
            StepSemantics::Fp(Format::new(5, 30), RoundingMode::NearestEven),
        ] {
            let mut lowered = compile(src, &sig).expect("compiles");
            let mut cur = lowered.root;
            let mut prev_ty: Ty = infer(&lowered.store, &sig, cur, &[]).expect("checks").root.ty;
            let mut steps = 0usize;
            while let Some(next) = step(&mut lowered.store, cur, sem) {
                let res = infer(&lowered.store, &sig, next, &[]).unwrap_or_else(|e| {
                    panic!("program {which} {sem:?}: step {steps} broke typing: {e}")
                });
                assert!(
                    res.root.ty.subtype(&prev_ty),
                    "program {which} {sem:?} step {steps}: `{}` not ⊑ `{prev_ty}`",
                    res.root.ty
                );
                prev_ty = res.root.ty;
                cur = next;
                steps += 1;
                assert!(steps < 10_000, "runaway reduction");
            }
            // Termination (Theorem 3.5): reached a value; and under the
            // refinements the value is `ret v` with a zero-cost type.
            assert!(steps > 0, "program {which} did not step");
            assert!(lowered.store.is_value(cur), "program {which} {sem:?} got stuck off-value");
            if !matches!(sem, StepSemantics::Pure) {
                assert!(matches!(prev_ty, Ty::Monad(..)), "program {which}: final type {prev_ty}");
            }
        }
    }
}

#[test]
fn pure_semantics_preserves_exact_type() {
    // Under Fig. 3 alone (rnd is a value), the grade never changes: the
    // reduction only rearranges binds and fires beta steps.
    let sig = Signature::relative_precision();
    let mut lowered = compile(PROGRAMS[0], &sig).expect("compiles");
    let ty0 = infer(&lowered.store, &sig, lowered.root, &[]).expect("checks").root.ty;
    let mut cur = lowered.root;
    while let Some(next) = step(&mut lowered.store, cur, StepSemantics::Pure) {
        let ty = infer(&lowered.store, &sig, next, &[]).expect("checks").root.ty;
        assert!(ty.subtype(&ty0), "`{ty}` not ⊑ `{ty0}`");
        cur = next;
    }
    let final_ty = infer(&lowered.store, &sig, cur, &[]).expect("checks").root.ty;
    assert_eq!(final_ty.to_string(), "M[2*eps]num");
}
