rnd 1.5
