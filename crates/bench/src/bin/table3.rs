//! Regenerates the paper's Table 3: small kernels, comparing the Λnum
//! bound (via type inference and the eq. 8 conversion) against the
//! interval (Gappa-style) and Taylor-form (FPTaylor-style) baselines,
//! with the paper's published values alongside.
//!
//! Conventions (see DESIGN.md / EXPERIMENTS.md): binary64, round toward
//! +∞ (`u = 2^-52`), all inputs in `[0.1, 1000]`, constants exact.

use numfuzz_analyzers::{analyze_interval, analyze_taylor, kernel_to_core};
use numfuzz_bench::{fmt_time, opt_bound_string, ratio_string, rp_bound_string, PAPER_TABLE3};
use numfuzz_benchsuite::{horner2_with_error_kernel, horner2_with_error_source, table3};
use numfuzz_core::{compile, infer, Grade, Signature, Ty};
use numfuzz_exact::Rational;
use numfuzz_softfloat::{Format, RoundingMode};
use std::time::Instant;

fn main() {
    let sig = Signature::relative_precision();
    let format = Format::BINARY64;
    let mode = RoundingMode::TowardPositive;
    let u = format.unit_roundoff(mode);

    println!("Table 3: small kernels (binary64, round toward +inf, inputs in [0.1, 1000])");
    println!("Bounds are worst-case relative error; ratio = ours / best(baselines).\n");
    println!(
        "{:<20} {:>4} | {:>9} {:>9} {:>9} {:>5} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "Benchmark", "Ops", "Lnum", "Taylor", "Intvl", "ratio", "t(Lnum)", "t(Taylor)", "t(Intvl)",
        "paperLnum", "paperFPT", "paperGappa"
    );

    let mut rows = Vec::new();
    for b in table3() {
        rows.push(run_ir_row(&b, &sig, format, mode, &u));
    }
    // Horner2_with_error: Λnum from the Fig. 9 surface program, baselines
    // from the kernel with one unit of input error.
    rows.push(run_with_error_row(&sig, format, mode, &u));

    for row in rows {
        let paper = PAPER_TABLE3
            .iter()
            .find(|(n, ..)| *n == row.name)
            .copied()
            .unwrap_or((row.name_static(), "-", "-", "-"));
        println!(
            "{:<20} {:>4} | {:>9} {:>9} {:>9} {:>5} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
            row.name,
            row.ops,
            row.ours,
            opt_bound_string(&row.taylor),
            opt_bound_string(&row.interval),
            row.ratio,
            row.t_ours,
            row.t_taylor,
            row.t_interval,
            paper.1,
            paper.2,
            paper.3,
        );
    }
    println!("\nNotes:");
    println!("  * baselines are this repo's Gappa/FPTaylor technique stand-ins (DESIGN.md §1);");
    println!("  * Horner rows use FMA (one rounding per two ops), as in the paper;");
    println!("  * Λnum grades are exact k*eps values; bounds use eq. (8): rel <= a/(1-a).");
}

struct Row {
    name: String,
    ops: usize,
    ours: String,
    taylor: Option<Rational>,
    interval: Option<Rational>,
    ratio: String,
    t_ours: String,
    t_taylor: String,
    t_interval: String,
}

impl Row {
    fn name_static(&self) -> &'static str {
        ""
    }
}

fn run_ir_row(
    b: &numfuzz_benchsuite::SmallBench,
    sig: &Signature,
    format: Format,
    mode: RoundingMode,
    u: &Rational,
) -> Row {
    let ck = kernel_to_core(&b.kernel).expect("translatable");
    let t0 = Instant::now();
    let res = infer(&ck.store, sig, ck.root, &ck.free).expect("checks");
    let t_ours = t0.elapsed();
    let alpha = match &res.root.ty {
        Ty::Monad(g, _) => g.eval_eps(u).expect("numeric grade"),
        other => panic!("unexpected type {other}"),
    };
    // Sanity: inference matched the recorded coefficient.
    assert_eq!(
        res.root.ty,
        Ty::monad(Grade::symbol("eps").scale(&b.expected_eps_coeff), Ty::Num),
        "{}",
        b.kernel.name
    );

    let t0 = Instant::now();
    let taylor = analyze_taylor(&b.kernel, format, mode).ok().and_then(|r| r.rel);
    let t_taylor = t0.elapsed();
    let t0 = Instant::now();
    let interval = analyze_interval(&b.kernel, format, mode).ok().and_then(|r| r.rel);
    let t_interval = t0.elapsed();

    let ours_rel = numfuzz_metrics::rp::rp_to_rel_bound(&alpha).expect("alpha < 1");
    Row {
        name: b.kernel.name.clone(),
        ops: b.kernel.op_count(),
        ours: rp_bound_string(&alpha),
        ratio: ratio_string(&ours_rel, &[&taylor, &interval]),
        taylor,
        interval,
        t_ours: fmt_time(t_ours),
        t_taylor: fmt_time(t_taylor),
        t_interval: fmt_time(t_interval),
    }
}

fn run_with_error_row(sig: &Signature, format: Format, mode: RoundingMode, u: &Rational) -> Row {
    let t0 = Instant::now();
    let lowered = compile(horner2_with_error_source(), sig).expect("compiles");
    let res = infer(&lowered.store, sig, lowered.root, &[]).expect("checks");
    let t_ours = t0.elapsed();
    let rep = res.fn_report("Horner2we").expect("reported");
    let alpha = match &rep.inferred {
        Ty::Lolli(..) => {
            // Walk to the final monadic codomain.
            let mut t = &rep.inferred;
            loop {
                match t {
                    Ty::Lolli(_, cod) => t = cod,
                    Ty::Monad(g, _) => break g.eval_eps(u).expect("numeric"),
                    other => panic!("unexpected {other}"),
                }
            }
        }
        other => panic!("unexpected {other}"),
    };
    let b = horner2_with_error_kernel();
    let t0 = Instant::now();
    let taylor = analyze_taylor(&b.kernel, format, mode).ok().and_then(|r| r.rel);
    let t_taylor = t0.elapsed();
    let t0 = Instant::now();
    let interval = analyze_interval(&b.kernel, format, mode).ok().and_then(|r| r.rel);
    let t_interval = t0.elapsed();
    let ours_rel = numfuzz_metrics::rp::rp_to_rel_bound(&alpha).expect("alpha < 1");
    Row {
        name: "Horner2_with_error".to_string(),
        ops: b.kernel.op_count(),
        ours: rp_bound_string(&alpha),
        ratio: ratio_string(&ours_rel, &[&taylor, &interval]),
        taylor,
        interval,
        t_ours: fmt_time(t_ours),
        t_taylor: fmt_time(t_taylor),
        t_interval: fmt_time(t_interval),
    }
}
