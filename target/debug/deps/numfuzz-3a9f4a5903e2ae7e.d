/root/repo/target/debug/deps/numfuzz-3a9f4a5903e2ae7e.d: src/bin/numfuzz.rs Cargo.toml

/root/repo/target/debug/deps/libnumfuzz-3a9f4a5903e2ae7e.rmeta: src/bin/numfuzz.rs Cargo.toml

src/bin/numfuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
