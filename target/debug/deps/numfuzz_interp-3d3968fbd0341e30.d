/root/repo/target/debug/deps/numfuzz_interp-3d3968fbd0341e30.d: crates/interp/src/lib.rs crates/interp/src/eval.rs crates/interp/src/rounding.rs crates/interp/src/smallstep.rs crates/interp/src/soundness.rs crates/interp/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libnumfuzz_interp-3d3968fbd0341e30.rmeta: crates/interp/src/lib.rs crates/interp/src/eval.rs crates/interp/src/rounding.rs crates/interp/src/smallstep.rs crates/interp/src/soundness.rs crates/interp/src/value.rs Cargo.toml

crates/interp/src/lib.rs:
crates/interp/src/eval.rs:
crates/interp/src/rounding.rs:
crates/interp/src/smallstep.rs:
crates/interp/src/soundness.rs:
crates/interp/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
