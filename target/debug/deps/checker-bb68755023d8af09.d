/root/repo/target/debug/deps/checker-bb68755023d8af09.d: crates/bench/benches/checker.rs Cargo.toml

/root/repo/target/debug/deps/libchecker-bb68755023d8af09.rmeta: crates/bench/benches/checker.rs Cargo.toml

crates/bench/benches/checker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
