function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
function divfp (xy: (num, num)) : M[eps]num { s = div xy; rnd s }
function test05_nonlin1 (z: ![2]num) : M[2*eps]num {
    let [z1] = z;
    let s = addfp (| z1, 1 |);
    divfp (z1, s)
}
test05_nonlin1 [0.5]{2}
