//! The relative precision (RP) metric of Olver (paper Definition 2.2):
//! `RP(x, x̃) = |ln(x / x̃)|` for nonzero reals of the same sign.
//!
//! Unlike relative error, RP is a true metric (zero self-distance,
//! symmetry, triangle inequality), which is what lets Λnum's graded monad
//! compose error bounds by addition. All comparisons here are decided
//! *rigorously*: `RP(x, y) <= b` iff `e^-b <= x/y <= e^b`, and the
//! exponentials are bracketed by rational enclosures that are refined until
//! the comparison is decidable. No host floating point is involved.

use numfuzz_exact::funcs::{exp_enclosure, ln_enclosure};
use numfuzz_exact::{RatInterval, Rational};

/// Outcome of a rigorous distance-bound check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Within {
    /// The distance is definitely within the bound.
    Yes,
    /// The distance definitely exceeds the bound.
    No,
    /// The metric is undefined for these arguments (e.g. RP on values of
    /// differing sign or zero).
    Undefined,
}

impl Within {
    /// True for [`Within::Yes`].
    pub fn holds(self) -> bool {
        self == Within::Yes
    }
}

/// Rigorously decides `RP(x, y) <= bound` for rationals.
///
/// Returns [`Within::Undefined`] when `x` and `y` are not both nonzero with
/// the same sign (Definition 2.2's side condition).
pub fn rp_within(x: &Rational, y: &Rational, bound: &Rational) -> Within {
    if x.is_zero() || y.is_zero() || (x.is_positive() != y.is_positive()) {
        return Within::Undefined;
    }
    if bound.is_negative() {
        return if x == y { Within::Yes } else { Within::No };
    }
    let ratio = x.div(y).abs();
    if ratio == Rational::one() {
        return Within::Yes;
    }
    // RP(x,y) <= b  <=>  e^-b <= ratio <= e^b.
    let mut bits = 64u32;
    loop {
        let upper = exp_enclosure(bound, bits);
        let lower = exp_enclosure(&bound.neg(), bits);
        if &ratio <= upper.lo() && &ratio >= lower.hi() {
            return Within::Yes;
        }
        if &ratio > upper.hi() || &ratio < lower.lo() {
            return Within::No;
        }
        // Undecided: the ratio sits inside an enclosure gap. Since e^b is
        // irrational for rational b != 0, refinement must terminate.
        bits *= 2;
        assert!(bits <= 1 << 20, "exp enclosure refinement failed to converge");
    }
}

/// Worst-case variant of [`rp_within`] over interval-valued arguments:
/// decides `sup { RP(x, y) | x ∈ X, y ∈ Y } <= bound`.
///
/// This is what the interpreter's soundness checker uses when the ideal
/// value is only known as an enclosure (because the program took a square
/// root). Both intervals must be strictly positive (or strictly negative).
pub fn rp_within_intervals(x: &RatInterval, y: &RatInterval, bound: &Rational) -> Within {
    let both_pos = x.is_strictly_positive() && y.is_strictly_positive();
    let both_neg = x.hi().is_negative() && y.hi().is_negative();
    if !both_pos && !both_neg {
        return Within::Undefined;
    }
    // sup RP is attained at the extreme ratios.
    let (a, b) = if both_pos { (x.clone(), y.clone()) } else { (x.neg(), y.neg()) };
    let r1 = rp_within(a.hi(), b.lo(), bound);
    let r2 = rp_within(a.lo(), b.hi(), bound);
    match (r1, r2) {
        (Within::Yes, Within::Yes) => Within::Yes,
        (Within::Undefined, _) | (_, Within::Undefined) => Within::Undefined,
        _ => Within::No,
    }
}

/// A rigorous enclosure of `RP(x, y) = |ln(x/y)|`, for reporting.
///
/// # Panics
///
/// Panics if the metric is undefined for `x`, `y` (differing signs or zero).
pub fn rp_distance_enclosure(x: &Rational, y: &Rational, bits: u32) -> RatInterval {
    assert!(
        !x.is_zero() && !y.is_zero() && x.is_positive() == y.is_positive(),
        "RP undefined: values must be nonzero and of the same sign"
    );
    let ratio = x.div(y).abs();
    if ratio == Rational::one() {
        return RatInterval::point(Rational::zero());
    }
    let l = ln_enclosure(&ratio, bits);
    // |l|: the enclosure of ln(ratio) may straddle zero if very tight around it.
    if !l.lo().is_negative() {
        l
    } else if !l.hi().is_positive() {
        l.neg()
    } else {
        RatInterval::new(Rational::zero(), l.hi().abs().max(l.lo().abs()))
    }
}

/// Converts an RP bound `α < 1` into a relative-error bound via the paper's
/// eq. (8): `ε = e^α − 1 ≤ α / (1 − α)` — exactly representable, sound.
///
/// Returns `None` when `α >= 1` (no finite relative-error bound follows).
pub fn rp_to_rel_bound(alpha: &Rational) -> Option<Rational> {
    if alpha >= &Rational::one() || alpha.is_negative() {
        return None;
    }
    Some(alpha.div(&Rational::one().sub(alpha)))
}

/// A sound RP bound from a relative-error bound: `RP(x, x(1+δ)) = |ln(1+δ)|
/// <= |δ| / (1 - |δ|)` for `|δ| < 1`... but in the useful direction
/// `ln(1+ε) <= ε`, so `ε` itself is a valid RP bound whenever
/// `x̃ ∈ [x(1-ε), x(1+ε)]` with `ε < 1` is *one-sided above*; for the
/// symmetric case the sound bound is `-ln(1-ε) <= ε/(1-ε)`.
pub fn rel_to_rp_bound(eps: &Rational) -> Option<Rational> {
    if eps >= &Rational::one() || eps.is_negative() {
        return None;
    }
    Some(eps.div(&Rational::one().sub(eps)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(s: &str) -> Rational {
        Rational::from_decimal_str(s).expect("valid test literal")
    }

    #[test]
    fn zero_self_distance() {
        let x = rat("3.7");
        assert_eq!(rp_within(&x, &x, &Rational::zero()), Within::Yes);
        assert_eq!(rp_within(&x, &x, &rat("1e-30")), Within::Yes);
    }

    #[test]
    fn undefined_cases() {
        assert_eq!(rp_within(&rat("1"), &rat("-1"), &rat("10")), Within::Undefined);
        assert_eq!(rp_within(&Rational::zero(), &rat("1"), &rat("10")), Within::Undefined);
        assert_eq!(rp_within(&rat("1"), &Rational::zero(), &rat("10")), Within::Undefined);
    }

    #[test]
    fn decides_tight_cases() {
        // RP(1+u, 1) = ln(1+u) which is just *below* u: within u, but not
        // within u/2 for u = 2^-52.
        let u = Rational::pow2(-52);
        let x = Rational::one().add(&u);
        assert_eq!(rp_within(&x, &Rational::one(), &u), Within::Yes);
        let half_u = Rational::pow2(-53);
        assert_eq!(rp_within(&x, &Rational::one(), &half_u), Within::No);
        // ln(1+u) > u - u²/2 > u/(1+u) etc.; also check just-above: bound
        // ln(1+u) < u holds but bound u(1 - u) < ln(1+u) fails... u(1-u/2)
        // is still above ln(1+u)? ln(1+u) = u - u²/2 + u³/3 - ... so
        // u(1 - u/2) = u - u²/2 < ln(1+u) barely (by u³/3). Check it:
        let barely_below = u.mul(&Rational::one().sub(&u.div(&rat("2"))));
        assert_eq!(rp_within(&x, &Rational::one(), &barely_below), Within::No);
    }

    #[test]
    fn symmetric() {
        let (x, y) = (rat("2"), rat("3"));
        for b in ["0.40546", "0.40547", "0.5", "0.1"] {
            assert_eq!(rp_within(&x, &y, &rat(b)), rp_within(&y, &x, &rat(b)), "bound {b}");
        }
        // ln(3/2) = 0.405465...: bracketed by the two bounds above.
        assert_eq!(rp_within(&x, &y, &rat("0.40546")), Within::No);
        assert_eq!(rp_within(&x, &y, &rat("0.40547")), Within::Yes);
    }

    #[test]
    fn negative_pairs_work() {
        assert_eq!(rp_within(&rat("-2"), &rat("-2"), &Rational::zero()), Within::Yes);
        assert_eq!(rp_within(&rat("-3"), &rat("-2"), &rat("0.40547")), Within::Yes);
    }

    #[test]
    fn interval_worst_case() {
        // X = [2, 2.2], Y = [2, 2.0]: worst ratio 2.2/2 = 1.1, RP = ln 1.1 = 0.0953.
        let x = RatInterval::new(rat("2"), rat("2.2"));
        let y = RatInterval::point(rat("2"));
        assert_eq!(rp_within_intervals(&x, &y, &rat("0.0954")), Within::Yes);
        assert_eq!(rp_within_intervals(&x, &y, &rat("0.0953")), Within::No);
        // Mixed-sign intervals are undefined.
        let z = RatInterval::new(rat("-1"), rat("1"));
        assert_eq!(rp_within_intervals(&z, &y, &rat("10")), Within::Undefined);
        // Negative intervals mirror positive ones.
        let nx = x.neg();
        let ny = y.neg();
        assert_eq!(rp_within_intervals(&nx, &ny, &rat("0.0954")), Within::Yes);
    }

    #[test]
    fn distance_enclosure_brackets() {
        let d = rp_distance_enclosure(&rat("3"), &rat("2"), 80);
        // ln(3/2) = 0.4054651081...
        assert!(d.lo() <= &rat("0.4054651082"));
        assert!(d.hi() >= &rat("0.4054651081"));
        assert!(d.width() < Rational::pow2(-70));
        let z = rp_distance_enclosure(&rat("5"), &rat("5"), 10);
        assert_eq!(z, RatInterval::point(Rational::zero()));
    }

    #[test]
    fn eq8_conversion() {
        // The paper derives rel <= α/(1-α); for α = 7*2^-52 this is the
        // 1.55e-15 reported for Horner2_with_error in Table 3.
        let alpha = Rational::from_int(7).mul(&Rational::pow2(-52));
        let rel = rp_to_rel_bound(&alpha).unwrap();
        assert_eq!(rel.to_sci_string(3), "1.55e-15");
        assert!(rp_to_rel_bound(&Rational::one()).is_none());
        assert!(rp_to_rel_bound(&rat("2")).is_none());
        // And the bound is sound: e^α - 1 <= α/(1-α).
        let ea = exp_enclosure(&alpha, 80);
        assert!(ea.hi().sub(&Rational::one()) <= rel);
    }

    #[test]
    fn triangle_inequality_spotcheck() {
        // RP(x,z) <= RP(x,y) + RP(y,z) via enclosures.
        let (x, y, z) = (rat("2"), rat("5"), rat("11"));
        let dxz = rp_distance_enclosure(&x, &z, 80);
        let dxy = rp_distance_enclosure(&x, &y, 80);
        let dyz = rp_distance_enclosure(&y, &z, 80);
        assert!(dxz.hi() <= &dxy.lo().add(dyz.lo()).add(&Rational::pow2(-60)));
    }
}
