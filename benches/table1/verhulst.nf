function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
function divfp (xy: (num, num)) : M[eps]num { s = div xy; rnd s }
function verhulst (x: ![2]num) : M[4*eps]num {
    let [x1] = x;
    let n = mulfp (4.0, x1);
    let d1 = divfp (x1, 1.11);
    let d = addfp (| 1.0, d1 |);
    divfp (n, d)
}
verhulst [0.27]{2}
