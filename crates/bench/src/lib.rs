//! # numfuzz-bench
//!
//! The table-regeneration harness: one binary per table of the paper's
//! evaluation (`table1` … `table5`, plus `validate` for the error-
//! soundness sweep), and criterion benches backing the timing columns.
//!
//! Run e.g. `cargo run --release -p numfuzz-bench --bin table3`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use numfuzz_exact::Rational;
use numfuzz_metrics::rp::rp_to_rel_bound;
use std::time::Duration;

/// The paper's Table 3 reference values: (name, paper Λnum bound,
/// paper FPTaylor bound, paper Gappa bound).
pub const PAPER_TABLE3: &[(&str, &str, &str, &str)] = &[
    ("hypot", "5.55e-16", "5.17e-16", "4.46e-16"),
    ("x_by_xy", "4.44e-16", "fail", "2.22e-16"),
    ("one_by_sqrtxx", "5.55e-16", "5.09e-13", "3.33e-16"),
    ("sqrt_add", "9.99e-16", "6.66e-16", "5.54e-16"),
    ("test02_sum8", "1.55e-15", "9.32e-14", "1.55e-15"),
    ("nonlin1", "4.44e-16", "4.49e-16", "2.22e-16"),
    ("test05_nonlin1", "4.44e-16", "4.46e-16", "2.22e-16"),
    ("verhulst", "8.88e-16", "7.38e-16", "4.44e-16"),
    ("predatorPrey", "1.55e-15", "4.21e-11", "8.88e-16"),
    ("test06_sums4_sum1", "6.66e-16", "6.71e-16", "6.66e-16"),
    ("test06_sums4_sum2", "6.66e-16", "1.78e-14", "4.44e-16"),
    ("i4", "4.44e-16", "4.50e-16", "4.44e-16"),
    ("Horner2", "4.44e-16", "6.49e-11", "4.44e-16"),
    ("Horner2_with_error", "1.55e-15", "1.61e-10", "1.11e-15"),
    ("Horner5", "1.11e-15", "1.62e-01", "1.11e-15"),
    ("Horner10", "2.22e-15", "1.14e+13", "2.22e-15"),
    ("Horner20", "4.44e-15", "2.53e+43", "4.44e-15"),
];

/// The paper's Table 4 reference values: (name, ops, paper Λnum bound,
/// paper Std bound, paper Λnum seconds).
pub const PAPER_TABLE4: &[(&str, usize, &str, &str, &str)] = &[
    ("Horner50", 100, "1.11e-14", "1.11e-14", "9e-03"),
    ("MatrixMultiply4", 112, "1.55e-15", "8.88e-16", "3e-03"),
    ("Horner75", 150, "1.66e-14", "1.66e-14", "2e-02"),
    ("Horner100", 200, "2.22e-14", "2.22e-14", "4e-02"),
    ("SerialSum", 1023, "2.27e-13", "2.27e-13", "5"),
    ("Poly50", 1325, "2.94e-13", "-", "2.12"),
    ("MatrixMultiply16", 7936, "6.88e-15", "3.55e-15", "4e-02"),
    ("MatrixMultiply64", 520192, "2.82e-14", "1.42e-14", "10"),
    ("MatrixMultiply128", 4177920, "5.66e-14", "2.84e-14", "1080"),
];

/// The paper's Table 5 reference values: (name, paper bound, paper ms).
pub const PAPER_TABLE5: &[(&str, &str, &str)] = &[
    ("PythagoreanSum", "8.88e-16", "2"),
    ("HammarlingDistance", "1.11e-15", "2"),
    ("squareRoot3", "4.44e-16", "2"),
    ("squareRoot3Invalid", "4.44e-16", "2"),
];

/// Converts an RP grade coefficient times `u` into the relative-error
/// bound the paper reports (eq. 8), rendered at three significant digits.
pub fn rp_bound_string(alpha: &Rational) -> String {
    match rp_to_rel_bound(alpha) {
        Some(rel) => rel.to_sci_string(3),
        None => "inf".to_string(),
    }
}

/// Renders an optional relative bound.
pub fn opt_bound_string(b: &Option<Rational>) -> String {
    match b {
        Some(r) => r.to_sci_string(3),
        None => "fail".to_string(),
    }
}

/// Render a duration like the paper's timing columns.
pub fn fmt_time(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}us", s * 1e6)
    }
}

/// The ratio of our bound to the best baseline bound, as the paper's
/// Ratio column (values <= 1 mean Λnum is at least as tight).
pub fn ratio_string(ours: &Rational, baselines: &[&Option<Rational>]) -> String {
    let best = baselines.iter().filter_map(|b| b.as_ref()).min();
    match best {
        Some(b) if !b.is_zero() => {
            let r = ours.div(b).to_f64();
            format!("{r:.1}")
        }
        _ => "-".to_string(),
    }
}
