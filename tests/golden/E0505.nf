// Either branch may run, so both must consume the same linear context;
// the second parameter is consumed by the then-branch only.
function pick (x: num) (y: num) : num {
    c = is_pos x;
    if c then y else 0
}
pick 1 2
