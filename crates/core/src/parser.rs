//! Parser for the Λnum surface syntax.
//!
//! The grammar follows the paper's implementation notation (Section 5):
//!
//! ```text
//! program := fndef* block?
//! fndef   := "function" ID param* ":" ty "{" block "}"
//! param   := "(" ID ":" ty ")"
//! block   := stmt* expr
//! stmt    := ID "=" expr ";"              -- let x = v in e
//!          | "let" "[" ID "]" "=" expr ";"-- let [x] = v in e
//!          | "let" ID "=" expr ";"        -- let-bind(v, x. e)
//! expr    := unary+                       -- application by juxtaposition
//! unary   := ("rnd"|"ret"|"fst"|"snd") unary
//!          | ("inl"|"inr") ("{" ty "}")? unary
//!          | "if" expr "then" arm "else" arm
//!          | "case" expr "of" "(" "inl" ID "." block "|" "inr" ID "." block ")"
//!          | atom
//! arm     := "{" block "}" | unary
//! atom    := NUMBER | ID | "true" | "false" | "()"
//!          | "(" expr ")" | "(" expr "," expr ")" | "(|" expr "," expr "|)"
//!          | "[" expr "]" "{" grade "}"
//! ty      := sumty ("-o" ty)?
//! sumty   := atomty ("+" atomty)*
//! atomty  := "num" | "unit" | "bool" | "M" "[" grade "]" atomty
//!          | "!" "[" grade "]" atomty | "<" ty "," ty ">"
//!          | "(" ty ")" | "(" ty "," ty ")"
//! grade   := gterm ("+" gterm)*
//! gterm   := gfactor ("*" gfactor)*
//! gfactor := NUMBER ("/" NUMBER)? | ID | "inf"
//! ```

use crate::grade::Grade;
use crate::lexer::{lex, SyntaxError, Tok, Token};
use crate::ty::Ty;
use numfuzz_exact::Rational;

/// Surface expression tree (pre-lowering).
#[derive(Clone, Debug, PartialEq)]
pub enum SExpr {
    /// Numeric literal.
    Num(Rational),
    /// Variable or function reference.
    Var(String),
    /// `true`.
    True,
    /// `false`.
    False,
    /// `()`.
    Unit,
    /// Tensor pair `(a, b)`.
    PairT(Box<SExpr>, Box<SExpr>),
    /// Cartesian pair `(|a, b|)`.
    PairW(Box<SExpr>, Box<SExpr>),
    /// `inl {τ}? v` (annotation = the absent right type).
    Inl(Option<Ty>, Box<SExpr>),
    /// `inr {σ}? v` (annotation = the absent left type).
    Inr(Option<Ty>, Box<SExpr>),
    /// Application `f a`.
    App(Box<SExpr>, Box<SExpr>),
    /// `rnd e`.
    Rnd(Box<SExpr>),
    /// `ret e`.
    Ret(Box<SExpr>),
    /// `[e]{s}`.
    BoxI(Grade, Box<SExpr>),
    /// `fst e`.
    Fst(Box<SExpr>),
    /// `snd e`.
    Snd(Box<SExpr>),
    /// `if c then e1 else e2`.
    If(Box<SExpr>, Box<SExpr>, Box<SExpr>),
    /// `case v of (inl x. e | inr y. f)`.
    Case(Box<SExpr>, String, Box<SExpr>, String, Box<SExpr>),
    /// `x = e; rest`.
    Let(String, Box<SExpr>, Box<SExpr>),
    /// `let x = e; rest` (monadic bind).
    LetBind(String, Box<SExpr>, Box<SExpr>),
    /// `let [x] = e; rest`.
    LetBox(String, Box<SExpr>, Box<SExpr>),
}

impl Drop for SExpr {
    /// Iterative drop: statement chains can be tens of thousands of nodes
    /// deep, and the default recursive drop glue would overflow the stack.
    fn drop(&mut self) {
        fn take_children(e: &mut SExpr, work: &mut Vec<SExpr>) {
            let mut grab = |b: &mut Box<SExpr>| work.push(std::mem::replace(&mut **b, SExpr::Unit));
            match e {
                SExpr::Num(_) | SExpr::Var(_) | SExpr::True | SExpr::False | SExpr::Unit => {}
                SExpr::PairT(a, b) | SExpr::PairW(a, b) | SExpr::App(a, b) => {
                    grab(a);
                    grab(b);
                }
                SExpr::Inl(_, v)
                | SExpr::Inr(_, v)
                | SExpr::Rnd(v)
                | SExpr::Ret(v)
                | SExpr::BoxI(_, v)
                | SExpr::Fst(v)
                | SExpr::Snd(v) => grab(v),
                SExpr::If(a, b, c) => {
                    grab(a);
                    grab(b);
                    grab(c);
                }
                SExpr::Case(v, _, a, _, b) => {
                    grab(v);
                    grab(a);
                    grab(b);
                }
                SExpr::Let(_, a, b) | SExpr::LetBind(_, a, b) | SExpr::LetBox(_, a, b) => {
                    grab(a);
                    grab(b);
                }
            }
        }
        let mut work = Vec::new();
        take_children(self, &mut work);
        while let Some(mut e) = work.pop() {
            take_children(&mut e, &mut work);
        }
    }
}

/// A surface `function` definition.
#[derive(Clone, Debug, PartialEq)]
pub struct SFnDef {
    /// Function name.
    pub name: String,
    /// Curried parameters.
    pub params: Vec<(String, Ty)>,
    /// Declared result type (of the body, after all parameters).
    pub ret: Ty,
    /// The body block.
    pub body: SExpr,
}

/// A parsed program: definitions plus an optional main expression.
#[derive(Clone, Debug, PartialEq)]
pub struct SProgram {
    /// `function` definitions, in source order.
    pub defs: Vec<SFnDef>,
    /// The trailing expression, if any.
    pub main: Option<SExpr>,
}

/// Parses a full program.
///
/// # Errors
///
/// Returns a [`SyntaxError`] with source position on malformed input.
pub fn parse_program(src: &str) -> Result<SProgram, SyntaxError> {
    let mut p = Parser::new(src)?;
    let prog = p.program()?;
    p.expect_eof()?;
    Ok(prog)
}

/// Parses a single expression (block form: statements allowed).
///
/// # Errors
///
/// Returns a [`SyntaxError`] with source position on malformed input.
pub fn parse_expr(src: &str) -> Result<SExpr, SyntaxError> {
    let mut p = Parser::new(src)?;
    let e = p.block()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parses a type (useful for tests and tools).
///
/// # Errors
///
/// Returns a [`SyntaxError`] with source position on malformed input.
pub fn parse_ty(src: &str) -> Result<Ty, SyntaxError> {
    let mut p = Parser::new(src)?;
    let t = p.ty()?;
    p.expect_eof()?;
    Ok(t)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, SyntaxError> {
        Ok(Parser { toks: lex(src)?, pos: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, SyntaxError> {
        let (line, col) = self.here();
        Err(SyntaxError::new(msg, line, col))
    }

    fn expect(&mut self, tok: Tok) -> Result<(), SyntaxError> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek()))
        }
    }

    fn expect_eof(&mut self) -> Result<(), SyntaxError> {
        if self.peek() == &Tok::Eof {
            Ok(())
        } else {
            self.err(format!("expected end of input, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, SyntaxError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected an identifier, found {other}")),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ----- program -----

    fn program(&mut self) -> Result<SProgram, SyntaxError> {
        let mut defs = Vec::new();
        while self.is_kw("function") {
            defs.push(self.fndef()?);
        }
        let main = if self.peek() == &Tok::Eof { None } else { Some(self.block()?) };
        Ok(SProgram { defs, main })
    }

    fn fndef(&mut self) -> Result<SFnDef, SyntaxError> {
        assert!(self.eat_kw("function"));
        let name = self.ident()?;
        let mut params = Vec::new();
        while self.peek() == &Tok::LParen {
            self.bump();
            let p = self.ident()?;
            self.expect(Tok::Colon)?;
            let t = self.ty()?;
            self.expect(Tok::RParen)?;
            params.push((p, t));
        }
        self.expect(Tok::Colon)?;
        let ret = self.ty()?;
        self.expect(Tok::LBrace)?;
        let body = self.block()?;
        self.expect(Tok::RBrace)?;
        Ok(SFnDef { name, params, ret, body })
    }

    // ----- expressions -----

    /// `stmt* expr`. Iterative: statements are collected in a loop and the
    /// nest is folded at the end, so blocks with tens of thousands of
    /// statements (Table 4 scale) parse without deep recursion.
    fn block(&mut self) -> Result<SExpr, SyntaxError> {
        enum StmtKind {
            Let,
            LetBind,
            LetBox,
        }
        let mut stmts: Vec<(StmtKind, String, SExpr)> = Vec::new();
        let tail = loop {
            if self.is_kw("let") {
                self.bump();
                if self.peek() == &Tok::LBracket {
                    self.bump();
                    let x = self.ident()?;
                    self.expect(Tok::RBracket)?;
                    self.expect(Tok::Eq)?;
                    let e = self.expr()?;
                    self.expect(Tok::Semi)?;
                    stmts.push((StmtKind::LetBox, x, e));
                } else {
                    let x = self.ident()?;
                    self.expect(Tok::Eq)?;
                    let e = self.expr()?;
                    self.expect(Tok::Semi)?;
                    stmts.push((StmtKind::LetBind, x, e));
                }
                continue;
            }
            // x = e;  (plain let) — lookahead for `ident =`.
            if let Tok::Ident(_) = self.peek() {
                if self.peek2() == &Tok::Eq && !self.is_kw("true") && !self.is_kw("false") {
                    let x = self.ident()?;
                    self.expect(Tok::Eq)?;
                    let e = self.expr()?;
                    self.expect(Tok::Semi)?;
                    stmts.push((StmtKind::Let, x, e));
                    continue;
                }
            }
            break self.expr()?;
        };
        let mut acc = tail;
        for (kind, x, e) in stmts.into_iter().rev() {
            acc = match kind {
                StmtKind::Let => SExpr::Let(x, Box::new(e), Box::new(acc)),
                StmtKind::LetBind => SExpr::LetBind(x, Box::new(e), Box::new(acc)),
                StmtKind::LetBox => SExpr::LetBox(x, Box::new(e), Box::new(acc)),
            };
        }
        Ok(acc)
    }

    fn expr(&mut self) -> Result<SExpr, SyntaxError> {
        let mut head = self.unary()?;
        while self.starts_atom() {
            let arg = self.unary()?;
            head = SExpr::App(Box::new(head), Box::new(arg));
        }
        Ok(head)
    }

    fn starts_atom(&self) -> bool {
        match self.peek() {
            Tok::Number(_) | Tok::LParen | Tok::LPairW | Tok::LBracket => true,
            Tok::Ident(s) => {
                !matches!(s.as_str(), "then" | "else" | "of" | "function" | "let" | "in")
            }
            _ => false,
        }
    }

    fn unary(&mut self) -> Result<SExpr, SyntaxError> {
        if self.eat_kw("rnd") {
            return Ok(SExpr::Rnd(Box::new(self.unary()?)));
        }
        if self.eat_kw("ret") {
            return Ok(SExpr::Ret(Box::new(self.unary()?)));
        }
        if self.eat_kw("fst") {
            return Ok(SExpr::Fst(Box::new(self.unary()?)));
        }
        if self.eat_kw("snd") {
            return Ok(SExpr::Snd(Box::new(self.unary()?)));
        }
        if self.eat_kw("inl") {
            let ann = self.injection_annotation()?;
            return Ok(SExpr::Inl(ann, Box::new(self.unary()?)));
        }
        if self.eat_kw("inr") {
            let ann = self.injection_annotation()?;
            return Ok(SExpr::Inr(ann, Box::new(self.unary()?)));
        }
        if self.eat_kw("if") {
            let c = self.expr()?;
            if !self.eat_kw("then") {
                return self.err(format!("expected `then`, found {}", self.peek()));
            }
            let e1 = self.arm()?;
            if !self.eat_kw("else") {
                return self.err(format!("expected `else`, found {}", self.peek()));
            }
            let e2 = self.arm()?;
            return Ok(SExpr::If(Box::new(c), Box::new(e1), Box::new(e2)));
        }
        if self.eat_kw("case") {
            let v = self.expr()?;
            if !self.eat_kw("of") {
                return self.err(format!("expected `of`, found {}", self.peek()));
            }
            self.expect(Tok::LParen)?;
            if !self.eat_kw("inl") {
                return self.err(format!("expected `inl`, found {}", self.peek()));
            }
            let x = self.ident()?;
            self.expect(Tok::Dot)?;
            let e1 = self.block()?;
            self.expect(Tok::Pipe)?;
            if !self.eat_kw("inr") {
                return self.err(format!("expected `inr`, found {}", self.peek()));
            }
            let y = self.ident()?;
            self.expect(Tok::Dot)?;
            let e2 = self.block()?;
            self.expect(Tok::RParen)?;
            return Ok(SExpr::Case(Box::new(v), x, Box::new(e1), y, Box::new(e2)));
        }
        self.atom()
    }

    fn injection_annotation(&mut self) -> Result<Option<Ty>, SyntaxError> {
        if self.peek() == &Tok::LBrace {
            self.bump();
            let t = self.ty()?;
            self.expect(Tok::RBrace)?;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn arm(&mut self) -> Result<SExpr, SyntaxError> {
        if self.peek() == &Tok::LBrace {
            self.bump();
            let e = self.block()?;
            self.expect(Tok::RBrace)?;
            Ok(e)
        } else {
            // Unbraced arms span a full application; `else` terminates the
            // `then` arm because keywords never start an atom.
            self.expr()
        }
    }

    fn atom(&mut self) -> Result<SExpr, SyntaxError> {
        match self.peek().clone() {
            Tok::Number(n) => {
                self.bump();
                let q = Rational::from_decimal_str(&n)
                    .map_err(|e| SyntaxError::new(e.to_string(), 0, 0))?;
                Ok(SExpr::Num(q))
            }
            Tok::Ident(s) => match s.as_str() {
                "true" => {
                    self.bump();
                    Ok(SExpr::True)
                }
                "false" => {
                    self.bump();
                    Ok(SExpr::False)
                }
                _ => {
                    self.bump();
                    Ok(SExpr::Var(s))
                }
            },
            Tok::LPairW => {
                self.bump();
                let a = self.expr()?;
                self.expect(Tok::Comma)?;
                let b = self.expr()?;
                self.expect(Tok::RPairW)?;
                Ok(SExpr::PairW(Box::new(a), Box::new(b)))
            }
            Tok::LParen => {
                self.bump();
                if self.peek() == &Tok::RParen {
                    self.bump();
                    return Ok(SExpr::Unit);
                }
                let a = self.expr()?;
                if self.peek() == &Tok::Comma {
                    self.bump();
                    let b = self.expr()?;
                    self.expect(Tok::RParen)?;
                    Ok(SExpr::PairT(Box::new(a), Box::new(b)))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(a)
                }
            }
            Tok::LBracket => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RBracket)?;
                self.expect(Tok::LBrace)?;
                let g = self.grade()?;
                self.expect(Tok::RBrace)?;
                Ok(SExpr::BoxI(g, Box::new(e)))
            }
            other => self.err(format!("expected an expression, found {other}")),
        }
    }

    // ----- types -----

    fn ty(&mut self) -> Result<Ty, SyntaxError> {
        let lhs = self.sum_ty()?;
        if self.peek() == &Tok::Lolli {
            self.bump();
            let rhs = self.ty()?;
            Ok(Ty::lolli(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn sum_ty(&mut self) -> Result<Ty, SyntaxError> {
        let mut t = self.atom_ty()?;
        while self.peek() == &Tok::Plus {
            self.bump();
            let r = self.atom_ty()?;
            t = Ty::sum(t, r);
        }
        Ok(t)
    }

    fn atom_ty(&mut self) -> Result<Ty, SyntaxError> {
        match self.peek().clone() {
            Tok::Ident(s) => match s.as_str() {
                "num" => {
                    self.bump();
                    Ok(Ty::Num)
                }
                "unit" => {
                    self.bump();
                    Ok(Ty::Unit)
                }
                "bool" => {
                    self.bump();
                    Ok(Ty::bool())
                }
                "M" => {
                    self.bump();
                    self.expect(Tok::LBracket)?;
                    let g = self.grade()?;
                    self.expect(Tok::RBracket)?;
                    let t = self.atom_ty()?;
                    Ok(Ty::monad(g, t))
                }
                _ => self.err(format!("expected a type, found identifier `{s}`")),
            },
            Tok::Bang => {
                self.bump();
                self.expect(Tok::LBracket)?;
                let g = self.grade()?;
                self.expect(Tok::RBracket)?;
                let t = self.atom_ty()?;
                Ok(Ty::bang(g, t))
            }
            Tok::Lt => {
                self.bump();
                let a = self.ty()?;
                self.expect(Tok::Comma)?;
                let b = self.ty()?;
                self.expect(Tok::Gt)?;
                Ok(Ty::with(a, b))
            }
            Tok::LParen => {
                self.bump();
                let a = self.ty()?;
                if self.peek() == &Tok::Comma {
                    self.bump();
                    let b = self.ty()?;
                    self.expect(Tok::RParen)?;
                    Ok(Ty::tensor(a, b))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(a)
                }
            }
            other => self.err(format!("expected a type, found {other}")),
        }
    }

    // ----- grades -----

    fn grade(&mut self) -> Result<Grade, SyntaxError> {
        let mut g = self.grade_term()?;
        while self.peek() == &Tok::Plus {
            self.bump();
            let t = self.grade_term()?;
            g = g.add(&t);
        }
        Ok(g)
    }

    fn grade_term(&mut self) -> Result<Grade, SyntaxError> {
        let mut g = self.grade_factor()?;
        while self.peek() == &Tok::Star {
            self.bump();
            let f = self.grade_factor()?;
            g = match g.checked_mul(&f) {
                Some(p) => p,
                None => return self.err("grades must be linear: cannot multiply two symbols"),
            };
        }
        Ok(g)
    }

    fn grade_factor(&mut self) -> Result<Grade, SyntaxError> {
        match self.peek().clone() {
            Tok::Number(n) => {
                self.bump();
                let mut q = Rational::from_decimal_str(&n)
                    .map_err(|e| SyntaxError::new(e.to_string(), 0, 0))?;
                // Optional exact fraction: `1/2`.
                if self.peek() == &Tok::Slash {
                    self.bump();
                    match self.peek().clone() {
                        Tok::Number(d) => {
                            self.bump();
                            let den = Rational::from_decimal_str(&d)
                                .map_err(|e| SyntaxError::new(e.to_string(), 0, 0))?;
                            if den.is_zero() {
                                return self.err("zero denominator in grade");
                            }
                            q = q.div(&den);
                        }
                        other => return self.err(format!("expected a denominator, found {other}")),
                    }
                }
                if q.is_negative() {
                    return self.err("grades must be non-negative");
                }
                Ok(Grade::constant(q))
            }
            Tok::Ident(s) if s == "inf" => {
                self.bump();
                Ok(Grade::infinite())
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(Grade::symbol(&s))
            }
            other => self.err(format!("expected a grade, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_types() {
        assert_eq!(parse_ty("num").unwrap(), Ty::Num);
        assert_eq!(
            parse_ty("![2.0]num -o M[2*eps]num").unwrap().to_string(),
            "![2]num -o M[2*eps]num"
        );
        assert_eq!(parse_ty("(num, num)").unwrap().to_string(), "(num, num)");
        assert_eq!(parse_ty("<num, num>").unwrap().to_string(), "<num, num>");
        assert_eq!(parse_ty("bool").unwrap(), Ty::bool());
        assert_eq!(parse_ty("unit + num").unwrap().to_string(), "unit + num");
        assert_eq!(parse_ty("M[1/2 + eps]num").unwrap().to_string(), "M[1/2 + eps]num");
        assert_eq!(parse_ty("![inf]num").unwrap().to_string(), "![inf]num");
        // -o is right-associative.
        assert_eq!(
            parse_ty("num -o num -o num").unwrap(),
            Ty::lolli(Ty::Num, Ty::lolli(Ty::Num, Ty::Num))
        );
    }

    #[test]
    fn parses_ma_from_fig8() {
        let src = r#"
            function MA (x: num) (y: num) (z: num) : M[2*eps]num {
                s = mulfp (x,y);
                let a = s;
                addfp (|a,z|)
            }
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.defs.len(), 1);
        let ma = &prog.defs[0];
        assert_eq!(ma.name, "MA");
        assert_eq!(ma.params.len(), 3);
        assert_eq!(ma.ret.to_string(), "M[2*eps]num");
        match &ma.body {
            SExpr::Let(s, v, rest) => {
                assert_eq!(s, "s");
                assert!(matches!(**v, SExpr::App(..)));
                match &**rest {
                    SExpr::LetBind(a, _, rest2) => {
                        assert_eq!(a, "a");
                        assert!(matches!(**rest2, SExpr::App(..)));
                    }
                    other => panic!("expected let-bind, got {other:?}"),
                }
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn parses_case_and_if() {
        let e = parse_expr("case c of (inl x . ret 0.5 | inr y . ret 1)").unwrap();
        assert!(matches!(e, SExpr::Case(..)));
        let e = parse_expr("if c then ret x else ret y").unwrap();
        assert!(matches!(e, SExpr::If(..)));
        let e = parse_expr("if c then { a = mul (x, x); rnd a } else ret y").unwrap();
        assert!(matches!(e, SExpr::If(..)));
    }

    #[test]
    fn parses_box_and_letbox() {
        let e = parse_expr("let [x1] = x; mul (x1, x1)").unwrap();
        assert!(matches!(e, SExpr::LetBox(..)));
        let e = parse_expr("[x]{2.0}").unwrap();
        match &e {
            SExpr::BoxI(g, _) => assert_eq!(g.to_string(), "2"),
            other => panic!("expected box, got {other:?}"),
        }
    }

    #[test]
    fn application_is_left_associative() {
        let e = parse_expr("f a b").unwrap();
        match &e {
            SExpr::App(fa, b) => {
                assert!(matches!(**fa, SExpr::App(..)));
                assert_eq!(**b, SExpr::Var("b".into()));
            }
            other => panic!("expected application, got {other:?}"),
        }
    }

    #[test]
    fn program_with_main() {
        let src = r#"
            function pow2 (x: ![2.0]num) : num {
                let [x1] = x;
                mul (x1, x1)
            }
            pow2 [3]{2.0}
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.defs.len(), 1);
        assert!(prog.main.is_some());
    }

    #[test]
    fn error_positions() {
        let e = parse_program("function f (x: num) : num { ) }").unwrap_err();
        assert!(e.line >= 1 && e.col > 1, "error has a position: {e}");
        assert!(parse_expr("(a,").is_err());
        assert!(parse_ty("M[").is_err());
        assert!(parse_expr("").is_err());
    }

    #[test]
    fn rejects_nonlinear_grades() {
        assert!(parse_ty("M[eps*eps]num").is_err());
        assert!(parse_ty("M[2*eps + u]num").is_ok());
    }
}
