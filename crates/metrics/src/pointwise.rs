//! The classical pointwise error measures of the paper's Section 2.1
//! (eq. 3 and eq. 4): absolute error, relative error, ULP error, and bits
//! of error. Absolute and relative error are exact rational computations;
//! ULP error is computed by ordinal arithmetic on softfloat values.

use numfuzz_exact::{BigUint, RatInterval, Rational};
use numfuzz_softfloat::Fp;

/// Absolute error `|x̃ - x|` (eq. 3, left).
pub fn abs_error(ideal: &Rational, approx: &Rational) -> Rational {
    approx.sub(ideal).abs()
}

/// Relative error `|(x̃ - x) / x|` (eq. 3, right); `None` when `x = 0`.
pub fn rel_error(ideal: &Rational, approx: &Rational) -> Option<Rational> {
    if ideal.is_zero() {
        None
    } else {
        Some(approx.sub(ideal).div(ideal).abs())
    }
}

/// Worst-case absolute error between two interval-valued quantities:
/// `sup { |y - x| : x ∈ X, y ∈ Y }`.
pub fn abs_error_sup(ideal: &RatInterval, approx: &RatInterval) -> Rational {
    approx.hi().sub(ideal.lo()).abs().max(ideal.hi().sub(approx.lo()).abs())
}

/// Worst-case relative error between interval-valued quantities; `None`
/// when the ideal interval contains zero.
pub fn rel_error_sup(ideal: &RatInterval, approx: &RatInterval) -> Option<Rational> {
    if ideal.contains_zero() {
        return None;
    }
    Some(abs_error_sup(ideal, approx).div(&ideal.abs_inf()))
}

/// ULP error (eq. 4, left): the number of floats of the format in the
/// closed interval between the two values (so equal values give 1).
///
/// # Panics
///
/// Panics if either value is NaN or infinite, or the formats differ.
pub fn ulp_error(x: &Fp, y: &Fp) -> BigUint {
    assert_eq!(x.format(), y.format(), "ULP error requires a common format");
    x.floats_between(y)
}

/// Bits of error (eq. 4, right): `log2(err_ulp)`. Display-quality `f64`.
pub fn bits_error(x: &Fp, y: &Fp) -> f64 {
    let ulps = ulp_error(x, y);
    // log2 via bit length and top bits (good to ~1e-9, plenty for display).
    let bits = ulps.bit_len();
    if bits <= 53 {
        (ulps.to_u64().expect("fits") as f64).log2()
    } else {
        let top = ulps.shr_bits(bits - 53).to_u64().expect("53 bits fit") as f64;
        top.log2() + (bits - 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfuzz_softfloat::{Format, RoundingMode};

    fn rat(s: &str) -> Rational {
        Rational::from_decimal_str(s).expect("valid test literal")
    }

    #[test]
    fn abs_and_rel_error_basics() {
        assert_eq!(abs_error(&rat("2"), &rat("2.5")), rat("0.5"));
        assert_eq!(rel_error(&rat("2"), &rat("2.5")), Some(rat("0.25")));
        assert_eq!(rel_error(&rat("0"), &rat("2.5")), None);
        assert_eq!(rel_error(&rat("-4"), &rat("-5")), Some(rat("0.25")));
    }

    #[test]
    fn interval_sups() {
        let x = RatInterval::new(rat("1"), rat("2"));
        let y = RatInterval::new(rat("1.5"), rat("4"));
        // Worst |y - x| = |4 - 1| = 3.
        assert_eq!(abs_error_sup(&x, &y), rat("3"));
        // Worst relative = 3 / min|X| = 3.
        assert_eq!(rel_error_sup(&x, &y), Some(rat("3")));
        let z = RatInterval::new(rat("-1"), rat("1"));
        assert_eq!(rel_error_sup(&z, &y), None);
    }

    #[test]
    fn ulp_error_counts() {
        let f = Format::BINARY64;
        let one = Fp::from_f64(1.0);
        assert_eq!(ulp_error(&one, &one), BigUint::from(1u32));
        let next = one.next_up();
        assert_eq!(ulp_error(&one, &next), BigUint::from(2u32));
        assert_eq!(bits_error(&one, &next), 1.0);
        // Rounding 0.1 up vs down differ by exactly one float: 2 floats in
        // the closed interval.
        let q = rat("0.1");
        let up = Fp::round(&q, f, RoundingMode::TowardPositive);
        let dn = Fp::round(&q, f, RoundingMode::TowardNegative);
        assert_eq!(ulp_error(&up, &dn), BigUint::from(2u32));
    }

    #[test]
    fn bits_error_large() {
        let one = Fp::from_f64(1.0);
        let two = Fp::from_f64(2.0);
        // 1.0 .. 2.0 spans 2^52 + 1 floats; log2 of that is just over 52.
        let b = bits_error(&one, &two);
        assert!((b - 52.0).abs() < 1e-9);
    }
}
