//! Ablation benches for the design choices called out in DESIGN.md §3:
//!
//! * exact symbolic grades: cost of grade arithmetic per checker step;
//! * sqrt enclosure precision: ideal-evaluation cost vs `sqrt_bits`;
//! * evaluator: ideal vs floating-point semantics overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use numfuzz_core::{compile, Grade, Signature};
use numfuzz_exact::{funcs::sqrt_enclosure, Rational};
use numfuzz_interp::{eval, rounding::IdentityRounding, rounding::ModeRounding, EvalConfig};
use numfuzz_softfloat::{Format, RoundingMode};

fn bench_grade_arithmetic(c: &mut Criterion) {
    // The checker's hot loop is grade add / sup / scale on small linear
    // expressions; an f64 representation would be ~10x faster but inexact
    // (and could not print `7*eps`). This measures what exactness costs.
    let eps = Grade::symbol("eps");
    let three = Grade::constant(Rational::from_int(3));
    let g1 = eps.scale(&Rational::from_int(7)).add(&three);
    let g2 = eps.scale(&Rational::ratio(5, 2));
    c.bench_function("ablation/grade_add", |b| b.iter(|| g1.add(&g2)));
    c.bench_function("ablation/grade_sup", |b| b.iter(|| g1.sup(&g2)));
    c.bench_function("ablation/grade_mul", |b| b.iter(|| three.checked_mul(&g2).expect("linear")));
}

fn bench_sqrt_bits(c: &mut Criterion) {
    let q = Rational::from_decimal_str("13.9501").expect("valid");
    for bits in [64u32, 192, 512] {
        c.bench_function(&format!("ablation/sqrt_enclosure_{bits}"), |b| {
            b.iter(|| sqrt_enclosure(&q, bits))
        });
    }
}

fn bench_eval_semantics(c: &mut Criterion) {
    let sig = Signature::relative_precision();
    let src = r#"
        function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
        function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
        function sqrtfp (x: ![1/2]num) : M[eps]num { s = sqrt x; rnd s }
        function hypot (x: num) (y: num) : M[5/2*eps]num {
            let a = mulfp (x,x);
            let b = mulfp (y,y);
            let c = addfp (|a,b|);
            sqrtfp [c]{1/2}
        }
        hypot 3.7 0.51
    "#;
    let lowered = compile(src, &sig).expect("compiles");
    c.bench_function("ablation/eval_ideal", |b| {
        b.iter(|| {
            eval(&lowered.store, lowered.root, &mut IdentityRounding, EvalConfig::default(), &[])
                .expect("evaluates")
        })
    });
    c.bench_function("ablation/eval_fp_b64", |b| {
        b.iter(|| {
            let mut m =
                ModeRounding { format: Format::BINARY64, mode: RoundingMode::TowardPositive };
            eval(&lowered.store, lowered.root, &mut m, EvalConfig::default(), &[])
                .expect("evaluates")
        })
    });
}

criterion_group!(benches, bench_grade_arithmetic, bench_sqrt_bits, bench_eval_semantics);
criterion_main!(benches);
