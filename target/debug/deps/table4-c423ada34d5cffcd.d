/root/repo/target/debug/deps/table4-c423ada34d5cffcd.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-c423ada34d5cffcd: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
