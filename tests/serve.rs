//! End-to-end tests of the resident analysis service: `numfuzz serve`
//! driven over stdio and TCP, byte-identity with the one-shot CLI,
//! cache-hit behavior across requests and connections, protocol errors,
//! and the `docs/serve.md` wire-protocol examples replayed verbatim.

use numfuzz::serve::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_numfuzz");

/// A `numfuzz serve` child process on stdio framing, with line-oriented
/// request/response helpers.
struct StdioServer {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
}

impl StdioServer {
    fn spawn(extra_args: &[&str]) -> Self {
        let mut child = Command::new(BIN)
            .arg("serve")
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn numfuzz serve");
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        StdioServer { child, stdin, stdout }
    }

    fn request(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut response = String::new();
        self.stdout.read_line(&mut response).expect("read response");
        assert!(response.ends_with('\n'), "responses are newline-terminated: {response:?}");
        response.trim_end_matches('\n').to_string()
    }

    /// Sends `shutdown` and asserts the process exits successfully.
    fn shutdown(mut self) {
        let reply = self.request(r#"{"id":999,"op":"shutdown"}"#);
        let v = Json::parse(&reply).expect("shutdown response parses");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let status = self.child.wait().expect("server exits after shutdown");
        assert!(status.success(), "clean exit after shutdown: {status:?}");
    }
}

fn parse(response: &str) -> Json {
    Json::parse(response).unwrap_or_else(|e| panic!("bad response JSON: {e}\n{response}"))
}

/// Runs a one-shot CLI command, returning (stdout, success).
fn cli(args: &[&str]) -> (String, bool) {
    let out = Command::new(BIN).args(args).output().expect("run numfuzz");
    (String::from_utf8(out.stdout).expect("utf-8 stdout"), out.status.success())
}

#[test]
fn serve_output_is_byte_identical_to_one_shot_cli() {
    let dir = std::env::temp_dir().join(format!("numfuzz-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("ma.nf");
    let src = "function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }\nmulfp (2, 3)";
    std::fs::write(&file, src).unwrap();
    let path = file.to_str().unwrap();

    let (check_stdout, ok) = cli(&["check", path]);
    assert!(ok);
    let (bound_stdout, ok) = cli(&["bound", path]);
    assert!(ok);

    let mut server = StdioServer::spawn(&[]);
    for (op, expected) in [("check", &check_stdout), ("bound", &bound_stdout)] {
        let request = Json::obj(vec![
            ("id", Json::int(1)),
            ("op", Json::str(op)),
            ("src", Json::str(src)),
            ("name", Json::str(path)),
        ]);
        let v = parse(&server.request(&request.to_string()));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{op}");
        assert_eq!(
            v.get("output").and_then(Json::as_str),
            Some(expected.as_str()),
            "serve `{op}` output must be byte-identical to the one-shot CLI"
        );
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_batch_lines_match_cli_batch() {
    let dir = std::env::temp_dir().join(format!("numfuzz-serve-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let entries = [("a.nf", "rnd 1.5"), ("bad.nf", "2 3"), ("dup.nf", "rnd 1.5")];
    for (name, src) in entries {
        std::fs::write(dir.join(name), src).unwrap();
    }
    let dir_arg = dir.to_str().unwrap();
    let (batch_stdout, ok) = cli(&["batch", dir_arg, "--jobs", "2"]);
    assert!(!ok, "bad.nf fails the batch");

    // The serve `batch` op over the same (path, src) pairs, sorted like
    // the CLI sorts files.
    let mut names: Vec<String> =
        entries.iter().map(|(n, _)| dir.join(n).to_str().unwrap().to_string()).collect();
    names.sort();
    let programs: Vec<Json> = names
        .iter()
        .map(|path| {
            let src = std::fs::read_to_string(path).unwrap();
            Json::obj(vec![("src", Json::str(src)), ("name", Json::str(path.clone()))])
        })
        .collect();
    let request = Json::obj(vec![
        ("id", Json::int(1)),
        ("op", Json::str("batch")),
        ("programs", Json::Arr(programs)),
    ]);
    let mut server = StdioServer::spawn(&["--jobs", "2"]);
    let v = parse(&server.request(&request.to_string()));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    let results = v.get("results").and_then(Json::as_array).unwrap();
    let serve_lines: Vec<&str> =
        results.iter().map(|r| r.get("line").and_then(Json::as_str).unwrap()).collect();
    let cli_lines: Vec<&str> = batch_stdout.lines().collect();
    // CLI output ends with the summary line; everything before it is the
    // per-file lines (diagnostics may span multiple lines).
    let summary = *cli_lines.last().unwrap();
    assert_eq!(
        cli_lines[..cli_lines.len() - 1].join("\n"),
        serve_lines.join("\n"),
        "per-file batch lines must match the CLI byte for byte"
    );
    assert_eq!(v.get("summary").and_then(Json::as_str), Some(summary));
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repeated_requests_hit_the_cache_and_stats_report_it() {
    let mut server = StdioServer::spawn(&[]);
    let check = r#"{"id":1,"op":"check","src":"s = mul (3, 3); rnd s"}"#;
    let r1 = server.request(check);
    let r2 = server.request(check);
    assert_eq!(r1, r2, "replayed response is byte-identical");
    let stats = parse(&server.request(r#"{"id":2,"op":"stats"}"#));
    let cache = stats.get("cache").expect("serve always runs with a cache");
    assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(1.0));
    assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(1.0));
    assert_eq!(cache.get("entries").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("requests").and_then(Json::as_f64), Some(3.0));
    server.shutdown();
}

#[test]
fn protocol_errors_answer_eproto_and_keep_serving() {
    let mut server = StdioServer::spawn(&[]);
    for (bad, why) in [
        ("this is not json", "invalid JSON"),
        (r#"{"id":1}"#, "missing op"),
        (r#"{"id":1,"op":"frobnicate"}"#, "unknown op"),
        (r#"{"id":1,"op":"check"}"#, "missing src"),
        (r#"{"id":1,"op":"batch"}"#, "missing programs"),
    ] {
        let v = parse(&server.request(bad));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{why}");
        assert_eq!(v.get("exit").and_then(Json::as_f64), Some(2.0), "{why}");
        assert_eq!(
            v.get("error").unwrap().get("code").and_then(Json::as_str),
            Some("EPROTO"),
            "{why}"
        );
    }
    // Ill-typed programs are *program* errors, with the E0xxx payload.
    let v = parse(&server.request(r#"{"id":9,"op":"check","src":"rnd y"}"#));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("exit").and_then(Json::as_f64), Some(1.0));
    let error = v.get("error").unwrap();
    assert_eq!(error.get("code").and_then(Json::as_str), Some("E0002"));
    assert!(error.get("rendered").and_then(Json::as_str).unwrap().starts_with("error[E0002]"));
    // The server is still alive and answering.
    let v = parse(&server.request(r#"{"id":10,"op":"check","src":"rnd 1.5"}"#));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
}

/// Spawns `serve --listen 127.0.0.1:0` and reads the bound address off
/// stderr.
fn spawn_tcp_server(extra_args: &[&str]) -> (Child, String) {
    spawn_tcp_server_env(extra_args, &[])
}

/// Like [`spawn_tcp_server`], with extra environment variables (the
/// fault-injection tests gate `debug-panic`/`debug-sleep` on
/// `NUMFUZZ_SERVE_DEBUG_OPS=1`).
fn spawn_tcp_server_env(extra_args: &[&str], envs: &[(&str, &str)]) -> (Child, String) {
    let mut child = Command::new(BIN)
        .args(["serve", "--listen", "127.0.0.1:0"])
        .args(extra_args)
        .envs(envs.iter().copied())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn numfuzz serve --listen");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("numfuzz serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn tcp_serve_answers_concurrent_connections_with_a_shared_cache() {
    let (mut child, addr) = spawn_tcp_server(&[]);
    // Two concurrent connections, each analyzing the same program many
    // times; whichever connection computes it first, the other hits.
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(&addr).expect("connect");
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let mut outputs = Vec::new();
                for i in 0..10 {
                    let req =
                        format!(r#"{{"id":{i},"op":"check","src":"s = mul ({w}, 7); rnd s"}}"#);
                    writeln!(writer, "{req}").unwrap();
                    let mut response = String::new();
                    reader.read_line(&mut response).unwrap();
                    let v = Json::parse(response.trim_end()).expect("response parses");
                    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
                    outputs.push(v.get("output").and_then(Json::as_str).unwrap().to_string());
                }
                outputs
            })
        })
        .collect();
    for worker in workers {
        let outputs = worker.join().expect("worker");
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "stable replies per connection");
    }
    // A third connection reads stats and shuts the server down: the two
    // distinct programs were analyzed once each, everything else hit.
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, r#"{{"id":100,"op":"stats"}}"#).unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    let v = Json::parse(response.trim_end()).unwrap();
    let cache = v.get("cache").unwrap();
    assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(2.0), "{response}");
    assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(18.0), "{response}");
    writeln!(writer, r#"{{"id":101,"op":"shutdown"}}"#).unwrap();
    response.clear();
    reader.read_line(&mut response).unwrap();
    let status = wait_timeout(&mut child, Duration::from_secs(10));
    assert!(status.success(), "server exits cleanly after shutdown: {status:?}");
}

#[test]
fn wildcard_bind_still_shuts_down() {
    // A shutdown self-wake against a 0.0.0.0 bind must reach the accept
    // loop via loopback.
    let mut child = Command::new(BIN)
        .args(["serve", "--listen", "0.0.0.0:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn numfuzz serve");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    let addr = line.trim().strip_prefix("numfuzz serve: listening on ").unwrap();
    let port = addr.rsplit(':').next().unwrap();
    let stream = TcpStream::connect(format!("127.0.0.1:{port}")).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, r#"{{"id":1,"op":"shutdown"}}"#).unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    let status = wait_timeout(&mut child, Duration::from_secs(10));
    assert!(status.success(), "wildcard-bound server exits after shutdown: {status:?}");
}

#[test]
fn client_mode_pipes_requests_and_propagates_exit_codes() {
    let (mut child, addr) = spawn_tcp_server(&[]);
    let run_client = |input: &str| {
        let mut client = Command::new(BIN)
            .args(["client", "--connect", &addr])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn numfuzz client");
        client.stdin.take().unwrap().write_all(input.as_bytes()).unwrap();
        let out = client.wait_with_output().expect("client exits");
        (String::from_utf8(out.stdout).unwrap(), out.status.code().unwrap_or(-1))
    };

    let (stdout, code) = run_client(
        "{\"id\":1,\"op\":\"check\",\"src\":\"rnd 1.5\"}\n{\"id\":2,\"op\":\"stats\"}\n",
    );
    assert_eq!(code, 0, "{stdout}");
    assert_eq!(stdout.lines().count(), 2, "one response line per request");

    // A program error propagates as exit 1.
    let (stdout, code) = run_client("{\"id\":3,\"op\":\"check\",\"src\":\"2 3\"}\n");
    assert_eq!(code, 1, "{stdout}");
    // A protocol error propagates as exit 2.
    let (stdout, code) = run_client("{\"id\":4,\"op\":\"frobnicate\"}\n");
    assert_eq!(code, 2, "{stdout}");

    let (_, code) = run_client("{\"id\":5,\"op\":\"shutdown\"}\n");
    assert_eq!(code, 0);
    let status = wait_timeout(&mut child, Duration::from_secs(10));
    assert!(status.success());
}

/// One request/response exchange over an existing TCP connection pair.
fn tcp_request(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Json {
    writeln!(writer, "{line}").expect("write request");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    parse(response.trim_end())
}

fn tcp_connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

#[test]
fn pipelined_requests_answer_in_request_order() {
    let (mut child, addr) = spawn_tcp_server(&["--jobs", "2"]);
    let (mut writer, mut reader) = tcp_connect(&addr);
    // All three requests land in one write: the server dispatches them
    // concurrently but must reply strictly in request order.
    let burst = concat!(
        r#"{"id":1,"op":"check","src":"s = mul (11, 3); rnd s"}"#,
        "\n",
        r#"{"id":2,"op":"check","src":"s = mul (12, 3); rnd s"}"#,
        "\n",
        r#"{"id":3,"op":"check","src":"s = mul (13, 3); rnd s"}"#,
        "\n",
    );
    writer.write_all(burst.as_bytes()).unwrap();
    for expected_id in 1..=3 {
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let v = parse(response.trim_end());
        assert_eq!(
            v.get("id").and_then(Json::as_f64),
            Some(f64::from(expected_id)),
            "pipelined replies must come back in request order"
        );
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    }
    let v = tcp_request(&mut writer, &mut reader, r#"{"id":4,"op":"shutdown"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let status = wait_timeout(&mut child, Duration::from_secs(10));
    assert!(status.success());
}

#[test]
fn idle_connections_are_closed_and_the_server_keeps_serving() {
    let (mut child, addr) = spawn_tcp_server(&["--idle-ms", "250"]);
    // A slow client: half a request, then silence. The idle deadline
    // must close the connection rather than hold its buffer forever.
    let (mut slow, mut slow_reader) = tcp_connect(&addr);
    slow.write_all(br#"{"id":1,"op":"check","#).unwrap();
    slow.flush().unwrap();
    let mut buf = String::new();
    let n = slow_reader.read_line(&mut buf).expect("read until server closes");
    assert_eq!(n, 0, "idle connection gets EOF, not a response: {buf:?}");
    // The server is unharmed: a live connection still gets answers.
    let (mut writer, mut reader) = tcp_connect(&addr);
    let v = tcp_request(&mut writer, &mut reader, r#"{"id":2,"op":"metrics"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let idle_closed = v
        .get("connections")
        .and_then(|c| c.get("idle_closed"))
        .and_then(Json::as_f64)
        .expect("metrics reports idle_closed");
    assert!(idle_closed >= 1.0, "the slow client was reaped on the idle deadline");
    let v = tcp_request(&mut writer, &mut reader, r#"{"id":3,"op":"shutdown"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let status = wait_timeout(&mut child, Duration::from_secs(10));
    assert!(status.success());
}

#[test]
fn handler_panic_answers_epanic_and_the_server_survives() {
    let (mut child, addr) = spawn_tcp_server_env(&[], &[("NUMFUZZ_SERVE_DEBUG_OPS", "1")]);
    let (mut writer, mut reader) = tcp_connect(&addr);
    let v = tcp_request(&mut writer, &mut reader, r#"{"id":1,"op":"debug-panic"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("exit").and_then(Json::as_f64), Some(2.0));
    assert_eq!(
        v.get("error").unwrap().get("code").and_then(Json::as_str),
        Some("EPANIC"),
        "a handler panic must answer a well-formed error reply"
    );
    // The same connection keeps working — the worker rebuilt its session.
    let v = tcp_request(
        &mut writer,
        &mut reader,
        r#"{"id":2,"op":"check","src":"s = mul (3, 3); rnd s"}"#,
    );
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let v = tcp_request(&mut writer, &mut reader, r#"{"id":3,"op":"metrics"}"#);
    assert_eq!(
        v.get("connections").and_then(|c| c.get("panics_caught")).and_then(Json::as_f64),
        Some(1.0),
        "the panic is counted, not swallowed"
    );
    let v = tcp_request(&mut writer, &mut reader, r#"{"id":4,"op":"shutdown"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let status = wait_timeout(&mut child, Duration::from_secs(10));
    assert!(status.success(), "server exits cleanly after surviving a panic");
}

#[test]
fn per_tenant_admission_rejects_with_ebusy_and_does_not_hang() {
    let (mut child, addr) = spawn_tcp_server_env(
        &["--jobs", "1", "--max-pending", "1"],
        &[("NUMFUZZ_SERVE_DEBUG_OPS", "1")],
    );
    let (mut writer, mut reader) = tcp_connect(&addr);
    // One write carries both requests, so the slow one is still in
    // flight when the second is admitted — which the tenant's limit of 1
    // must refuse. Replies stay in request order: the sleep's reply
    // first, then the (immediately computed) rejection.
    let burst = concat!(
        r#"{"id":1,"op":"debug-sleep","ms":700,"tenant":"acme"}"#,
        "\n",
        r#"{"id":2,"op":"check","src":"rnd 1.5","tenant":"acme"}"#,
        "\n",
    );
    let t0 = Instant::now();
    writer.write_all(burst.as_bytes()).unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    let v = parse(response.trim_end());
    assert_eq!(v.get("id").and_then(Json::as_f64), Some(1.0));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    response.clear();
    reader.read_line(&mut response).unwrap();
    let v = parse(response.trim_end());
    assert_eq!(v.get("id").and_then(Json::as_f64), Some(2.0));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("exit").and_then(Json::as_f64), Some(2.0));
    assert_eq!(
        v.get("error").unwrap().get("code").and_then(Json::as_str),
        Some("EBUSY"),
        "over-limit tenant traffic is rejected, not queued: {response}"
    );
    assert!(t0.elapsed() < Duration::from_secs(10), "backpressure must answer promptly, not hang");
    // Another tenant was never over its own limit.
    let v = tcp_request(
        &mut writer,
        &mut reader,
        r#"{"id":3,"op":"check","src":"rnd 1.5","tenant":"other"}"#,
    );
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let v = tcp_request(&mut writer, &mut reader, r#"{"id":4,"op":"metrics"}"#);
    assert_eq!(
        v.get("admission").and_then(|a| a.get("rejected")).and_then(Json::as_f64),
        Some(1.0)
    );
    let v = tcp_request(&mut writer, &mut reader, r#"{"id":5,"op":"shutdown"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let status = wait_timeout(&mut child, Duration::from_secs(10));
    assert!(status.success());
}

#[test]
fn cache_file_persists_replies_across_server_restarts() {
    let dir = std::env::temp_dir().join(format!("numfuzz-serve-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_file = dir.join("replies.snapshot");
    let cache_arg = cache_file.to_str().unwrap();
    let check = r#"{"id":1,"op":"check","src":"s = mul (41, 3); rnd s"}"#;

    // First life: analyze once, shut down cleanly (which persists).
    let mut server = StdioServer::spawn(&["--cache-file", cache_arg]);
    let first = server.request(check);
    assert_eq!(parse(&first).get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
    assert!(cache_file.exists(), "shutdown writes the snapshot");

    // Second life: the same request is answered byte-identically from
    // the restored snapshot, with zero analysis-cache traffic.
    let mut server = StdioServer::spawn(&["--cache-file", cache_arg]);
    let replayed = server.request(check);
    assert_eq!(replayed, first, "restored reply is byte-identical");
    let stats = parse(&server.request(r#"{"id":2,"op":"stats"}"#));
    let persistent = stats.get("persistent").expect("--cache-file adds a persistent section");
    assert!(persistent.get("restored").and_then(Json::as_f64).unwrap() >= 1.0);
    assert_eq!(persistent.get("hits").and_then(Json::as_f64), Some(1.0));
    let cache = stats.get("cache").unwrap();
    assert_eq!(
        (cache.get("hits").and_then(Json::as_f64), cache.get("misses").and_then(Json::as_f64)),
        (Some(0.0), Some(0.0)),
        "a warm persistent hit does not re-analyze: {stats}"
    );
    server.shutdown();

    // Third life: a corrupted snapshot must not kill the server.
    std::fs::write(&cache_file, b"NFZSNAP1 this is not a snapshot").unwrap();
    let mut server = StdioServer::spawn(&["--cache-file", cache_arg]);
    let recomputed = server.request(check);
    assert_eq!(recomputed, first, "recomputed reply still matches");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

fn wait_timeout(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() > deadline {
            child.kill().ok();
            panic!("server did not exit within {timeout:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Extracts the `>` request / `<` response pairs from every ```jsonl
/// fence in `docs/serve.md`.
fn doc_examples(md: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    let mut lines = md.lines();
    while let Some(line) = lines.next() {
        if line.trim() != "```jsonl" {
            continue;
        }
        let mut request: Option<String> = None;
        for inner in lines.by_ref() {
            let inner = inner.trim_end();
            if inner.trim() == "```" {
                break;
            }
            if let Some(req) = inner.strip_prefix("> ") {
                assert!(request.is_none(), "request without a response in docs: {req}");
                request = Some(req.to_string());
            } else if let Some(resp) = inner.strip_prefix("< ") {
                let req = request.take().expect("response without a request in docs");
                pairs.push((req, resp.to_string()));
            }
        }
        assert!(request.is_none(), "trailing unanswered request in docs");
    }
    pairs
}

#[test]
fn docs_serve_examples_replay_verbatim() {
    let md = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/serve.md"))
        .expect("docs/serve.md exists");
    let pairs = doc_examples(&md);
    assert!(
        pairs.len() >= 8,
        "expected at least 8 request/response examples in docs/serve.md, found {}",
        pairs.len()
    );
    // All examples run through one server, in document order, so the doc
    // reads as a single honest session transcript (stats counters
    // included). `--jobs 1` pins the machine-dependent `jobs` field.
    let mut server = StdioServer::spawn(&["--jobs", "1"]);
    for (request, expected) in pairs {
        let response = server.request(&request);
        assert_eq!(
            response, expected,
            "docs/serve.md example drifted from the live server\nrequest: {request}"
        );
    }
    server.shutdown();
}
