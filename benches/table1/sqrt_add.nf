function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
function divfp (xy: (num, num)) : M[eps]num { s = div xy; rnd s }
function sqrtfp (x: ![1/2]num) : M[eps]num { s = sqrt x; rnd s }
function sqrt_add (x: num) : M[9/2*eps]num {
    let a = addfp (| x, 1 |);
    let sa = sqrtfp [a]{1/2};
    let sx = sqrtfp [x]{1/2};
    let d = addfp (| sa, sx |);
    divfp (1, d)
}
sqrt_add 42
