//! The parallel sharded analysis engine's contract: output identical to
//! serial for every job count and every run, shard arenas isolated from
//! the session arena, and `numfuzz batch` printing deterministically
//! ordered diagnostics.

use numfuzz::benchsuite::{table3, table5};
use numfuzz::prelude::*;
use std::process::Command;

/// A mixed corpus sharing ONE session arena (the contended case the
/// sharding exists for): Table 3 kernels, Table 5 surface programs, a
/// few ill-typed programs so the diagnostics path is exercised too.
fn shared_corpus(analyzer: &Analyzer) -> Vec<Program> {
    let mut corpus: Vec<Program> = Vec::new();
    for b in table3() {
        corpus.push(analyzer.program_from_kernel(&b.kernel).expect("translatable"));
    }
    for b in table5() {
        corpus.push(analyzer.parse_named(b.name, b.source).expect("parses"));
    }
    for (name, bad) in [
        ("bad_shape.nf", "2 3"),
        ("bad_grade.nf", "function f (xy: (num,num)) : M[0]num { s = mul xy; rnd s }\nf (1,2)"),
        ("bad_oparg.nf", "s = add (1, 2); rnd s"),
    ] {
        corpus.push(analyzer.parse_named(name, bad).expect("parses"));
    }
    corpus
}

/// Renders a batch result into the strings users actually see, so
/// "identical" means identical diagnostics and identical types.
fn render(results: &[Result<Typed, Diagnostic>]) -> Vec<String> {
    results
        .iter()
        .map(|r| match r {
            Ok(t) => t.ty().to_string(),
            Err(d) => d.render(),
        })
        .collect()
}

#[test]
fn parallel_check_all_is_identical_to_serial_for_all_job_counts() {
    let analyzer = Analyzer::new();
    let corpus = shared_corpus(&analyzer);
    let serial = render(&analyzer.check_all(&corpus));
    assert!(serial.iter().any(|s| s.starts_with("error[")), "corpus has failing programs");
    for jobs in [0, 2, 3, 8] {
        for run in 0..3 {
            let parallel = render(&analyzer.check_batch_parallel(&corpus, jobs));
            assert_eq!(parallel, serial, "jobs={jobs} run={run}");
        }
    }
}

#[test]
fn jobs_knob_on_the_builder_drives_check_all() {
    let analyzer = Analyzer::builder().jobs(3).build();
    assert_eq!(analyzer.jobs(), 3);
    let corpus = shared_corpus(&analyzer);
    let configured = render(&analyzer.check_all(&corpus));
    let serial = render(&analyzer.check_batch_parallel(&corpus, 1));
    assert_eq!(configured, serial);
}

#[test]
fn shard_reports_account_for_every_program() {
    let analyzer = Analyzer::new();
    let corpus = shared_corpus(&analyzer);
    let (results, shards) = analyzer.check_batch_sharded(&corpus, 4);
    assert_eq!(results.len(), corpus.len());
    assert_eq!(shards.len(), 4);
    assert_eq!(shards.iter().map(|s| s.programs).sum::<usize>(), corpus.len());
    for (i, s) in shards.iter().enumerate() {
        assert_eq!(s.shard, i);
    }
}

#[test]
fn shard_arenas_do_not_leak_ids_into_the_session_arena() {
    let analyzer = Analyzer::new();
    let corpus = shared_corpus(&analyzer);
    // Warm the session arena (serial pass interns everything checking
    // needs), then record its size.
    let _ = analyzer.check_batch_parallel(&corpus, 1);
    let before = analyzer.arena().len();
    // Parallel passes check against per-worker deep clones: whatever
    // they intern lands in the clones, never in the session arena.
    for jobs in [2, 5] {
        let _ = analyzer.check_batch_parallel(&corpus, jobs);
        assert_eq!(analyzer.arena().len(), before, "jobs={jobs} leaked ids into the session");
    }
    // The session stays fully usable afterwards: same arena, new parses
    // intern into it.
    let p = analyzer.parse("rnd 1").expect("parses");
    assert!(p.arena().same_arena(analyzer.arena()));
    assert!(analyzer.check(&p).is_ok());
}

#[test]
fn deep_cloned_arena_is_id_compatible_but_independent() {
    use numfuzz::core::{infer_in, CoreArena};
    let analyzer = Analyzer::new();
    let program = analyzer
        .parse("function fp (xy: <num,num>) : M[eps]num { s = add xy; rnd s }\nfp (|1,2|)")
        .expect("parses");
    let clone: CoreArena = program.arena().deep_clone();
    assert!(!clone.same_arena(program.arena()));
    assert_ne!(clone.token(), program.arena().token());
    // Checking against the clone resolves the same annotations to the
    // same type, and grows only the clone.
    let before = program.arena().len();
    let sig = analyzer.signature().clone();
    let direct = numfuzz::core::infer(program.store(), &sig, program.root(), program.free())
        .expect("checks");
    let via_clone =
        infer_in(program.store(), &clone, &sig, program.root(), program.free()).expect("checks");
    assert_eq!(direct.root.ty, via_clone.root.ty);
    assert_eq!(program.arena().len(), before);
}

/// Runs the built `numfuzz` binary (Cargo exposes the path to
/// integration tests).
fn numfuzz_bin(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_numfuzz"))
        .args(args)
        .output()
        .expect("numfuzz binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn numfuzz_batch_orders_diagnostics_deterministically() {
    let dir = std::env::temp_dir().join(format!("numfuzz-batch-test-{}", std::process::id()));
    let sub = dir.join("nested");
    std::fs::create_dir_all(&sub).expect("mkdir");
    std::fs::write(dir.join("a_ok.nf"), "rnd 1.5\n").expect("write");
    std::fs::write(dir.join("b_bad.nf"), "x\n").expect("write");
    std::fs::write(dir.join("c_bad.nf"), "2 3\n").expect("write");
    std::fs::write(sub.join("d_ok.nf"), "ret ()\n").expect("write");

    let dir_arg = dir.to_str().expect("utf-8 temp path");
    let (first_out, first_err, code) = numfuzz_bin(&["batch", dir_arg, "--jobs", "4"]);
    assert_eq!(code, Some(1), "failing programs exit 1; stderr: {first_err}");
    assert!(first_out.contains("4 programs: 2 ok, 2 failed"), "{first_out}");

    // Diagnostics appear in sorted-path order, interleaved with the ok
    // lines, not grouped by completion time.
    let a = first_out.find("a_ok.nf").expect("a present");
    let b = first_out.find("b_bad.nf").expect("b present");
    let c = first_out.find("c_bad.nf").expect("c present");
    let d = first_out.find("d_ok.nf").expect("d present");
    assert!(a < b && b < c && c < d, "sorted-path order:\n{first_out}");
    assert!(first_out.contains("error[E0002]"), "{first_out}");
    assert!(first_out.contains("error[E0102]"), "{first_out}");

    // Byte-identical across job counts and repeated runs.
    for jobs in ["1", "2", "8"] {
        let (out, _, code) = numfuzz_bin(&["batch", dir_arg, "--jobs", jobs]);
        assert_eq!(code, Some(1));
        assert_eq!(out, first_out, "jobs={jobs}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn numfuzz_batch_usage_errors_exit_2() {
    let (_, stderr, code) = numfuzz_bin(&["batch", "/nonexistent-numfuzz-dir"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (_, stderr, code) = numfuzz_bin(&["batch"]);
    assert_eq!(code, Some(2), "{stderr}");
}
