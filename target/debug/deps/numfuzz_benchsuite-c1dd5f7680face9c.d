/root/repo/target/debug/deps/numfuzz_benchsuite-c1dd5f7680face9c.d: crates/benchsuite/src/lib.rs crates/benchsuite/src/conditionals.rs crates/benchsuite/src/generators.rs crates/benchsuite/src/small.rs

/root/repo/target/debug/deps/numfuzz_benchsuite-c1dd5f7680face9c: crates/benchsuite/src/lib.rs crates/benchsuite/src/conditionals.rs crates/benchsuite/src/generators.rs crates/benchsuite/src/small.rs

crates/benchsuite/src/lib.rs:
crates/benchsuite/src/conditionals.rs:
crates/benchsuite/src/generators.rs:
crates/benchsuite/src/small.rs:
