/root/repo/target/release/deps/numfuzz-84ca83ced2a4abe5.d: src/bin/numfuzz.rs

/root/repo/target/release/deps/numfuzz-84ca83ced2a4abe5: src/bin/numfuzz.rs

src/bin/numfuzz.rs:
