/root/repo/target/debug/deps/validate-89015ba9654a2595.d: crates/bench/src/bin/validate.rs

/root/repo/target/debug/deps/validate-89015ba9654a2595: crates/bench/src/bin/validate.rs

crates/bench/src/bin/validate.rs:
