// Backward mode rejects weakening on data: the second parameter of
// `drop` is never consumed, so it has no backward error bound.
function drop (x: num) (y: num) : num { x }
drop 1 2
