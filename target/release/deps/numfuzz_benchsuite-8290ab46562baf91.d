/root/repo/target/release/deps/numfuzz_benchsuite-8290ab46562baf91.d: crates/benchsuite/src/lib.rs crates/benchsuite/src/conditionals.rs crates/benchsuite/src/generators.rs crates/benchsuite/src/small.rs

/root/repo/target/release/deps/libnumfuzz_benchsuite-8290ab46562baf91.rlib: crates/benchsuite/src/lib.rs crates/benchsuite/src/conditionals.rs crates/benchsuite/src/generators.rs crates/benchsuite/src/small.rs

/root/repo/target/release/deps/libnumfuzz_benchsuite-8290ab46562baf91.rmeta: crates/benchsuite/src/lib.rs crates/benchsuite/src/conditionals.rs crates/benchsuite/src/generators.rs crates/benchsuite/src/small.rs

crates/benchsuite/src/lib.rs:
crates/benchsuite/src/conditionals.rs:
crates/benchsuite/src/generators.rs:
crates/benchsuite/src/small.rs:
