//! The conditional benchmarks of the paper's Table 5, as Λnum surface
//! programs (Section 5.1 style: boolean guards via infinitely-sensitive
//! tests, both executions assumed to take the same branch).

use numfuzz_exact::Rational;

/// One Table 5 row: a surface program, the function to report, and the
/// expected grade coefficient (×`eps`).
#[derive(Clone, Debug)]
pub struct CondBench {
    /// Row name.
    pub name: &'static str,
    /// Whether it is an FPBench kernel (starred in the paper).
    pub fpbench: bool,
    /// Surface source.
    pub source: &'static str,
    /// Name of the function whose type carries the bound.
    pub function: &'static str,
    /// Expected grade coefficient (×eps).
    pub expected_eps_coeff: Rational,
    /// A closed sample expression exercising the program.
    pub sample: &'static str,
}

/// All Table 5 rows.
pub fn table5() -> Vec<CondBench> {
    vec![
        CondBench {
            name: "PythagoreanSum",
            fpbench: false,
            // Dahlquist & Björck p.119: p ⊕ q = max·sqrt(1 + (min/max)²),
            // avoiding overflow in the squares.
            source: r#"
function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
function divfp (xy: (num, num)) : M[eps]num { s = div xy; rnd s }
function sqrtfp (x: ![1/2]num) : M[eps]num { s = sqrt x; rnd s }
function scaled (p: ![2.0]num) (q: num) : M[4*eps]num {
    let [p1] = p;
    let r = divfp (q, p1);
    let s = mulfp (r, r);
    let t = addfp (|1, s|);
    let w = sqrtfp [t]{1/2};
    mulfp (p1, w)
}
function PythagoreanSum (x: ![inf]num) (y: ![inf]num) : M[4*eps]num {
    let [x1] = x;
    let [y1] = y;
    c = is_gt (x1, y1);
    if c then { w = scaled; u = w [x1]{2.0}; u y1 }
    else { w = scaled; u = w [y1]{2.0}; u x1 }
}
"#,
            function: "PythagoreanSum",
            expected_eps_coeff: Rational::from_int(4),
            sample: "PythagoreanSum [3]{inf} [4]{inf}",
        },
        CondBench {
            name: "HammarlingDistance",
            fpbench: false,
            // One step of Hammarling's scaled sum-of-squares update (the
            // LAPACK nrm2 recurrence): ssq' = 1 + ssq·(scale/|x|)², with
            // the guard selecting the larger scale.
            source: r#"
function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
function divfp (xy: (num, num)) : M[eps]num { s = div xy; rnd s }
function update (scale: ![2.0]num) (ssq: num) (x: ![2.0]num) : M[5*eps]num {
    let [s1] = scale;
    let [x1] = x;
    let r = divfp (s1, x1);
    let q = mulfp (r, r);
    let m = mulfp (ssq, q);
    addfp (|1, m|)
}
function HammarlingDistance (scale: ![inf]num) (ssq: ![inf]num) (x: ![inf]num) : M[5*eps]num {
    let [s1] = scale;
    let [q1] = ssq;
    let [x1] = x;
    c = is_gt (x1, s1);
    if c then { u = update [s1]{2.0}; v = u q1; v [x1]{2.0} }
    else { u = update [x1]{2.0}; v = u q1; v [s1]{2.0} }
}
"#,
            function: "HammarlingDistance",
            expected_eps_coeff: Rational::from_int(5),
            sample: "HammarlingDistance [3]{inf} [1.5]{inf} [4]{inf}",
        },
        CondBench {
            name: "squareRoot3",
            fpbench: true,
            // FPBench: x < 1e-5 ? 1 + 0.5·x : sqrt(1 + x).
            source: r#"
function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
function sqrtfp (x: ![1/2]num) : M[eps]num { s = sqrt x; rnd s }
function squareRoot3 (x: ![inf]num) : M[2*eps]num {
    let [x1] = x;
    c = is_gt (0.00001, x1);
    if c then {
        let h = mulfp (0.5, x1);
        addfp (|1, h|)
    } else {
        let t = addfp (|1, x1|);
        sqrtfp [t]{1/2}
    }
}
"#,
            function: "squareRoot3",
            expected_eps_coeff: Rational::from_int(2),
            sample: "squareRoot3 [0.375]{inf}",
        },
        CondBench {
            name: "squareRoot3Invalid",
            fpbench: true,
            // The FPBench variant with the (numerically invalid) guard
            // x < 1e4: identical shape, identical bound.
            source: r#"
function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
function addfp (xy: <num, num>) : M[eps]num { s = add xy; rnd s }
function sqrtfp (x: ![1/2]num) : M[eps]num { s = sqrt x; rnd s }
function squareRoot3Invalid (x: ![inf]num) : M[2*eps]num {
    let [x1] = x;
    c = is_gt (10000, x1);
    if c then {
        let h = mulfp (0.5, x1);
        addfp (|1, h|)
    } else {
        let t = addfp (|1, x1|);
        sqrtfp [t]{1/2}
    }
}
"#,
            function: "squareRoot3Invalid",
            expected_eps_coeff: Rational::from_int(2),
            sample: "squareRoot3Invalid [123456]{inf}",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfuzz_core::{compile, infer, Signature};

    #[test]
    fn all_table5_grades_match_the_paper() {
        let sig = Signature::relative_precision();
        for b in table5() {
            let lowered = compile(b.source, &sig).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let res = infer(&lowered.store, &sig, lowered.root, &[])
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let rep = res.fn_report(b.function).unwrap();
            let grade = numfuzz_core::Grade::symbol("eps").scale(&b.expected_eps_coeff);
            let suffix = format!("M[{grade}]num");
            assert!(
                rep.inferred.to_string().ends_with(&suffix),
                "{}: inferred {} (wanted …{suffix})",
                b.name,
                rep.inferred
            );
        }
    }

    #[test]
    fn table5_bounds_render_like_the_paper() {
        let u = Rational::pow2(-52);
        let expect: &[(&str, &str)] = &[
            ("PythagoreanSum", "8.88e-16"),
            ("HammarlingDistance", "1.11e-15"),
            ("squareRoot3", "4.44e-16"),
            ("squareRoot3Invalid", "4.44e-16"),
        ];
        let rows = table5();
        for (name, s) in expect {
            let b = rows.iter().find(|b| &b.name == name).unwrap();
            assert_eq!(b.expected_eps_coeff.mul(&u).to_sci_string(3), *s, "{name}");
        }
    }

    #[test]
    fn samples_parse_against_their_programs() {
        // Actual evaluation + soundness checks live in the root
        // integration tests (tests/soundness.rs), which may depend on
        // numfuzz-interp; here we only check the samples compile.
        let sig = Signature::relative_precision();
        for b in table5() {
            let src = format!(
                "{}
{}",
                b.source, b.sample
            );
            let lowered = compile(&src, &sig).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let res = infer(&lowered.store, &sig, lowered.root, &[])
                .unwrap_or_else(|e| panic!("{} sample: {e}", b.name));
            assert!(res.root.ty.to_string().starts_with("M["), "{}", b.name);
        }
    }
}
