/root/repo/target/debug/deps/type_system_props-5eff0b184a79e1a1.d: crates/core/tests/type_system_props.rs Cargo.toml

/root/repo/target/debug/deps/libtype_system_props-5eff0b184a79e1a1.rmeta: crates/core/tests/type_system_props.rs Cargo.toml

crates/core/tests/type_system_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
