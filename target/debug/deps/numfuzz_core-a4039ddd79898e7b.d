/root/repo/target/debug/deps/numfuzz_core-a4039ddd79898e7b.d: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/env.rs crates/core/src/grade.rs crates/core/src/lexer.rs crates/core/src/lower.rs crates/core/src/parser.rs crates/core/src/pretty.rs crates/core/src/sig.rs crates/core/src/term.rs crates/core/src/ty.rs crates/core/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libnumfuzz_core-a4039ddd79898e7b.rmeta: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/env.rs crates/core/src/grade.rs crates/core/src/lexer.rs crates/core/src/lower.rs crates/core/src/parser.rs crates/core/src/pretty.rs crates/core/src/sig.rs crates/core/src/term.rs crates/core/src/ty.rs crates/core/src/validate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/check.rs:
crates/core/src/env.rs:
crates/core/src/grade.rs:
crates/core/src/lexer.rs:
crates/core/src/lower.rs:
crates/core/src/parser.rs:
crates/core/src/pretty.rs:
crates/core/src/sig.rs:
crates/core/src/term.rs:
crates/core/src/ty.rs:
crates/core/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
