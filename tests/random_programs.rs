//! Property-based error soundness, rebuilt on the full-surface fuzzer
//! (the workspace's strongest end-to-end check):
//!
//! * `full_surface_soundness` drives the `numfuzz-fuzz` generator — the
//!   same one behind `numfuzz fuzz` — through the complete differential
//!   oracle on random seeds, so conditionals, pairs, sums,
//!   `let`-functions, boxing, both instantiations, all formats and
//!   rounding modes are under proptest, not just straight-line kernels;
//! * the kernel-based properties below keep exercising the IR
//!   translation path: Cor. 4.20 on random straight-line programs, grade
//!   composition, production-vs-reference checker agreement, and
//!   machine-vs-small-step agreement. The metric-free properties use
//!   *signed* constants including zero (the RP metric itself is only
//!   defined on one-signed data, so the Cor. 4.20 property keeps the
//!   strictly positive corpus the paper's leading instantiation
//!   interprets).

use numfuzz::analyzers::{Expr, Kernel};
use numfuzz::fuzz::generate_case;
use numfuzz::fuzzing::AnalyzerOracle;
use numfuzz::prelude::*;
use proptest::prelude::*;

/// Random positive "nice" rationals in roughly [1/64, 64] — the RP
/// instantiation interprets `num` as the strictly positive reals, so the
/// soundness property (which evaluates the RP metric) stays positive.
fn pos_const() -> impl Strategy<Value = Rational> {
    (1i64..64, 1i64..64).prop_map(|(n, d)| Rational::ratio(n, d))
}

/// Signed constants *including zero and negatives* for the metric-free
/// properties (checker agreement, machine-vs-small-step): sign handling
/// in `softfloat::arith` is only exercised when signs actually vary.
fn signed_const() -> impl Strategy<Value = Rational> {
    (-64i64..64, 1i64..64).prop_map(|(n, d)| Rational::ratio(n, d))
}

/// Random expressions over `nvars` inputs with bounded size.
fn expr_with(
    consts: proptest::strategy::BoxedStrategy<Rational>,
    nvars: usize,
) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![consts.prop_map(Expr::Const), (0..nvars).prop_map(Expr::Var)];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::mul(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::div(a, b)),
            inner.clone().prop_map(Expr::sqrt),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::fma(a, b, c)),
        ]
    })
}

fn expr(nvars: usize) -> impl Strategy<Value = Expr> {
    expr_with(pos_const().boxed(), nvars)
}

/// Random input values in [1/2, 2] — positive and overflow-safe for the
/// sizes generated here.
fn input_vals(nvars: usize) -> impl Strategy<Value = Vec<Rational>> {
    proptest::collection::vec((8i64..32, 8i64..16).prop_map(|(n, d)| Rational::ratio(n, d)), nvars)
}

fn unit_range() -> RatInterval {
    RatInterval::new(Rational::ratio(1, 2), Rational::from_int(2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full surface under proptest: random seeds drive the typed
    /// program generator and the complete differential oracle
    /// (check → validate → reference-ideal cross-check → round-trip).
    #[test]
    fn full_surface_soundness(seed in 0u64..u64::MAX / 2, index in 0usize..8) {
        use numfuzz::fuzz::Oracle;
        let case = generate_case(seed, index);
        let src = case.program.render();
        let result = AnalyzerOracle.run_case(&case.plan, &src, case.expected_ideal.as_ref());
        prop_assert!(
            result.is_ok(),
            "case (seed {seed}, index {index}, {}): {:?}\n---\n{src}",
            case.plan.describe(),
            result.err()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cor. 4.20 on random programs, two formats, two modes.
    #[test]
    fn error_soundness_on_random_programs(e in expr(3), vals in input_vals(3)) {
        let kernel = Kernel::new(
            "random",
            vec![("a", unit_range()), ("b", unit_range()), ("c", unit_range())],
            e,
        );
        let program = Program::from_kernel(&kernel).expect("always translatable (no sub)");
        // Every random program type-checks with a finite grade.
        let analyzer = Analyzer::new();
        let typed = analyzer.check(&program).expect("checks");
        prop_assert!(matches!(typed.grade(), Some(g) if !g.is_infinite()));

        let inputs = Inputs::positional(vals.iter().map(|q| Value::num(q.clone())));
        for format in [Format::BINARY64, Format::new(9, 60)] {
            for mode in [RoundingMode::TowardPositive, RoundingMode::NearestEven] {
                let session = Analyzer::builder().format(format).mode(mode).build();
                let rep = session.validate(&program, &inputs).expect("harness");
                prop_assert!(rep.holds(), "violation at {format} {mode}: {rep:?}");
            }
        }
    }

    /// The checker's minimality invariant: inferred grades only shrink
    /// when a program is embedded in a context that uses it once (bind
    /// composition adds grades, eq. of (MuE)).
    #[test]
    fn bind_composition_adds_grades(e1 in expr(1), e2 in expr(1)) {
        let analyzer = Analyzer::new();
        let mk = |e: Expr| Kernel::new("k", vec![("a", unit_range())], e);
        let g1 = grade_of(&analyzer, &mk(e1.clone()));
        let g2 = grade_of(&analyzer, &mk(e2.clone()));
        // Compose: e1 + e2 (one more rounding): grade(e1)+grade(e2)+eps.
        let composed = grade_of(&analyzer, &mk(Expr::add(e1, e2)));
        let expected = g1.add(&g2).add(&Grade::symbol("eps"));
        prop_assert_eq!(composed, expected);
    }
}

fn grade_of(analyzer: &Analyzer, k: &Kernel) -> Grade {
    let program = Program::from_kernel(k).expect("translatable");
    let typed = analyzer.check(&program).expect("checks");
    typed.grade().unwrap_or_else(|| panic!("unexpected {}", typed.ty())).clone()
}

/// Random expressions without `sqrt` (kept rational so the substitution-
/// based reference semantics applies), over *signed* constants.
fn expr_no_sqrt(nvars: usize) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![signed_const().prop_map(Expr::Const), (0..nvars).prop_map(Expr::Var)];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::mul(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::div(a, b)),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::fma(a, b, c)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential oracle: the iterative production checker (behind
    /// `Analyzer::check`) and the recursive reference checker agree
    /// exactly (environment and type) on random programs — with signed
    /// and zero constants (typing is metric-free, so the whole constant
    /// range is fair game here).
    #[test]
    fn production_checker_agrees_with_reference(e in expr_with(signed_const().boxed(), 3)) {
        let kernel = Kernel::new(
            "random",
            vec![("a", unit_range()), ("b", unit_range()), ("c", unit_range())],
            e,
        );
        let program = Program::from_kernel(&kernel).expect("translatable");
        let analyzer = Analyzer::new();
        let fast = analyzer.check(&program).expect("fast");
        let slow = numfuzz::core::validate::infer_reference(
            program.store(),
            analyzer.signature(),
            program.root(),
            program.free(),
        )
        .expect("slow");
        prop_assert_eq!(fast.ty(), &slow.ty);
        prop_assert!(fast.root().env.le(&slow.env) && slow.env.le(&fast.root().env));
    }

    /// Cross-semantics agreement: the abstract machine (behind
    /// `Analyzer::run`) and the substitution-based small-step reference
    /// compute the same result on random (sqrt-free) programs, under both
    /// the ideal and the FP semantics. Signed and zero constants are in
    /// range; programs that divide by zero fault identically in both
    /// semantics and are skipped.
    #[test]
    fn machine_agrees_with_smallstep_on_random_programs(e in expr_no_sqrt(2), vals in input_vals(2)) {
        use numfuzz::core::Node;
        use numfuzz::interp::smallstep::{normalize, StepSemantics};

        let kernel = Kernel::new(
            "random",
            vec![("a", unit_range()), ("b", unit_range())],
            e,
        );
        let program = Program::from_kernel(&kernel).expect("translatable");
        let inputs = Inputs::positional(vals.iter().map(|q| Value::num(q.clone())));

        use numfuzz::interp::rounding::ModeRounding;
        let small_format = Format::new(11, 50);
        let session = Analyzer::new();
        // One machine run covers both arms: identity rounding for the
        // ideal side, plain (non-faulting) mode rounding for the FP
        // side — exactly matching the small-step semantics below.
        let mut fp = ModeRounding { format: small_format, mode: RoundingMode::TowardNegative };
        let exec = match session.run_with_rounding(&program, &inputs, &mut fp) {
            Ok(exec) => exec,
            Err(d) if d.code == ErrorCode::EvalFailed => {
                // Signed constants can divide by zero; both semantics
                // fault on such programs, so there is nothing to compare.
                prop_assume!(false);
                unreachable!()
            }
            Err(d) => panic!("harness failure: {}", d.render()),
        };
        for sem in [
            StepSemantics::Ideal,
            StepSemantics::Fp(small_format, RoundingMode::TowardNegative),
        ] {
            let machine = match sem {
                StepSemantics::Ideal => &exec.ideal,
                _ => &exec.fp,
            };
            let machine_val = machine
                .as_ret()
                .and_then(Value::as_num)
                .expect("ret num")
                .as_point()
                .expect("exact")
                .clone();

            // Close the term by substituting constants for the free
            // inputs (the reference semantics has no environments).
            let (mut store, mut closed, free) = program.clone().into_parts();
            for ((v, _), q) in free.iter().zip(&vals) {
                let k = store.num(q.clone());
                closed = numfuzz::interp::smallstep::subst(&mut store, closed, *v, k);
            }
            let nf = normalize(&mut store, closed, sem, 10_000_000);
            let ss_val = match store.node(nf) {
                Node::Ret(v) => match store.node(*v) {
                    Node::Const(k) => store.constant(*k).clone(),
                    other => panic!("unexpected payload {other:?}"),
                },
                other => panic!("unexpected normal form {other:?}"),
            };
            prop_assert_eq!(&machine_val, &ss_val, "semantics {:?} diverged", sem);
        }
    }
}
