function f (x: num) : num { x }
f ()
