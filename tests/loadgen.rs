//! End-to-end tests of `numfuzz loadgen`: the self-spawned server run,
//! the deterministic request mix, the hard zero-drop/zero-flip
//! invariants, and the `--gate` regression check in both directions.

use numfuzz::serve::Json;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_numfuzz");

fn run_loadgen(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(BIN).arg("loadgen").args(args).output().expect("run numfuzz loadgen");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn loadgen_completes_all_requests_with_zero_drops_and_writes_the_report() {
    let dir = std::env::temp_dir().join(format!("numfuzz-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("report.json");
    let out_arg = out.to_str().unwrap();

    let args =
        ["--connections", "3", "--requests", "12", "--seed", "7", "--jobs", "2", "--out", out_arg];
    let (stdout, stderr, code) = run_loadgen(&args);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    let report = Json::parse(stdout.trim()).expect("stdout is the JSON report");
    assert_eq!(report.get("schema").and_then(Json::as_str), Some("numfuzz-loadgen-v1"));
    assert_eq!(report.get("total_requests").and_then(Json::as_f64), Some(36.0));
    assert_eq!(report.get("dropped_connections").and_then(Json::as_f64), Some(0.0));
    assert_eq!(report.get("unexpected_errors").and_then(Json::as_f64), Some(0.0));
    assert_eq!(std::fs::read_to_string(&out).unwrap(), stdout, "--out mirrors stdout");

    // The op mix is a pure function of (seed, connections, requests): a
    // second run distributes work identically even though latencies
    // differ.
    let (stdout2, _, code) = run_loadgen(&args);
    assert_eq!(code, 0);
    let report2 = Json::parse(stdout2.trim()).unwrap();
    for key in ["ops", "total_requests", "expected_program_errors"] {
        assert_eq!(
            report.get(key).map(Json::to_string),
            report2.get(key).map(Json::to_string),
            "`{key}` must be identical across runs of the same seed"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loadgen_gate_passes_against_itself_and_fails_an_impossible_baseline() {
    let dir = std::env::temp_dir().join(format!("numfuzz-loadgen-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.json");
    let fresh = dir.join("fresh.json");

    let (stdout, stderr, code) = run_loadgen(&[
        "--connections",
        "2",
        "--requests",
        "8",
        "--out",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");

    // Gating a fresh run against its own machine's baseline passes at
    // any sane tolerance.
    let (_, stderr, code) = run_loadgen(&[
        "--connections",
        "2",
        "--requests",
        "8",
        "--out",
        fresh.to_str().unwrap(),
        "--gate",
        baseline.to_str().unwrap(),
        "--tolerance",
        "99",
    ]);
    assert_eq!(code, 0, "stderr:\n{stderr}");
    assert!(stderr.contains("gate: fresh"), "the gate comparison is reported: {stderr}");

    // A baseline no machine can reach must fail the gate with exit 1.
    std::fs::write(&baseline, "{\"requests_per_sec\": 999999999999.0}\n").unwrap();
    let (_, stderr, code) = run_loadgen(&[
        "--connections",
        "2",
        "--requests",
        "8",
        "--out",
        fresh.to_str().unwrap(),
        "--gate",
        baseline.to_str().unwrap(),
        "--tolerance",
        "10",
    ]);
    assert_eq!(code, 1, "a throughput regression is a gate failure: {stderr}");
    assert!(stderr.contains("serve throughput regression"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
