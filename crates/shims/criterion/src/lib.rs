//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this crate vendors the subset of the criterion 0.5 API the
//! workspace's benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`criterion_group!`], [`criterion_main!`] —
//! with a simple calibrated wall-clock timer instead of criterion's
//! statistical machinery. Each benchmark is warmed up, run for roughly
//! 200 ms, and reported as a median-of-batches nanoseconds-per-iteration
//! line on stdout.
//!
//! If the real dependency ever becomes available, delete
//! `crates/shims/criterion`; no bench needs to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted, ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
        self
    }

    /// Starts a named group; the shim's groups only prefix benchmark ids.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, prefix: name.to_string() }
    }
}

/// A group of related benchmarks (ids printed as `group/name`).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sampling is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `f` as a named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.prefix, id));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Collects timing for one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
}

const TARGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Times `routine` in calibrated batches for ~200 ms.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate a batch size taking ≥ ~2 ms, then sample batches.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(2) || batch >= 1 << 20 {
                self.samples.push(dt.as_secs_f64() / batch as f64);
                break;
            }
            batch *= 4;
        }
        let deadline = Instant::now() + TARGET;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + TARGET;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed().as_secs_f64());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = self.samples[self.samples.len() / 2];
        println!("{id:<40} {:>12}/iter  ({} samples)", fmt_secs(median), self.samples.len());
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a group of benchmark functions (criterion-compatible form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
