//! Typing environments: finite maps from variables to sensitivity grades.
//!
//! The checker manipulates environments constantly (every rule of Fig. 10
//! sums, scales, or joins them), and Table 4 programs have hundreds of
//! thousands of live variables, so [`Env`] merges use the classic
//! smaller-into-larger trick to keep a whole-program check quasi-linear.
//! Absent variables implicitly carry grade `0`; zero entries are not
//! stored.

use crate::grade::Grade;
use crate::term::VarId;
use std::collections::HashMap;

/// A sensitivity environment `Γ` (variable types are tracked separately by
/// the checker; two environments over the same program always agree on
/// types because binders are alpha-renamed).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Env {
    entries: HashMap<VarId, Grade>,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Self {
        Env::default()
    }

    /// `{ x :_g }`.
    pub fn singleton(x: VarId, g: Grade) -> Self {
        let mut entries = HashMap::new();
        if !g.is_zero() {
            entries.insert(x, g);
        }
        Env { entries }
    }

    /// The sensitivity of `x` (zero when absent).
    pub fn get(&self, x: VarId) -> Grade {
        self.entries.get(&x).cloned().unwrap_or_else(Grade::zero)
    }

    /// Removes `x`, returning its sensitivity (zero when absent).
    pub fn remove(&mut self, x: VarId) -> Grade {
        self.entries.remove(&x).unwrap_or_else(Grade::zero)
    }

    /// Number of variables with nonzero sensitivity.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no variable has nonzero sensitivity.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(variable, grade)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&VarId, &Grade)> {
        self.entries.iter()
    }

    /// Environment sum `Γ + Δ` (pointwise grade addition), consuming both
    /// and merging the smaller into the larger.
    pub fn add(mut self, mut other: Env) -> Env {
        if self.entries.len() < other.entries.len() {
            std::mem::swap(&mut self, &mut other);
        }
        for (x, g) in other.entries {
            match self.entries.entry(x) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let sum = e.get().add(&g);
                    *e.get_mut() = sum;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(g);
                }
            }
        }
        self
    }

    /// Environment scaling `s * Γ`. Returns `None` when a product of two
    /// genuinely symbolic grades would be required.
    pub fn scale(self, s: &Grade) -> Option<Env> {
        if let Some(c) = s.as_constant() {
            if c == &numfuzz_exact::Rational::one() {
                return Some(self);
            }
        }
        if s.is_zero() {
            return Some(Env::empty()); // 0 · ∞ = 0: everything drops out
        }
        let mut entries = HashMap::with_capacity(self.entries.len());
        for (x, g) in self.entries {
            let scaled = s.checked_mul(&g)?;
            if !scaled.is_zero() {
                entries.insert(x, scaled);
            }
        }
        Some(Env { entries })
    }

    /// Pointwise least upper bound `max(Γ, Δ)` (absent = 0).
    pub fn sup(mut self, mut other: Env) -> Env {
        if self.entries.len() < other.entries.len() {
            std::mem::swap(&mut self, &mut other);
        }
        for (x, g) in other.entries {
            match self.entries.entry(x) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let s = e.get().sup(&g);
                    *e.get_mut() = s;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(g);
                }
            }
        }
        self
    }

    /// Pointwise comparison: `self(x) <= other(x)` for every variable.
    pub fn le(&self, other: &Env) -> bool {
        self.entries.iter().all(|(x, g)| g.le(&other.get(*x)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfuzz_exact::Rational;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn g(n: i64) -> Grade {
        Grade::constant(Rational::from_int(n))
    }

    #[test]
    fn add_sums_grades() {
        let a = Env::singleton(v(0), g(1)).add(Env::singleton(v(1), g(2)));
        let b = Env::singleton(v(0), g(3));
        let sum = a.add(b);
        assert_eq!(sum.get(v(0)), g(4));
        assert_eq!(sum.get(v(1)), g(2));
        assert_eq!(sum.get(v(2)), Grade::zero());
        assert_eq!(sum.len(), 2);
    }

    #[test]
    fn scale_zero_and_one() {
        let e = Env::singleton(v(0), Grade::infinite());
        assert_eq!(e.clone().scale(&Grade::zero()).unwrap(), Env::empty());
        assert_eq!(e.clone().scale(&Grade::one()).unwrap(), e);
        let doubled = Env::singleton(v(0), g(3)).scale(&g(2)).unwrap();
        assert_eq!(doubled.get(v(0)), g(6));
        // Symbolic * symbolic is rejected.
        let sym = Env::singleton(v(0), Grade::symbol("eps"));
        assert!(sym.scale(&Grade::symbol("u")).is_none());
    }

    #[test]
    fn sup_pointwise() {
        let a = Env::singleton(v(0), g(1)).add(Env::singleton(v(1), g(5)));
        let b = Env::singleton(v(0), g(3));
        let s = a.sup(b);
        assert_eq!(s.get(v(0)), g(3));
        assert_eq!(s.get(v(1)), g(5));
    }

    #[test]
    fn le_pointwise() {
        let a = Env::singleton(v(0), g(1));
        let b = Env::singleton(v(0), g(2)).add(Env::singleton(v(1), g(1)));
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(Env::empty().le(&a));
    }

    #[test]
    fn remove_returns_grade() {
        let mut e = Env::singleton(v(0), g(7));
        assert_eq!(e.remove(v(0)), g(7));
        assert_eq!(e.remove(v(0)), Grade::zero());
        assert!(e.is_empty());
    }
}
