/root/repo/target/release/examples/quickstart-64ce00f04045cb65.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-64ce00f04045cb65: examples/quickstart.rs

examples/quickstart.rs:
