//! Rounding operators (the paper's Table 2).
//!
//! [`Fp::round`] maps an arbitrary exact [`Rational`] to a member of the
//! format under one of the four IEEE rounding modes, handling subnormals and
//! overflow exactly as IEEE 754 prescribes. [`Fp::round_checked`] instead
//! reports underflow/overflow as a [`RoundingFault`] — this is the rounding
//! function `ρ* : R → R ∪ {⋄}` of the paper's Section 7.1, where the
//! standard model (eq. 2) stops being valid.

use crate::format::Format;
use crate::value::Fp;
use numfuzz_exact::{BigUint, Rational};
use std::fmt;

/// IEEE 754 rounding modes (paper Table 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RoundingMode {
    /// Round toward +∞: `min { y ∈ F | y >= x }`.
    TowardPositive,
    /// Round toward -∞: `max { y ∈ F | y <= x }`.
    TowardNegative,
    /// Round toward 0.
    TowardZero,
    /// Round to nearest, ties to even.
    NearestEven,
}

impl RoundingMode {
    /// All four modes, in Table 2 order.
    pub const ALL: [RoundingMode; 4] = [
        RoundingMode::TowardPositive,
        RoundingMode::TowardNegative,
        RoundingMode::TowardZero,
        RoundingMode::NearestEven,
    ];

    /// The paper's notation for the mode.
    pub fn notation(&self) -> &'static str {
        match self {
            RoundingMode::TowardPositive => "ρ_RU",
            RoundingMode::TowardNegative => "ρ_RD",
            RoundingMode::TowardZero => "ρ_RZ",
            RoundingMode::NearestEven => "ρ_RN",
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            RoundingMode::TowardPositive => "round toward +inf",
            RoundingMode::TowardNegative => "round toward -inf",
            RoundingMode::TowardZero => "round toward 0",
            RoundingMode::NearestEven => "round to nearest (ties to even)",
        }
    }
}

impl fmt::Display for RoundingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Exceptional outcomes of [`Fp::round_checked`] — the `⋄` of Section 7.1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RoundingFault {
    /// The magnitude exceeds the largest finite float.
    Overflow,
    /// The nonzero magnitude falls below the smallest positive normal float,
    /// where the standard model's relative-error guarantee breaks down.
    Underflow,
}

impl fmt::Display for RoundingFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoundingFault::Overflow => write!(f, "overflow"),
            RoundingFault::Underflow => write!(f, "underflow"),
        }
    }
}

impl std::error::Error for RoundingFault {}

impl Fp {
    /// Rounds an exact rational to the format under `mode`, with full IEEE
    /// semantics (gradual underflow; overflow to ±∞ or ±max depending on
    /// the mode).
    pub fn round(q: &Rational, format: Format, mode: RoundingMode) -> Fp {
        if q.is_zero() {
            return Fp::zero(format, false);
        }
        let neg = q.is_negative();
        let mag = q.abs();
        let p = format.precision() as i64;

        // Exponent e with 2^e <= mag < 2^(e+1).
        let mut e = mag.numer_bit_len() as i64 - mag.denom_bit_len() as i64;
        if mag < Rational::pow2(e) {
            e -= 1;
        } else if mag >= Rational::pow2(e + 1) {
            e += 1;
        }
        debug_assert!(Rational::pow2(e) <= mag && mag < Rational::pow2(e + 1));

        // Subnormal range: quantize against emin instead.
        let e_eff = e.max(format.emin());

        // m2 = floor(mag * 2^(p - e_eff)): the significand with one extra
        // (rounding) bit; `exact` records whether anything lies below it.
        let scale = p - e_eff;
        let m2 = mag.floor_mul_pow2(scale);
        let exact = Rational::from(m2.clone()).mul(&Rational::pow2(-scale)) == mag;
        let m2 = m2.into_magnitude();
        let round_bit = !m2.is_even();
        let m0 = m2.shr_bits(1);

        // "exactly representable at this quantum" = no round bit and no
        // residue below it; directed modes must not move such values.
        let representable = exact && !round_bit;
        let round_away = match mode {
            RoundingMode::TowardZero => false,
            RoundingMode::TowardPositive => !neg && !representable,
            RoundingMode::TowardNegative => neg && !representable,
            RoundingMode::NearestEven => {
                if !round_bit {
                    false // fraction < 1/2
                } else if !exact {
                    true // fraction > 1/2
                } else {
                    !m0.is_even() // exactly 1/2: ties to even
                }
            }
        };
        let mut m = if round_away && !representable { m0.add(&BigUint::one()) } else { m0 };

        let mut e_final = e_eff;
        if m.bit_len() as i64 > p {
            // Carry out of the significand: 2^p -> 2^(p-1) at e+1.
            m = m.shr_bits(1);
            e_final += 1;
        }

        if e_final > format.emax() {
            return Fp::overflow_result(format, neg, mode);
        }
        // Quantizing at e_eff >= emin always yields a full significand for
        // normal-range inputs, so anything unnormalized is subnormal.
        debug_assert!(m.bit_len() as i64 == p || e_final == format.emin());
        Fp::from_parts(format, neg, e_final, m)
    }

    fn overflow_result(format: Format, neg: bool, mode: RoundingMode) -> Fp {
        match (mode, neg) {
            (RoundingMode::NearestEven, _) => Fp::infinity(format, neg),
            (RoundingMode::TowardZero, _) => Fp::max_finite(format, neg),
            (RoundingMode::TowardPositive, false) => Fp::infinity(format, false),
            (RoundingMode::TowardPositive, true) => Fp::max_finite(format, true),
            (RoundingMode::TowardNegative, false) => Fp::max_finite(format, false),
            (RoundingMode::TowardNegative, true) => Fp::infinity(format, true),
        }
    }

    /// Rounds like [`Fp::round`] but reports the regimes where the standard
    /// model (eq. 2) is invalid: overflow, and nonzero magnitudes below the
    /// normal range (underflow).
    ///
    /// # Errors
    ///
    /// [`RoundingFault::Overflow`] if `|q|` exceeds the largest finite
    /// float; [`RoundingFault::Underflow`] if `0 < |q| < 2^emin`.
    pub fn round_checked(
        q: &Rational,
        format: Format,
        mode: RoundingMode,
    ) -> Result<Fp, RoundingFault> {
        if !q.is_zero() && q.abs() < format.min_normal_value() {
            return Err(RoundingFault::Underflow);
        }
        if q.abs() > format.max_finite_value() {
            return Err(RoundingFault::Overflow);
        }
        let r = Fp::round(q, format, mode);
        if r.is_infinite() {
            return Err(RoundingFault::Overflow);
        }
        Ok(r)
    }

    /// Convenience: round and return the exact value of the result.
    ///
    /// # Panics
    ///
    /// Panics if rounding overflows to ±∞ (use [`Fp::round_checked`] to
    /// handle that case).
    pub fn round_to_rational(q: &Rational, format: Format, mode: RoundingMode) -> Rational {
        Fp::round(q, format, mode).to_rational().expect("rounding overflowed to infinity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(s: &str) -> Rational {
        Rational::from_decimal_str(s).expect("valid test literal")
    }

    /// Brute-force reference: enumerate all finite floats of a tiny format
    /// and apply the Table 2 definitions literally.
    fn reference_round(q: &Rational, format: Format, mode: RoundingMode) -> Fp {
        let mut floats = Vec::new();
        let mut cur = Fp::max_finite(format, true);
        loop {
            floats.push(cur.clone());
            if cur == Fp::max_finite(format, false) {
                break;
            }
            cur = cur.next_up();
        }
        let vals: Vec<Rational> = floats.iter().map(|f| f.to_rational().unwrap()).collect();
        match mode {
            RoundingMode::TowardPositive => {
                for (f, v) in floats.iter().zip(&vals) {
                    if v >= q {
                        return f.clone();
                    }
                }
                Fp::infinity(format, false)
            }
            RoundingMode::TowardNegative => {
                for (f, v) in floats.iter().zip(&vals).rev() {
                    if v <= q {
                        return f.clone();
                    }
                }
                Fp::infinity(format, true)
            }
            RoundingMode::TowardZero => {
                if q.is_negative() {
                    reference_round(q, format, RoundingMode::TowardPositive)
                } else {
                    reference_round(q, format, RoundingMode::TowardNegative)
                }
            }
            RoundingMode::NearestEven => {
                let mut best: Option<(Fp, Rational)> = None;
                for (f, v) in floats.iter().zip(&vals) {
                    let d = v.sub(q).abs();
                    best = match best {
                        None => Some((f.clone(), d)),
                        Some((bf, bd)) => {
                            if d < bd {
                                Some((f.clone(), d))
                            } else if d == bd {
                                // tie: prefer even significand
                                let even = |x: &Fp| {
                                    x.to_rational()
                                        .unwrap()
                                        .div(&x.ulp())
                                        .floor()
                                        .magnitude()
                                        .is_even()
                                };
                                if even(f) {
                                    Some((f.clone(), d))
                                } else {
                                    Some((bf, bd))
                                }
                            } else {
                                Some((bf, bd))
                            }
                        }
                    };
                }
                let (best_fp, best_d) = best.unwrap();
                // IEEE 754 §4.3.1: magnitude >= maxfinite + ulp/2 rounds to
                // infinity (the would-be tie goes to the even 2^p).
                let half_ulp = Fp::max_finite(format, false).ulp().div(&rat("2"));
                if best_fp == Fp::max_finite(format, false)
                    && q >= &vals.last().unwrap().add(&half_ulp)
                {
                    return Fp::infinity(format, false);
                }
                if best_fp == Fp::max_finite(format, true)
                    && q <= &vals.first().unwrap().sub(&half_ulp)
                {
                    return Fp::infinity(format, true);
                }
                let _ = best_d;
                best_fp
            }
        }
    }

    #[test]
    fn exhaustive_tiny_format_against_reference() {
        let f = Format::new(3, 2);
        // Probe a dense grid well beyond the format's range, including
        // midpoints (denominator 16 hits every tie for p=3).
        let mut q = rat("-9");
        let step = rat("1/16");
        while q <= rat("9") {
            for mode in RoundingMode::ALL {
                let got = Fp::round(&q, f, mode);
                let want = reference_round(&q, f, mode);
                // The enumeration-based reference does not model IEEE's
                // sign-of-zero rule, so zeros compare numerically only.
                if got.is_zero() && want.is_zero() {
                    continue;
                }
                assert_eq!(got, want, "mode {mode}: rounding {q} gave {got}, reference {want}");
            }
            q = q.add(&step);
        }
    }

    #[test]
    fn representable_values_are_fixed_points() {
        let f = Format::new(4, 3);
        let mut cur = Fp::min_subnormal(f, false);
        while cur != Fp::max_finite(f, false) {
            let v = cur.to_rational().unwrap();
            for mode in RoundingMode::ALL {
                assert_eq!(Fp::round(&v, f, mode), cur, "mode {mode} moved {v}");
            }
            cur = cur.next_up();
        }
    }

    #[test]
    fn directed_modes_bracket() {
        let f = Format::BINARY64;
        let q = rat("0.1");
        let up = Fp::round(&q, f, RoundingMode::TowardPositive).to_rational().unwrap();
        let dn = Fp::round(&q, f, RoundingMode::TowardNegative).to_rational().unwrap();
        assert!(dn < q && q < up);
        assert_eq!(up.sub(&dn), Fp::round(&q, f, RoundingMode::NearestEven).ulp());
        // Standard model: |round(x) - x| <= u * |x| with u = 2^(1-p) directed.
        let u = f.unit_roundoff(RoundingMode::TowardPositive);
        assert!(up.sub(&q) <= u.mul(&q));
        assert!(q.sub(&dn) <= u.mul(&q));
    }

    #[test]
    fn nearest_ties_to_even() {
        let f = Format::new(3, 3);
        // Significands at e=0 step by 1/4: 1, 1.25, 1.5, ... midpoint 1.125
        // lies between 1.0 (mant 4, even) and 1.25 (mant 5, odd) -> 1.0.
        assert_eq!(
            Fp::round(&rat("1.125"), f, RoundingMode::NearestEven).to_rational().unwrap(),
            rat("1")
        );
        // Midpoint 1.375 between 1.25 (odd) and 1.5 (mant 6, even) -> 1.5.
        assert_eq!(
            Fp::round(&rat("1.375"), f, RoundingMode::NearestEven).to_rational().unwrap(),
            rat("1.5")
        );
    }

    #[test]
    fn overflow_per_mode() {
        let f = Format::new(3, 2);
        let big = rat("100");
        assert!(Fp::round(&big, f, RoundingMode::NearestEven).is_infinite());
        assert!(Fp::round(&big, f, RoundingMode::TowardPositive).is_infinite());
        assert_eq!(Fp::round(&big, f, RoundingMode::TowardNegative), Fp::max_finite(f, false));
        assert_eq!(Fp::round(&big, f, RoundingMode::TowardZero), Fp::max_finite(f, false));
        let small = big.neg();
        assert!(Fp::round(&small, f, RoundingMode::TowardNegative).is_infinite());
        assert_eq!(Fp::round(&small, f, RoundingMode::TowardPositive), Fp::max_finite(f, true));
    }

    #[test]
    fn gradual_underflow() {
        let f = Format::new(3, 2);
        // min subnormal = 2^(emin - p + 1) = 2^(-1-2) = 1/8.
        assert_eq!(f.min_subnormal_value(), rat("1/8"));
        let tiny_val = rat("1/20");
        let up = Fp::round(&tiny_val, f, RoundingMode::TowardPositive);
        assert_eq!(up, Fp::min_subnormal(f, false));
        let dn = Fp::round(&tiny_val, f, RoundingMode::TowardNegative);
        assert!(dn.is_zero());
    }

    #[test]
    fn round_checked_faults() {
        let f = Format::new(3, 2);
        assert_eq!(
            Fp::round_checked(&rat("100"), f, RoundingMode::NearestEven),
            Err(RoundingFault::Overflow)
        );
        assert_eq!(
            Fp::round_checked(&rat("1/20"), f, RoundingMode::NearestEven),
            Err(RoundingFault::Underflow)
        );
        assert!(Fp::round_checked(&rat("1.1"), f, RoundingMode::NearestEven).is_ok());
        assert!(Fp::round_checked(&Rational::zero(), f, RoundingMode::NearestEven).is_ok());
    }

    #[test]
    fn binary64_matches_host_parsing() {
        // Host f64 literals are round-to-nearest; our RN rounding of the
        // exact decimal must agree bit for bit.
        for s in ["0.1", "0.2", "0.3", "1e-7", "123456.789", "2.2250738585072014e-308"] {
            let q = rat(s);
            let ours = Fp::round(&q, Format::BINARY64, RoundingMode::NearestEven);
            let host: f64 = s.parse().unwrap();
            assert_eq!(ours.to_f64().to_bits(), host.to_bits(), "literal {s}");
        }
    }
}
