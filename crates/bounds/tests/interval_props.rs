//! Property tests for the independent interval/Taylor bound engine.
//!
//! Three invariants the engine's soundness rests on:
//!
//! * **Containment** — the ideal enclosure contains the exact value
//!   (computed independently with `numfuzz_exact` rationals), and the
//!   enclosure pair passes the same corner-sup containment check the
//!   fuzz oracle runs (`oracle_bound` absorbs the enclosure slop by the
//!   triangle inequality);
//! * **Outward monotonicity under refinement** — a narrower input box
//!   yields enclosures inside the wider box's, and never a larger error
//!   term (outward rounding only ever widens);
//! * **Round-trip invariance** — pretty-printing the lowered term and
//!   re-compiling it changes nothing: same bound, same enclosures.

use numfuzz_bounds::{analyze, analyze_fn, BoundConfig};
use numfuzz_core::{compile, pretty_term, Instantiation, Signature};
use numfuzz_exact::{RatInterval, Rational};
use numfuzz_metrics::{NumMetric, Within};
use numfuzz_softfloat::{Format, RoundingMode};
use proptest::prelude::*;

fn rp_cfg() -> BoundConfig {
    BoundConfig::new(
        Instantiation::RelativePrecision,
        Format::BINARY64,
        RoundingMode::TowardPositive,
    )
}

fn abs_cfg() -> BoundConfig {
    BoundConfig::new(Instantiation::AbsoluteError, Format::BINARY64, RoundingMode::NearestEven)
}

fn sig_for(cfg: &BoundConfig) -> Signature {
    match cfg.instantiation {
        Instantiation::RelativePrecision => Signature::relative_precision(),
        Instantiation::AbsoluteError => Signature::absolute_error(),
    }
}

/// One closed straight-line program per template, with its exact ideal
/// value (or, for `sqrt`, the radicand to compare squares against).
fn template(idx: usize, x: i64, y: i64) -> (String, Option<Rational>, Option<Rational>) {
    let (xq, yq) = (Rational::from_int(x), Rational::from_int(y));
    match idx {
        0 => (
            format!("let a = rnd {x}; let b = rnd {y}; s = mul (a, b); rnd s"),
            Some(xq.mul(&yq)),
            None,
        ),
        1 => (
            format!("let a = rnd {x}; let b = rnd {y}; s = add (| a, b |); rnd s"),
            Some(xq.add(&yq)),
            None,
        ),
        2 => (
            format!("let a = rnd {x}; let b = rnd {y}; s = div (a, b); rnd s"),
            Some(xq.div(&yq)),
            None,
        ),
        _ => (format!("let a = rnd {x}; s = sqrt [a]{{1/2}}; rnd s"), None, Some(xq)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ideal enclosure contains the independently computed exact
    /// value, and the (ideal, fp) pair passes the fuzz oracle's
    /// corner-sup containment check at `oracle_bound`.
    #[test]
    fn ideal_encloses_the_exact_value(idx in 0usize..4, x in 1i64..10_000, y in 1i64..10_000) {
        let cfg = rp_cfg();
        let (src, exact, radicand) = template(idx, x, y);
        let lowered = compile(&src, &sig_for(&cfg)).expect("template compiles");
        let b = analyze(&lowered.store, lowered.root, &cfg).expect("template is in-fragment");
        if let Some(v) = &exact {
            prop_assert!(b.ideal().contains(v), "exact {v} outside ideal {:?}", b.ideal());
        }
        if let Some(r) = &radicand {
            // sqrt is irrational in general: check lo² ≤ r ≤ hi².
            let lo2 = b.ideal().lo().mul(b.ideal().lo());
            let hi2 = b.ideal().hi().mul(b.ideal().hi());
            prop_assert!(&lo2 <= r && r <= &hi2);
        }
        let oracle = b.oracle_bound().expect("positive point inputs have defined slop");
        prop_assert!(b.bound() <= &oracle);
        prop_assert_eq!(
            NumMetric::RelativePrecision.within(b.ideal(), b.fp(), &oracle),
            Within::Yes
        );
    }

    /// Refining the input box refines the output: narrower ideal and fp
    /// enclosures, and never a larger error term. Checked on the RP
    /// fragment (div chains — the error term is range-independent, so
    /// equality is the expected case) …
    #[test]
    fn rp_enclosures_monotone_under_refinement(lo in 1i64..100, width in 4i64..100) {
        let cfg = rp_cfg();
        let src = "function f (x: num) (y: num) : M[3*eps]num {\n\
                   \x20 let a = rnd x; let b = rnd y; s = div (a, b); rnd s\n\
                   }\n\
                   f 1 1";
        let lowered = compile(src, &sig_for(&cfg)).expect("compiles");
        let wide = RatInterval::new(Rational::from_int(lo), Rational::from_int(lo + width));
        let refined = RatInterval::new(
            Rational::from_int(lo + width / 4),
            Rational::from_int(lo + width / 2),
        );
        let bw = analyze_fn(&lowered.store, lowered.root, &cfg, "f", &[wide.clone(), wide])
            .expect("wide box bounds");
        let bn = analyze_fn(&lowered.store, lowered.root, &cfg, "f", &[refined.clone(), refined])
            .expect("refined box bounds");
        prop_assert!(bw.ideal().contains_interval(bn.ideal()));
        prop_assert!(bw.fp().contains_interval(bn.fp()));
        prop_assert!(bn.bound() <= bw.bound());
    }

    /// … and on the ABS fragment, where the per-`rnd` charge scales with
    /// the running magnitude, so a narrower box must give a strictly
    /// smaller or equal error term too.
    #[test]
    fn abs_error_term_monotone_under_refinement(lo in 1i64..100, width in 4i64..100) {
        let cfg = abs_cfg();
        let src = "function f (x: num) (y: num) : M[delta]num {\n\
                   \x20 let a = rnd x; let b = rnd y; s = add (a, b); rnd s\n\
                   }\n\
                   f 1 1";
        let lowered = compile(src, &sig_for(&cfg)).expect("compiles");
        let wide = RatInterval::new(Rational::from_int(lo), Rational::from_int(lo + width));
        let refined = RatInterval::new(
            Rational::from_int(lo + width / 4),
            Rational::from_int(lo + width / 2),
        );
        let bw = analyze_fn(&lowered.store, lowered.root, &cfg, "f", &[wide.clone(), wide])
            .expect("wide box bounds");
        let bn = analyze_fn(&lowered.store, lowered.root, &cfg, "f", &[refined.clone(), refined])
            .expect("refined box bounds");
        prop_assert!(bw.ideal().contains_interval(bn.ideal()));
        prop_assert!(bw.fp().contains_interval(bn.fp()));
        prop_assert!(bn.bound() <= bw.bound());
    }

    /// Pretty-printing the lowered term and re-compiling it is invisible
    /// to the engine: identical bound and identical enclosures.
    #[test]
    fn bound_invariant_under_pretty_reparse(idx in 0usize..4, x in 1i64..10_000, y in 1i64..10_000) {
        let cfg = rp_cfg();
        let (src, _, _) = template(idx, x, y);
        let sig = sig_for(&cfg);
        let lowered = compile(&src, &sig).expect("template compiles");
        let b1 = analyze(&lowered.store, lowered.root, &cfg).expect("bounded");
        let pretty = pretty_term(&lowered.store, lowered.root, u32::MAX);
        let relowered = compile(&pretty, &sig)
            .unwrap_or_else(|e| panic!("pretty round-trip failed to compile: {e:?}\n---\n{pretty}"));
        let b2 = analyze(&relowered.store, relowered.root, &cfg).expect("bounded after round-trip");
        prop_assert_eq!(b1.bound(), b2.bound());
        prop_assert_eq!(b1.ideal(), b2.ideal());
        prop_assert_eq!(b1.fp(), b2.fp());
    }
}
