/root/repo/target/debug/deps/numfuzz_bench-6e20e63456052972.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnumfuzz_bench-6e20e63456052972.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
